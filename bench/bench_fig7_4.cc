/**
 * @file
 * Figure 7.4: average increase in ARCC power consumption as a function
 * of time, compared to fault-free memory, for 1x / 2x / 4x fault
 * rates; measured overheads and the worst-case estimate.
 *
 * Methodology (Section 7.1): the per-fault-type overheads are measured
 * with the Figure 7.2 experiments, then a 10000-channel Monte Carlo
 * injects fault arrivals over 7 years and accumulates each channel's
 * overhead from the arrival time onward; year X reports the fleet
 * average of the time-average through year X.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 7.4: Power Overhead of Error Correction");

    std::printf("Measuring per-fault-type power overheads "
                "(Figure 7.2 methodology)...\n");
    bench::ScenarioOverheads ov = bench::measureScenarioOverheads();
    std::printf("  lane %.1f%%  device %.1f%%  subbank %.2f%%  "
                "column %.2f%%\n\n",
                ov.power[0] * 100, ov.power[1] * 100,
                ov.power[2] * 100, ov.power[3] * 100);

    PerTypeOverhead measured = bench::toPerTypeOverhead(ov.power);
    DomainGeometry geom = bench::defaultGeometry();
    PerTypeOverhead worst = bench::worstCaseOverhead(geom, 1.0);

    TextTable t;
    t.header({"Year", "1x", "2x", "4x", "1x worst est.",
              "4x worst est."});

    std::vector<std::vector<double>> meas, wc;
    for (double factor : {1.0, 2.0, 4.0}) {
        LifetimeMcConfig cfg;
        cfg.geom = geom;
        cfg.rates = FaultRates::fieldStudy().scaled(factor);
        cfg.channels = 10000;
        LifetimeMc mc(cfg);
        meas.push_back(
            mc.cumulativeOverheadByYear(measured, ov.power[0]));
        wc.push_back(mc.cumulativeOverheadByYear(worst, 1.0));

        std::vector<std::pair<std::string, std::string>> fields = {
            {"factor", bench::jsonNum(factor)}};
        for (std::size_t y = 0; y < meas.back().size(); ++y)
            fields.emplace_back("year" + std::to_string(y + 1),
                                bench::jsonNum(meas.back()[y]));
        for (std::size_t y = 0; y < wc.back().size(); ++y)
            fields.emplace_back("worst_year" + std::to_string(y + 1),
                                bench::jsonNum(wc.back()[y]));
        bench::jsonRow("fig7_4", fields);
    }
    for (int y = 0; y < 7; ++y) {
        t.row({std::to_string(y + 1), TextTable::pct(meas[0][y], 3),
               TextTable::pct(meas[1][y], 3),
               TextTable::pct(meas[2][y], 3),
               TextTable::pct(wc[0][y], 3),
               TextTable::pct(wc[2][y], 3)});
    }
    t.print();

    double fault_free_saving = 0.367; // Figure 7.1 headline.
    std::printf("\nShape checks:\n");
    std::printf("  overhead grows with time and rate factor, stays "
                "small: 4x year-7 measured %.2f%% (< 4%%): %s\n",
                meas[2][6] * 100, meas[2][6] < 0.04 ? "yes" : "NO");
    std::printf("  paper: 'power benefits from ARCC even at the end "
                "of 7 years for 4X the fault rate is no less than "
                "30%%': %.1f%% - %.2f%% = %.1f%% >= 30%%: %s\n",
                fault_free_saving * 100, wc[2][6] * 100,
                (fault_free_saving - wc[2][6]) * 100,
                fault_free_saving - wc[2][6] >= 0.30 ? "yes" : "NO");
    return 0;
}
