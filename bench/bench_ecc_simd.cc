/**
 * @file
 * SIMD GF(2^8) kernel and SoA batch-decode throughput bench.
 *
 * Rows come in two groups, all under the `ecc_simd` bench family:
 *
 *  - kernel rows (`mul_const`, `syndrome_soa`): measured twice in one
 *    process, once pinned to the scalar tier and once on the build's
 *    active tier via the `*At` dispatch entry points -- the in-process
 *    scalar-vs-vector speedup of the raw kernels.  A scalar-forced
 *    run emits two scalar rows, so the row structure stays diffable;
 *  - batch rows (`decode_soa_clean`, `decode_soa_2err`): the full
 *    ReedSolomon::decodeSoa pipeline on the active tier (whatever
 *    simd::activeTier() resolves to -- override with ARCC_SIMD=off to
 *    measure the scalar path, which is what the CI bench-smoke diff
 *    does).
 *
 * Every JSON row carries a `tier` field and a `check` decode-output
 * hash that is a pure function of the fixed seeds and iteration
 * count.  The scalar and SIMD tiers are required to be bit-identical,
 * so CI diffs the rows of an ARCC_SIMD=off run against a default run
 * with `tier` and the timing fields normalised: any check divergence
 * is a vector-kernel correctness bug, caught in the smoke lane.
 *
 * ARCC_BENCH_ECC_ITERS overrides the per-path iteration budget.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/rng.hh"
#include "ecc/gf256_simd.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_workspace.hh"
#include "ecc/simd.hh"

using namespace arcc;
using namespace arcc::bench;

namespace
{

std::uint64_t
iterBudget()
{
    if (const char *env = std::getenv("ARCC_BENCH_ECC_ITERS"))
        return std::max<std::uint64_t>(
            1, std::strtoull(env, nullptr, 10));
    return 100000;
}

/** Decode-output accumulator: order-sensitive, timing-independent. */
struct Check
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        h = (h ^ v) * 0x100000001b3ULL;
    }
};

/** Time `body(iters)` and emit the human + JSON rows. */
template <class Body>
void
report(const char *codec, simd::Tier tier, const char *path, int lanes,
       std::uint64_t iters, std::uint64_t symbols_per_iter, Body &&body)
{
    Check check;
    const auto start = std::chrono::steady_clock::now();
    body(iters, check);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    const double ns_word =
        ns / static_cast<double>(iters) /
        std::max(1, lanes); // per codeword, not per batch pass.
    const double msym_s = static_cast<double>(symbols_per_iter) *
                          static_cast<double>(iters) / ns * 1e3;

    const char *tname = simd::tierName(tier);
    std::printf("  %-9s %-6s %-16s lanes=%-3d %10.1f MSym/s"
                "  %8.2f ns/word\n",
                codec, tname, path, lanes, msym_s, ns_word);
    jsonRow("ecc_simd",
            {
                {"codec", std::string("\"") + codec + "\""},
                {"tier", std::string("\"") + tname + "\""},
                {"path", std::string("\"") + path + "\""},
                {"lanes", jsonNum(static_cast<std::uint64_t>(lanes))},
                {"iters", jsonNum(iters)},
                {"check", jsonNum(check.h)},
                {"msym_s", jsonNum(msym_s)},
                {"ns_word", jsonNum(ns_word)},
            });
}

/** Raw constant-multiply kernel, both tiers over one buffer. */
void
benchMulConst()
{
    constexpr std::size_t kBytes = 4096;
    Rng rng(46);
    std::vector<std::uint8_t> in(kBytes), out(kBytes);
    for (auto &b : in)
        b = static_cast<std::uint8_t>(rng.below(256));
    const std::uint64_t iters =
        std::max<std::uint64_t>(1, iterBudget() / 8);

    for (simd::Tier tier : {simd::Tier::Scalar, simd::activeTier()}) {
        report("gf256", tier, "mul_const", 0, iters, kBytes,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       gfsimd::mulConstAt(
                           tier,
                           static_cast<std::uint8_t>(1 + (i & 0xfe)),
                           in.data(), out.data(), kBytes);
                       c.mix(out[i % kBytes]);
                   }
               });
    }
}

/** One codec's SoA sweep: syndrome kernel on both tiers, then the
 *  full batched decode on the active tier. */
void
benchCodec(const char *name, int n, int k)
{
    const ReedSolomon rs(n, k);
    RsWorkspace ws;
    const int rr = rs.r();
    constexpr int kLanes = RsWorkspace::kSoaLanes;
    const std::uint64_t iters =
        std::max<std::uint64_t>(1, iterBudget() / kLanes);
    const std::uint64_t sym_per_iter =
        static_cast<std::uint64_t>(n) * kLanes;

    // A block of clean codewords, staged once; corrupting rows are
    // decoded back to this exact state, so no re-staging per pass.
    Rng rng(47);
    std::vector<std::uint8_t> words(
        static_cast<std::size_t>(kLanes) * n);
    for (int l = 0; l < kLanes; ++l) {
        std::uint8_t *w =
            words.data() + static_cast<std::size_t>(l) * n;
        for (int i = 0; i < k; ++i)
            w[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(std::span<std::uint8_t>(
            w, static_cast<std::size_t>(n)));
    }
    gfsimd::soaScatter(words.data(), n, n, kLanes, ws.soa.data(),
                       kLanes);

    std::vector<std::uint8_t> roots(rr);
    for (int j = 0; j < rr; ++j)
        roots[j] = GF256::alphaPow(j);

    // --- SoA syndrome screen, both tiers -----------------------------
    for (simd::Tier tier : {simd::Tier::Scalar, simd::activeTier()}) {
        report(name, tier, "syndrome_soa", kLanes, iters, sym_per_iter,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       gfsimd::syndromeSoaAt(
                           tier, ws.soa.data(), kLanes, n, kLanes,
                           roots.data(), rr, ws.syndSoa.data(),
                           ws.soaFlags.data());
                       c.mix(ws.soaFlags[i % kLanes]);
                   }
               });
    }

    // --- full batched decode, active tier ----------------------------
    const simd::Tier act = simd::activeTier();
    RsLaneResult results[kLanes];

    report(name, act, "decode_soa_clean", kLanes, iters, sym_per_iter,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   rs.decodeSoa(ws.soa.data(), kLanes, kLanes, ws, -1,
                                {}, results);
                   c.mix(static_cast<std::uint64_t>(
                       results[i % kLanes].status));
               }
           });

    const std::uint64_t err_iters =
        std::max<std::uint64_t>(1, iters / 4);
    report(name, act, "decode_soa_2err", kLanes, err_iters,
           sym_per_iter, [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   // Two lanes take hits; the decode restores them,
                   // so the block re-enters clean every pass.
                   ws.soa[static_cast<std::size_t>(5) * kLanes + 3] ^=
                       0x7b;
                   ws.soa[static_cast<std::size_t>(n - 1) * kLanes +
                          20] ^= 0x11;
                   rs.decodeSoa(ws.soa.data(), kLanes, kLanes, ws, -1,
                                {}, results);
                   c.mix(static_cast<std::uint64_t>(
                       results[3].status));
                   c.mix(static_cast<std::uint64_t>(
                       results[20].symbolsCorrected));
               }
           });
}

} // anonymous namespace

int
main()
{
    std::printf("SIMD GF(2^8) kernels (detected tier: %s, active "
                "tier: %s)\n",
                simd::tierName(simd::detectTier()),
                simd::tierName(simd::activeTier()));
    benchMulConst();
    benchCodec("rs18_16", 18, 16);
    benchCodec("rs36_32", 36, 32);
    benchCodec("rs72_64", 72, 64);
    return 0;
}
