/**
 * @file
 * Figure 7.6: power / performance overhead of ARCC applied to LOT-ECC
 * (nine-device relaxed pages upgraded to 18-device double-chip-sparing
 * pages) for the *worst-case application scenario*, as a function of
 * time.
 *
 * In the worst case (100% reads, no spatial locality) an access to an
 * upgraded page costs 4x a relaxed access: twice the devices, plus an
 * extra read for the relocated checksums (Section 5.2 / 7.2.1).  The
 * overhead of a fault is therefore 3x the fraction of pages it
 * upgrades.  Paper: ~1.6% average over 7 years at 1x, <= 6.3% at 4x.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 7.6: ARCC + LOT-ECC Worst-Case Overhead");
    std::printf("ARCC+LOT-ECC vs nine-device LOT-ECC; worst-case "
                "application (all reads, no locality):\n"
                "an upgraded access = 4x a relaxed access "
                "(2x devices x 2 accesses), overhead factor 3f.\n\n");

    DomainGeometry geom = bench::defaultGeometry();
    // Nine-device ranks: 8 ranks of 9 devices in the 72-device domain.
    geom.ranks = 2; // upgrade granularity is still the Table 7.4 one.

    PerTypeOverhead worst = bench::worstCaseOverhead(geom, 3.0);

    TextTable t;
    t.header({"Year", "1x rate", "2x rate", "4x rate"});
    std::vector<std::vector<double>> by_factor;
    for (double factor : {1.0, 2.0, 4.0}) {
        LifetimeMcConfig cfg;
        cfg.geom = geom;
        cfg.rates = FaultRates::fieldStudy().scaled(factor);
        cfg.channels = 10000;
        LifetimeMc mc(cfg);
        by_factor.push_back(mc.cumulativeOverheadByYear(worst, 3.0));

        std::vector<std::pair<std::string, std::string>> fields = {
            {"factor", bench::jsonNum(factor)}};
        for (std::size_t y = 0; y < by_factor.back().size(); ++y)
            fields.emplace_back("year" + std::to_string(y + 1),
                                bench::jsonNum(by_factor.back()[y]));
        bench::jsonRow("fig7_6", fields);
    }
    for (int y = 0; y < 7; ++y) {
        t.row({std::to_string(y + 1),
               TextTable::pct(by_factor[0][y], 3),
               TextTable::pct(by_factor[1][y], 3),
               TextTable::pct(by_factor[2][y], 3)});
    }
    t.print();

    double avg1 = by_factor[0][6];
    double avg4 = by_factor[2][6];
    std::printf("\nShape checks (paper Section 7.2.1):\n");
    std::printf("  7-year average overhead at 1x ~ 1.6%% "
                "(measured %.2f%%): %s\n",
                avg1 * 100, avg1 < 0.03 ? "yes" : "NO");
    std::printf("  7-year average overhead at 4x <= ~6.3%% "
                "(measured %.2f%%): %s\n",
                avg4 * 100, avg4 < 0.08 ? "yes" : "NO");
    std::printf("  'a small cost for reducing the DUE rate by 17X by "
                "providing double chip sparing'.\n");
    return 0;
}
