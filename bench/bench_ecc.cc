/**
 * @file
 * google-benchmark microbenchmarks of the ECC substrate: encode and
 * decode throughput of every codec the schemes use, in the states that
 * matter (clean, one-symbol error, whole-device kill, erasure decode).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "arcc/ecc_scheme.hh"
#include "common/rng.hh"
#include "ecc/lot_ecc.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/secded.hh"

using namespace arcc;

namespace
{

void
BM_RsEncode(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    int k = static_cast<int>(state.range(1));
    ReedSolomon rs(n, k);
    Rng rng(1);
    std::vector<std::uint8_t> word(n);
    for (int i = 0; i < k; ++i)
        word[i] = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state) {
        rs.encode(word);
        benchmark::DoNotOptimize(word.data());
    }
    state.SetBytesProcessed(state.iterations() * k);
}
BENCHMARK(BM_RsEncode)
    ->Args({18, 16})
    ->Args({36, 32})
    ->Args({72, 64});

void
BM_RsDecodeClean(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    int k = static_cast<int>(state.range(1));
    ReedSolomon rs(n, k);
    Rng rng(2);
    std::vector<std::uint8_t> word(n);
    for (int i = 0; i < k; ++i)
        word[i] = static_cast<std::uint8_t>(rng.below(256));
    rs.encode(word);
    for (auto _ : state) {
        DecodeResult res = rs.decode(word);
        benchmark::DoNotOptimize(res);
    }
    state.SetBytesProcessed(state.iterations() * k);
}
BENCHMARK(BM_RsDecodeClean)
    ->Args({18, 16})
    ->Args({36, 32})
    ->Args({72, 64});

void
BM_RsDecodeOneError(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    int k = static_cast<int>(state.range(1));
    ReedSolomon rs(n, k);
    Rng rng(3);
    std::vector<std::uint8_t> clean(n);
    for (int i = 0; i < k; ++i)
        clean[i] = static_cast<std::uint8_t>(rng.below(256));
    rs.encode(clean);
    std::vector<std::uint8_t> word = clean;
    for (auto _ : state) {
        word = clean;
        word[5] ^= 0x7b;
        DecodeResult res = rs.decode(word, 1);
        benchmark::DoNotOptimize(res);
    }
    state.SetBytesProcessed(state.iterations() * k);
}
BENCHMARK(BM_RsDecodeOneError)->Args({18, 16})->Args({36, 32});

void
BM_RsDecodeErasurePlusError(benchmark::State &state)
{
    ReedSolomon rs(36, 32);
    Rng rng(4);
    std::vector<std::uint8_t> clean(36);
    for (int i = 0; i < 32; ++i)
        clean[i] = static_cast<std::uint8_t>(rng.below(256));
    rs.encode(clean);
    std::vector<std::uint8_t> word;
    std::vector<int> erasures = {7};
    for (auto _ : state) {
        word = clean;
        word[7] = 0xaa;
        word[20] ^= 0x31;
        DecodeResult res = rs.decode(word, -1, erasures);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_RsDecodeErasurePlusError);

void
BM_SecdedEncode(benchmark::State &state)
{
    Rng rng(5);
    std::uint64_t data = rng.next();
    for (auto _ : state) {
        std::uint8_t c = Secded::encode(data);
        benchmark::DoNotOptimize(c);
        ++data;
    }
    state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SecdedEncode);

void
BM_SecdedDecodeWithError(benchmark::State &state)
{
    Rng rng(6);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (auto _ : state) {
        std::uint64_t d = data ^ (1ULL << 17);
        std::uint8_t c = check;
        auto res = Secded::decode(d, c);
        benchmark::DoNotOptimize(res);
    }
    state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SecdedDecodeWithError);

void
BM_LotEncode(benchmark::State &state)
{
    LotEcc lot(static_cast<int>(state.range(0)),
               static_cast<int>(state.range(0)) == 8 ? 64 : 128);
    Rng rng(7);
    std::vector<std::uint8_t> line(lot.dataDevices() *
                                   lot.sliceBytes());
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state) {
        LotLine enc = lot.encode(line);
        benchmark::DoNotOptimize(enc.slices.data());
    }
    state.SetBytesProcessed(state.iterations() * line.size());
}
BENCHMARK(BM_LotEncode)->Arg(8)->Arg(16);

void
BM_LineCodecWholePath(benchmark::State &state)
{
    // Full 64B-line encode + device-kill + decode through the scheme
    // codec (what one faulty-memory read costs the model).
    auto codec = state.range(0) == 0 ? schemes::arccRelaxed()
                                     : schemes::arccUpgraded();
    Rng rng(8);
    std::vector<std::uint8_t> data(codec->dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    for (auto _ : state) {
        DeviceSlices slices = codec->encode(data);
        for (auto &b : slices[3])
            b ^= 0x55;
        std::vector<std::uint8_t> out(codec->dataBytes());
        DecodeResult res = codec->decode(slices, out);
        benchmark::DoNotOptimize(res);
    }
    state.SetBytesProcessed(state.iterations() * codec->dataBytes());
}
BENCHMARK(BM_LineCodecWholePath)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
