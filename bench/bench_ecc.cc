/**
 * @file
 * ECC substrate throughput bench: encode / syndrome-screen / decode
 * MSym/s for every Reed-Solomon codec the schemes use, in the states
 * that matter (clean word, corrupted word, erasure decode), measured
 * for both the table-driven fast pipeline and the retained reference
 * implementation, so the fast path's speedup is tracked per PR.
 *
 * Output: one human line and one bench_common jsonRow per
 * (codec, impl, path).  The JSON rows carry
 *
 *  - `check`: a decode-output hash that is a pure function of the
 *    fixed iteration count and seeds -- CI diffs it across 1-vs-N
 *    thread runs (with `threads` and the timing fields normalised);
 *  - `msym_s` / `ns_word`: the throughput numbers (timing-dependent,
 *    normalised away by the CI diff, tracked via the artifact).
 *
 * ARCC_BENCH_ECC_ITERS overrides the per-path iteration budget.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arcc/ecc_scheme.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "ecc/gf256_simd.hh"
#include "ecc/lot_ecc.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_reference.hh"
#include "ecc/rs_workspace.hh"
#include "ecc/secded.hh"

using namespace arcc;
using namespace arcc::bench;

namespace
{

std::uint64_t
iterBudget()
{
    if (const char *env = std::getenv("ARCC_BENCH_ECC_ITERS"))
        return std::max<std::uint64_t>(
            1, std::strtoull(env, nullptr, 10));
    return 100000;
}

/** A scaled-down share of the budget, never zero. */
std::uint64_t
budgetShare(std::uint64_t divisor)
{
    return std::max<std::uint64_t>(1, iterBudget() / divisor);
}

/** Decode-output accumulator: order-sensitive, timing-independent. */
struct Check
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        h = (h ^ v) * 0x100000001b3ULL;
    }

    void
    mixBytes(std::span<const std::uint8_t> bytes)
    {
        for (std::uint8_t b : bytes)
            mix(b);
    }
};

/** Time `body(iters)` and emit the human + JSON rows. */
template <class Body>
void
report(const char *codec, const char *impl, const char *path,
       std::uint64_t iters, int symbols_per_word, Body &&body)
{
    Check check;
    const auto start = std::chrono::steady_clock::now();
    body(iters, check);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    const double ns_word = ns / static_cast<double>(iters);
    const double msym_s =
        symbols_per_word / ns_word * 1e3; // sym/ns -> MSym/s.

    std::printf("  %-9s %-4s %-16s %10.1f MSym/s  %8.1f ns/word\n",
                codec, impl, path, msym_s, ns_word);
    jsonRow("ecc", {
                       {"codec", std::string("\"") + codec + "\""},
                       {"impl", std::string("\"") + impl + "\""},
                       {"path", std::string("\"") + path + "\""},
                       {"iters", jsonNum(iters)},
                       {"check", jsonNum(check.h)},
                       {"msym_s", jsonNum(msym_s)},
                       {"ns_word", jsonNum(ns_word)},
                   });
}

/** One codec's full sweep, fast and reference side by side. */
void
benchCodec(const char *name, int n, int k)
{
    const ReedSolomon fast(n, k);
    const RsReference ref(n, k);
    RsWorkspace ws;
    const std::uint64_t iters = iterBudget();
    // The reference decoder is an order of magnitude slower; keep its
    // share of the runtime proportionate.
    const std::uint64_t ref_iters = budgetShare(10);

    Rng rng(42);
    std::vector<std::uint8_t> clean(n);
    for (int i = 0; i < k; ++i)
        clean[i] = static_cast<std::uint8_t>(rng.below(256));
    fast.encode(clean);
    std::vector<std::uint8_t> word = clean;
    const std::vector<int> erasures = {7};

    // --- encode -------------------------------------------------------
    report(name, "fast", "encode", iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   fast.encode(word);
                   c.mix(word[static_cast<std::size_t>(k)]);
               }
           });
    report(name, "ref", "encode", ref_iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   ref.encode(word);
                   c.mix(word[static_cast<std::size_t>(k)]);
               }
           });

    // --- clean-word syndrome screen ----------------------------------
    report(name, "fast", "syndrome_clean", iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i)
                   c.mix(fast.syndromesZero(clean) ? 1 : 0);
           });
    report(name, "ref", "syndrome_clean", ref_iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i)
                   c.mix(ref.syndromesZero(clean) ? 1 : 0);
           });

    // --- clean-word decode -------------------------------------------
    report(name, "fast", "decode_clean", iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   const RsDecodeView res = fast.decode(word, ws);
                   c.mix(static_cast<std::uint64_t>(res.status));
               }
           });
    report(name, "ref", "decode_clean", ref_iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   const DecodeResult res = ref.decode(word);
                   c.mix(static_cast<std::uint64_t>(res.status));
               }
           });

    // --- corrupted-word decode (one symbol error) --------------------
    const std::uint64_t corrupt_iters = budgetShare(5);
    report(name, "fast", "decode_1err", corrupt_iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   word = clean;
                   word[5] ^= 0x7b;
                   const RsDecodeView res = fast.decode(word, ws, 1);
                   c.mix(static_cast<std::uint64_t>(res.status));
                   c.mixBytes(word);
               }
           });
    report(name, "ref", "decode_1err", ref_iters, n,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   word = clean;
                   word[5] ^= 0x7b;
                   const DecodeResult res = ref.decode(word, 1);
                   c.mix(static_cast<std::uint64_t>(res.status));
                   c.mixBytes(word);
               }
           });

    // --- batched syndrome screen + decode ----------------------------
    // The fast pipeline runs the whole block through the SoA vector
    // kernels (one computeSyndromesSoa / decodeSoa call per pass);
    // the reference runs the same words one at a time -- the speedup
    // the scrub sweep and accessBatch see.
    {
        constexpr int kLanes = RsWorkspace::kSoaLanes;
        std::vector<std::uint8_t> block(
            static_cast<std::size_t>(kLanes) * n);
        for (int l = 0; l < kLanes; ++l) {
            std::uint8_t *w =
                block.data() + static_cast<std::size_t>(l) * n;
            for (int i = 0; i < k; ++i)
                w[i] = static_cast<std::uint8_t>(rng.below(256));
            fast.encode(std::span<std::uint8_t>(
                w, static_cast<std::size_t>(n)));
        }
        gfsimd::soaScatter(block.data(), n, n, kLanes, ws.soa.data(),
                           kLanes);
        const std::uint64_t batch_iters = budgetShare(kLanes);
        const std::uint64_t batch_ref_iters = budgetShare(kLanes * 10);
        RsLaneResult results[kLanes];

        report(name, "fast", "syndrome_batch", batch_iters, n * kLanes,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       c.mix(fast.computeSyndromesSoa(
                                 ws.soa.data(), kLanes, kLanes,
                                 ws.syndSoa.data(), ws.soaFlags.data())
                                 ? 1
                                 : 0);
                   }
               });
        report(name, "ref", "syndrome_batch", batch_ref_iters,
               n * kLanes, [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       std::uint64_t any = 0;
                       for (int l = 0; l < kLanes; ++l) {
                           const std::uint8_t *w =
                               block.data() +
                               static_cast<std::size_t>(l) * n;
                           any |= ref.syndromesZero(
                                      std::span<const std::uint8_t>(
                                          w,
                                          static_cast<std::size_t>(n)))
                                      ? 0
                                      : 1;
                       }
                       c.mix(any);
                   }
               });

        report(name, "fast", "decode_batch", batch_iters, n * kLanes,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       // One lane takes a hit; decodeSoa repairs it,
                       // so the block re-enters clean every pass.
                       ws.soa[static_cast<std::size_t>(5) * kLanes +
                              9] ^= 0x7b;
                       fast.decodeSoa(ws.soa.data(), kLanes, kLanes,
                                      ws, -1, {}, results);
                       c.mix(static_cast<std::uint64_t>(
                           results[9].status));
                   }
               });
        report(name, "ref", "decode_batch", batch_ref_iters, n * kLanes,
               [&](std::uint64_t it, Check &c) {
                   std::vector<std::uint8_t> w(
                       static_cast<std::size_t>(n));
                   for (std::uint64_t i = 0; i < it; ++i) {
                       std::uint64_t status = 0;
                       for (int l = 0; l < kLanes; ++l) {
                           const std::uint8_t *src =
                               block.data() +
                               static_cast<std::size_t>(l) * n;
                           std::copy(src, src + n, w.begin());
                           if (l == 9)
                               w[5] ^= 0x7b;
                           const DecodeResult res = ref.decode(w);
                           if (l == 9)
                               status = static_cast<std::uint64_t>(
                                   res.status);
                       }
                       c.mix(status);
                   }
               });
    }

    // --- erasure + error decode (r >= 4 codecs) ----------------------
    if (n - k >= 4) {
        report(name, "fast", "decode_erasure", corrupt_iters, n,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       word = clean;
                       word[7] = 0xaa;
                       word[20] ^= 0x31;
                       const RsDecodeView res =
                           fast.decode(word, ws, -1, erasures);
                       c.mix(static_cast<std::uint64_t>(res.status));
                       c.mixBytes(word);
                   }
               });
        report(name, "ref", "decode_erasure", ref_iters, n,
               [&](std::uint64_t it, Check &c) {
                   for (std::uint64_t i = 0; i < it; ++i) {
                       word = clean;
                       word[7] = 0xaa;
                       word[20] ^= 0x31;
                       const DecodeResult res =
                           ref.decode(word, -1, erasures);
                       c.mix(static_cast<std::uint64_t>(res.status));
                       c.mixBytes(word);
                   }
               });
    }
}

/** SECDED (the 9-device baseline the paper leaves behind). */
void
benchSecded()
{
    const std::uint64_t iters = iterBudget();
    Rng rng(43);
    const std::uint64_t data = rng.next();
    const std::uint8_t code = Secded::encode(data);

    report("secded", "fast", "encode", iters, 8,
           [&](std::uint64_t it, Check &c) {
               std::uint64_t d = data;
               for (std::uint64_t i = 0; i < it; ++i) {
                   c.mix(Secded::encode(d));
                   ++d;
               }
           });
    report("secded", "fast", "decode_1err", iters, 8,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   std::uint64_t d = data ^ (1ULL << 17);
                   std::uint8_t ck = code;
                   const Secded::Result res = Secded::decode(d, ck);
                   c.mix(d ^ static_cast<std::uint64_t>(res.status));
               }
           });
}

/** LOT-ECC encode (checksums + XOR parity). */
void
benchLot(const char *name, int data_devices, int line_bytes)
{
    const LotEcc lot(data_devices, line_bytes);
    const std::uint64_t iters = budgetShare(5);
    Rng rng(44);
    std::vector<std::uint8_t> line(line_bytes);
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.below(256));
    LotLine enc;

    report(name, "fast", "encode", iters, line_bytes,
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   lot.encodeInto(line, enc);
                   c.mix(enc.checksums[0]);
               }
           });
}

/** Full line-codec path: encode, kill a device, decode -- what one
 *  faulty-memory read costs the functional model. */
void
benchLineCodec(const char *name,
               std::unique_ptr<LineCodec> (*make)())
{
    const std::unique_ptr<LineCodec> codec = make();
    LineWorkspace ws;
    const std::uint64_t iters = budgetShare(20);
    Rng rng(45);
    std::vector<std::uint8_t> data(codec->dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    DeviceSlices slices;
    std::vector<std::uint8_t> out(codec->dataBytes());
    DecodeResult dec;

    report(name, "fast", "line_kill_path", iters, codec->dataBytes(),
           [&](std::uint64_t it, Check &c) {
               for (std::uint64_t i = 0; i < it; ++i) {
                   codec->encodeInto(data, slices, ws);
                   for (auto &b : slices[3])
                       b ^= 0x55;
                   codec->decodeInto(slices, out, {}, ws, dec);
                   c.mix(static_cast<std::uint64_t>(dec.status));
                   c.mix(static_cast<std::uint64_t>(
                       dec.symbolsCorrected));
               }
           });
}

} // anonymous namespace

int
main()
{
    std::printf("ECC codec throughput (fast = table-driven workspace "
                "pipeline, ref = retained oracle)\n");
    benchCodec("rs18_16", 18, 16);
    benchCodec("rs36_32", 36, 32);
    benchCodec("rs72_64", 72, 64);
    benchSecded();
    benchLot("lot9", 8, 64);
    benchLot("lot18", 16, 128);
    benchLineCodec("arcc_relaxed", schemes::arccRelaxed);
    benchLineCodec("arcc_upgraded", schemes::arccUpgraded);
    return 0;
}
