/**
 * @file
 * Figure 6.1: SDCs per 1000 machine-years -- simultaneous double error
 * detection (commercial SCCDCD) vs the reduced double error detection
 * of ARCC (ARCC DED), across intended lifespans and fault-rate
 * factors.  Analytic models with a boosted-rate Monte Carlo validation
 * and an empirically measured aliasing refinement.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/sdc_model.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 6.1: Reliability Comparison (SDC rates)");
    std::printf("SDC events per 1000 machine-years; machine = one "
                "72-device channel pair; 4h scrub period.\n"
                "'DED' = commercial SCCDCD (detects 2 bad symbols "
                "always);\n"
                "'ARCC DED' = reduced detection (2nd overlapping fault "
                "inside one scrub window escapes).\n\n");

    TextTable t;
    t.header({"Lifespan", "Rate", "DED (SCCDCD)", "ARCC DED",
              "ARCC DED (alias-adjusted)"});

    double alias = measureMiscorrectionRate(18, 16, 1, 2, 20000, 613);

    for (double years : {5.0, 6.0, 7.0}) {
        for (double factor : {1.0, 2.0, 4.0}) {
            SdcModelConfig base = SdcModelConfig::sccdcdMachine();
            base.rates = FaultRates::fieldStudy().scaled(factor);
            SdcModelConfig ar = SdcModelConfig::arccMachine();
            ar.rates = base.rates;

            SdcModel mbase(base);
            SdcModel mar(ar);
            double ded = mbase.sccdcdSdcPer1000MachineYears(years);
            double arcc_ded = mar.arccSdcPer1000MachineYears(years);
            t.row({TextTable::num(years, 0) + "y",
                   TextTable::num(factor, 0) + "x",
                   TextTable::sci(ded, 2), TextTable::sci(arcc_ded, 2),
                   TextTable::sci(arcc_ded * alias, 2)});
        }
    }
    t.print();

    std::printf("\nMeasured RS(18,16) double-error miscorrection "
                "(aliasing) probability: %.1f%%\n", alias * 100.0);

    // Boosted-rate Monte Carlo validation of the ARCC model.
    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    SdcModel model(cfg);
    const double boost = 2000.0;
    double mc = model.mcArccSdcEvents(7.0, boost, 500, 601);
    SdcModelConfig boosted = cfg;
    boosted.rates = cfg.rates.scaled(boost);
    double analytic = SdcModel(boosted).arccSdcEvents(7.0);
    std::printf("\nMonte Carlo validation at %gx boosted rates "
                "(events/machine over 7y):\n"
                "  simulated %.3f vs analytic %.3f  (ratio %.2f)\n",
                boost, mc, analytic, mc / analytic);

    std::printf("\nPaper's shape: 'the increase to the SDC rate of "
                "SCCDCD+ARCC over SCCDCD alone is\ninsignificant' -- "
                "both rates are tiny in absolute terms (well below one "
                "SDC per 1000\nmachine-years at every point).\n");
    return 0;
}
