/**
 * @file
 * Chapter 5.2, VECC half: access-amplification profile of VECC and of
 * ARCC applied to VECC (18-device -> 9-device relaxed ranks), plus the
 * lifetime overhead of the upgraded pages, mirroring the Figure 7.6
 * analysis for the VECC substrate.
 */

#include <cstdio>

#include "arcc/vecc.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"

using namespace arcc;

namespace
{

/** Device accesses per read/write for one geometry and fault state. */
void
profile(TextTable &t, const char *label, const VeccGeometry &geom,
        bool dead_device, double t2_hit)
{
    VeccMemory mem(geom, 256, t2_hit, 11);
    Rng rng(12);
    std::vector<std::uint8_t> line(mem.lineBytes());
    for (std::uint64_t l = 0; l < 256; ++l) {
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(l, line);
    }
    auto writes = mem.stats().deviceAccesses;
    if (dead_device)
        mem.killDevice(3);
    for (std::uint64_t l = 0; l < 256; ++l)
        mem.read(l);
    auto reads = mem.stats().deviceAccesses - writes;

    t.row({label, std::to_string(geom.devices),
           TextTable::num(static_cast<double>(reads) / 256.0, 1),
           TextTable::num(static_cast<double>(writes) / 256.0, 1),
           std::to_string(mem.stats().tier2Fetches),
           std::to_string(mem.stats().corrected)});
}

} // namespace

int
main()
{
    printBanner("Chapter 5.2: ARCC applied to VECC");
    std::printf("Device accesses per operation (256-line functional "
                "region, tier-2 LLC hit rate 50%%):\n\n");

    TextTable t;
    t.header({"Configuration", "Rank", "dev-acc/read", "dev-acc/write",
              "t2 fetches", "corrected"});
    profile(t, "VECC 18-dev, fault-free", VeccGeometry::vecc18(),
            false, 0.5);
    profile(t, "VECC 18-dev, 1 dead device", VeccGeometry::vecc18(),
            true, 0.5);
    profile(t, "ARCC+VECC relaxed 9-dev, fault-free",
            VeccGeometry::vecc9(), false, 0.5);
    profile(t, "ARCC+VECC relaxed 9-dev, 1 dead device",
            VeccGeometry::vecc9(), true, 0.5);
    t.print();

    std::printf("\nReading: fault-free VECC touches 18 devices; ARCC "
                "relaxes fault-free pages to 9-device\nranks "
                "(Chapter 5.2), halving the access cost while a dead "
                "device still corrects through\nthe virtualised "
                "tier-2 symbols at 2x cost.\n");

    // Lifetime overhead of upgraded (18-device) pages vs the 9-device
    // relaxed baseline: upgraded reads cost 2x.  Same methodology as
    // Figure 7.6 with cost factor 1 (power doubles on upgraded pages).
    printBanner("Lifetime overhead of ARCC+VECC upgrades");
    DomainGeometry geom = bench::defaultGeometry();
    PerTypeOverhead worst = bench::worstCaseOverhead(geom, 1.0);
    TextTable o;
    o.header({"Year", "1x rate", "2x rate", "4x rate"});
    std::vector<std::vector<double>> by_factor;
    for (double factor : {1.0, 2.0, 4.0}) {
        LifetimeMcConfig cfg;
        cfg.geom = geom;
        cfg.rates = FaultRates::fieldStudy().scaled(factor);
        cfg.channels = 10000;
        LifetimeMc mc(cfg);
        by_factor.push_back(mc.cumulativeOverheadByYear(worst, 1.0));
    }
    for (int y = 0; y < 7; ++y)
        o.row({std::to_string(y + 1),
               TextTable::pct(by_factor[0][y], 3),
               TextTable::pct(by_factor[1][y], 3),
               TextTable::pct(by_factor[2][y], 3)});
    o.print();
    std::printf("\nShape: worst-case upgrade overhead stays well "
                "below the ~50%% fault-free saving of\nthe 9-device "
                "relaxed mode, the same story as Figures 7.4-7.6.\n");
    return 0;
}
