/**
 * @file
 * Section 4.2.2: cost of the ARCC test-pattern scrubber.  Reproduces
 * the closed-form numbers (0.4s per pass over a 4GB / 128-bit / 667MHz
 * channel; 2.4s per six-pass scrub; 0.0167% of bandwidth at one scrub
 * every four hours) and demonstrates the functional scrubber's work on
 * a small memory with injected faults.
 */

#include <cstdio>

#include "arcc/scrubber.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner("Section 4.2.2: Memory Scrubbing Overhead");

    const double bytes = 4.0 * 1024 * 1024 * 1024;
    const double bus = 667e6 * 16.0; // 128-bit channel at 667 MT/s.
    double pass = bytes / bus;
    double scrub = Scrubber::scrubSeconds(bytes, bus);
    double frac = Scrubber::bandwidthFraction(scrub, 4.0);

    TextTable t;
    t.header({"Quantity", "Model", "Paper"});
    t.row({"One pass over 4GB channel",
           TextTable::num(pass, 2) + " s", "0.4 s"});
    t.row({"Full 6-pass ARCC scrub", TextTable::num(scrub, 2) + " s",
           "2.4 s"});
    t.row({"Bandwidth at 1 scrub / 4 h", TextTable::pct(frac, 4),
           "0.0167%"});
    t.print();

    // Functional demonstration: scrub a small memory with one device
    // fault and a hidden stuck-at fault.
    std::printf("\nFunctional scrub of a 512KB ARCC memory with one "
                "corrupt device and one hidden stuck-at cell:\n");
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(99);
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
    }
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault dead;
    dead.channel = 0;
    dead.rank = 1;
    dead.device = 6;
    dead.scope = FaultScope::Device;
    dead.kind = FaultKind::Corrupt;
    mem.injectFault(dead);

    FunctionalFault stuck;
    stuck.channel = 1;
    stuck.rank = 0;
    stuck.device = 2;
    stuck.scope = FaultScope::Row;
    stuck.bank = 0;
    stuck.row = 3;
    stuck.kind = FaultKind::StuckAt1;
    mem.injectFault(stuck);

    ScrubReport rep = scrubber.scrub(mem);
    TextTable s;
    s.header({"Scrub statistic", "Value"});
    s.row({"Lines scrubbed", std::to_string(rep.linesScrubbed)});
    s.row({"Symbols corrected", std::to_string(rep.errorsCorrected)});
    s.row({"Stuck-at-1 detections",
           std::to_string(rep.stuckAt1Found)});
    s.row({"Faulty pages found",
           std::to_string(rep.faultyPages.size())});
    s.row({"Pages upgraded", std::to_string(rep.pagesUpgraded)});
    s.row({"Upgraded fraction",
           TextTable::pct(mem.pageTable().upgradedFraction(), 2)});
    s.print();
    return 0;
}
