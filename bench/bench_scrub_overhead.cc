/**
 * @file
 * Section 4.2.2: cost of the ARCC test-pattern scrubber.  Reproduces
 * the closed-form numbers (0.4s per pass over a 4GB / 128-bit / 667MHz
 * channel; 2.4s per six-pass scrub; 0.0167% of bandwidth at one scrub
 * every four hours) and demonstrates the functional scrubber's work on
 * a small memory with injected faults.
 *
 * The functional demonstration runs on the engine-sharded
 * Scrubber::scrubParallel path, and every table is echoed as a JSON
 * row carrying the executor count: CI runs this bench at 1 and N
 * threads and diffs the rows (threads field normalised), which is how
 * the parallel scrubber's determinism is enforced end to end.
 */

#include <cstdio>

#include "arcc/scrubber.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner("Section 4.2.2: Memory Scrubbing Overhead");

    const double bytes = 4.0 * 1024 * 1024 * 1024;
    const double bus = 667e6 * 16.0; // 128-bit channel at 667 MT/s.
    double pass = bytes / bus;
    double scrub = Scrubber::scrubSeconds(bytes, bus);
    double frac = Scrubber::bandwidthFraction(scrub, 4.0);

    TextTable t;
    t.header({"Quantity", "Model", "Paper"});
    t.row({"One pass over 4GB channel",
           TextTable::num(pass, 2) + " s", "0.4 s"});
    t.row({"Full 6-pass ARCC scrub", TextTable::num(scrub, 2) + " s",
           "2.4 s"});
    t.row({"Bandwidth at 1 scrub / 4 h", TextTable::pct(frac, 4),
           "0.0167%"});
    t.print();
    bench::jsonRow("scrub_overhead_model",
                   {{"passSeconds", bench::jsonNum(pass)},
                    {"scrubSeconds", bench::jsonNum(scrub)},
                    {"bandwidthFraction", bench::jsonNum(frac)}});

    // Functional demonstration: scrub a small memory with one device
    // fault and a hidden stuck-at fault, on the sharded sweep.
    std::printf("\nFunctional scrub of a 512KB ARCC memory with one "
                "corrupt device and one hidden stuck-at cell\n"
                "(Scrubber::scrubParallel on %d executor(s)):\n",
                SimEngine::global().threads());
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(99);
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
    }
    Scrubber scrubber;
    scrubber.bootScrubParallel(mem);

    FunctionalFault dead;
    dead.channel = 0;
    dead.rank = 1;
    dead.device = 6;
    dead.scope = FaultScope::Device;
    dead.kind = FaultKind::Corrupt;
    mem.injectFault(dead);

    FunctionalFault stuck;
    stuck.channel = 1;
    stuck.rank = 0;
    stuck.device = 2;
    stuck.scope = FaultScope::Row;
    stuck.bank = 0;
    stuck.row = 3;
    stuck.kind = FaultKind::StuckAt1;
    mem.injectFault(stuck);

    ScrubReport rep = scrubber.scrubParallel(mem);
    double upgraded = mem.pageTable().upgradedFraction();
    TextTable s;
    s.header({"Scrub statistic", "Value"});
    s.row({"Lines scrubbed", std::to_string(rep.linesScrubbed)});
    s.row({"Symbols corrected", std::to_string(rep.errorsCorrected)});
    s.row({"Stuck-at-1 detections",
           std::to_string(rep.stuckAt1Found)});
    s.row({"Faulty pages found",
           std::to_string(rep.faultyPages.size())});
    s.row({"Pages upgraded", std::to_string(rep.pagesUpgraded)});
    s.row({"Upgraded fraction", TextTable::pct(upgraded, 2)});
    s.print();
    bench::jsonRow(
        "scrub_overhead_functional",
        {{"linesScrubbed", bench::jsonNum(rep.linesScrubbed)},
         {"errorsCorrected", bench::jsonNum(rep.errorsCorrected)},
         {"duesFound", bench::jsonNum(rep.duesFound)},
         {"stuckAt1Found", bench::jsonNum(rep.stuckAt1Found)},
         {"stuckAt0Found", bench::jsonNum(rep.stuckAt0Found)},
         {"faultyPages",
          bench::jsonNum(
              static_cast<std::uint64_t>(rep.faultyPages.size()))},
         {"pagesUpgraded", bench::jsonNum(rep.pagesUpgraded)},
         {"upgradedFraction", bench::jsonNum(upgraded)}});
    return 0;
}
