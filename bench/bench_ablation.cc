/**
 * @file
 * Ablation studies for the design choices the paper discusses:
 *
 *  - LLC design: the paper's paired-tag LLC vs the sectored cache it
 *    rejects (Section 4.2.3) on a low-spatial-locality mix.
 *  - Memory-controller pairing: strict-FIFO sub-line queue vs the
 *    pointer / promotion design (Section 4.2.4), under a lane fault
 *    where every access is paired.
 *  - Address mapping policy (Section 4.1 / 7.1).
 *  - Rank power-down (part of the power story).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner("Ablation studies");
    SystemConfig base = bench::systemConfig(arccConfig());
    auto lane = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Lane, base.mem);
    const WorkloadMix &pointer_mix = table73Mixes()[9];  // mcf-heavy.
    const WorkloadMix &stream_mix = table73Mixes()[0];   // spatial.

    // --- LLC design -----------------------------------------------------
    {
        TextTable t;
        t.header({"LLC design", "Mix", "IPC sum (lane fault)",
                  "LLC miss rate"});
        for (bool sectored : {false, true}) {
            for (const WorkloadMix *mix : {&pointer_mix, &stream_mix}) {
                SystemConfig cfg = base;
                cfg.sectoredLlc = sectored;
                SimResult r = simulateMix(*mix, cfg, lane);
                t.row({sectored ? "sectored" : "paired-tag (paper)",
                       mix->name, TextTable::num(r.ipcSum, 3),
                       TextTable::num(r.llcStats.missRate(), 3)});
            }
        }
        std::printf("LLC design under a lane fault (all pages "
                    "upgraded):\n");
        t.print();
        std::printf("\n");
    }

    // --- pairing policy ---------------------------------------------------
    {
        // A device fault upgrades half the pages, so paired and
        // relaxed traffic interleave -- the state where the strict
        // FIFO sub-line queue can block relaxed requests behind a
        // waiting pair and the pointer design cannot.
        auto device = PageUpgradeOracle::forScenario(
            PageUpgradeOracle::Scenario::Device, base.mem);
        TextTable t;
        t.header({"Sub-line pairing", "IPC sum (device fault)",
                  "Power mW"});
        for (auto policy : {PairingPolicy::FifoPartition,
                            PairingPolicy::Pointer}) {
            SystemConfig cfg = base;
            cfg.ctrl.pairing = policy;
            SimResult r = simulateMix(pointer_mix, cfg, device);
            t.row({policy == PairingPolicy::FifoPartition
                       ? "strict FIFO partition"
                       : "pointer / promotion",
                   TextTable::num(r.ipcSum, 3),
                   TextTable::num(r.avgPowerMw, 0)});
        }
        std::printf("Memory-controller pairing designs "
                    "(Section 4.2.4), %s with half the pages "
                    "upgraded:\n", pointer_mix.name.c_str());
        t.print();
        std::printf("(under FCFS scheduling the two designs differ "
                    "only marginally, which is why the paper\n"
                    "offers both as acceptable implementations)\n\n");
    }

    // --- mapping policy ---------------------------------------------------
    {
        TextTable t;
        t.header({"Address map", "IPC sum", "Power mW"});
        for (auto [policy, name] :
             {std::pair{MapPolicy::HiPerf, "high performance (paper)"},
              {MapPolicy::ClosePage, "close page"},
              {MapPolicy::Base, "base"}}) {
            SystemConfig cfg = base;
            cfg.mapPolicy = policy;
            // The Base map keeps adjacent lines in one channel, so
            // paired upgrades are impossible; run fault-free.
            SimResult r = simulateMix(stream_mix, cfg, {});
            t.row({name, TextTable::num(r.ipcSum, 3),
                   TextTable::num(r.avgPowerMw, 0)});
        }
        std::printf("Address mapping policy (fault-free, %s):\n",
                    stream_mix.name.c_str());
        t.print();
        std::printf("\n");
    }

    // --- power-down ---------------------------------------------------------
    {
        TextTable t;
        t.header({"Rank power-down", "Baseline mW", "ARCC mW",
                  "ARCC saving"});
        for (bool pd : {true, false}) {
            SystemConfig bc = bench::systemConfig(baselineConfig());
            SystemConfig ac = base;
            bc.ctrl.enablePowerDown = pd;
            ac.ctrl.enablePowerDown = pd;
            SimResult rb = simulateMix(stream_mix, bc, {});
            SimResult ra = simulateMix(stream_mix, ac, {});
            t.row({pd ? "enabled" : "disabled",
                   TextTable::num(rb.avgPowerMw, 0),
                   TextTable::num(ra.avgPowerMw, 0),
                   TextTable::pct(1.0 - ra.avgPowerMw /
                                            rb.avgPowerMw)});
        }
        std::printf("Rank power-down contribution to the power story "
                    "(%s):\n", stream_mix.name.c_str());
        t.print();
    }
    return 0;
}
