/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Every bench prints the rows/series of one paper table or figure.
 * The simulated instruction budget scales with ARCC_BENCH_INSTRS
 * (default one million per core, which reproduces the shapes in a few
 * seconds per figure; the paper used 2 billion cycles in M5).
 */

#ifndef ARCC_BENCH_BENCH_COMMON_HH
#define ARCC_BENCH_BENCH_COMMON_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/parse_num.hh"
#include "common/table.hh"
#include "cpu/system_sim.hh"
#include "engine/sim_engine.hh"
#include "faults/fault_model.hh"
#include "faults/lifetime_mc.hh"

namespace arcc::bench
{

/** Per-core instruction budget (env ARCC_BENCH_INSTRS overrides;
 *  a set-but-unparseable value is fatal, never a silent zero). */
inline std::uint64_t
instrBudget()
{
    return envU64("ARCC_BENCH_INSTRS", 1'000'000);
}

/** Pre-format a counter / double for a jsonRow value. */
inline std::string
jsonNum(std::uint64_t v)
{
    return std::to_string(v);
}

inline std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Version of the jsonRow schema.  Bump when the row layout changes
 *  (fields added / removed / renamed) so downstream consumers can
 *  reject rows they do not understand. */
inline constexpr std::uint32_t kBenchSchemaVersion = 2;

/**
 * Stable hash of what shaped a row: schema version, bench family,
 * field-name list, and the instruction budget.  Deliberately excludes
 * the thread count and every field *value*, so CI's 1-vs-N-thread and
 * scalar-vs-SIMD diff legs see identical hashes and any mismatch
 * flags a real schema drift.
 */
inline std::uint64_t
rowConfigHash(const std::string &bench,
              const std::vector<std::pair<std::string, std::string>>
                  &fields)
{
    auto fold = [](std::uint64_t h, std::uint64_t v) {
        return Rng::mix64(h ^ v);
    };
    auto foldString = [&](std::uint64_t h, const std::string &s) {
        h = fold(h, s.size());
        for (char c : s)
            h = fold(h, static_cast<std::uint8_t>(c));
        return h;
    };
    std::uint64_t h = fold(0x524f5748ULL, kBenchSchemaVersion);
    h = foldString(h, bench);
    h = fold(h, instrBudget());
    for (const auto &[key, value] : fields)
        h = foldString(h, key);
    return h;
}

/**
 * Emit one machine-readable JSON line alongside the human tables.
 *
 * Every row carries the executor count of the global engine
 * (ARCC_THREADS / the hardware), the schema version, and the row's
 * config hash.  CI's 1-vs-N-thread diff normalises the "threads"
 * field and requires every other value to be bit-identical -- the
 * bench-level enforcement of the engine's determinism contract.
 */
inline void
jsonRow(const std::string &bench,
        const std::vector<std::pair<std::string, std::string>> &fields)
{
    char hash[24];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(
                      rowConfigHash(bench, fields)));
    std::string out = "{\"bench\":\"" + bench +
                      "\",\"schema_version\":" +
                      std::to_string(kBenchSchemaVersion) +
                      ",\"config_hash\":\"" + hash +
                      "\",\"threads\":" +
                      std::to_string(SimEngine::global().threads());
    for (const auto &[key, value] : fields)
        out += ",\"" + key + "\":" + value;
    out += "}";
    std::printf("%s\n", out.c_str());
}

/** Standard simulation config for a memory configuration. */
inline SystemConfig
systemConfig(const MemoryConfig &mem)
{
    SystemConfig cfg;
    cfg.mem = mem;
    cfg.instrsPerCore = instrBudget();
    cfg.seed = 20130223; // HPCA 2013.
    return cfg;
}

/** The Table 7.4 fault scenarios in paper order. */
inline const std::vector<PageUpgradeOracle::Scenario> &
faultScenarios()
{
    static const std::vector<PageUpgradeOracle::Scenario> s = {
        PageUpgradeOracle::Scenario::Lane,
        PageUpgradeOracle::Scenario::Device,
        PageUpgradeOracle::Scenario::Bank,
        PageUpgradeOracle::Scenario::Column,
    };
    return s;
}

/** Power / performance overheads of one fault scenario vs fault-free. */
struct ScenarioOverheads
{
    /** Fractional power increase per scenario (paper Figure 7.2). */
    std::array<double, 4> power{};
    /** Fractional IPC decrease per scenario (paper Figure 7.3). */
    std::array<double, 4> perf{};
};

/**
 * Measure the mix-averaged overhead of each Table 7.4 scenario on the
 * ARCC configuration (methodology step 1 of Section 7.1).
 *
 * The whole (mix x {clean, 4 scenarios}) grid is submitted to the
 * SimEngine as one simulateMixBatch and reduced in mix order, so the
 * averages are bit-identical at any thread count.
 *
 * @param mixes how many of the 12 mixes to average (all by default).
 */
inline ScenarioOverheads
measureScenarioOverheads(int mixes = 12)
{
    ARCC_ASSERT(mixes >= 1 &&
                mixes <= static_cast<int>(table73Mixes().size()));
    const SystemConfig cfg = systemConfig(arccConfig());
    const std::size_t scenarios = faultScenarios().size();
    // ScenarioOverheads and the sums below are fixed-size arrays.
    ARCC_ASSERT(scenarios == 4);
    const std::size_t per_mix = scenarios + 1; // clean job first.

    std::vector<MixJob> jobs;
    jobs.reserve(mixes * per_mix);
    for (int m = 0; m < mixes; ++m) {
        const WorkloadMix &mix = table73Mixes()[m];
        jobs.push_back({mix, cfg, {}});
        for (std::size_t s = 0; s < scenarios; ++s)
            jobs.push_back({mix, cfg,
                            PageUpgradeOracle::forScenario(
                                faultScenarios()[s], cfg.mem)});
    }
    std::vector<SimResult> results = simulateMixBatch(jobs);

    ScenarioOverheads out;
    std::array<double, 4> power_sum{};
    std::array<double, 4> perf_sum{};
    for (int m = 0; m < mixes; ++m) {
        const SimResult &clean = results[m * per_mix];
        for (std::size_t s = 0; s < scenarios; ++s) {
            const SimResult &r = results[m * per_mix + 1 + s];
            power_sum[s] += r.avgPowerMw / clean.avgPowerMw - 1.0;
            perf_sum[s] += 1.0 - r.ipcSum / clean.ipcSum;
        }
    }
    for (std::size_t s = 0; s < 4; ++s) {
        out.power[s] = power_sum[s] / mixes;
        out.perf[s] = perf_sum[s] / mixes;
    }
    return out;
}

/**
 * Map measured scenario overheads onto the fault taxonomy for the
 * lifetime Monte Carlo (Figures 7.4 / 7.5).  Row / word / bit faults
 * upgrade a negligible number of pages, so their overhead is ~0.
 */
inline PerTypeOverhead
toPerTypeOverhead(const std::array<double, 4> &scenario)
{
    PerTypeOverhead o{};
    o[static_cast<int>(FaultType::Lane)] = scenario[0];
    o[static_cast<int>(FaultType::Device)] = scenario[1];
    o[static_cast<int>(FaultType::Bank)] = scenario[2];
    o[static_cast<int>(FaultType::Column)] = scenario[3];
    return o;
}

/** Worst-case-estimate overhead: the upgraded page fraction itself. */
inline PerTypeOverhead
worstCaseOverhead(const DomainGeometry &geom, double cost_factor)
{
    PerTypeOverhead o{};
    for (FaultType t : allFaultTypes())
        o[static_cast<int>(t)] =
            cost_factor * geom.pageFraction(t);
    return o;
}

/** Default reliability-domain geometry (72 devices, 4 GB). */
inline DomainGeometry
defaultGeometry()
{
    DomainGeometry g;
    g.ranks = 2;
    g.devicesPerRank = 36;
    g.banksPerDevice = 8;
    g.pagesPerRow = 2;
    g.pages = 1048576;
    return g;
}

} // namespace arcc::bench

#endif // ARCC_BENCH_BENCH_COMMON_HH
