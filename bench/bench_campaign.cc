/**
 * @file
 * Campaign-driver bench: fleet trial throughput with and without the
 * sealed-record checkpoint log, the checkpoint overhead that implies,
 * and an in-process interrupt/resume equality check.
 *
 * The digest and every counter are pure functions of the spec -- CI
 * diffs the JSON across 1-vs-N-thread legs with the "threads" field
 * and the timing fields (trials_per_sec, ckpt_trials_per_sec,
 * ckpt_overhead_pct, workers_trials_per_sec) normalised; everything
 * else must be bit-identical.
 *
 * The workers leg runs the same fleet through a WorkerPlan split
 * (each worker slice sequentially in-process, then mergeCampaigns)
 * and asserts the merged digest equals the single-run digest -- the
 * scale-out exactness contract, measured rather than assumed.
 *
 * ARCC_BENCH_CAMPAIGN_CHANNELS overrides the fleet size (default
 * 8192 channel-lifetimes); ARCC_BENCH_CAMPAIGN_WORKERS the worker
 * split (default 4).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "campaign/campaign.hh"
#include "common/table.hh"

using namespace arcc;
using namespace arcc::bench;

namespace
{

std::uint64_t
channelBudget()
{
    if (const char *env =
            std::getenv("ARCC_BENCH_CAMPAIGN_CHANNELS"))
        return std::max<std::uint64_t>(
            1, std::strtoull(env, nullptr, 10));
    return 8192;
}

std::uint32_t
workerBudget()
{
    if (const char *env = std::getenv("ARCC_BENCH_CAMPAIGN_WORKERS"))
        return std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::strtoul(env, nullptr, 10)));
    return 4;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
jsonHex(std::uint64_t v)
{
    return "\"" + hex(v) + "\"";
}

} // anonymous namespace

int
main()
{
    CampaignSpec spec;
    spec.channels = channelBudget();
    spec.epochTrials = 512;
    spec.seed = 20130223; // HPCA 2013.

    printBanner("Fleet campaign driver");
    std::printf("fleet: %llu channels x %.1f years, boost %.0fx, "
                "%d-device groups, epoch %llu, config %016llx\n\n",
                static_cast<unsigned long long>(spec.channels),
                spec.years, spec.rateBoost, spec.devicesPerGroup,
                static_cast<unsigned long long>(spec.epochTrials),
                static_cast<unsigned long long>(spec.configHash()));

    CampaignDriver driver(spec);
    const std::string ckpt =
        (std::filesystem::temp_directory_path() /
         "arcc_bench_campaign.ckpt").string();
    std::filesystem::remove(ckpt);

    // Leg 1: uninterrupted, no checkpoint.
    auto t0 = std::chrono::steady_clock::now();
    CampaignRunResult plain = driver.run();
    auto t1 = std::chrono::steady_clock::now();

    // Leg 2: same campaign with a sealed record after every epoch.
    CampaignRunOptions with_ckpt;
    with_ckpt.checkpointPath = ckpt;
    auto t2 = std::chrono::steady_clock::now();
    CampaignRunResult checked = driver.run(with_ckpt);
    auto t3 = std::chrono::steady_clock::now();

    // Leg 3: interrupt halfway, then resume -- digests must agree
    // with the uninterrupted run's.
    std::filesystem::remove(ckpt);
    CampaignRunOptions half = with_ckpt;
    half.maxEpochs = (spec.epochCount() + 1) / 2;
    CampaignRunResult first = driver.run(half);
    CampaignRunResult resumed = driver.run(with_ckpt);
    std::filesystem::remove(ckpt);

    // Leg 4: the scale-out axis -- split the fleet across a worker
    // plan, run every slice (sequentially, so the rate is comparable
    // to the plain leg), and fold with mergeCampaigns.
    const std::uint32_t workers = workerBudget();
    const WorkerPlan plan(spec, workers);
    std::vector<CampaignWorkerSlice> slices;
    slices.reserve(workers);
    auto t4 = std::chrono::steady_clock::now();
    for (std::uint32_t id = 0; id < workers; ++id)
        slices.push_back(workerSlice(spec, plan, id,
                                     driver.runWorker(plan, id)));
    CampaignRunResult merged =
        mergeCampaigns(spec, std::move(slices));
    auto t5 = std::chrono::steady_clock::now();

    const double plain_s = seconds(t0, t1);
    const double ckpt_s = seconds(t2, t3);
    const double plain_rate =
        static_cast<double>(spec.channels) / plain_s;
    const double ckpt_rate =
        static_cast<double>(spec.channels) / ckpt_s;
    const double overhead_pct =
        (ckpt_s / plain_s - 1.0) * 100.0;
    const double workers_s = seconds(t4, t5);
    const double workers_rate =
        static_cast<double>(spec.channels) / workers_s;
    const bool merge_match =
        merged.digest(spec) == plain.digest(spec);
    const bool digests_agree =
        plain.digest(spec) == checked.digest(spec) &&
        plain.digest(spec) == resumed.digest(spec) &&
        merge_match &&
        first.interrupted && resumed.resumedFromTrial > 0;

    const CampaignAggregate &agg = plain.aggregate;
    TextTable table;
    table.header({"leg", "trials", "epochs", "trials/s",
                  "digest"});
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f", plain_rate);
    table.row({"plain", std::to_string(agg.trials),
               std::to_string(plain.epochsRun), rate,
               hex(plain.digest(spec))});
    std::snprintf(rate, sizeof rate, "%.0f", ckpt_rate);
    table.row({"checkpointed", std::to_string(checked.aggregate.trials),
               std::to_string(checked.epochsRun), rate,
               hex(checked.digest(spec))});
    table.row({"kill+resume", std::to_string(resumed.aggregate.trials),
               std::to_string(first.epochsRun + resumed.epochsRun),
               "-", hex(resumed.digest(spec))});
    std::snprintf(rate, sizeof rate, "%.0f", workers_rate);
    table.row({std::to_string(workers) + " workers+merge",
               std::to_string(merged.aggregate.trials), "-", rate,
               hex(merged.digest(spec))});
    table.print();
    std::printf("\ncheckpoint overhead: %.1f%%  resume equality: %s\n",
                overhead_pct, digests_agree ? "ok" : "MISMATCH");

    jsonRow("campaign",
            {{"channels", jsonNum(spec.channels)},
             {"epoch_trials", jsonNum(spec.epochTrials)},
             {"faults", jsonNum(agg.faultsSampled)},
             {"trials_with_fault", jsonNum(agg.trialsWithFault)},
             {"sdc_candidates", jsonNum(agg.sdcCandidates)},
             {"due_candidates", jsonNum(agg.dueCandidates)},
             {"affected_mean", jsonNum(agg.meanAffected())},
             {"affected_p99", jsonNum(agg.affectedHist.quantile(0.99))},
             {"digest", jsonHex(plain.digest(spec))},
             {"resume_digest_match",
              digests_agree ? "true" : "false"},
             {"trials_per_sec", jsonNum(plain_rate)},
             {"ckpt_trials_per_sec", jsonNum(ckpt_rate)},
             {"ckpt_overhead_pct", jsonNum(overhead_pct)},
             {"workers",
              jsonNum(static_cast<std::uint64_t>(workers))},
             {"merge_digest_match", merge_match ? "true" : "false"},
             {"workers_trials_per_sec", jsonNum(workers_rate)}});

    return digests_agree ? 0 : 1;
}
