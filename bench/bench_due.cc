/**
 * @file
 * Section 6.1 (DUE rates) and the Chapter 5.2 motivation for double
 * chip sparing.
 *
 * Two claims are reproduced:
 *
 *  1. **ARCC does not degrade the DUE rate** (Section 6.1): both the
 *     commercial baseline and ARCC turn a second overlapping fault
 *     into a detectable uncorrectable error; the DUE structure --
 *     overlapping fault pairs over the machine's lifetime -- is the
 *     same for both, so the model yields identical values by
 *     construction.  We print both geometries' numbers.
 *
 *  2. **Double chip sparing slashes the DUE rate** (the "17X" the
 *     paper cites from HP when motivating ARCC+LOT-ECC): with sparing,
 *     an overlapping pair is only uncorrectable when the second fault
 *     lands *before the first is detected and remapped* -- a scrub
 *     window, not a lifetime.  The ratio of the two models is the
 *     sparing benefit.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "reliability/sdc_model.hh"

using namespace arcc;

int
main()
{
    printBanner("Section 6.1: DUE rates and the chip-sparing benefit");

    TextTable t;
    t.header({"Rate", "Lifespan", "SCC DUE /1000 MY",
              "DCS DUE /1000 MY", "sparing benefit"});
    for (double factor : {1.0, 2.0, 4.0}) {
        for (double years : {5.0, 7.0}) {
            SdcModelConfig cfg = SdcModelConfig::sccdcdMachine();
            cfg.rates = FaultRates::fieldStudy().scaled(factor);
            SdcModel m(cfg);
            // Single chipkill correct: any overlapping pair over the
            // lifetime is uncorrectable -> DUE.
            double scc = m.dueEvents(years) / years * 1000.0;
            // Double chip sparing: the pair is only fatal inside the
            // detection window, which is the same mathematical object
            // as the ARCC-DED SDC structure.
            double dcs = m.arccSdcEvents(years) / years * 1000.0;
            t.row({TextTable::num(factor, 0) + "x",
                   TextTable::num(years, 0) + "y",
                   TextTable::sci(scc, 2), TextTable::sci(dcs, 2),
                   TextTable::num(scc / dcs, 0) + "x"});
        }
    }
    t.print();

    std::printf("\nSection 6.1 claims, checked by construction:\n");
    SdcModel arcc_m(SdcModelConfig::arccMachine());
    SdcModel base_m(SdcModelConfig::sccdcdMachine());
    std::printf("  SCCDCD DUE (72 devices as 2x36): %.3e per machine "
                "over 7y\n", base_m.dueEvents(7.0));
    std::printf("  ARCC   DUE (72 devices as 4x18): %.3e per machine "
                "over 7y\n", arcc_m.dueEvents(7.0));
    std::printf("  (the ARCC grouping has *fewer* devices per "
                "codeword, so its raw pair-overlap DUE rate is\n"
                "   lower; the paper's claim -- no degradation -- "
                "holds with margin)\n");
    std::printf("\nThe sparing-benefit column is the model's version "
                "of the 17X DUE reduction the paper\ncites when "
                "motivating ARCC+LOT-ECC (Chapter 5.2): the exact "
                "factor depends on the scrub\nperiod (%g h here) "
                "relative to the machine lifetime.\n", 4.0);
    return 0;
}
