/**
 * @file
 * Figure 7.2: power consumption of the ARCC memory system in the
 * presence of one device-level fault, normalised to the fault-free
 * system, per mix and per fault type (Table 7.4 upgrade fractions),
 * with the worst-case estimate (1 + upgraded fraction).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner(
        "Figure 7.2: Power Consumption of a Memory System with Fault");
    std::printf("ARCC power with one fault, normalised to fault-free "
                "(1.00 = no overhead).\n\n");

    SystemConfig cfg = bench::systemConfig(arccConfig());
    const auto &scenarios = bench::faultScenarios();

    TextTable t;
    t.header({"Mix", "1 lane", "1 device", "1 subbank", "1 column"});

    std::array<RunningStat, 4> per_scenario;
    for (const WorkloadMix &mix : table73Mixes()) {
        SimResult clean = simulateMix(mix, cfg, {});
        std::vector<std::string> row = {mix.name};
        std::vector<std::pair<std::string, std::string>> fields = {
            {"mix", "\"" + mix.name + "\""}};
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            auto oracle =
                PageUpgradeOracle::forScenario(scenarios[s], cfg.mem);
            SimResult r = simulateMix(mix, cfg, oracle);
            double norm = r.avgPowerMw / clean.avgPowerMw;
            per_scenario[s].add(norm);
            row.push_back(TextTable::num(norm, 3));
            fields.emplace_back(
                "norm_power_" + std::to_string(s),
                bench::jsonNum(norm));
        }
        t.row(row);
        bench::jsonRow("fig7_2", fields);
    }
    {
        std::vector<std::string> avg = {"Average"};
        for (auto &st : per_scenario)
            avg.push_back(TextTable::num(st.mean(), 3));
        t.row(avg);
    }
    {
        // Worst-case estimate: every upgraded access costs double and
        // the second sub-line is never useful -> power multiplier is
        // 1 + fraction of pages upgraded.
        std::vector<std::string> wc = {"worst case est."};
        for (auto s : scenarios) {
            auto oracle = PageUpgradeOracle::forScenario(s, cfg.mem);
            wc.push_back(
                TextTable::num(1.0 + oracle.expectedFraction(), 3));
        }
        t.row(wc);
    }
    t.print();

    std::printf("\nShape checks (paper Section 7.2):\n");
    bool ordered = per_scenario[0].mean() >= per_scenario[1].mean() &&
                   per_scenario[1].mean() >= per_scenario[2].mean() &&
                   per_scenario[2].mean() >= per_scenario[3].mean();
    std::printf("  lane >= device >= subbank >= column: %s\n",
                ordered ? "yes" : "NO");
    std::printf("  measured lane overhead (%.1f%%) below worst-case "
                "estimate (100%%): %s\n",
                (per_scenario[0].mean() - 1.0) * 100.0,
                per_scenario[0].mean() < 2.0 ? "yes" : "NO");
    return 0;
}
