/**
 * @file
 * Figure 7.1: fault-free DRAM power and performance of ARCC applied to
 * commercial chipkill correct, relative to the 36-device baseline,
 * for the 12 mixes of Table 7.3.  Paper: -36.7% power, +5.9%
 * performance on average.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 7.1: Power and Performance Improvements");
    std::printf("ARCC (2ch x 2rk x 18dev x8) vs Baseline "
                "(2ch x 1rk x 36dev x4), no faults.\n"
                "Performance = sum of per-core IPCs (the paper's "
                "metric).  %llu instrs/core.\n\n",
                static_cast<unsigned long long>(bench::instrBudget()));

    SystemConfig base_cfg = bench::systemConfig(baselineConfig());
    SystemConfig arcc_cfg = bench::systemConfig(arccConfig());

    TextTable t;
    t.header({"Mix", "Base mW", "ARCC mW", "Power reduction",
              "Base IPC", "ARCC IPC", "Perf improvement"});

    RunningStat power_red;
    RunningStat perf_imp;
    for (const WorkloadMix &mix : table73Mixes()) {
        SimResult rb = simulateMix(mix, base_cfg, {});
        SimResult ra = simulateMix(mix, arcc_cfg, {});
        double red = 1.0 - ra.avgPowerMw / rb.avgPowerMw;
        double imp = ra.ipcSum / rb.ipcSum - 1.0;
        power_red.add(red);
        perf_imp.add(imp);
        t.row({mix.name, TextTable::num(rb.avgPowerMw, 0),
               TextTable::num(ra.avgPowerMw, 0), TextTable::pct(red),
               TextTable::num(rb.ipcSum, 2),
               TextTable::num(ra.ipcSum, 2), TextTable::pct(imp)});
        bench::jsonRow("fig7_1",
                       {{"mix", "\"" + mix.name + "\""},
                        {"base_mw", bench::jsonNum(rb.avgPowerMw)},
                        {"arcc_mw", bench::jsonNum(ra.avgPowerMw)},
                        {"base_ipc", bench::jsonNum(rb.ipcSum)},
                        {"arcc_ipc", bench::jsonNum(ra.ipcSum)}});
    }
    t.row({"Average", "", "", TextTable::pct(power_red.mean()), "", "",
           TextTable::pct(perf_imp.mean())});
    t.print();
    bench::jsonRow("fig7_1_avg",
                   {{"power_reduction",
                     bench::jsonNum(power_red.mean())},
                    {"perf_improvement",
                     bench::jsonNum(perf_imp.mean())}});

    std::printf("\nPaper: power -36.7%% avg (uniform across mixes), "
                "performance +5.9%% avg (varies by mix).\n"
                "Measured: power %s avg, performance %s avg.\n",
                TextTable::pct(power_red.mean()).c_str(),
                TextTable::pct(perf_imp.mean()).c_str());
    std::printf("Shape check: power reduction uniform (stddev %s), "
                "every mix saves >25%%: %s\n",
                TextTable::pct(power_red.stddev()).c_str(),
                power_red.min() > 0.25 ? "yes" : "NO");
    return 0;
}
