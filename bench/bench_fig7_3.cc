/**
 * @file
 * Figure 7.3: performance (sum of IPCs) of the ARCC memory system in
 * the presence of one device-level fault, normalised to fault-free.
 * Mixes with spatial locality benefit from the implicit 128B prefetch;
 * low-locality mixes degrade.  Worst case (no locality, bandwidth
 * bound) is -50% under a lane fault.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner(
        "Figure 7.3: Performance of a Memory System with Fault");
    std::printf("ARCC IPC with one fault, normalised to fault-free "
                "(>1.00 = the paired fetch acts as a prefetch).\n\n");

    SystemConfig cfg = bench::systemConfig(arccConfig());
    const auto &scenarios = bench::faultScenarios();

    TextTable t;
    t.header({"Mix", "1 lane", "1 device", "1 subbank", "1 column"});

    std::array<RunningStat, 4> per_scenario;
    int improved = 0;
    int degraded = 0;
    for (const WorkloadMix &mix : table73Mixes()) {
        SimResult clean = simulateMix(mix, cfg, {});
        std::vector<std::string> row = {mix.name};
        std::vector<std::pair<std::string, std::string>> fields = {
            {"mix", "\"" + mix.name + "\""}};
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            auto oracle =
                PageUpgradeOracle::forScenario(scenarios[s], cfg.mem);
            SimResult r = simulateMix(mix, cfg, oracle);
            double norm = r.ipcSum / clean.ipcSum;
            per_scenario[s].add(norm);
            if (s == 0) {
                if (norm > 1.005)
                    ++improved;
                if (norm < 0.995)
                    ++degraded;
            }
            row.push_back(TextTable::num(norm, 3));
            fields.emplace_back("norm_ipc_" + std::to_string(s),
                                bench::jsonNum(norm));
        }
        t.row(row);
        bench::jsonRow("fig7_3", fields);
    }
    {
        std::vector<std::string> avg = {"Average"};
        for (auto &st : per_scenario)
            avg.push_back(TextTable::num(st.mean(), 3));
        t.row(avg);
    }
    {
        // Worst case: no spatial locality and bandwidth-bound -- an
        // upgraded access consumes two bus slots for one useful line,
        // so throughput scales by 1/(1+f).
        std::vector<std::string> wc = {"worst case est."};
        for (auto s : scenarios) {
            auto oracle = PageUpgradeOracle::forScenario(s, cfg.mem);
            double f = oracle.expectedFraction();
            wc.push_back(TextTable::num(1.0 / (1.0 + f), 3));
        }
        t.row(wc);
    }
    t.print();

    std::printf("\nShape checks (paper Section 7.2):\n");
    std::printf("  some mixes improve under a lane fault (prefetch "
                "effect): %s (%d of 12)\n",
                improved > 0 ? "yes" : "NO", improved);
    std::printf("  some mixes degrade under a lane fault: %s (%d of "
                "12)\n",
                degraded > 0 ? "yes" : "NO", degraded);
    std::printf("  average degradation is negligible (paper: "
                "'negligible performance degradation on average'): "
                "avg lane norm %.3f\n",
                per_scenario[0].mean());
    std::printf("  worst-case estimate for a lane fault is -50%% "
                "(0.500): printed above.\n");
    return 0;
}
