/**
 * @file
 * Trace-replay bench: stream binary trace workloads through the
 * channel-sharded system simulator at 2, 4, and 8 channels.
 *
 * Captures the Table 7.3 Mix9 streams once into binary trace files
 * (deterministic: fixed seed), then replays them via TraceStream --
 * O(chunk) resident memory -- through simulateStreams on each channel
 * width.  The JSON rows track the IPC / power / traffic of each width
 * per PR, and CI's 1-vs-N-thread diff enforces the determinism
 * contract over the widened shard fan (at 8 channels the back-end
 * runs 8 shards, the widest in the tree).
 *
 * `replay_maccess_s` (wall-clock trace throughput) is normalised away
 * by the CI diff like bench_ecc's msym_s.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "cpu/trace.hh"
#include "dram/channel_shard.hh"

using namespace arcc;

namespace
{

/** Capture one synthetic core straight into a binary trace file. */
std::string
captureCore(const std::filesystem::path &dir, const SystemConfig &cfg,
            const std::string &bench, int core)
{
    AddressMap map(cfg.mem, cfg.mapPolicy);
    std::string path =
        (dir / (bench + "." + std::to_string(core) + ".bin")).string();
    captureSyntheticTrace(bench, map.capacity(), core,
                          mixCoreSeed(cfg.seed, core),
                          cfg.instrsPerCore, path);
    return path;
}

} // namespace

int
main()
{
    printBanner("Trace replay across the channel shard fan");

    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = bench::instrBudget();
    cfg.seed = 20130223;
    const WorkloadMix &mix = table73Mixes()[8];

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("arcc_bench_trace." + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);

    std::vector<std::string> bins;
    std::uint64_t total_records = 0;
    for (int core = 0; core < cfg.cores; ++core) {
        bins.push_back(
            captureCore(dir, cfg, mix.benchmarks[core], core));
        total_records +=
            (std::filesystem::file_size(bins.back()) -
             sizeof kTraceMagic) / kTraceRecordBytes;
    }
    std::printf("captured %s: %llu accesses over %d binary traces, "
                "%llu instrs/core\n\n",
                mix.name.c_str(),
                static_cast<unsigned long long>(total_records),
                cfg.cores,
                static_cast<unsigned long long>(cfg.instrsPerCore));

    TextTable t;
    t.header({"Channels", "Shards", "IPC sum", "DRAM mW", "Mem reads",
              "Replay Macc/s"});
    for (int channels : {2, 4, 8}) {
        SystemConfig ccfg = cfg;
        ccfg.mem = withChannels(cfg.mem, channels);
        AddressMap map(ccfg.mem, ccfg.mapPolicy);
        ChannelShardPlan plan(map, /*pairable=*/false);

        std::vector<StreamSpec> streams;
        for (int core = 0; core < ccfg.cores; ++core)
            streams.push_back(traceStreamSpec(
                bins[core],
                benchmarkProfile(mix.benchmarks[core]).baseIpc));

        auto start = std::chrono::steady_clock::now();
        SimResult r = simulateStreams(std::move(streams), ccfg, {});
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        std::uint64_t laps = 0;
        for (const CoreResult &core : r.cores)
            laps += core.traceLaps;
        double maccess_s =
            static_cast<double>(r.llcStats.hits + r.llcStats.misses) /
            secs / 1e6;

        t.row({std::to_string(channels),
               std::to_string(plan.groups()),
               TextTable::num(r.ipcSum, 3),
               TextTable::num(r.avgPowerMw, 0),
               std::to_string(r.memReads),
               TextTable::num(maccess_s, 2)});
        bench::jsonRow(
            "trace_replay",
            {{"channels", bench::jsonNum(
                              static_cast<std::uint64_t>(channels))},
             {"shards", bench::jsonNum(static_cast<std::uint64_t>(
                            plan.groups()))},
             {"ipc_sum", bench::jsonNum(r.ipcSum)},
             {"avg_mw", bench::jsonNum(r.avgPowerMw)},
             {"elapsed_ns", bench::jsonNum(r.elapsedNs)},
             {"mem_reads", bench::jsonNum(r.memReads)},
             {"mem_writes", bench::jsonNum(r.memWrites)},
             {"trace_laps", bench::jsonNum(laps)},
             {"replay_maccess_s", bench::jsonNum(maccess_s)}});
    }
    t.print();
    std::printf("\nEvery row is bit-identical at any ARCC_THREADS; "
                "only replay_maccess_s may vary.\n");

    std::filesystem::remove_all(dir);
    return 0;
}
