/**
 * @file
 * Chapter 3 motivation: halving the rank size (36 -> 18 devices, same
 * 12.5% storage overhead, 2 check symbols instead of 4) cuts memory
 * power by ~36.7% on quad-core multiprogrammed SPEC workloads -- at
 * the cost of single instead of double symbol detection.  This bench
 * regenerates the motivational comparison plus the per-access energy
 * decomposition behind it.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace arcc;

int
main()
{
    printBanner("Chapter 3 Motivation: rank size 18 vs 36");

    // Per-access dynamic energy decomposition.
    MemoryConfig base = baselineConfig();
    MemoryConfig ar = arccConfig();
    auto per_access = [](const MemoryConfig &c) {
        return c.devicesPerAccess * (c.device.actPreEnergy() +
                                     c.device.readBurstEnergy());
    };
    TextTable e;
    e.header({"Config", "Devices/access", "ACT+PRE nJ/dev",
              "RD burst nJ/dev", "nJ per 64B read"});
    e.row({"36-device rank (x4)", "36",
           TextTable::num(base.device.actPreEnergy(), 2),
           TextTable::num(base.device.readBurstEnergy(), 2),
           TextTable::num(per_access(base), 1)});
    e.row({"18-device rank (x8)", "18",
           TextTable::num(ar.device.actPreEnergy(), 2),
           TextTable::num(ar.device.readBurstEnergy(), 2),
           TextTable::num(per_access(ar), 1)});
    e.print();
    std::printf("\nDynamic energy ratio per access: %.2f\n",
                per_access(ar) / per_access(base));

    // Whole-system measurement across the 12 mixes.
    SystemConfig bc = bench::systemConfig(base);
    SystemConfig ac = bench::systemConfig(ar);
    RunningStat saving;
    for (const WorkloadMix &mix : table73Mixes()) {
        SimResult rb = simulateMix(mix, bc, {});
        SimResult ra = simulateMix(mix, ac, {});
        saving.add(1.0 - ra.avgPowerMw / rb.avgPowerMw);
    }
    std::printf("\nMeasured average memory power reduction across the "
                "12 mixes: %.1f%%\n"
                "(paper's motivational experiment: 36.7%%)\n",
                saving.mean() * 100.0);
    std::printf("\nThe price: 2 check symbols only guarantee single "
                "bad symbol detection -- which is\nexactly the gap "
                "ARCC closes adaptively (Chapters 4 and 6).\n");
    return 0;
}
