/**
 * @file
 * Figure 3.1: average fraction of 4KB pages in a memory channel that
 * has been affected by faults, vs operational lifespan, for 1x / 2x /
 * 4x the field-study fault rate.  10000-channel Monte Carlo plus the
 * analytic cross-check.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 3.1: Faulty Memory vs Time");
    std::printf("Average fraction of 4KB pages affected by faults "
                "(worst-case corruption footprints),\n"
                "10000 channels of 2 ranks x 36 devices, "
                "7-year horizon.\n\n");

    const double factors[] = {1.0, 2.0, 4.0};
    std::vector<AffectedCurve> curves;
    std::vector<double> analytic7;
    for (double f : factors) {
        LifetimeMcConfig cfg;
        cfg.geom = bench::defaultGeometry();
        cfg.rates = FaultRates::fieldStudy().scaled(f);
        cfg.channels = 10000;
        cfg.years = 7.0;
        cfg.gridPerYear = 4;
        LifetimeMc mc(cfg);
        curves.push_back(mc.affectedFraction());
        analytic7.push_back(mc.analyticAffectedFraction(7.0));
    }

    TextTable t;
    t.header({"Years", "1x rate", "2x rate", "4x rate"});
    for (std::size_t i = 0; i < curves[0].timeYears.size(); ++i) {
        if ((i + 1) % 2 != 0)
            continue; // print half-year steps.
        t.row({TextTable::num(curves[0].timeYears[i], 2),
               TextTable::pct(curves[0].avgFraction[i], 3),
               TextTable::pct(curves[1].avgFraction[i], 3),
               TextTable::pct(curves[2].avgFraction[i], 3)});
    }
    t.print();

    std::printf("\nAnalytic cross-check at 7 years: "
                "1x %.3f%%  2x %.3f%%  4x %.3f%%\n",
                analytic7[0] * 100, analytic7[1] * 100,
                analytic7[2] * 100);
    std::printf("\nPaper's shape: 'the fraction of pages with fault is "
                "just a few percent during most\nof the lifetime of "
                "the memory channel, even for a worst case failure "
                "rate that is 4X as high'.\nReproduced: %s\n",
                curves[2].avgFraction.back() < 0.06 ? "yes" : "NO");
    return 0;
}
