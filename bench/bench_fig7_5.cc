/**
 * @file
 * Figure 7.5: average decrease in ARCC performance as a function of
 * time compared to fault-free memory, for 1x / 2x / 4x fault rates,
 * with the no-spatial-locality worst-case estimate.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"

using namespace arcc;

int
main()
{
    printBanner("Figure 7.5: Performance Overhead of Error Correction");

    std::printf("Measuring per-fault-type performance overheads "
                "(Figure 7.3 methodology)...\n");
    bench::ScenarioOverheads ov = bench::measureScenarioOverheads();
    std::printf("  lane %.2f%%  device %.2f%%  subbank %.2f%%  "
                "column %.2f%%  (negative = the paired prefetch "
                "helps)\n\n",
                ov.perf[0] * 100, ov.perf[1] * 100, ov.perf[2] * 100,
                ov.perf[3] * 100);

    PerTypeOverhead measured = bench::toPerTypeOverhead(ov.perf);
    DomainGeometry geom = bench::defaultGeometry();
    // Worst case: an upgraded access takes two bus slots -> the
    // degradation contribution of a fault type is f/(1+f) ~ f/2 terms;
    // we use the conservative linear form f (additive, capped at 1/2).
    PerTypeOverhead worst{};
    for (FaultType t : allFaultTypes()) {
        double f = geom.pageFraction(t);
        worst[static_cast<int>(t)] = f / (1.0 + f);
    }

    TextTable t;
    t.header({"Year", "1x", "2x", "4x", "1x worst est.",
              "4x worst est."});

    std::vector<std::vector<double>> meas, wc;
    for (double factor : {1.0, 2.0, 4.0}) {
        LifetimeMcConfig cfg;
        cfg.geom = geom;
        cfg.rates = FaultRates::fieldStudy().scaled(factor);
        cfg.channels = 10000;
        LifetimeMc mc(cfg);
        // Measured per-fault perf deltas may be negative (prefetch
        // wins); the cap only binds the positive direction.
        meas.push_back(mc.cumulativeOverheadByYear(
            measured, std::max(0.5, ov.perf[0])));
        wc.push_back(mc.cumulativeOverheadByYear(worst, 0.5));

        std::vector<std::pair<std::string, std::string>> fields = {
            {"factor", bench::jsonNum(factor)}};
        for (std::size_t y = 0; y < meas.back().size(); ++y)
            fields.emplace_back("year" + std::to_string(y + 1),
                                bench::jsonNum(meas.back()[y]));
        for (std::size_t y = 0; y < wc.back().size(); ++y)
            fields.emplace_back("worst_year" + std::to_string(y + 1),
                                bench::jsonNum(wc.back()[y]));
        bench::jsonRow("fig7_5", fields);
    }
    for (int y = 0; y < 7; ++y) {
        t.row({std::to_string(y + 1), TextTable::pct(meas[0][y], 3),
               TextTable::pct(meas[1][y], 3),
               TextTable::pct(meas[2][y], 3),
               TextTable::pct(wc[0][y], 3),
               TextTable::pct(wc[2][y], 3)});
    }
    t.print();

    std::printf("\nShape checks:\n");
    std::printf("  measured degradation stays negligible (paper: "
                "'the degradation both in terms of the worst case\n"
                "  estimate and measured overheads is small'): 4x "
                "year-7 measured %.3f%%, worst-case %.2f%%: %s\n",
                meas[2][6] * 100, wc[2][6] * 100,
                wc[2][6] < 0.04 ? "yes" : "NO");
    return 0;
}
