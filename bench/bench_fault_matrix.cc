/**
 * @file
 * Codec-zoo fault-injection matrix bench: every registered line codec
 * swept through the none/random/burst x error-count campaign of
 * faults/fault_matrix.hh, printed as one human table plus one
 * bench_common jsonRow per cell and a final matrix-hash row.
 *
 * Every count in the output is a pure function of (codec list, trials
 * per cell, exhaustive limit, seed) -- never of the thread count --
 * so CI diffs the JSON across 1-vs-N-thread and scalar-vs-SIMD legs
 * with only the "threads" field normalised.
 *
 * ARCC_BENCH_FAULT_TRIALS overrides the stratified trials-per-cell
 * budget (default 96, the golden-pinned configuration).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hh"
#include "common/table.hh"
#include "faults/fault_matrix.hh"

using namespace arcc;
using namespace arcc::bench;

namespace
{

std::uint64_t
trialBudget()
{
    if (const char *env = std::getenv("ARCC_BENCH_FAULT_TRIALS"))
        return std::max<std::uint64_t>(
            1, std::strtoull(env, nullptr, 10));
    return 96;
}

} // anonymous namespace

int
main()
{
    FaultMatrixConfig cfg;
    cfg.codecs = codecs::names(); // The whole zoo, sorted by key.
    cfg.trialsPerCell = trialBudget();
    cfg.exhaustiveLimit = 640;
    cfg.seed = 20130223; // HPCA 2013.

    printBanner("Codec-zoo fault-injection matrix");
    std::printf("codecs: %zu, trials/cell: %llu (stratified), "
                "exhaustive limit: %llu\n\n",
                cfg.codecs.size(),
                static_cast<unsigned long long>(cfg.trialsPerCell),
                static_cast<unsigned long long>(cfg.exhaustiveLimit));

    const FaultMatrixResult result = runFaultMatrix(cfg);

    TextTable table;
    table.header({"codec", "mode", "err", "gran", "trials", "exh",
                  "clean", "corrected", "miscorrect", "due", "sdc"});
    for (const FaultCell &c : result.cells) {
        table.row({c.codec, toString(c.mode), std::to_string(c.errors),
                   c.symbolBits == 1 ? "bit" : "byte",
                   std::to_string(c.trials), c.exhaustive ? "y" : "n",
                   std::to_string(c.clean), std::to_string(c.corrected),
                   std::to_string(c.miscorrected),
                   std::to_string(c.due), std::to_string(c.sdc)});
        jsonRow("fault_matrix",
                {
                    {"codec", "\"" + c.codec + "\""},
                    {"family", "\"" + c.family + "\""},
                    {"mode", std::string("\"") + toString(c.mode) +
                                 "\""},
                    {"errors", jsonNum(
                                   static_cast<std::uint64_t>(
                                       c.errors))},
                    {"symbol_bits",
                     jsonNum(static_cast<std::uint64_t>(c.symbolBits))},
                    {"exhaustive", c.exhaustive ? "true" : "false"},
                    {"trials", jsonNum(c.trials)},
                    {"clean", jsonNum(c.clean)},
                    {"corrected", jsonNum(c.corrected)},
                    {"miscorrected", jsonNum(c.miscorrected)},
                    {"due", jsonNum(c.due)},
                    {"sdc", jsonNum(c.sdc)},
                });
    }
    table.print();

    std::printf("\nmatrix hash: %016llx\n",
                static_cast<unsigned long long>(result.hash()));
    jsonRow("fault_matrix_hash",
            {
                {"trials_per_cell", jsonNum(cfg.trialsPerCell)},
                {"exhaustive_limit", jsonNum(cfg.exhaustiveLimit)},
                {"seed", jsonNum(cfg.seed)},
                {"hash", jsonNum(result.hash())},
            });
    return 0;
}
