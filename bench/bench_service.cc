/**
 * @file
 * bench_service -- memoization economics of the arccd service core.
 *
 * Drives the shared standardServiceRequests() set through SimService
 * twice -- once cold (every request simulates) and once warm (every
 * request is cache-served) -- and reports both latencies per request.
 * The point of the memoized daemon is that a repeated sweep costs
 * string lookups instead of simulations; the speedup column is that
 * claim, measured (>= 10x is the ballpark even at short budgets; real
 * budgets are orders of magnitude beyond).
 *
 * JSON rows: one per request with the canonical-request hash and the
 * response CRC (both thread-count invariant -- CI diffs them across
 * ARCC_THREADS after normalising the timing fields), plus one summary
 * row.  ARCC_BENCH_INSTRS scales the sim requests,
 * ARCC_BENCH_SERVICE_CHANNELS the campaign slices.
 */

#include <chrono>

#include "bench_common.hh"
#include "common/crc32c.hh"
#include "service/sim_service.hh"

using namespace arcc;
using namespace arcc::bench;

namespace
{

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::uint32_t
responseCrc(const std::string &body)
{
    return crc32c({reinterpret_cast<const std::uint8_t *>(
                       body.data()),
                   body.size()});
}

} // namespace

int
main()
{
    const std::uint64_t instrs = instrBudget();
    const std::uint64_t channels =
        envU64("ARCC_BENCH_SERVICE_CHANNELS", 256);

    SimService::Options opts;
    opts.workers = 1; // evaluate() computes on the calling thread.
    SimService service(opts);

    const std::vector<ServiceRequest> set =
        standardServiceRequests(instrs, channels);

    std::printf("service memoization: %zu requests, %llu instrs, "
                "%llu campaign channels\n\n",
                set.size(),
                static_cast<unsigned long long>(instrs),
                static_cast<unsigned long long>(channels));

    TextTable table;
    table.header({"Request", "Cold ms", "Cached ms", "Speedup"});

    double coldTotal = 0.0, warmTotal = 0.0, minSpeedup = 0.0;
    bool first = true;
    for (const ServiceRequest &req : set) {
        const std::string line = req.canonical();

        auto t0 = std::chrono::steady_clock::now();
        const ServiceResponse cold = service.evaluate(line);
        const double coldMs = msSince(t0);

        t0 = std::chrono::steady_clock::now();
        const ServiceResponse warm = service.evaluate(line);
        const double warmMs = msSince(t0);

        if (cold.body != warm.body)
            fatal("cached response differs from cold for %s",
                  line.c_str());
        if (cold.body.rfind("{\"ok\":true", 0) != 0)
            fatal("request failed: %s", cold.body.c_str());

        const double speedup = warmMs > 0.0 ? coldMs / warmMs : 0.0;
        coldTotal += coldMs;
        warmTotal += warmMs;
        if (first || speedup < minSpeedup)
            minSpeedup = speedup;
        first = false;

        char hashHex[24];
        std::snprintf(hashHex, sizeof hashHex, "\"%016llx\"",
                      static_cast<unsigned long long>(req.hash()));
        table.row({line.substr(0, 44), TextTable::num(coldMs, 3),
                   TextTable::num(warmMs, 3),
                   TextTable::num(speedup, 1)});
        jsonRow("service",
                {{"request_hash", hashHex},
                 {"resp_bytes", jsonNum(static_cast<std::uint64_t>(
                                    cold.body.size()))},
                 {"resp_crc", jsonNum(static_cast<std::uint64_t>(
                                  responseCrc(cold.body)))},
                 {"cold_ms", jsonNum(coldMs)},
                 {"cached_ms", jsonNum(warmMs)},
                 {"speedup", jsonNum(speedup)}});
    }
    table.print();

    const ServiceStats stats = service.stats();
    std::printf("\ntotals: cold %.1f ms, cached %.1f ms, min "
                "speedup %.0fx; %llu hits / %llu misses\n",
                coldTotal, warmTotal, minSpeedup,
                static_cast<unsigned long long>(stats.cacheHits),
                static_cast<unsigned long long>(stats.cacheMisses));
    jsonRow("service_summary",
            {{"requests", jsonNum(static_cast<std::uint64_t>(
                  set.size()))},
             {"hits", jsonNum(stats.cacheHits)},
             {"misses", jsonNum(stats.cacheMisses)},
             {"cold_ms_total", jsonNum(coldTotal)},
             {"cached_ms_total", jsonNum(warmTotal)},
             {"min_speedup", jsonNum(minSpeedup)}});

    // The economics claim, asserted: a cache-served sweep must be at
    // least 10x cheaper in aggregate than the cold one.  Per-request
    // jitter is why this is on the totals, not the minimum.
    if (warmTotal * 10.0 > coldTotal) {
        std::fprintf(stderr,
                     "bench_service: warm sweep %.1f ms is not 10x "
                     "cheaper than cold %.1f ms\n",
                     warmTotal, coldTotal);
        return 1;
    }
    return 0;
}
