/**
 * @file
 * Reproduces Tables 7.1-7.4 of the paper from the library's own
 * configuration structures (so the printed tables cannot drift from
 * what the simulations actually use), and appends a functional
 * boot-scrub of the small ARCC memory through the engine-sharded
 * Scrubber::scrubParallel path.
 *
 * Machine-readable JSON rows (with the executor count) accompany the
 * tables; CI runs this bench at 1 and N threads and diffs the rows
 * with the threads field normalised.
 */

#include <cstdio>

#include "arcc/scrubber.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "dram/dram_params.hh"

using namespace arcc;

namespace
{

void
table71()
{
    printBanner("Table 7.1: Memory Configurations");
    TextTable t;
    t.header({"Name", "Tech", "I/O", "Chan", "Ranks/Chan", "Rank Size",
              "Devices/Access"});
    for (const MemoryConfig &c : {baselineConfig(), arccConfig()}) {
        t.row({c.name == baselineConfig().name ? "Baseline" : "ARCC",
               "DDR2", toString(c.device.width),
               std::to_string(c.channels),
               std::to_string(c.ranksPerChannel),
               std::to_string(c.devicesPerRank),
               std::to_string(c.devicesPerAccess)});
    }
    t.print();
    std::printf("\n(total devices: %d each; data capacity 4 GB; "
                "storage overhead 12.5%% both)\n",
                baselineConfig().totalDevices());
}

void
table72()
{
    printBanner("Table 7.2: Processor Microarchitecture");
    TextTable t;
    t.header({"SS Width", "IQ Size", "Phys Regs", "LSQ Size"});
    t.row({"2", "16", "72FP/72INT", "32LQ/32SQ"});
    t.print();
    TextTable t2;
    t2.header({"L1 D$,I$", "L1 Assoc", "L1 lat.", "L2$", "L2 Assoc",
               "L2 lat.", "Line", "L2 MSHR"});
    t2.row({"32 kB", "2", "1 cycle", "1MB", "16", "10 cycles", "64B",
            "240"});
    t2.print();
    std::printf("\n(model: 2-wide cores with per-benchmark base IPC; "
                "1MB 16-way shared LLC, 64B lines)\n");
}

void
table73()
{
    printBanner("Table 7.3: Workloads");
    TextTable t;
    t.header({"Mix", "Benchmarks"});
    for (const WorkloadMix &mix : table73Mixes()) {
        std::string list;
        for (const auto &b : mix.benchmarks)
            list += (list.empty() ? "" : ";") + b;
        t.row({mix.name, list});
    }
    t.print();
}

void
table74()
{
    printBanner("Table 7.4: Fault Modeling Details");
    DomainGeometry g = bench::defaultGeometry();
    TextTable t;
    t.header({"Fault Type", "Fraction of Pages Upgraded"});
    t.row({"Lane", TextTable::num(g.pageFraction(FaultType::Lane), 4) +
                       "  (both ranks upgraded)"});
    t.row({"Device",
           TextTable::num(g.pageFraction(FaultType::Device), 4) +
               "  (1 of 2 ranks)"});
    t.row({"Subbank",
           TextTable::num(g.pageFraction(FaultType::Bank), 4) +
               "  (1 of 8 banks of 1 rank)"});
    t.row({"Column",
           TextTable::num(g.pageFraction(FaultType::Column), 4) +
               "  (half the pages of 1 bank)"});
    t.row({"Row", TextTable::sci(g.pageFraction(FaultType::Row), 1) +
                      "  (2 pages/row)"});
    t.row({"Bit/Word",
           TextTable::sci(g.pageFraction(FaultType::Bit), 1)});
    t.print();

    std::printf("\nField-study FIT rates per device "
                "(approximating Sridharan & Liberty SC'12):\n");
    TextTable r;
    r.header({"Fault", "FIT/device"});
    FaultRates rates = FaultRates::fieldStudy();
    for (FaultType ft : allFaultTypes())
        r.row({toString(ft), TextTable::num(rates[ft], 1)});
    r.row({"total", TextTable::num(rates.totalFit(), 1)});
    r.print();

    std::vector<std::pair<std::string, std::string>> fields;
    for (FaultType ft : allFaultTypes())
        fields.emplace_back(toString(ft),
                            bench::jsonNum(rates[ft]));
    fields.emplace_back("totalFit",
                        bench::jsonNum(rates.totalFit()));
    bench::jsonRow("tables_fit_rates", fields);
}

void
functionalScrubAppendix()
{
    // Exercise the sharded scrubber on the functional plane the
    // tables describe: boot an arccSmall memory with pseudo-random
    // content and relax-demote it through scrubParallel.
    printBanner("Appendix: boot scrub through the parallel engine");
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(20130223);
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
    }
    ScrubReport rep = Scrubber().bootScrubParallel(mem);

    std::printf("scrubParallel on %d executor(s): %llu lines, "
                "%llu pages relaxed, %llu faulty\n",
                SimEngine::global().threads(),
                static_cast<unsigned long long>(rep.linesScrubbed),
                static_cast<unsigned long long>(rep.pagesRelaxed),
                static_cast<unsigned long long>(
                    rep.faultyPages.size()));
    bench::jsonRow(
        "tables_boot_scrub",
        {{"linesScrubbed", bench::jsonNum(rep.linesScrubbed)},
         {"pagesRelaxed", bench::jsonNum(rep.pagesRelaxed)},
         {"faultyPages",
          bench::jsonNum(
              static_cast<std::uint64_t>(rep.faultyPages.size()))},
         {"errorsCorrected", bench::jsonNum(rep.errorsCorrected)}});
}

} // namespace

int
main()
{
    std::printf("ARCC reproduction -- configuration tables "
                "(HPCA 2013, Tables 7.1-7.4)\n");
    table71();
    table72();
    table73();
    table74();
    functionalScrubAppendix();
    return 0;
}
