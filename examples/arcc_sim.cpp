/**
 * @file
 * arcc_sim -- command-line driver for custom performance-plane
 * experiments: pick a configuration, a Table 7.3 mix (or a trace), a
 * fault scenario, and a budget; get power and performance.
 *
 * Usage:
 *   arcc_sim [--config baseline|arcc] [--mix MixN]
 *            [--fault none|lane|device|bank|column]
 *            [--fraction F] [--instrs N] [--sectored]
 *            [--trace file1,file2,file3,file4]
 *
 * Examples:
 *   arcc_sim --config arcc --mix Mix7 --fault device
 *   arcc_sim --config baseline --mix Mix1 --instrs 5000000
 */

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/parse_num.hh"
#include "common/table.hh"
#include "cpu/system_sim.hh"
#include "cpu/trace.hh"

using namespace arcc;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--config baseline|arcc] [--mix MixN]\n"
        "          [--fault none|lane|device|bank|column]\n"
        "          [--fraction F] [--instrs N] [--sectored]\n"
        "          [--trace f1,f2,f3,f4]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "arcc";
    std::string mix_name = "Mix1";
    std::string fault = "none";
    std::string trace_arg;
    double fraction = -1.0;
    SystemConfig cfg;
    cfg.instrsPerCore = 1'000'000;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (a == "--config")
            config_name = need("--config");
        else if (a == "--mix")
            mix_name = need("--mix");
        else if (a == "--fault")
            fault = need("--fault");
        else if (a == "--fraction")
            fraction = parseDouble("--fraction", need("--fraction"));
        else if (a == "--instrs")
            cfg.instrsPerCore = parseU64("--instrs",
                                         need("--instrs"));
        else if (a == "--sectored")
            cfg.sectoredLlc = true;
        else if (a == "--trace")
            trace_arg = need("--trace");
        else {
            usage(argv[0]);
            return a == "--help" ? 0 : 1;
        }
    }

    if (fraction != -1.0 && (fraction < 0.0 || fraction > 1.0))
        fatal("--fraction %g: need a page fraction in [0, 1]",
              fraction);

    if (config_name == "baseline")
        cfg.mem = baselineConfig();
    else if (config_name == "arcc")
        cfg.mem = arccConfig();
    else
        fatal("unknown --config '%s'", config_name.c_str());

    PageUpgradeOracle oracle;
    using S = PageUpgradeOracle::Scenario;
    if (fraction >= 0.0)
        oracle = PageUpgradeOracle::forFraction(fraction, cfg.mem);
    else if (fault == "lane")
        oracle = PageUpgradeOracle::forScenario(S::Lane, cfg.mem);
    else if (fault == "device")
        oracle = PageUpgradeOracle::forScenario(S::Device, cfg.mem);
    else if (fault == "bank")
        oracle = PageUpgradeOracle::forScenario(S::Bank, cfg.mem);
    else if (fault == "column")
        oracle = PageUpgradeOracle::forScenario(S::Column, cfg.mem);
    else if (fault != "none")
        fatal("unknown --fault '%s'", fault.c_str());

    SimResult res;
    if (!trace_arg.empty()) {
        // Four trace files, one per core; text or binary (the
        // factory auto-detects the format by the magic and streams
        // binary traces at O(chunk) memory).
        std::vector<StreamSpec> streams;
        std::stringstream ss(trace_arg);
        std::string path;
        while (std::getline(ss, path, ','))
            streams.push_back(traceStreamSpec(path, /*baseIpc=*/1.0));
        if (streams.size() != 4)
            fatal("--trace needs exactly 4 comma-separated files");
        res = simulateStreams(std::move(streams), cfg, oracle);
    } else {
        const WorkloadMix *mix = nullptr;
        for (const auto &m : table73Mixes())
            if (m.name == mix_name)
                mix = &m;
        if (!mix)
            fatal("unknown --mix '%s' (Mix1..Mix12)", mix_name.c_str());
        res = simulateMix(*mix, cfg, oracle);
    }

    std::printf("config: %s   workload: %s   fault: %s   upgraded "
                "pages: %.2f%%\n\n",
                cfg.mem.name.c_str(),
                trace_arg.empty() ? mix_name.c_str() : "trace",
                fault.c_str(), oracle.expectedFraction() * 100.0);

    TextTable t;
    t.header({"Core", "Workload", "Instrs", "IPC", "LLC miss rate"});
    for (std::size_t i = 0; i < res.cores.size(); ++i) {
        const CoreResult &c = res.cores[i];
        double mr = c.llcAccesses
                        ? static_cast<double>(c.llcMisses) /
                              static_cast<double>(c.llcAccesses)
                        : 0.0;
        t.row({std::to_string(i), c.benchmark,
               std::to_string(c.instrs), TextTable::num(c.ipc, 3),
               TextTable::num(mr, 3)});
    }
    t.print();

    std::printf("\nIPC sum          : %.3f\n", res.ipcSum);
    std::printf("elapsed          : %.3f ms\n", res.elapsedNs / 1e6);
    std::printf("memory power     : %.0f mW  (dynamic %.0f / "
                "background %.0f / refresh %.0f)\n",
                res.avgPowerMw,
                res.power.dynamicNj / res.elapsedNs * 1e3,
                res.power.backgroundNj / res.elapsedNs * 1e3,
                res.power.refreshNj / res.elapsedNs * 1e3);
    std::printf("memory traffic   : %llu reads, %llu writes\n",
                static_cast<unsigned long long>(res.memReads),
                static_cast<unsigned long long>(res.memWrites));
    return 0;
}
