/**
 * @file
 * Fleet-scale campaign runner with checkpoint/resume.
 *
 * Runs a CampaignSpec to completion, sealing a checkpoint record
 * after every epoch when --checkpoint is given.  SIGTERM / SIGINT
 * request a graceful stop: the driver finishes the epoch in flight,
 * seals it, and exits with status 3 so a supervisor knows to re-run
 * the same command line -- which resumes from the last sealed epoch
 * and produces a final digest bit-identical to an uninterrupted run
 * (SIGKILL mid-epoch recovers the same way; the CI smoke test proves
 * it).
 *
 * Usage:
 *   arcc_campaign [--channels N] [--years Y] [--boost B] [--seed S]
 *                 [--epoch-trials N] [--group-devices N]
 *                 [--max-epochs N] [--checkpoint PATH] [--quiet]
 *
 * Exit status: 0 campaign complete, 1 bad usage or fatal error,
 * 3 interrupted by signal (resume by re-running).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.hh"
#include "engine/sim_engine.hh"

using namespace arcc;

namespace
{

/** Set from the signal handler; polled between epochs. */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--channels N] [--years Y] [--boost B] "
                 "[--seed S]\n"
                 "          [--epoch-trials N] [--group-devices N] "
                 "[--max-epochs N]\n"
                 "          [--checkpoint PATH] [--quiet]\n",
                 argv0);
    std::exit(1);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CampaignSpec spec;
    spec.channels = 1 << 14;
    CampaignRunOptions options;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--channels") == 0)
            spec.channels = std::strtoull(value(), nullptr, 10);
        else if (std::strcmp(argv[i], "--years") == 0)
            spec.years = std::atof(value());
        else if (std::strcmp(argv[i], "--boost") == 0)
            spec.rateBoost = std::atof(value());
        else if (std::strcmp(argv[i], "--seed") == 0)
            spec.seed = std::strtoull(value(), nullptr, 10);
        else if (std::strcmp(argv[i], "--epoch-trials") == 0)
            spec.epochTrials = std::strtoull(value(), nullptr, 10);
        else if (std::strcmp(argv[i], "--group-devices") == 0)
            spec.devicesPerGroup = std::atoi(value());
        else if (std::strcmp(argv[i], "--max-epochs") == 0)
            options.maxEpochs = std::strtoull(value(), nullptr, 10);
        else if (std::strcmp(argv[i], "--checkpoint") == 0)
            options.checkpointPath = value();
        else if (std::strcmp(argv[i], "--quiet") == 0)
            quiet = true;
        else
            usage(argv[0]);
    }
    if (spec.channels == 0 || spec.years <= 0 || spec.rateBoost <= 0)
        usage(argv[0]);

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    options.stopRequested = [] { return g_stop != 0; };

    CampaignDriver driver(spec);
    if (!quiet)
        std::printf("campaign: %llu channels x %.1f years, boost "
                    "%.0fx, %d-device groups, epoch %llu, config "
                    "%016llx, %d threads\n",
                    static_cast<unsigned long long>(spec.channels),
                    spec.years, spec.rateBoost, spec.devicesPerGroup,
                    static_cast<unsigned long long>(spec.epochTrials),
                    static_cast<unsigned long long>(spec.configHash()),
                    SimEngine::global().threads());

    CampaignRunResult result = driver.run(options);
    const CampaignAggregate &agg = result.aggregate;

    if (!quiet) {
        if (result.resumedFromTrial > 0)
            std::printf("resumed from trial %llu\n",
                        static_cast<unsigned long long>(
                            result.resumedFromTrial));
        std::printf("trials %llu  faults %llu  with-fault %llu  "
                    "sdc-cand %llu  due-cand %llu\n",
                    static_cast<unsigned long long>(agg.trials),
                    static_cast<unsigned long long>(agg.faultsSampled),
                    static_cast<unsigned long long>(
                        agg.trialsWithFault),
                    static_cast<unsigned long long>(
                        agg.sdcCandidates),
                    static_cast<unsigned long long>(
                        agg.dueCandidates));
        std::printf("affected mean %.6f  p50 %.6f  p99 %.6f  "
                    "max %.6f\n",
                    agg.meanAffected(), agg.affectedHist.quantile(0.5),
                    agg.affectedHist.quantile(0.99),
                    agg.trials ? agg.affectedHist.max() : 0.0);
    }

    // The line CI and the resume tests grep: stable digest of the
    // config, the seed and the full aggregate state.
    std::printf("campaign_digest %016llx over %llu/%llu trials%s\n",
                static_cast<unsigned long long>(result.digest(spec)),
                static_cast<unsigned long long>(agg.trials),
                static_cast<unsigned long long>(spec.channels),
                result.interrupted ? " (interrupted)" : "");

    return result.interrupted ? 3 : 0;
}
