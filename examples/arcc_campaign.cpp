/**
 * @file
 * Fleet-scale campaign runner with checkpoint/resume and
 * multi-process scale-out.
 *
 * Runs a CampaignSpec to completion, sealing a checkpoint record
 * after every epoch when --checkpoint is given.  SIGTERM / SIGINT
 * request a graceful stop: the driver finishes the epoch in flight,
 * seals it, and exits with status 3 so a supervisor knows to re-run
 * the same command line -- which resumes from the last sealed epoch
 * and produces a final digest bit-identical to an uninterrupted run
 * (SIGKILL mid-epoch recovers the same way; the CI smoke test proves
 * it).
 *
 * Scale-out modes (all derive the same WorkerPlan from the spec, so
 * the merged digest is bit-identical to a single-process run):
 *
 *   --workers N --worker-id K   run only worker K's slice; with
 *                               --checkpoint B the log goes to B.wK
 *   --workers N --merge         load the N finished worker logs
 *                               B.w0..B.w(N-1) and print the merged
 *                               campaign digest (requires --checkpoint)
 *   --workers N                 one-machine fan-out: fork N children,
 *                               one per worker, wait, then merge
 *                               (requires --checkpoint)
 *
 * Usage:
 *   arcc_campaign [--channels N] [--years Y] [--boost B] [--seed S]
 *                 [--epoch-trials N] [--group-devices N]
 *                 [--max-epochs N] [--checkpoint PATH] [--quiet]
 *                 [--workers N] [--worker-id K] [--merge]
 *
 * Exit status: 0 campaign complete, 1 bad usage or fatal error,
 * 3 interrupted by signal (resume by re-running).
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hh"
#include "common/parse_num.hh"
#include "engine/sim_engine.hh"

using namespace arcc;

namespace
{

/** Set from the signal handler; polled between epochs. */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--channels N] [--years Y] [--boost B] "
                 "[--seed S]\n"
                 "          [--epoch-trials N] [--group-devices N] "
                 "[--max-epochs N]\n"
                 "          [--checkpoint PATH] [--quiet]\n"
                 "          [--workers N] [--worker-id K] [--merge]\n",
                 argv0);
    std::exit(1);
}

/** The stats + digest block every completing mode prints.  The
 *  "campaign_digest" line is the one CI and the resume tests grep. */
void
printResult(const CampaignSpec &spec, const CampaignRunResult &result,
            bool quiet)
{
    const CampaignAggregate &agg = result.aggregate;
    if (!quiet) {
        if (result.resumedFromTrial > 0)
            std::printf("resumed from trial %llu\n",
                        static_cast<unsigned long long>(
                            result.resumedFromTrial));
        std::printf("trials %llu  faults %llu  with-fault %llu  "
                    "sdc-cand %llu  due-cand %llu\n",
                    static_cast<unsigned long long>(agg.trials),
                    static_cast<unsigned long long>(agg.faultsSampled),
                    static_cast<unsigned long long>(
                        agg.trialsWithFault),
                    static_cast<unsigned long long>(
                        agg.sdcCandidates),
                    static_cast<unsigned long long>(
                        agg.dueCandidates));
        std::printf("affected mean %.6f  p50 %.6f  p99 %.6f  "
                    "max %.6f\n",
                    agg.meanAffected(), agg.affectedHist.quantile(0.5),
                    agg.affectedHist.quantile(0.99),
                    agg.trials ? agg.affectedHist.max() : 0.0);
    }
    std::printf("campaign_digest %016llx over %llu/%llu trials%s\n",
                static_cast<unsigned long long>(result.digest(spec)),
                static_cast<unsigned long long>(agg.trials),
                static_cast<unsigned long long>(spec.channels),
                result.interrupted ? " (interrupted)" : "");
}

/** Run worker `id`'s slice in this process (the --worker-id mode and
 *  the body of every fan-out child). */
CampaignRunResult
runOneWorker(const CampaignSpec &spec, const WorkerPlan &plan,
             std::uint32_t id, const std::string &checkpointBase,
             std::uint64_t maxEpochs, bool quiet)
{
    CampaignRunOptions options;
    options.maxEpochs = maxEpochs;
    options.stopRequested = [] { return g_stop != 0; };
    if (!checkpointBase.empty())
        options.checkpointPath =
            workerCheckpointPath(checkpointBase, id);

    CampaignDriver driver(spec);
    CampaignRunResult result = driver.runWorker(plan, id, options);
    const WorkerRange range = plan.range(id);
    if (!quiet)
        std::printf("worker %u/%u trials [%llu, %llu): ran %llu "
                    "epochs, %llu/%llu trials done%s\n",
                    id, plan.workers(),
                    static_cast<unsigned long long>(range.begin),
                    static_cast<unsigned long long>(range.end),
                    static_cast<unsigned long long>(result.epochsRun),
                    static_cast<unsigned long long>(
                        result.aggregate.trials),
                    static_cast<unsigned long long>(range.trials()),
                    result.interrupted ? " (interrupted)" : "");
    return result;
}

/** Load all finished worker logs and print the merged campaign. */
int
mergeWorkers(const CampaignSpec &spec, const WorkerPlan &plan,
             const std::string &checkpointBase, bool quiet)
{
    std::vector<CampaignWorkerSlice> slices;
    slices.reserve(plan.workers());
    for (std::uint32_t id = 0; id < plan.workers(); ++id)
        slices.push_back(
            loadWorkerSlice(workerCheckpointPath(checkpointBase, id),
                            spec, plan, id));
    printResult(spec, mergeCampaigns(spec, std::move(slices)), quiet);
    return 0;
}

/**
 * One-machine fan-out: fork one child per worker and merge when all
 * succeed.  The parent never touches SimEngine::global() -- each
 * child builds its own thread pool after the fork, so no pool threads
 * or locks are duplicated into the children.
 */
int
fanOut(const CampaignSpec &spec, const WorkerPlan &plan,
       const std::string &checkpointBase, std::uint64_t maxEpochs,
       bool quiet)
{
    std::vector<pid_t> children(plan.workers(), -1);
    for (std::uint32_t id = 0; id < plan.workers(); ++id) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::perror("fork");
            for (pid_t c : children)
                if (c > 0)
                    kill(c, SIGTERM);
            return 1;
        }
        if (pid == 0) {
            const CampaignRunResult result = runOneWorker(
                spec, plan, id, checkpointBase, maxEpochs, quiet);
            std::fflush(stdout);
            _exit(result.interrupted ? 3 : 0);
        }
        children[id] = pid;
    }

    bool all_ok = true;
    for (std::uint32_t id = 0; id < plan.workers(); ++id) {
        int status = 0;
        while (waitpid(children[id], &status, 0) < 0) {
            if (errno != EINTR) {
                std::perror("waitpid");
                return 1;
            }
            if (g_stop)
                for (pid_t c : children)
                    if (c > 0)
                        kill(c, SIGTERM);
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            all_ok = false;
    }
    if (!all_ok) {
        std::fprintf(stderr,
                     "fan-out interrupted; re-run the same command "
                     "to resume the unfinished workers and merge\n");
        return 3;
    }
    return mergeWorkers(spec, plan, checkpointBase, quiet);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CampaignSpec spec;
    spec.channels = 1 << 14;
    std::string checkpointBase;
    std::uint64_t maxEpochs = 0;
    std::uint32_t workers = 0; // 0 = classic single-process mode
    long workerId = -1;
    bool merge = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--channels") == 0)
            spec.channels = parseU64("--channels", value());
        else if (std::strcmp(argv[i], "--years") == 0)
            spec.years = parseDouble("--years", value());
        else if (std::strcmp(argv[i], "--boost") == 0)
            spec.rateBoost = parseDouble("--boost", value());
        else if (std::strcmp(argv[i], "--seed") == 0)
            spec.seed = parseU64("--seed", value());
        else if (std::strcmp(argv[i], "--epoch-trials") == 0)
            spec.epochTrials = parseU64("--epoch-trials", value());
        else if (std::strcmp(argv[i], "--group-devices") == 0)
            spec.devicesPerGroup =
                parseInt("--group-devices", value());
        else if (std::strcmp(argv[i], "--max-epochs") == 0)
            maxEpochs = parseU64("--max-epochs", value());
        else if (std::strcmp(argv[i], "--checkpoint") == 0)
            checkpointBase = value();
        else if (std::strcmp(argv[i], "--workers") == 0)
            workers = parseU32("--workers", value());
        else if (std::strcmp(argv[i], "--worker-id") == 0)
            workerId = parseI64("--worker-id", value());
        else if (std::strcmp(argv[i], "--merge") == 0)
            merge = true;
        else if (std::strcmp(argv[i], "--quiet") == 0)
            quiet = true;
        else
            usage(argv[0]);
    }
    if (spec.channels == 0 || spec.years <= 0 || spec.rateBoost <= 0)
        usage(argv[0]);
    if ((workerId >= 0 || merge) && workers == 0) {
        std::fprintf(stderr, "%s: --worker-id and --merge require "
                             "--workers\n", argv[0]);
        return 1;
    }
    if (workerId >= 0 && merge) {
        std::fprintf(stderr, "%s: --worker-id and --merge are "
                             "mutually exclusive\n", argv[0]);
        return 1;
    }
    if (workers > 0 && workerId < 0 && checkpointBase.empty()) {
        std::fprintf(stderr, "%s: fan-out and --merge need "
                             "--checkpoint (per-worker logs are what "
                             "gets merged)\n", argv[0]);
        return 1;
    }
    if (workerId >= 0 &&
        static_cast<std::uint64_t>(workerId) >= workers) {
        std::fprintf(stderr, "%s: --worker-id %ld out of range for "
                             "--workers %u\n",
                     argv[0], workerId, workers);
        return 1;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    if (!quiet)
        std::printf("campaign: %llu channels x %.1f years, boost "
                    "%.0fx, %d-device groups, epoch %llu, config "
                    "%016llx, %u workers\n",
                    static_cast<unsigned long long>(spec.channels),
                    spec.years, spec.rateBoost, spec.devicesPerGroup,
                    static_cast<unsigned long long>(spec.epochTrials),
                    static_cast<unsigned long long>(spec.configHash()),
                    workers > 0 ? workers : 1u);

    if (workers > 0) {
        const WorkerPlan plan(spec, workers);
        if (merge)
            return mergeWorkers(spec, plan, checkpointBase, quiet);
        if (workerId >= 0) {
            const CampaignRunResult result = runOneWorker(
                spec, plan, static_cast<std::uint32_t>(workerId),
                checkpointBase, maxEpochs, quiet);
            return result.interrupted ? 3 : 0;
        }
        return fanOut(spec, plan, checkpointBase, maxEpochs, quiet);
    }

    CampaignRunOptions options;
    options.checkpointPath = checkpointBase;
    options.maxEpochs = maxEpochs;
    options.stopRequested = [] { return g_stop != 0; };

    CampaignDriver driver(spec);
    const CampaignRunResult result = driver.run(options);
    printResult(spec, result, quiet);
    return result.interrupted ? 3 : 0;
}
