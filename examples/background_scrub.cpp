/**
 * @file
 * Background scrubbing interleaved with traffic (Section 4.2.2).
 *
 * The paper's scrubber periodically sweeps every line with write-0 /
 * write-1 test patterns -- six DRAM accesses per line -- and
 * Section 4.2.2 bounds its cost with a closed-form bandwidth model.
 * Since PR 4 the system simulator can *measure* that cost instead:
 * BackgroundScrubConfig injects the sweep into every channel's
 * request stream, where it competes with demand traffic for banks
 * and the data bus, and the reported IPC drop is simulated
 * contention rather than an estimate.
 *
 * A real sweep period is hours while a simulated window is under a
 * millisecond, so this walkthrough compresses the period to bring
 * many sweep visits inside the window; the closed-form model is
 * linear in 1/period, so the measured-vs-model comparison is scale-
 * faithful.  The run also demonstrates the determinism contract:
 * every number below is bit-identical at any ARCC_THREADS.
 *
 * Build & run:  ./build/background_scrub
 */

#include <cstdio>

#include "arcc/scrubber.hh"
#include "common/table.hh"
#include "cpu/system_sim.hh"

using namespace arcc;

int
main()
{
    printBanner("Background scrubbing vs the closed-form model");

    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 150'000;
    cfg.seed = 20130223;
    const WorkloadMix &mix = table73Mixes()[8];

    SimResult clean = simulateMix(mix, cfg, {});
    std::printf("workload %s on %s, no scrubbing: IPC sum %.3f, "
                "%.1f W DRAM\n\n",
                mix.name.c_str(), cfg.mem.name.c_str(), clean.ipcSum,
                clean.avgPowerMw / 1000.0);

    // Per-channel bus bandwidth for the closed-form model: the data
    // bus moves two beats per clock.
    double bus_bytes_per_sec = cfg.mem.dataBusBits() / 8.0 * 2.0 /
                               (cfg.mem.device.tCK * 1e-9);
    double channel_bytes = static_cast<double>(cfg.mem.dataBytes()) /
                           cfg.mem.channels;

    TextTable t;
    t.header({"Period (h)", "Scrub accesses", "IPC sum", "IPC loss",
              "DRAM power", "Model BW share"});
    for (double period : {0.08, 0.04, 0.02, 0.01, 0.005}) {
        SystemConfig scfg = cfg;
        scfg.backgroundScrub.enabled = true;
        scfg.backgroundScrub.periodHours = period;
        SimResult r = simulateMix(mix, scfg, {});

        double loss = 1.0 - r.ipcSum / clean.ipcSum;
        double model = Scrubber::bandwidthFraction(
            Scrubber::scrubSeconds(channel_bytes, bus_bytes_per_sec),
            period);
        t.row({TextTable::num(period, 3),
               TextTable::num(static_cast<double>(r.scrubReads +
                                                  r.scrubWrites), 0),
               TextTable::num(r.ipcSum, 3), TextTable::pct(loss),
               TextTable::num(r.avgPowerMw / 1000.0, 2) + " W",
               TextTable::pct(model)});
    }
    t.print();

    std::printf(
        "\nThe measured loss scales with the sweep rate but runs a\n"
        "small multiple above the closed-form share: the model\n"
        "counts data-bus beats, while the write-0/write-1 passes\n"
        "re-open the same row each time and are bank-cycle (tRC)\n"
        "bound -- exactly the contention a closed-form estimate\n"
        "misses.  When the period outruns the scrubber's\n"
        "one-outstanding-request budget it degrades to continuous\n"
        "scrubbing (the access counts stop doubling with the rate).\n"
        "At the paper's real periods (hours) the share is far below\n"
        "1%%:\n");
    for (double period : {12.0, 24.0}) {
        double model = Scrubber::bandwidthFraction(
            Scrubber::scrubSeconds(channel_bytes, bus_bytes_per_sec),
            period);
        std::printf("  one sweep per %4.0f h -> %.3f%% of channel "
                    "bandwidth (model)\n", period, model * 100.0);
    }
    return 0;
}
