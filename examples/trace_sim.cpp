/**
 * @file
 * Trace workloads through the channel-sharded system simulator.
 *
 * The paper drives its memory system with M5-captured SPEC traces;
 * this walkthrough shows the equivalent pipeline here:
 *
 *  1. capture a synthetic quad-core mix into per-core *text* traces
 *     (the format a PIN tool or gem5 exporter would produce);
 *  2. convert them to the fixed-record binary format
 *     (textTraceFileToBinary) -- 16 bytes per access;
 *  3. replay them through simulateStreams via traceStreamSpec, which
 *     streams the binary file in O(chunk) resident memory, at 2, 4,
 *     and 8 memory channels to widen the back-end shard fan;
 *  4. mix a trace-driven core with live synthetic cores in one run.
 *
 * With trace files of your own, pass up to four paths on the command
 * line (text or binary, auto-detected) and step 1 is skipped:
 *
 *     ./build/trace_sim [trace0 [trace1 [trace2 [trace3]]]]
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/table.hh"
#include "cpu/trace.hh"
#include "dram/channel_shard.hh"

using namespace arcc;

namespace
{

/** Capture one synthetic core into a text trace file. */
std::string
captureCore(const std::filesystem::path &dir, const SystemConfig &cfg,
            const std::string &bench, int core)
{
    AddressMap map(cfg.mem, cfg.mapPolicy);
    std::string path =
        (dir / (bench + "." + std::to_string(core) + ".trace")).string();
    std::uint64_t count = captureSyntheticTrace(
        bench, map.capacity(), core, mixCoreSeed(cfg.seed, core),
        cfg.instrsPerCore, path, /*binary=*/false);
    std::printf("  captured %8llu accesses of %-10s -> %s\n",
                static_cast<unsigned long long>(count), bench.c_str(),
                path.c_str());
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    printBanner("Trace replay through the channel-sharded simulator");

    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 200'000;
    cfg.seed = 20130223;
    const WorkloadMix &mix = table73Mixes()[8];

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("arcc_trace_sim." + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);

    // Step 1: per-core trace files (yours, or captured synthetics).
    std::vector<std::string> texts;
    for (int core = 0; core < cfg.cores; ++core) {
        if (core + 1 < argc)
            texts.push_back(argv[core + 1]);
        else
            texts.push_back(captureCore(dir, cfg,
                                        mix.benchmarks[core], core));
    }

    // Step 2: text -> binary.  A binary record is a fixed 16 bytes,
    // so the file is seekable and replays without parsing -- and
    // TraceStream never loads more than one chunk of it.
    std::vector<std::string> bins;
    for (const std::string &text : texts) {
        if (isBinaryTraceFile(text)) {
            bins.push_back(text); // already binary: use as is.
            continue;
        }
        std::string bin =
            (dir / std::filesystem::path(text).filename())
                .string() + ".bin";
        std::uint64_t n = textTraceFileToBinary(text, bin);
        std::printf("  %s: %llu records, %ju -> %ju bytes\n",
                    bin.c_str(), static_cast<unsigned long long>(n),
                    static_cast<std::uintmax_t>(
                        std::filesystem::file_size(text)),
                    static_cast<std::uintmax_t>(
                        std::filesystem::file_size(bin)));
        bins.push_back(bin);
    }

    // Step 3: replay at 2 / 4 / 8 channels.  The ChannelShardPlan
    // turns each channel (group) into one back-end shard, so the
    // wider configs fan the replay out over more engine workers --
    // bit-identically at any thread count.
    std::printf("\n");
    TextTable t;
    t.header({"Channels", "Shards", "IPC sum", "Elapsed us",
              "DRAM mW", "Mem reads", "Laps/core"});
    for (int channels : {2, 4, 8}) {
        SystemConfig ccfg = cfg;
        ccfg.mem = withChannels(cfg.mem, channels);
        AddressMap map(ccfg.mem, ccfg.mapPolicy);
        ChannelShardPlan plan(map, /*pairable=*/false);

        std::vector<StreamSpec> streams;
        for (int core = 0; core < ccfg.cores; ++core) {
            StreamSpec spec = traceStreamSpec(
                bins[core],
                benchmarkProfile(mix.benchmarks[core]).baseIpc);
            streams.push_back(std::move(spec));
        }
        SimResult r = simulateStreams(std::move(streams), ccfg, {});
        std::uint64_t laps = 0;
        for (const CoreResult &core : r.cores)
            laps += core.traceLaps;
        t.row({std::to_string(channels),
               std::to_string(plan.groups()),
               TextTable::num(r.ipcSum, 3),
               TextTable::num(r.elapsedNs / 1000.0, 1),
               TextTable::num(r.avgPowerMw, 0),
               std::to_string(r.memReads),
               TextTable::num(static_cast<double>(laps) /
                                  r.cores.size(), 2)});
    }
    t.print();

    // Step 4: traces and synthetics mix freely in one run.
    std::printf("\nMixed run: core 0 replays %s, cores 1-3 run live "
                "generators.\n", bins[0].c_str());
    AddressMap map(cfg.mem, cfg.mapPolicy);
    std::vector<StreamSpec> mixed;
    mixed.push_back(traceStreamSpec(
        bins[0], benchmarkProfile(mix.benchmarks[0]).baseIpc));
    for (int core = 1; core < cfg.cores; ++core)
        mixed.push_back(syntheticStreamSpec(
            mix.benchmarks[core], map.capacity(), core,
            mixCoreSeed(cfg.seed, core)));
    SimResult r = simulateStreams(std::move(mixed), cfg, {});
    for (const CoreResult &core : r.cores)
        std::printf("  %-28s IPC %.3f  (%llu laps)\n",
                    core.benchmark.c_str(), core.ipc,
                    static_cast<unsigned long long>(core.traceLaps));

    std::filesystem::remove_all(dir);
    return 0;
}
