/**
 * @file
 * Deep-dive into the Section 4.2.2 test-pattern scrubber.
 *
 * Demonstrates why the write-0/write-1 patterns matter: a stuck-at
 * fault hiding under matching data is invisible to a conventional
 * read-only scrub but is flushed out by the pattern scrub.  Also walks
 * a page through relaxed -> upgraded -> (second fault) -> upgraded-2,
 * the Chapter 5.1 escalation, on a four-channel memory.
 *
 * Build & run:  ./build/examples/scrub_and_upgrade
 */

#include <cstdio>
#include <vector>

#include "arcc/arcc_memory.hh"
#include "arcc/scrubber.hh"
#include "common/rng.hh"

using namespace arcc;

namespace
{

void
hiddenStuckAtDemo()
{
    std::printf("--- hidden stuck-at fault vs the pattern scrub ---\n");
    ArccMemory mem(FunctionalConfig::arccSmall());
    Scrubber relax_only(ScrubberConfig{.testPatterns = false,
                                       .relaxCleanPages = true,
                                       .allowLevel2 = false});
    relax_only.scrub(mem);

    // Write all-ones into line 0, then make one cell of device 1 stick
    // at 1: the content already matches the defect.
    std::vector<std::uint8_t> ones(kLineBytes, 0xff);
    mem.write(0, ones);
    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 1;
    f.scope = FaultScope::Cell;
    f.bank = 0;
    f.row = 0;
    f.col = 0;
    f.kind = FaultKind::StuckAt1;
    mem.injectFault(f);

    ScrubberConfig conventional;
    conventional.testPatterns = false;
    ScrubReport r1 = Scrubber(conventional).scrub(mem);
    std::printf("conventional read-only scrub: %zu faulty pages "
                "(the defect hides under matching data)\n",
                r1.faultyPages.size());

    ScrubReport r2 = Scrubber().scrub(mem);
    std::printf("ARCC pattern scrub: %zu faulty page(s), "
                "%llu stuck-at-1 detections -> page upgraded\n",
                r2.faultyPages.size(),
                static_cast<unsigned long long>(r2.stuckAt1Found));
}

void
escalationDemo()
{
    std::printf("\n--- Chapter 5.1: escalating to 8 check symbols ---\n");
    // Four channels, ARCC over double chip sparing, level 2 allowed.
    ArccMemory mem(FunctionalConfig::arccWide());
    Rng rng(7);
    std::vector<std::vector<std::uint8_t>> golden;
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
        golden.push_back(std::move(line));
    }
    Scrubber scrubber;
    scrubber.bootScrub(mem);
    std::printf("boot: all %llu pages relaxed (RS(18,16))\n",
                static_cast<unsigned long long>(
                    mem.pageTable().pages()));

    auto kill = [&](int channel, int device) {
        FunctionalFault f;
        f.channel = channel;
        f.rank = 0;
        f.device = device;
        f.scope = FaultScope::Device;
        f.kind = FaultKind::Corrupt;
        mem.injectFault(f);
    };

    kill(0, 3);
    scrubber.scrub(mem);
    std::printf("after device death #1: %llu pages upgraded to "
                "RS(36,32) across 2 channels\n",
                static_cast<unsigned long long>(
                    mem.pageTable().count(PageMode::Upgraded)));

    // The hard fault keeps tripping the scrub; the next scrub
    // escalates the affected pages to RS(72,64) over 4 channels.
    scrubber.scrub(mem);
    std::printf("after the next scrub: %llu pages at level 2 "
                "(RS(72,64), 8 check symbols)\n",
                static_cast<unsigned long long>(
                    mem.pageTable().count(PageMode::Upgraded2)));

    // A second whole-device failure elsewhere is now survivable
    // (maxCorrect = 2 under chip sparing).
    kill(2, 8);
    std::size_t i = 0;
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes, ++i) {
        ReadResult r = mem.read(addr);
        if (r.status == DecodeStatus::Detected ||
            r.data != golden[i]) {
            std::printf("data lost at %llu!\n",
                        static_cast<unsigned long long>(addr));
            return;
        }
    }
    std::printf("after device death #2: all data still correct "
                "through two whole-device failures.\n");
}

} // namespace

int
main()
{
    hiddenStuckAtDemo();
    escalationDemo();
    return 0;
}
