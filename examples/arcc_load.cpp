/**
 * @file
 * arcc_load -- concurrent load generator and determinism harness for
 * arccd.
 *
 * Drives the shared standardServiceRequests() set against a running
 * daemon from many pipelining clients at once, three ways at once:
 *
 *  - **stress**: clients x set x passes requests (312 at the
 *    defaults) hit the daemon concurrently, each client submitting
 *    the set in a different rotation so arrival order varies;
 *  - **determinism**: every client digests its responses in set
 *    order; all digests must be identical (same request => byte-
 *    identical response regardless of concurrency, cache state, or
 *    arrival order), and the warm passes must byte-match the cold
 *    one.  The digest is printed for CI to diff against its golden.
 *  - **cache**: the warm passes must be >= 90% cache-served
 *    (measured from the daemon's stats counters, which are sampled
 *    between phases, never folded into the digest).
 *
 * Usage:
 *   arcc_load --socket PATH [--clients N] [--repeats N] [--instrs N]
 *             [--campaign-channels N] [--shutdown]
 *
 * Exit status 0 = every assertion held.
 */

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/crc32c.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/parse_num.hh"
#include "common/rng.hh"
#include "service/request.hh"

using namespace arcc;

namespace
{

/** Blocking line-oriented client over one Unix socket. */
class LineClient
{
  public:
    ~LineClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connect(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.empty() || path.size() >= sizeof addr.sun_path)
            return false;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0) {
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        return true;
    }

    bool
    sendLine(const std::string &line)
    {
        std::string out = line;
        out.push_back('\n');
        std::size_t sent = 0;
        while (sent < out.size()) {
            const ssize_t n = ::send(fd_, out.data() + sent,
                                     out.size() - sent, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    readLine(std::string &out)
    {
        for (;;) {
            const std::size_t nl = pending_.find('\n');
            if (nl != std::string::npos) {
                out = pending_.substr(0, nl);
                pending_.erase(0, nl + 1);
                return true;
            }
            char buf[65536];
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            pending_.append(buf, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string pending_;
};

/** Fold one set-ordered response list into a stable digest. */
std::uint64_t
digestResponses(const std::vector<std::string> &responses)
{
    std::uint64_t h = 0x6172636364ULL; // "arccd"
    for (std::size_t i = 0; i < responses.size(); ++i) {
        const std::string &r = responses[i];
        h = Rng::mix64(h ^ i);
        h = Rng::mix64(h ^ r.size());
        h = Rng::mix64(
            h ^ crc32c({reinterpret_cast<const std::uint8_t *>(
                            r.data()),
                        r.size()}));
    }
    return h;
}

/** One client's pass outcome. */
struct ClientResult
{
    /** Responses in *set* order (rotation undone). */
    std::vector<std::string> responses;
    std::string error;
};

/**
 * Pipeline the whole request set rotated by `offset`, then read the
 * responses back (in-order delivery is the server's contract) and
 * un-rotate them into set order.
 */
void
runPass(const std::string &socket,
        const std::vector<std::string> &lines, std::size_t offset,
        ClientResult &out)
{
    LineClient client;
    if (!client.connect(socket)) {
        out.error = "cannot connect to " + socket;
        return;
    }
    const std::size_t n = lines.size();
    for (std::size_t k = 0; k < n; ++k) {
        if (!client.sendLine(lines[(k + offset) % n])) {
            out.error = "send failed";
            return;
        }
    }
    out.responses.assign(n, std::string());
    for (std::size_t k = 0; k < n; ++k) {
        std::string resp;
        if (!client.readLine(resp)) {
            out.error = "daemon hung up mid-pass";
            return;
        }
        out.responses[(k + offset) % n] = std::move(resp);
    }
}

/** Sample the daemon's stats counters on a fresh connection. */
bool
sampleStats(const std::string &socket, std::uint64_t &hits,
            std::uint64_t &misses)
{
    LineClient client;
    std::string resp;
    if (!client.connect(socket) ||
        !client.sendLine("{\"kind\":\"stats\"}") ||
        !client.readLine(resp))
        return false;
    json::Value doc;
    std::string error;
    if (!json::parse(resp, doc, error))
        return false;
    const json::Value *stats = doc.find("stats");
    if (!stats)
        return false;
    const json::Value *h = stats->find("hits");
    const json::Value *m = stats->find("misses");
    if (!h || !h->isUint || !m || !m->isUint)
        return false;
    hits = h->uintValue;
    misses = m->uintValue;
    return true;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--clients N] [--repeats N]\n"
                 "          [--instrs N] [--campaign-channels N]\n"
                 "          [--shutdown]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket;
    std::uint64_t clients = 8;
    std::uint64_t repeats = 2;
    std::uint64_t instrs = 50'000;
    std::uint64_t channels = 64;
    bool shutdownAfter = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (a == "--socket")
            socket = need("--socket");
        else if (a == "--clients")
            clients = parseU64("--clients", need("--clients"));
        else if (a == "--repeats")
            repeats = parseU64("--repeats", need("--repeats"));
        else if (a == "--instrs")
            instrs = parseU64("--instrs", need("--instrs"));
        else if (a == "--campaign-channels")
            channels = parseU64("--campaign-channels",
                                need("--campaign-channels"));
        else if (a == "--shutdown")
            shutdownAfter = true;
        else {
            usage(argv[0]);
            return a == "--help" ? 0 : 1;
        }
    }
    if (socket.empty() || clients < 1 || clients > 64 ||
        instrs < 1 || channels < 1) {
        usage(argv[0]);
        return 1;
    }

    std::vector<std::string> lines;
    for (const ServiceRequest &r :
         standardServiceRequests(instrs, channels))
        lines.push_back(r.canonical());

    // ---- Phase A: the cold pass, all clients at once. ----------------
    std::vector<ClientResult> cold(clients);
    {
        std::vector<std::thread> threads;
        for (std::uint64_t c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                runPass(socket, lines, c, cold[c]);
            });
        for (std::thread &t : threads)
            t.join();
    }
    for (std::uint64_t c = 0; c < clients; ++c) {
        if (!cold[c].error.empty()) {
            std::fprintf(stderr, "arcc_load: client %llu: %s\n",
                         static_cast<unsigned long long>(c),
                         cold[c].error.c_str());
            return 1;
        }
        for (std::size_t k = 0; k < lines.size(); ++k) {
            if (cold[c].responses[k].rfind("{\"ok\":true", 0) != 0) {
                std::fprintf(stderr,
                             "arcc_load: request %zu failed: %s\n", k,
                             cold[c].responses[k].c_str());
                return 1;
            }
        }
    }
    const std::uint64_t digest = digestResponses(cold[0].responses);
    for (std::uint64_t c = 1; c < clients; ++c) {
        if (digestResponses(cold[c].responses) != digest) {
            std::fprintf(stderr,
                         "arcc_load: client %llu saw different "
                         "responses than client 0\n",
                         static_cast<unsigned long long>(c));
            return 1;
        }
    }

    std::uint64_t hits0 = 0, misses0 = 0;
    if (!sampleStats(socket, hits0, misses0)) {
        std::fprintf(stderr, "arcc_load: stats sample failed\n");
        return 1;
    }

    // ---- Phase B: the warm passes; must byte-match the cold one. -----
    std::uint64_t mismatches = 0;
    if (repeats > 0) {
        std::vector<std::vector<ClientResult>> warm(
            clients, std::vector<ClientResult>(repeats));
        std::vector<std::thread> threads;
        for (std::uint64_t c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                for (std::uint64_t r = 0; r < repeats; ++r)
                    runPass(socket, lines, c + r + 1, warm[c][r]);
            });
        for (std::thread &t : threads)
            t.join();
        for (std::uint64_t c = 0; c < clients; ++c) {
            for (std::uint64_t r = 0; r < repeats; ++r) {
                if (!warm[c][r].error.empty()) {
                    std::fprintf(
                        stderr, "arcc_load: warm client %llu: %s\n",
                        static_cast<unsigned long long>(c),
                        warm[c][r].error.c_str());
                    return 1;
                }
                if (warm[c][r].responses != cold[c].responses)
                    ++mismatches;
            }
        }
    }
    if (mismatches) {
        std::fprintf(stderr,
                     "arcc_load: %llu warm passes differed from the "
                     "cold pass\n",
                     static_cast<unsigned long long>(mismatches));
        return 1;
    }

    std::uint64_t hits1 = 0, misses1 = 0;
    if (!sampleStats(socket, hits1, misses1)) {
        std::fprintf(stderr, "arcc_load: stats sample failed\n");
        return 1;
    }

    const std::uint64_t total =
        clients * lines.size() * (1 + repeats);
    const std::uint64_t warmRequests =
        clients * lines.size() * repeats;
    const std::uint64_t warmHits = hits1 - hits0;
    const double hitPct =
        warmRequests
            ? 100.0 * static_cast<double>(warmHits) /
                  static_cast<double>(warmRequests)
            : 100.0;

    std::printf("arcc_load: %llu clients x %zu requests x %llu "
                "passes = %llu requests\n",
                static_cast<unsigned long long>(clients),
                lines.size(),
                static_cast<unsigned long long>(1 + repeats),
                static_cast<unsigned long long>(total));
    std::printf("response_digest 0x%016llx\n",
                static_cast<unsigned long long>(digest));
    std::printf("repeat_leg: %llu/%llu cache-served (%.1f%%)\n",
                static_cast<unsigned long long>(warmHits),
                static_cast<unsigned long long>(warmRequests),
                hitPct);

    if (repeats > 0 && hitPct < 90.0) {
        std::fprintf(stderr,
                     "arcc_load: warm passes were only %.1f%% "
                     "cache-served (need >= 90%%)\n",
                     hitPct);
        return 1;
    }

    if (shutdownAfter) {
        LineClient client;
        std::string resp;
        if (!client.connect(socket) ||
            !client.sendLine("{\"kind\":\"shutdown\"}") ||
            !client.readLine(resp)) {
            std::fprintf(stderr, "arcc_load: shutdown failed\n");
            return 1;
        }
    }
    return 0;
}
