/**
 * @file
 * Quickstart: the ARCC mechanism in ~80 lines.
 *
 * Builds a small functional ARCC memory, writes data, relaxes the
 * fault-free pages, kills a DRAM device, lets the scrubber find it and
 * upgrade the affected pages, and shows that every byte survives while
 * fault-free pages keep paying the cheap 18-device access price.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "arcc/arcc_memory.hh"
#include "arcc/scrubber.hh"
#include "common/rng.hh"

using namespace arcc;

int
main()
{
    // A 512KB ARCC memory: 2 channels x 2 ranks x 18 devices, the
    // Table 7.1 geometry scaled down for a quick functional demo.
    ArccMemory memory(FunctionalConfig::arccSmall());
    std::printf("ARCC quickstart: %llu pages, scheme '%s'\n",
                static_cast<unsigned long long>(
                    memory.pageTable().pages()),
                toString(memory.config().scheme));

    // 1. Fill memory with data (the OS boots with pages upgraded).
    Rng rng(42);
    std::vector<std::vector<std::uint8_t>> golden;
    for (std::uint64_t addr = 0; addr < memory.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        memory.write(addr, line);
        golden.push_back(std::move(line));
    }

    // 2. First scrub relaxes every fault-free page (Section 4.2.1).
    Scrubber scrubber;
    ScrubReport boot = scrubber.bootScrub(memory);
    std::printf("boot scrub: %llu pages relaxed -> every read now "
                "touches 18 devices instead of 36\n",
                static_cast<unsigned long long>(boot.pagesRelaxed));

    // 3. Disaster: a whole DRAM device dies in channel 0, rank 0.
    FunctionalFault fault;
    fault.channel = 0;
    fault.rank = 0;
    fault.device = 11;
    fault.scope = FaultScope::Device;
    fault.kind = FaultKind::Corrupt;
    memory.injectFault(fault);
    std::printf("injected: whole-device fault (channel 0, rank 0, "
                "device 11)\n");

    // Reads still come back correct: single chipkill correct.
    ReadResult r = memory.read(0);
    std::printf("read through the fault: status=%s, data intact=%s\n",
                r.status == DecodeStatus::Corrected ? "corrected"
                                                    : "clean",
                r.data == golden[0] ? "yes" : "NO");

    // 4. The next scrub detects the fault and upgrades only the
    //    affected pages (rank 0 -> half the memory, Table 7.4).
    ScrubReport rep = scrubber.scrub(memory);
    std::printf("scrub: %zu faulty pages found, %llu upgraded; "
                "upgraded fraction now %.1f%%\n",
                rep.faultyPages.size(),
                static_cast<unsigned long long>(rep.pagesUpgraded),
                memory.pageTable().upgradedFraction() * 100.0);

    // 5. Verify every byte of memory through the batched access path
    //    (a sequential sweep decodes each upgraded 128B group once
    //    instead of once per 64B line).
    std::vector<std::uint64_t> addrs;
    for (std::uint64_t addr = 0; addr < memory.capacity();
         addr += kLineBytes)
        addrs.push_back(addr);
    std::vector<ReadResult> checks = memory.accessBatch(addrs);
    for (std::size_t i = 0; i < checks.size(); ++i) {
        if (checks[i].status == DecodeStatus::Detected ||
            checks[i].data != golden[i]) {
            std::printf("DATA LOSS at %llu!\n",
                        static_cast<unsigned long long>(addrs[i]));
            return 1;
        }
    }
    std::printf("verified: all %zu lines intact; upgraded pages now "
                "detect a second device failure, relaxed pages still "
                "run at half the access power.\n",
                checks.size());
    return 0;
}
