/**
 * @file
 * A tour of the ECC substrate: encode a cache line under every scheme
 * the paper discusses, break devices, and watch each code's guarantee
 * play out (Figure 2.1 / Chapter 2 semantics).
 *
 * Build & run:  ./build/examples/ecc_playground
 */

#include <cstdio>
#include <string>
#include <vector>

#include "arcc/ecc_scheme.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "ecc/secded.hh"

using namespace arcc;

namespace
{

const char *
outcome(const DecodeResult &res, bool data_ok)
{
    switch (res.status) {
      case DecodeStatus::Clean:
        return data_ok ? "clean" : "SILENT CORRUPTION";
      case DecodeStatus::Corrected:
        return data_ok ? "corrected" : "MISCORRECTED";
      case DecodeStatus::Detected:
        return "detected (DUE)";
    }
    return "?";
}

/** Kill `kills` whole devices and decode; report what happened. */
std::string
tryKills(const LineCodec &codec, int kills, Rng &rng)
{
    std::vector<std::uint8_t> data(codec.dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    DeviceSlices slices = codec.encode(data);
    for (int v = 0; v < kills; ++v)
        for (auto &b : slices[(v * 7 + 1) % codec.devices()])
            b ^= static_cast<std::uint8_t>(rng.range(1, 255));
    std::vector<std::uint8_t> out(codec.dataBytes());
    DecodeResult res = codec.decode(slices, out);
    return outcome(res, out == data);
}

} // namespace

int
main()
{
    Rng rng(2013);

    printBanner("Chipkill schemes vs whole-device failures");
    TextTable t;
    t.header({"Scheme", "devices", "check sym/cw", "0 dead", "1 dead",
              "2 dead"});
    struct Entry
    {
        const char *label;
        std::unique_ptr<LineCodec> codec;
        const char *checks;
    };
    std::vector<Entry> entries;
    entries.push_back({"commercial SCCDCD", schemes::commercialSccdcd(),
                       "4"});
    entries.push_back({"double chip sparing",
                       schemes::doubleChipSparing(), "4 (3+spare)"});
    entries.push_back({"ARCC relaxed", schemes::arccRelaxed(), "2"});
    entries.push_back({"ARCC upgraded", schemes::arccUpgraded(), "4"});
    entries.push_back({"ARCC upgraded-2", schemes::arccUpgraded2(),
                       "8"});
    entries.push_back({"LOT-ECC 9-device", schemes::lotEcc9(),
                       "checksum+XOR"});
    entries.push_back({"LOT-ECC 18-device", schemes::lotEcc18(),
                       "checksum+XOR+spare"});
    for (auto &e : entries) {
        t.row({e.label, std::to_string(e.codec->devices()), e.checks,
               tryKills(*e.codec, 0, rng), tryKills(*e.codec, 1, rng),
               tryKills(*e.codec, 2, rng)});
    }
    t.print();
    std::printf("\nNote the table's story: every chipkill scheme "
                "survives one dead device; only the\nfour-check-symbol "
                "codes *detect* two; only chip sparing *corrects* "
                "two.  ARCC's trick\nis moving pages from row 3 to "
                "row 4 on demand.\n");

    printBanner("Erasure decoding (chip sparing after diagnosis)");
    {
        auto codec = schemes::doubleChipSparing();
        std::vector<std::uint8_t> data(codec->dataBytes());
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        DeviceSlices slices = codec->encode(data);
        // Device 9 was diagnosed bad and remapped: decode treats it as
        // an erasure, leaving headroom to correct a *new* error too.
        for (auto &b : slices[9])
            b = 0x00;
        for (auto &b : slices[20])
            b ^= 0x41;
        std::vector<std::uint8_t> out(codec->dataBytes());
        std::vector<int> erased = {9};
        DecodeResult res = codec->decode(slices, out, erased);
        std::printf("erased device 9 + fresh error in device 20: %s\n",
                    outcome(res, out == data));
    }

    printBanner("SECDED (the 9-device baseline ARCC leaves behind)");
    {
        std::uint64_t word = 0x0123456789abcdefULL;
        std::uint8_t check = Secded::encode(word);
        std::uint64_t w1 = word ^ (1ULL << 42);
        std::uint8_t c1 = check;
        auto r1 = Secded::decode(w1, c1);
        std::printf("single bit flip : %s (bit %d)\n",
                    r1.status == DecodeStatus::Corrected ? "corrected"
                                                         : "?!",
                    r1.bitCorrected);
        std::uint64_t w2 = word ^ (1ULL << 3) ^ (1ULL << 57);
        std::uint8_t c2 = check;
        auto r2 = Secded::decode(w2, c2);
        std::printf("double bit flip : %s\n",
                    r2.status == DecodeStatus::Detected
                        ? "detected (DUE)"
                        : "?!");
        std::printf("...but a whole-device failure takes out 4+ bits "
                    "at once: SECDED cannot cope,\nwhich is why "
                    "chipkill exists (Chapter 1).\n");
    }
    return 0;
}
