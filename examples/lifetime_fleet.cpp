/**
 * @file
 * Fleet-scale reliability planning with the ARCC library.
 *
 * A capacity planner's view: given a fleet of chipkill-protected
 * servers and a target lifespan, what fraction of memory will be
 * running upgraded, what does that cost in power, and what silent
 * data corruption exposure does the ARCC relaxation add?  Exercises
 * the lifetime Monte Carlo, the analytic cross-check, and the SDC
 * models on a user-chosen configuration.
 *
 * Usage:  lifetime_fleet [years] [rate_factor] [channels]
 */

#include <cstdio>
#include <cstdlib>

#include "common/parse_num.hh"
#include "common/table.hh"
#include "faults/lifetime_mc.hh"
#include "reliability/sdc_model.hh"

using namespace arcc;

int
main(int argc, char **argv)
{
    double years = argc > 1 ? parseDouble("years", argv[1]) : 7.0;
    double factor =
        argc > 2 ? parseDouble("rate_factor", argv[2]) : 1.0;
    int channels = argc > 3 ? parseInt("channels", argv[3]) : 10000;
    if (years <= 0 || factor <= 0 || channels <= 0) {
        std::fprintf(stderr,
                     "usage: %s [years>0] [rate_factor>0] [channels>0]\n",
                     argv[0]);
        return 1;
    }

    std::printf("Fleet study: %d channels (72 DDR2 devices each), "
                "%.1f years, %.1fx field fault rates\n\n",
                channels, years, factor);

    LifetimeMcConfig cfg;
    cfg.rates = FaultRates::fieldStudy().scaled(factor);
    cfg.channels = channels;
    cfg.years = years;
    cfg.gridPerYear = 4;
    LifetimeMc mc(cfg);

    AffectedCurve curve = mc.affectedFraction();
    TextTable t;
    t.header({"Year", "Pages upgraded (fleet avg)",
              "Analytic check"});
    for (std::size_t i = 0; i < curve.timeYears.size(); ++i) {
        if (curve.timeYears[i] !=
            static_cast<int>(curve.timeYears[i]))
            continue;
        t.row({TextTable::num(curve.timeYears[i], 0),
               TextTable::pct(curve.avgFraction[i], 3),
               TextTable::pct(
                   mc.analyticAffectedFraction(curve.timeYears[i]),
                   3)});
    }
    t.print();

    // The power meaning of that fraction: upgraded accesses touch 36
    // devices instead of 18, so the fleet-average power overhead is
    // bounded by the upgraded fraction (worst case, Figure 7.4).
    double end_frac = curve.avgFraction.back();
    std::printf("\nWorst-case power overhead at end of life: %.2f%% "
                "(vs the ~36%% fault-free saving)\n",
                end_frac * 100.0);

    // SDC exposure of the ARCC relaxation.
    SdcModelConfig base = SdcModelConfig::sccdcdMachine();
    base.rates = cfg.rates;
    SdcModelConfig ar = SdcModelConfig::arccMachine();
    ar.rates = cfg.rates;
    double ded = SdcModel(base).sccdcdSdcPer1000MachineYears(years);
    double arcc_ded = SdcModel(ar).arccSdcPer1000MachineYears(years);
    std::printf("\nSDC exposure per 1000 machine-years: "
                "commercial DED %.2e, ARCC DED %.2e\n",
                ded, arcc_ded);
    std::printf("Fleet-wide over the whole study: %.4f expected SDC "
                "events in %d machines x %.0f years\n",
                arcc_ded / 1000.0 * channels * years, channels, years);
    std::printf("\nConclusion: at %.1fx rates the fleet runs >%.0f%% "
                "of its life at relaxed power and the added silent-"
                "error exposure stays negligible.\n",
                factor, (1.0 - end_frac) * 100.0);
    return 0;
}
