/**
 * @file
 * arccd -- the simulation-as-a-service daemon.
 *
 * Serves newline-delimited JSON requests (synthetic mixes, trace
 * replays, campaign slices) over a Unix domain socket, with fair
 * per-client queueing and responses memoized by canonical request.
 * See docs/ARCHITECTURE.md ("The service daemon") for the request
 * lifecycle and src/service/request.hh for the wire schema.
 *
 * Usage:
 *   arccd --socket PATH [--workers N] [--cache-entries N]
 *         [--cache-mb N]
 *
 * The daemon prints one "listening" line once the socket is ready
 * (scripts wait for it), then serves until a client sends
 * {"kind":"shutdown"}.  Exit prints the final scheduler counters.
 *
 * Example session:
 *   arccd --socket /tmp/arccd.sock &
 *   printf '%s\n' '{"kind":"mix","mix":"Mix3","fault":"device"}' |
 *       nc -U /tmp/arccd.sock
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/parse_num.hh"
#include "service/server.hh"

using namespace arcc;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--workers N]\n"
                 "          [--cache-entries N] [--cache-mb N]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    ArccdServer::Options opts;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (a == "--socket") {
            opts.socketPath = need("--socket");
        } else if (a == "--workers") {
            const std::uint64_t n =
                parseU64("--workers", need("--workers"));
            if (n < 1 || n > 256)
                fatal("--workers=%llu: need [1, 256]",
                      static_cast<unsigned long long>(n));
            opts.service.workers = static_cast<int>(n);
        } else if (a == "--cache-entries") {
            const std::uint64_t n = parseU64("--cache-entries",
                                             need("--cache-entries"));
            if (n < 1)
                fatal("--cache-entries must be >= 1");
            opts.service.cache.maxEntries =
                static_cast<std::size_t>(n);
        } else if (a == "--cache-mb") {
            const std::uint64_t n =
                parseU64("--cache-mb", need("--cache-mb"));
            if (n < 1 || n > (64ULL << 10))
                fatal("--cache-mb=%llu: need [1, 65536]",
                      static_cast<unsigned long long>(n));
            opts.service.cache.maxBytes =
                static_cast<std::size_t>(n) << 20;
        } else {
            usage(argv[0]);
            return a == "--help" ? 0 : 1;
        }
    }
    if (opts.socketPath.empty()) {
        usage(argv[0]);
        return 1;
    }

    ArccdServer server(opts);
    std::string error;
    if (!server.start(error))
        fatal("arccd: %s", error.c_str());
    std::printf("arccd listening on %s (%d workers)\n",
                opts.socketPath.c_str(), opts.service.workers);
    std::fflush(stdout);

    server.waitForShutdown();
    server.stop();

    const ServiceStats s = server.service().stats();
    std::printf("arccd exiting: %llu requests (%llu ok, %llu errors), "
                "%llu hits / %llu misses / %llu coalesced, "
                "%llu cached entries\n",
                static_cast<unsigned long long>(s.received),
                static_cast<unsigned long long>(s.ok),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.cacheHits),
                static_cast<unsigned long long>(s.cacheMisses),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.cacheEntries));
    return 0;
}
