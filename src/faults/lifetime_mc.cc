/**
 * @file
 * Fleet Monte Carlo implementation.
 */

#include "faults/lifetime_mc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

namespace
{

// AffectedTracker moved to faults/fault_model.{hh,cc} so the campaign
// driver shares the exact footprint-union arithmetic.

/** Elementwise-sum fold shared by the sharded reductions. */
void
addInto(std::vector<double> &acc, const std::vector<double> &partial)
{
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] += partial[i];
}

} // anonymous namespace

LifetimeMc::LifetimeMc(const LifetimeMcConfig &config, SimEngine *engine)
    : config_(config),
      engine_(engine ? engine : &SimEngine::global())
{
    if (config_.channels <= 0)
        fatal("LifetimeMc: need at least one channel");
    if (config_.shardChannels <= 0)
        fatal("LifetimeMc: shardChannels must be positive");
}

AffectedCurve
LifetimeMc::affectedFraction() const
{
    const int points =
        static_cast<int>(config_.years * config_.gridPerYear);
    AffectedCurve curve;
    curve.timeYears.resize(points);
    for (int p = 0; p < points; ++p)
        curve.timeYears[p] =
            (p + 1) / static_cast<double>(config_.gridPerYear);

    const double hours = config_.years * kHoursPerYear;
    FaultSampler sampler(config_.geom, config_.rates);

    // Shard the fleet: each shard sums its channels' curves locally,
    // the engine folds the partials in shard order.  Channel c's
    // generator is a pure function of (seed, c), so the histories are
    // independent of sharding and thread count alike.
    curve.avgFraction = engine_->mapReduce(
        static_cast<std::uint64_t>(config_.channels),
        static_cast<std::uint64_t>(config_.shardChannels),
        std::vector<double>(points, 0.0),
        [&](const ShardRange &shard) {
            std::vector<double> partial(points, 0.0);
            for (std::uint64_t c = shard.begin; c < shard.end; ++c) {
                Rng chan_rng = Rng::stream(config_.seed, c);
                auto events = sampler.sampleLifetime(hours, chan_rng);
                AffectedTracker tracker(config_.geom);
                std::size_t next = 0;
                for (int p = 0; p < points; ++p) {
                    double t_hours =
                        curve.timeYears[p] * kHoursPerYear;
                    while (next < events.size() &&
                           events[next].timeHours <= t_hours) {
                        tracker.apply(events[next]);
                        ++next;
                    }
                    partial[p] += tracker.fraction();
                }
            }
            return partial;
        },
        [](std::vector<double> &acc, std::vector<double> &&partial) {
            addInto(acc, partial);
        });

    for (double &f : curve.avgFraction)
        f /= config_.channels;
    return curve;
}

std::vector<double>
LifetimeMc::cumulativeOverheadByYear(const PerTypeOverhead &overhead,
                                     double cap) const
{
    const int years = static_cast<int>(config_.years);
    const double hours = config_.years * kHoursPerYear;
    FaultSampler sampler(config_.geom, config_.rates);

    std::vector<double> by_year = engine_->mapReduce(
        static_cast<std::uint64_t>(config_.channels),
        static_cast<std::uint64_t>(config_.shardChannels),
        std::vector<double>(years, 0.0),
        [&](const ShardRange &shard) {
            std::vector<double> partial(years, 0.0);
            for (std::uint64_t c = shard.begin; c < shard.end; ++c) {
                // seed + 1 keeps this experiment's streams disjoint
                // from affectedFraction's, as the fork()-based code
                // did before it.
                Rng chan_rng = Rng::stream(config_.seed + 1, c);
                auto events = sampler.sampleLifetime(hours, chan_rng);

                // Integrate the per-channel overhead step function.
                for (int y = 1; y <= years; ++y) {
                    double horizon = y * kHoursPerYear;
                    double integral = 0.0;
                    double level = 0.0;
                    double raw = 0.0;
                    double prev_t = 0.0;
                    for (const FaultEvent &e : events) {
                        if (e.timeHours > horizon)
                            break;
                        integral += level * (e.timeHours - prev_t);
                        raw += overhead[static_cast<int>(e.type)];
                        level = std::min(raw, cap);
                        prev_t = e.timeHours;
                    }
                    integral += level * (horizon - prev_t);
                    partial[y - 1] += integral / horizon;
                }
            }
            return partial;
        },
        [](std::vector<double> &acc, std::vector<double> &&partial) {
            addInto(acc, partial);
        });

    for (double &v : by_year)
        v /= config_.channels;
    return by_year;
}

double
LifetimeMc::analyticAffectedFraction(double years) const
{
    // Independence approximation: each fault mode affects its page
    // fraction with Poisson-arrival probability 1 - exp(-rate * t).
    const double hours = years * kHoursPerYear;
    const double devices = config_.geom.totalDevices();
    double unaffected = 1.0;
    for (FaultType t : allFaultTypes()) {
        double rate = fitToPerHour(config_.rates[t]) * devices;
        double p_any = 1.0 - std::exp(-rate * hours);
        unaffected *= 1.0 - p_any * config_.geom.pageFraction(t);
    }
    return 1.0 - unaffected;
}

} // namespace arcc
