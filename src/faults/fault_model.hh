/**
 * @file
 * DRAM device-level fault taxonomy, field-study failure rates, and the
 * fault-to-page geometry of Table 7.4.
 *
 * Fault modes and per-device FIT rates approximate the large DDR2 field
 * study of Sridharan & Liberty (SC'12), the paper's reference [2].  The
 * worst-case assumption of Chapter 3 is preserved: a device-level fault
 * corrupts *every* memory location under the affected circuitry, so a
 * bank fault taints every page mapped to that bank, a column fault
 * taints every page whose half-row contains the column, and so on.
 */

#ifndef ARCC_FAULTS_FAULT_MODEL_HH
#define ARCC_FAULTS_FAULT_MODEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace arcc
{

/** Device-level DRAM fault modes. */
enum class FaultType : int
{
    Bit = 0, ///< single bit.
    Word,    ///< single word (a few adjacent bits).
    Column,  ///< one column of one bank.
    Row,     ///< one row of one bank.
    Bank,    ///< a whole bank ("subbank" in Table 7.4).
    Device,  ///< multiple banks / the whole device.
    Lane,    ///< multi-rank: a shared data lane, hits both ranks.
};

/** Number of fault modes. */
constexpr int kNumFaultTypes = 7;

/** Display name. */
const char *toString(FaultType t);

/** All types, for iteration. */
const std::array<FaultType, kNumFaultTypes> &allFaultTypes();

/**
 * Per-device failure rates in FIT (failures per 1e9 device-hours).
 */
struct FaultRates
{
    std::array<double, kNumFaultTypes> fit{};

    double &operator[](FaultType t) { return fit[static_cast<int>(t)]; }
    double
    operator[](FaultType t) const
    {
        return fit[static_cast<int>(t)];
    }

    /** Sum over all modes. */
    double totalFit() const;

    /** Uniformly scaled copy (the paper's 1x / 2x / 4x sweeps). */
    FaultRates scaled(double factor) const;

    /**
     * DDR2 rates approximating Sridharan & Liberty SC'12.  A 36-device
     * DIMM under these rates sees ~1.8%/year any-fault incidence; the
     * paper quotes 2.95% [2] to 8% [1].
     */
    static FaultRates fieldStudy();
};

/**
 * Geometry of one *memory channel* in the paper's reliability sense:
 * the unit Figure 3.1 and Chapter 6 reason about (two ranks, 36 devices
 * each, for the commercial baseline; the ARCC configuration has the
 * same 72 devices arranged as 2 channels x 2 ranks x 18).
 */
struct DomainGeometry
{
    int ranks = 2;
    int devicesPerRank = 36;
    int banksPerDevice = 8;
    int pagesPerRow = 2;
    /** 4KB data pages in the domain. */
    std::uint64_t pages = 1048576; // 4 GB

    int totalDevices() const { return ranks * devicesPerRank; }

    /**
     * Worst-case fraction of the domain's pages affected by one fault
     * of the given type (Table 7.4 plus the small row/word/bit modes).
     */
    double pageFraction(FaultType t) const;
};

/** One fault arrival in a simulated lifetime. */
struct FaultEvent
{
    double timeHours = 0.0;
    FaultType type = FaultType::Bit;
    /** Affected rank (lane faults span all ranks). */
    int rank = 0;
    /** Affected bank within the device (bank/column/row/word/bit). */
    int bank = 0;
    /** Affected half of the rows' pages (column faults), 0 or 1. */
    int half = 0;
    /** Device within the rank. */
    int device = 0;
};

/**
 * Samples fault-arrival histories for one domain (Poisson arrivals per
 * mode at rate FIT x devices).
 */
class FaultSampler
{
  public:
    FaultSampler(const DomainGeometry &geom, const FaultRates &rates);

    /** Sample one lifetime of `hours`; events sorted by time. */
    std::vector<FaultEvent> sampleLifetime(double hours, Rng &rng) const;

    /**
     * Sort events by arrival time with a *stable* sort: equal
     * timestamps keep their type-major insertion order, making the
     * sampled history independent of the standard library's sort
     * implementation.  Exposed for the determinism regression test.
     */
    static void sortEvents(std::vector<FaultEvent> &events);

    const DomainGeometry &geometry() const { return geom_; }
    const FaultRates &rates() const { return rates_; }

  private:
    DomainGeometry geom_;
    FaultRates rates_;
};

/**
 * Exact union tracker for the worst-case page footprint of big faults:
 * the domain is a grid of (rank, bank, half) cells, each covering
 * 1 / (ranks * banks * 2) of the pages; small faults (row/word/bit)
 * add their handful of pages additively (overlap with cells is
 * negligible and ignored).  Shared by the lifetime Monte Carlo and
 * the campaign driver.
 */
class AffectedTracker
{
  public:
    explicit AffectedTracker(const DomainGeometry &geom);

    /** Mark the pages the fault taints. */
    void apply(const FaultEvent &e);

    /** Fraction of the domain's pages affected so far, capped at 1. */
    double fraction() const;

  private:
    std::size_t idx(int rank, int bank, int half) const;
    void markCell(std::size_t i);

    DomainGeometry geom_;
    std::vector<bool> cells_;
    std::size_t marked_ = 0;
    std::uint64_t smallPages_ = 0;
};

} // namespace arcc

#endif // ARCC_FAULTS_FAULT_MODEL_HH
