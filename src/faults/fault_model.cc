/**
 * @file
 * Fault taxonomy and sampling implementation.
 */

#include "faults/fault_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace arcc
{

const char *
toString(FaultType t)
{
    switch (t) {
      case FaultType::Bit:    return "bit";
      case FaultType::Word:   return "word";
      case FaultType::Column: return "column";
      case FaultType::Row:    return "row";
      case FaultType::Bank:   return "bank";
      case FaultType::Device: return "device";
      case FaultType::Lane:   return "lane";
    }
    return "?";
}

const std::array<FaultType, kNumFaultTypes> &
allFaultTypes()
{
    static const std::array<FaultType, kNumFaultTypes> types = {
        FaultType::Bit,  FaultType::Word,   FaultType::Column,
        FaultType::Row,  FaultType::Bank,   FaultType::Device,
        FaultType::Lane,
    };
    return types;
}

double
FaultRates::totalFit() const
{
    double s = 0.0;
    for (double f : fit)
        s += f;
    return s;
}

FaultRates
FaultRates::scaled(double factor) const
{
    FaultRates r = *this;
    for (double &f : r.fit)
        f *= factor;
    return r;
}

FaultRates
FaultRates::fieldStudy()
{
    FaultRates r;
    r[FaultType::Bit] = 29.8;
    r[FaultType::Word] = 0.5;
    r[FaultType::Column] = 8.8;
    r[FaultType::Row] = 6.0;
    r[FaultType::Bank] = 10.4;
    r[FaultType::Device] = 1.4;
    r[FaultType::Lane] = 0.3;
    return r;
}

double
DomainGeometry::pageFraction(FaultType t) const
{
    switch (t) {
      case FaultType::Lane:
        // Shared data lane: both ranks of the channel (Table 7.4).
        return 1.0;
      case FaultType::Device:
        // Every page in the affected rank.
        return 1.0 / ranks;
      case FaultType::Bank:
        return 1.0 / (static_cast<double>(ranks) * banksPerDevice);
      case FaultType::Column:
        // Half the pages of one bank (the half-row holding the column).
        return 1.0 /
               (2.0 * static_cast<double>(ranks) * banksPerDevice);
      case FaultType::Row:
        // The pagesPerRow pages sharing the faulty row.
        return static_cast<double>(pagesPerRow) /
               static_cast<double>(pages);
      case FaultType::Word:
      case FaultType::Bit:
        return 1.0 / static_cast<double>(pages);
    }
    // A new FaultType silently contributing zero would vanish from
    // every reliability number; fail loudly instead.
    fatal("DomainGeometry::pageFraction: unhandled fault type %d",
          static_cast<int>(t));
}

FaultSampler::FaultSampler(const DomainGeometry &geom,
                           const FaultRates &rates)
    : geom_(geom), rates_(rates)
{
}

std::vector<FaultEvent>
FaultSampler::sampleLifetime(double hours, Rng &rng) const
{
    std::vector<FaultEvent> events;
    const double devices = geom_.totalDevices();
    for (FaultType t : allFaultTypes()) {
        double rate_per_hour = fitToPerHour(rates_[t]) * devices;
        double mean_count = rate_per_hour * hours;
        std::uint64_t count = rng.poisson(mean_count);
        for (std::uint64_t i = 0; i < count; ++i) {
            FaultEvent e;
            e.timeHours = rng.uniform() * hours;
            e.type = t;
            e.rank = static_cast<int>(rng.below(geom_.ranks));
            e.bank = static_cast<int>(rng.below(geom_.banksPerDevice));
            e.half = static_cast<int>(rng.below(2));
            e.device = static_cast<int>(rng.below(geom_.devicesPerRank));
            events.push_back(e);
        }
    }
    sortEvents(events);
    return events;
}

AffectedTracker::AffectedTracker(const DomainGeometry &geom)
    : geom_(geom),
      cells_(static_cast<std::size_t>(geom.ranks) *
                 geom.banksPerDevice * 2,
             false)
{
}

void
AffectedTracker::apply(const FaultEvent &e)
{
    switch (e.type) {
      case FaultType::Lane:
        for (std::size_t i = 0; i < cells_.size(); ++i)
            markCell(i);
        break;
      case FaultType::Device:
        for (int b = 0; b < geom_.banksPerDevice; ++b)
            for (int h = 0; h < 2; ++h)
                markCell(idx(e.rank, b, h));
        break;
      case FaultType::Bank:
        markCell(idx(e.rank, e.bank, 0));
        markCell(idx(e.rank, e.bank, 1));
        break;
      case FaultType::Column:
        markCell(idx(e.rank, e.bank, e.half));
        break;
      case FaultType::Row:
        smallPages_ += geom_.pagesPerRow;
        break;
      case FaultType::Word:
      case FaultType::Bit:
        smallPages_ += 1;
        break;
    }
}

double
AffectedTracker::fraction() const
{
    double big = static_cast<double>(marked_) /
                 static_cast<double>(cells_.size());
    double small = static_cast<double>(smallPages_) /
                   static_cast<double>(geom_.pages);
    return std::min(1.0, big + small);
}

std::size_t
AffectedTracker::idx(int rank, int bank, int half) const
{
    return (static_cast<std::size_t>(rank) * geom_.banksPerDevice +
            bank) * 2 + half;
}

void
AffectedTracker::markCell(std::size_t i)
{
    if (!cells_[i]) {
        cells_[i] = true;
        ++marked_;
    }
}

void
FaultSampler::sortEvents(std::vector<FaultEvent> &events)
{
    // stable_sort, not sort: equal timestamps keep their type-major
    // insertion order, so lifetimes are bit-identical across standard
    // libraries (unstable sort made tie order libstdc++/libc++
    // dependent, which broke golden-pinned campaign results).
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.timeHours < b.timeHours;
                     });
}

} // namespace arcc
