/**
 * @file
 * Fault-injection matrix implementation.
 *
 * The campaign flattens every (codec, mode, error count) cell into one
 * global trial space and runs it through SimEngine::reduceShards; see
 * the header for the determinism contract this preserves.
 */

#include "faults/fault_matrix.hh"

#include <algorithm>
#include <array>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

const char *
toString(FailMode m)
{
    switch (m) {
      case FailMode::None:   return "none";
      case FailMode::Random: return "random";
      case FailMode::Burst:  return "burst";
    }
    return "?";
}

namespace
{

/** Saturation cap for combination counting (far above any real cell). */
constexpr std::uint64_t kComboCap = std::uint64_t(1) << 62;

/** C(n, k), saturating at kComboCap. */
std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        return 0;
    if (k > n - k)
        k = n - k;
    std::uint64_t c = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        // c * (n - k + i) / i is always integral at this point.
        if (c > kComboCap / (n - k + i))
            return kComboCap;
        c = c * (n - k + i) / i;
    }
    return std::min(c, kComboCap);
}

/**
 * Lexicographic unranking: the `rank`-th (0-based) ascending
 * k-combination of [0, n), appended to `out`.
 */
void
unrankCombination(std::uint64_t rank, int n, int k, int offset,
                  std::vector<int> &out)
{
    int x = 0;
    for (int i = 0; i < k; ++i) {
        for (;; ++x) {
            const std::uint64_t below = binomial(n - 1 - x, k - 1 - i);
            if (rank < below)
                break;
            rank -= below;
        }
        out.push_back(offset + x);
        ++x;
    }
}

/** Sample k distinct positions from [0, n), appended with `offset`. */
void
samplePositions(Rng &rng, int n, int k, int offset,
                std::vector<int> &out)
{
    const std::size_t base = out.size();
    while (out.size() < base + static_cast<std::size_t>(k)) {
        const int p =
            offset + static_cast<int>(rng.below(
                         static_cast<std::uint64_t>(n)));
        bool dup = false;
        for (std::size_t i = base; i < out.size(); ++i)
            dup = dup || out[i] == p;
        if (!dup)
            out.push_back(p);
    }
    std::sort(out.begin() + base, out.end());
}

/** Execution plan for one cell. */
struct CellPlan
{
    int codecIndex = 0;
    FailMode mode = FailMode::None;
    int errors = 0;
    bool exhaustive = false;
    std::uint64_t trials = 0;
    /** Wire positions per device slice (symbols or bits). */
    int slotPositions = 0;
    /** Total wire positions (devices x slotPositions). */
    int totalPositions = 0;
    /** Burst only: position combinations per device. */
    std::uint64_t combosPerDevice = 0;
};

/** Per-shard outcome counters for one cell. */
struct CellCounts
{
    std::array<std::uint64_t, 5> v{}; // clean, corr, misc, due, sdc.
};

/** FNV-ish string digest folded into the matrix hash. */
std::uint64_t
hashString(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s)
        h = Rng::mix64(h ^ c);
    return Rng::mix64(h ^ s.size());
}

std::uint64_t
hashValue(std::uint64_t h, std::uint64_t v)
{
    return Rng::mix64(h ^ v);
}

/** Inject `mask`-style corruption at one wire position. */
void
applyError(DeviceSlices &slices, int pos, int slotPositions,
           int symbolBits, Rng &rng)
{
    const int device = pos / slotPositions;
    const int within = pos % slotPositions;
    if (symbolBits == 1) {
        slices[device][within / 8] ^=
            static_cast<std::uint8_t>(1 << (within % 8));
    } else {
        // Whole-symbol corruption: any non-zero XOR mask.
        slices[device][within] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
    }
}

} // anonymous namespace

std::uint64_t
FaultMatrixResult::hash() const
{
    std::uint64_t h = 0x41524343ULL; // "ARCC"
    h = hashValue(h, cells.size());
    for (const FaultCell &c : cells) {
        h = hashString(h, c.codec);
        h = hashString(h, toString(c.mode));
        h = hashValue(h, static_cast<std::uint64_t>(c.errors));
        h = hashValue(h, static_cast<std::uint64_t>(c.symbolBits));
        h = hashValue(h, c.exhaustive ? 1 : 0);
        h = hashValue(h, c.trials);
        h = hashValue(h, c.clean);
        h = hashValue(h, c.corrected);
        h = hashValue(h, c.miscorrected);
        h = hashValue(h, c.due);
        h = hashValue(h, c.sdc);
    }
    return h;
}

FaultMatrixResult
runFaultMatrix(const FaultMatrixConfig &config, SimEngine *engine)
{
    SimEngine &eng = engine ? *engine : SimEngine::global();

    FaultMatrixResult result;
    result.config = config;

    // ------------------------------------------------------------------
    // Plan: instantiate each codec once (instances are immutable and
    // shared across shards; all scratch lives in per-shard workspaces)
    // and lay the cells out in a deterministic order.
    // ------------------------------------------------------------------
    std::vector<std::unique_ptr<LineCodec>> zoo;
    zoo.reserve(config.codecs.size());
    for (const std::string &key : config.codecs)
        zoo.push_back(codecs::make(key));

    std::vector<CellPlan> plans;
    for (std::size_t ci = 0; ci < zoo.size(); ++ci) {
        const LineCodec &codec = *zoo[ci];
        const CodecTraits traits = codec.traits();
        const int perByte = traits.symbolBits == 1 ? 8 : 1;
        const int slot = codec.sliceBytes() * perByte;
        const int total = codec.devices() * slot;

        auto addCell = [&](FailMode mode, int errors) {
            CellPlan p;
            p.codecIndex = static_cast<int>(ci);
            p.mode = mode;
            p.errors = errors;
            p.slotPositions = slot;
            p.totalPositions = total;

            std::uint64_t combos = 1;
            if (mode == FailMode::Random) {
                combos = binomial(total, errors);
            } else if (mode == FailMode::Burst) {
                if (errors > slot)
                    return; // No such burst pattern exists.
                p.combosPerDevice = binomial(slot, errors);
                if (p.combosPerDevice >
                    kComboCap / codec.devices())
                    combos = kComboCap;
                else
                    combos = p.combosPerDevice * codec.devices();
            }
            p.exhaustive =
                errors > 0 && combos <= config.exhaustiveLimit;
            p.trials = p.exhaustive ? combos : config.trialsPerCell;
            plans.push_back(p);

            FaultCell cell;
            cell.codec = config.codecs[ci];
            cell.name = codec.name();
            cell.family = traits.family;
            cell.mode = mode;
            cell.errors = errors;
            cell.symbolBits = traits.symbolBits;
            cell.exhaustive = p.exhaustive;
            cell.trials = p.trials;
            result.cells.push_back(cell);
        };

        addCell(FailMode::None, 0);
        const int maxErrors = traits.correct + config.extraErrors;
        for (int e = 1; e <= maxErrors; ++e)
            addCell(FailMode::Random, e);
        for (int e = 1; e <= maxErrors; ++e)
            addCell(FailMode::Burst, e);
    }

    // Global trial space: prefix sums over the cells.
    std::vector<std::uint64_t> first(plans.size() + 1, 0);
    for (std::size_t i = 0; i < plans.size(); ++i)
        first[i + 1] = first[i] + plans[i].trials;
    const std::uint64_t totalTrials = first.back();

    // ------------------------------------------------------------------
    // Sweep: one reduceShards over the whole trial space.  Every trial
    // draws from Rng::stream(seed, globalIndex) -- a pure function --
    // so shard scheduling cannot perturb any outcome.
    // ------------------------------------------------------------------
    using Partial = std::vector<CellCounts>;
    Partial counts = eng.reduceShards(
        totalTrials, SimEngine::kDefaultShard,
        [&](const ShardRange &shard) {
            Partial local(plans.size());
            LineWorkspace ws;
            std::vector<std::uint8_t> data;
            std::vector<std::uint8_t> decoded;
            std::vector<int> positions;
            DeviceSlices slices;

            // Shards are contiguous, so resolve the starting cell
            // once and walk forward.
            std::size_t cell =
                static_cast<std::size_t>(
                    std::upper_bound(first.begin(), first.end(),
                                     shard.begin) -
                    first.begin()) -
                1;
            for (std::uint64_t g = shard.begin; g < shard.end; ++g) {
                while (g >= first[cell + 1])
                    ++cell;
                const CellPlan &plan = plans[cell];
                const std::uint64_t trial = g - first[cell];
                const LineCodec &codec = *zoo[plan.codecIndex];
                Rng rng = Rng::stream(config.seed, g);

                data.resize(codec.dataBytes());
                for (std::uint8_t &b : data)
                    b = static_cast<std::uint8_t>(rng.below(256));
                codec.encodeInto(data, slices, ws);

                positions.clear();
                if (plan.mode == FailMode::Random) {
                    if (plan.exhaustive)
                        unrankCombination(trial, plan.totalPositions,
                                          plan.errors, 0, positions);
                    else
                        samplePositions(rng, plan.totalPositions,
                                        plan.errors, 0, positions);
                } else if (plan.mode == FailMode::Burst) {
                    int device;
                    std::uint64_t rank;
                    if (plan.exhaustive) {
                        device = static_cast<int>(
                            trial / plan.combosPerDevice);
                        rank = trial % plan.combosPerDevice;
                        unrankCombination(
                            rank, plan.slotPositions, plan.errors,
                            device * plan.slotPositions, positions);
                    } else {
                        device = static_cast<int>(
                            rng.below(codec.devices()));
                        samplePositions(rng, plan.slotPositions,
                                        plan.errors,
                                        device * plan.slotPositions,
                                        positions);
                    }
                }
                for (int p : positions)
                    applyError(slices, p, plan.slotPositions,
                               codec.traits().symbolBits, rng);

                decoded.resize(codec.dataBytes());
                codec.decodeInto(slices, decoded, {}, ws, ws.dec);

                CellCounts &c = local[cell];
                if (ws.dec.status == DecodeStatus::Detected) {
                    c.v[3] += 1; // DUE.
                } else {
                    const bool intact =
                        std::equal(data.begin(), data.end(),
                                   decoded.begin());
                    if (ws.dec.status == DecodeStatus::Corrected)
                        c.v[intact ? 1 : 2] += 1;
                    else
                        c.v[intact ? 0 : 4] += 1;
                }
            }
            return local;
        },
        [&](std::vector<Partial> &&partials) {
            Partial sum(plans.size());
            for (const Partial &p : partials)
                for (std::size_t i = 0; i < p.size(); ++i)
                    for (int j = 0; j < 5; ++j)
                        sum[i].v[j] += p[i].v[j];
            return sum;
        });

    for (std::size_t i = 0; i < plans.size(); ++i) {
        FaultCell &cell = result.cells[i];
        cell.clean = counts[i].v[0];
        cell.corrected = counts[i].v[1];
        cell.miscorrected = counts[i].v[2];
        cell.due = counts[i].v[3];
        cell.sdc = counts[i].v[4];
        ARCC_ASSERT(cell.clean + cell.corrected + cell.miscorrected +
                        cell.due + cell.sdc ==
                    cell.trials);
    }
    return result;
}

} // namespace arcc
