/**
 * @file
 * The codec-zoo fault-injection matrix: every registered line codec
 * swept over (fail mode x error count) cells, each cell either
 * exhaustive over all error-position combinations or stratified by
 * per-trial random sampling.
 *
 * This is the comparison substrate ROADMAP's "codec zoo" item asks
 * for: one campaign that puts the paper's chipkill RS schemes, the
 * SECDED baseline, and the BCH family side by side and reports how
 * often each one silently corrupts (SDC), miscorrects, raises a DUE,
 * or recovers -- under the exact same injected error patterns.
 *
 * Determinism contract (the reason every count here can be
 * golden-pinned): the campaign is one SimEngine::reduceShards over
 * the concatenated global trial space; each trial's generator is
 * Rng::stream(seed, globalTrialIndex), a pure function; shard
 * boundaries depend only on the trial count; and partial counters are
 * merged in shard order.  An N-thread run is therefore bit-identical
 * to a 1-thread run -- tests/test_determinism.cc pins the matrix hash
 * at 1, 2 and 7 threads, and CI diffs the bench JSON across thread
 * counts and SIMD legs.
 *
 * Cell layout per codec (capability k = traits().correct):
 *
 *   none   x {0}        -- control: decode of an untouched line;
 *   random x {1..k+2}   -- e errors anywhere in the wire image;
 *   burst  x {1..k+2}   -- e errors confined to one device's slice
 *                          (the chipkill failure mode).
 *
 * Error granularity follows traits().symbolBits: symbol codecs (RS,
 * LOT-ECC) get whole corrupted wire bytes (a random non-zero XOR
 * mask), bit codecs (BCH, SECDED) get single flipped wire bits.
 *
 * A cell whose error-position combination count fits under
 * `exhaustiveLimit` enumerates every combination exactly once
 * (lexicographic unranking of the trial index); larger cells fall
 * back to `trialsPerCell` stratified trials with positions sampled
 * from the trial's Rng stream.  Either way the per-trial corruption
 * masks come from the trial stream, so cells are reproducible in
 * isolation.
 */

#ifndef ARCC_FAULTS_FAULT_MATRIX_HH
#define ARCC_FAULTS_FAULT_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arcc/ecc_scheme.hh"

namespace arcc
{

class SimEngine;

/** How a cell's error positions are placed. */
enum class FailMode : int
{
    None = 0, ///< no injected errors (control row).
    Random,   ///< anywhere in the wire image.
    Burst,    ///< confined to one device's slice.
};

/** Display name. */
const char *toString(FailMode m);

/** Campaign configuration. */
struct FaultMatrixConfig
{
    /** Registry keys of the codecs to sweep (codecs::make each). */
    std::vector<std::string> codecs;
    /** Trials for a stratified (non-exhaustive) cell. */
    std::uint64_t trialsPerCell = 96;
    /**
     * A cell whose error-position combination count is at most this
     * enumerates every combination exactly once instead of sampling.
     */
    std::uint64_t exhaustiveLimit = 640;
    /** Errors swept beyond each codec's correction capability. */
    int extraErrors = 2;
    /** Experiment seed (Rng::stream base). */
    std::uint64_t seed = 20130223;
};

/** One (codec, fail mode, error count) cell of the matrix. */
struct FaultCell
{
    /** Registry key. */
    std::string codec;
    /** Display name / family tag from the codec's traits. */
    std::string name;
    std::string family;
    FailMode mode = FailMode::None;
    /** Injected errors per trial (symbols or bits per symbolBits). */
    int errors = 0;
    /** Granularity the errors were injected at (1 or 8 bits). */
    int symbolBits = 8;
    /** True when every position combination was enumerated. */
    bool exhaustive = false;
    /** Trials run. */
    std::uint64_t trials = 0;

    // Outcome counters (sum == trials).
    std::uint64_t clean = 0;       ///< decoder Clean, data intact.
    std::uint64_t corrected = 0;   ///< decoder Corrected, data intact.
    std::uint64_t miscorrected = 0;///< decoder Corrected, data WRONG.
    std::uint64_t due = 0;         ///< decoder Detected (uncorrectable).
    std::uint64_t sdc = 0;         ///< decoder Clean, data WRONG.
};

/** The full campaign result. */
struct FaultMatrixResult
{
    FaultMatrixConfig config;
    std::vector<FaultCell> cells;

    /**
     * Order-sensitive digest of every cell's identity and counters:
     * the value the determinism tests and the CI golden pin compare.
     */
    std::uint64_t hash() const;
};

/**
 * Run the campaign.  Sharded on `engine` (SimEngine::global() when
 * nullptr); bit-identical at any thread count.  Fatal on an unknown
 * codec key.
 */
FaultMatrixResult runFaultMatrix(const FaultMatrixConfig &config,
                                 SimEngine *engine = nullptr);

} // namespace arcc

#endif // ARCC_FAULTS_FAULT_MATRIX_HH
