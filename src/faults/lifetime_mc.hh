/**
 * @file
 * Monte Carlo fleet-lifetime engine (Chapter 7 methodology, steps 2-4).
 *
 * Simulates fault arrivals in a fleet of memory channels over a
 * multi-year lifespan and derives:
 *
 *  - the average fraction of 4KB pages affected by faults over time
 *    (Figure 3.1), using the worst-case corruption assumption; and
 *  - the fleet-average *cumulative-mean* overhead over time, given a
 *    per-fault-type overhead (Figures 7.4, 7.5 and 7.6): each fault
 *    adds its overhead to its channel from its arrival onward, and the
 *    value reported for year X averages each channel's overhead from
 *    the beginning of year 1 through the end of year X, exactly as the
 *    paper's methodology describes.
 */

#ifndef ARCC_FAULTS_LIFETIME_MC_HH
#define ARCC_FAULTS_LIFETIME_MC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "faults/fault_model.hh"

namespace arcc
{

class SimEngine;

/** Fleet Monte Carlo parameters. */
struct LifetimeMcConfig
{
    DomainGeometry geom;
    FaultRates rates = FaultRates::fieldStudy();
    /** Fleet size (the paper simulates 10000 channels). */
    int channels = 10000;
    double years = 7.0;
    /** Time-grid points per year for the affected-fraction curve. */
    int gridPerYear = 12;
    std::uint64_t seed = 2013;
    /**
     * Channels per engine shard (SimEngine::kDefaultShard).  Results
     * are bit-identical for any thread count at a given shard size
     * (and change benignly with the shard size, which only reorders
     * the floating-point reduction).
     */
    int shardChannels = 64;
};

/** Affected-fraction curve (Figure 3.1). */
struct AffectedCurve
{
    std::vector<double> timeYears;
    std::vector<double> avgFraction;
};

/** Per-fault-type overhead for the cumulative-overhead curves. */
using PerTypeOverhead = std::array<double, kNumFaultTypes>;

/**
 * The fleet Monte Carlo engine.  Deterministic for a given seed:
 * channel c's fault history comes from Rng::stream(seed, c), and the
 * fleet reduction folds per-shard partials in shard order, so the
 * curves are bit-identical whether the SimEngine runs 1 thread or 64.
 */
class LifetimeMc
{
  public:
    /**
     * @param engine  engine the channel shards run on; nullptr uses
     *                SimEngine::global().
     */
    explicit LifetimeMc(const LifetimeMcConfig &config,
                        SimEngine *engine = nullptr);

    /**
     * Figure 3.1: fleet-average fraction of pages affected by at least
     * one fault, on the configured time grid.
     */
    AffectedCurve affectedFraction() const;

    /**
     * Figures 7.4 / 7.5 / 7.6: for each year X in [1, years], the
     * fleet- and time-average overhead from time 0 through year X.
     *
     * @param overhead  additive overhead contributed by each fault
     *                  type from its arrival onward.
     * @param cap       saturation value (a fully upgraded channel
     *                  cannot exceed the lane-fault overhead).
     */
    std::vector<double>
    cumulativeOverheadByYear(const PerTypeOverhead &overhead,
                             double cap) const;

    /**
     * Expected (analytic) affected fraction at time t, ignoring
     * overlaps between faults -- a cross-check for the Monte Carlo.
     */
    double analyticAffectedFraction(double years) const;

    const LifetimeMcConfig &config() const { return config_; }

  private:
    LifetimeMcConfig config_;
    SimEngine *engine_;
};

} // namespace arcc

#endif // ARCC_FAULTS_LIFETIME_MC_HH
