/**
 * @file
 * Line codec implementations.
 */

#include "arcc/ecc_scheme.hh"

#include "common/logging.hh"

namespace arcc
{

// ---------------------------------------------------------------------
// RsLineCodec
// ---------------------------------------------------------------------

RsLineCodec::RsLineCodec(int n, int k, int data_bytes, int max_correct,
                         const char *name)
    : rs_(n, k),
      codewords_(data_bytes / k),
      dataBytes_(data_bytes),
      maxCorrect_(max_correct),
      name_(name)
{
    if (data_bytes % k != 0)
        fatal("RsLineCodec: %dB line not divisible into RS(%d,%d)",
              data_bytes, n, k);
}

DeviceSlices
RsLineCodec::encode(std::span<const std::uint8_t> data) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();
    DeviceSlices slices(n, std::vector<std::uint8_t>(codewords_, 0));

    std::vector<std::uint8_t> word(n);
    for (int c = 0; c < codewords_; ++c) {
        for (int s = 0; s < k; ++s)
            word[s] = data[c * k + s];
        rs_.encode(word);
        for (int d = 0; d < n; ++d)
            slices[d][c] = word[d];
    }
    return slices;
}

DecodeResult
RsLineCodec::decode(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(rs_.n()));
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();

    DecodeResult agg;
    std::vector<std::uint8_t> word(n);
    for (int c = 0; c < codewords_; ++c) {
        for (int d = 0; d < n; ++d)
            word[d] = slices[d][c];
        DecodeResult res = rs_.decode(word, maxCorrect_, erased);
        if (res.status == DecodeStatus::Detected) {
            agg.status = DecodeStatus::Detected;
            continue;
        }
        if (res.status == DecodeStatus::Corrected) {
            if (agg.status != DecodeStatus::Detected)
                agg.status = DecodeStatus::Corrected;
            agg.symbolsCorrected += res.symbolsCorrected;
            for (int p : res.positions) {
                agg.positions.push_back(p);
                slices[p][c] = word[p]; // write the fix back.
            }
        }
        for (int s = 0; s < k; ++s)
            data[c * k + s] = word[s];
    }
    return agg;
}

// ---------------------------------------------------------------------
// LotLineCodec
// ---------------------------------------------------------------------

LotLineCodec::LotLineCodec(int data_devices, int line_bytes)
    : lot_(data_devices, line_bytes), dataBytes_(line_bytes)
{
}

DeviceSlices
LotLineCodec::encode(std::span<const std::uint8_t> data) const
{
    LotLine line = lot_.encode(data);
    const int dev = devices();
    DeviceSlices slices(dev);
    for (int d = 0; d < dev; ++d) {
        slices[d] = line.slices[d];
        slices[d].push_back(
            static_cast<std::uint8_t>(line.checksums[d] >> 8));
        slices[d].push_back(
            static_cast<std::uint8_t>(line.checksums[d] & 0xff));
    }
    return slices;
}

DecodeResult
LotLineCodec::decode(DeviceSlices &slices, std::span<std::uint8_t> data,
                     std::span<const int> erased) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(devices()));

    LotLine line;
    line.slices.resize(devices());
    line.checksums.resize(devices());
    for (int d = 0; d < devices(); ++d) {
        ARCC_ASSERT(slices[d].size() ==
                    static_cast<std::size_t>(sliceBytes()));
        line.slices[d].assign(slices[d].begin(), slices[d].end() - 2);
        line.checksums[d] = static_cast<std::uint16_t>(
            (slices[d][slices[d].size() - 2] << 8) |
            slices[d][slices[d].size() - 1]);
    }
    // A device flagged as erased (remapped to the spare by the memory
    // model) is treated as a forced checksum mismatch so the XOR tier
    // reconstructs it.
    for (int d : erased)
        line.checksums[d] = static_cast<std::uint16_t>(
            ~OnesComplement16::compute(line.slices[d]));

    LotDecodeResult lres = lot_.decode(line);
    DecodeResult res;
    if (lres.status == DecodeStatus::Detected) {
        res.status = DecodeStatus::Detected;
        return res;
    }
    if (lres.status == DecodeStatus::Corrected) {
        res.status = DecodeStatus::Corrected;
        res.symbolsCorrected = 1;
        res.positions.push_back(lres.deviceCorrected);
        int d = lres.deviceCorrected;
        for (std::size_t i = 0; i < line.slices[d].size(); ++i)
            slices[d][i] = line.slices[d][i];
        slices[d][slices[d].size() - 2] =
            static_cast<std::uint8_t>(line.checksums[d] >> 8);
        slices[d][slices[d].size() - 1] =
            static_cast<std::uint8_t>(line.checksums[d] & 0xff);
    }
    auto bytes = lot_.extract(line);
    ARCC_ASSERT(bytes.size() == data.size());
    std::copy(bytes.begin(), bytes.end(), data.begin());
    return res;
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

namespace schemes
{

std::unique_ptr<LineCodec>
commercialSccdcd()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 1,
                                         "SCCDCD RS(36,32)");
}

std::unique_ptr<LineCodec>
doubleChipSparing()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 2,
                                         "DCS RS(36,32)+spare");
}

std::unique_ptr<LineCodec>
arccRelaxed()
{
    return std::make_unique<RsLineCodec>(18, 16, 64, 1,
                                         "ARCC relaxed RS(18,16)");
}

std::unique_ptr<LineCodec>
arccUpgraded()
{
    return std::make_unique<RsLineCodec>(36, 32, 128, 1,
                                         "ARCC upgraded RS(36,32)");
}

std::unique_ptr<LineCodec>
arccUpgraded2()
{
    return std::make_unique<RsLineCodec>(72, 64, 256, 1,
                                         "ARCC upgraded-2 RS(72,64)");
}

std::unique_ptr<LineCodec>
lotEcc9()
{
    return std::make_unique<LotLineCodec>(8);
}

std::unique_ptr<LineCodec>
lotEcc18()
{
    // Two nine-device channels in lockstep: a 128B paired line.
    return std::make_unique<LotLineCodec>(16, 128);
}

} // namespace schemes

} // namespace arcc
