/**
 * @file
 * Line codec implementations.
 *
 * All codecs implement the allocation-free encodeInto / decodeInto
 * pair; the owning encode / decode entry points are convenience
 * wrappers over them (decode borrows the calling thread's
 * LineWorkspace, so even legacy callers stop paying per-call heap
 * traffic after warm-up).
 */

#include "arcc/ecc_scheme.hh"

#include "common/logging.hh"

namespace arcc
{

LineWorkspace &
LineWorkspace::forThisThread()
{
    static thread_local LineWorkspace ws;
    return ws;
}

DeviceSlices
LineCodec::encode(std::span<const std::uint8_t> data) const
{
    DeviceSlices out;
    encodeInto(data, out, LineWorkspace::forThisThread());
    return out;
}

DecodeResult
LineCodec::decode(DeviceSlices &slices, std::span<std::uint8_t> data,
                  std::span<const int> erased) const
{
    DecodeResult out;
    decodeInto(slices, data, erased, LineWorkspace::forThisThread(),
               out);
    return out;
}

// ---------------------------------------------------------------------
// RsLineCodec
// ---------------------------------------------------------------------

RsLineCodec::RsLineCodec(int n, int k, int data_bytes, int max_correct,
                         const char *name)
    : rs_(n, k),
      codewords_(data_bytes / k),
      dataBytes_(data_bytes),
      maxCorrect_(max_correct),
      name_(name)
{
    if (data_bytes % k != 0)
        fatal("RsLineCodec: %dB line not divisible into RS(%d,%d)",
              data_bytes, n, k);
}

void
RsLineCodec::encodeInto(std::span<const std::uint8_t> data,
                        DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();
    out.resize(n);
    for (int d = 0; d < n; ++d)
        out[d].resize(codewords_);

    const std::span<std::uint8_t> word(ws.rs.word.data(),
                                       static_cast<std::size_t>(n));
    for (int c = 0; c < codewords_; ++c) {
        for (int s = 0; s < k; ++s)
            word[s] = data[c * k + s];
        rs_.encode(word);
        for (int d = 0; d < n; ++d)
            out[d][c] = word[d];
    }
}

void
RsLineCodec::decodeInto(DeviceSlices &slices,
                        std::span<std::uint8_t> data,
                        std::span<const int> erased, LineWorkspace &ws,
                        DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(rs_.n()));
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    // The codeword staging buffer lives beside the RS scratch (the
    // decoder never touches ws.rs.word).
    const std::span<std::uint8_t> word(ws.rs.word.data(),
                                       static_cast<std::size_t>(n));
    for (int c = 0; c < codewords_; ++c) {
        for (int d = 0; d < n; ++d)
            word[d] = slices[d][c];
        const RsDecodeView res =
            rs_.decode(word, ws.rs, maxCorrect_, erased);
        if (res.status == DecodeStatus::Detected) {
            out.status = DecodeStatus::Detected;
            continue;
        }
        if (res.status == DecodeStatus::Corrected) {
            if (out.status != DecodeStatus::Detected)
                out.status = DecodeStatus::Corrected;
            out.symbolsCorrected += res.symbolsCorrected;
            for (int p : res.positions) {
                out.positions.push_back(p);
                slices[p][c] = word[p]; // write the fix back.
            }
        }
        for (int s = 0; s < k; ++s)
            data[c * k + s] = word[s];
    }
}

// ---------------------------------------------------------------------
// LotLineCodec
// ---------------------------------------------------------------------

LotLineCodec::LotLineCodec(int data_devices, int line_bytes)
    : lot_(data_devices, line_bytes), dataBytes_(line_bytes)
{
}

void
LotLineCodec::encodeInto(std::span<const std::uint8_t> data,
                         DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));

    // LotEcc owns the layout (striping, parity, checksums); this
    // codec only serialises it into the per-device wire format of
    // slice + embedded big-endian checksum.
    LotLine &line = ws.lot;
    lot_.encodeInto(data, line);

    const int dev = devices();
    const int sb = lot_.sliceBytes();
    out.resize(dev);
    for (int d = 0; d < dev; ++d) {
        out[d].resize(sb + 2);
        std::copy(line.slices[d].begin(), line.slices[d].end(),
                  out[d].begin());
        out[d][sb] = static_cast<std::uint8_t>(line.checksums[d] >> 8);
        out[d][sb + 1] =
            static_cast<std::uint8_t>(line.checksums[d] & 0xff);
    }
}

void
LotLineCodec::decodeInto(DeviceSlices &slices,
                         std::span<std::uint8_t> data,
                         std::span<const int> erased, LineWorkspace &ws,
                         DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(devices()));

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    LotLine &line = ws.lot;
    line.slices.resize(devices());
    line.checksums.resize(devices());
    for (int d = 0; d < devices(); ++d) {
        ARCC_ASSERT(slices[d].size() ==
                    static_cast<std::size_t>(sliceBytes()));
        line.slices[d].assign(slices[d].begin(), slices[d].end() - 2);
        line.checksums[d] = static_cast<std::uint16_t>(
            (slices[d][slices[d].size() - 2] << 8) |
            slices[d][slices[d].size() - 1]);
    }
    // A device flagged as erased (remapped to the spare by the memory
    // model) is treated as a forced checksum mismatch so the XOR tier
    // reconstructs it.
    for (int d : erased)
        line.checksums[d] = static_cast<std::uint16_t>(
            ~OnesComplement16::compute(line.slices[d]));

    LotDecodeResult lres = lot_.decode(line);
    if (lres.status == DecodeStatus::Detected) {
        out.status = DecodeStatus::Detected;
        return;
    }
    if (lres.status == DecodeStatus::Corrected) {
        out.status = DecodeStatus::Corrected;
        out.symbolsCorrected = 1;
        out.positions.push_back(lres.deviceCorrected);
        int d = lres.deviceCorrected;
        for (std::size_t i = 0; i < line.slices[d].size(); ++i)
            slices[d][i] = line.slices[d][i];
        slices[d][slices[d].size() - 2] =
            static_cast<std::uint8_t>(line.checksums[d] >> 8);
        slices[d][slices[d].size() - 1] =
            static_cast<std::uint8_t>(line.checksums[d] & 0xff);
    }
    ARCC_ASSERT(data.size() ==
                static_cast<std::size_t>(lot_.dataDevices()) *
                    lot_.sliceBytes());
    lot_.extractInto(line, data);
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

namespace schemes
{

std::unique_ptr<LineCodec>
commercialSccdcd()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 1,
                                         "SCCDCD RS(36,32)");
}

std::unique_ptr<LineCodec>
doubleChipSparing()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 2,
                                         "DCS RS(36,32)+spare");
}

std::unique_ptr<LineCodec>
arccRelaxed()
{
    return std::make_unique<RsLineCodec>(18, 16, 64, 1,
                                         "ARCC relaxed RS(18,16)");
}

std::unique_ptr<LineCodec>
arccUpgraded()
{
    return std::make_unique<RsLineCodec>(36, 32, 128, 1,
                                         "ARCC upgraded RS(36,32)");
}

std::unique_ptr<LineCodec>
arccUpgraded2()
{
    return std::make_unique<RsLineCodec>(72, 64, 256, 1,
                                         "ARCC upgraded-2 RS(72,64)");
}

std::unique_ptr<LineCodec>
lotEcc9()
{
    return std::make_unique<LotLineCodec>(8);
}

std::unique_ptr<LineCodec>
lotEcc18()
{
    // Two nine-device channels in lockstep: a 128B paired line.
    return std::make_unique<LotLineCodec>(16, 128);
}

} // namespace schemes

} // namespace arcc
