/**
 * @file
 * Line codec implementations.
 *
 * All codecs implement the allocation-free encodeInto / decodeInto
 * pair; the owning encode / decode entry points are convenience
 * wrappers over them (decode borrows the calling thread's
 * LineWorkspace, so even legacy callers stop paying per-call heap
 * traffic after warm-up).
 */

#include "arcc/ecc_scheme.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "ecc/secded.hh"

namespace arcc
{

LineWorkspace &
LineWorkspace::forThisThread()
{
    static thread_local LineWorkspace ws;
    return ws;
}

DeviceSlices
LineCodec::encode(std::span<const std::uint8_t> data) const
{
    DeviceSlices out;
    encodeInto(data, out, LineWorkspace::forThisThread());
    return out;
}

DecodeResult
LineCodec::decode(DeviceSlices &slices, std::span<std::uint8_t> data,
                  std::span<const int> erased) const
{
    DecodeResult out;
    decodeInto(slices, data, erased, LineWorkspace::forThisThread(),
               out);
    return out;
}

// ---------------------------------------------------------------------
// RsLineCodec
// ---------------------------------------------------------------------

CodecTraits
RsLineCodec::traits() const
{
    CodecTraits t;
    t.symbolBits = 8;
    t.correct = maxCorrect_;
    // RS(n, k) has n - k check symbols and minimum distance
    // n - k + 1: decoding capped at maxCorrect leaves
    // n - k - maxCorrect symbols of guaranteed detection headroom.
    t.detect = (rs_.n() - rs_.k()) - maxCorrect_;
    t.codewords = codewords_;
    t.family = "rs";
    return t;
}

RsLineCodec::RsLineCodec(int n, int k, int data_bytes, int max_correct,
                         const char *name)
    : rs_(n, k),
      codewords_(data_bytes / k),
      dataBytes_(data_bytes),
      maxCorrect_(max_correct),
      name_(name)
{
    if (data_bytes % k != 0)
        fatal("RsLineCodec: %dB line not divisible into RS(%d,%d)",
              data_bytes, n, k);
}

void
RsLineCodec::encodeInto(std::span<const std::uint8_t> data,
                        DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();
    out.resize(n);
    for (int d = 0; d < n; ++d)
        out[d].resize(codewords_);

    const std::span<std::uint8_t> word(ws.rs.word.data(),
                                       static_cast<std::size_t>(n));
    for (int c = 0; c < codewords_; ++c) {
        for (int s = 0; s < k; ++s)
            word[s] = data[c * k + s];
        rs_.encode(word);
        for (int d = 0; d < n; ++d)
            out[d][c] = word[d];
    }
}

void
RsLineCodec::decodeInto(DeviceSlices &slices,
                        std::span<std::uint8_t> data,
                        std::span<const int> erased, LineWorkspace &ws,
                        DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(rs_.n()));
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    const int n = rs_.n();
    const int k = rs_.k();

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    // The codeword staging buffer lives beside the RS scratch (the
    // decoder never touches ws.rs.word).
    const std::span<std::uint8_t> word(ws.rs.word.data(),
                                       static_cast<std::size_t>(n));
    for (int c = 0; c < codewords_; ++c) {
        for (int d = 0; d < n; ++d)
            word[d] = slices[d][c];
        const RsDecodeView res =
            rs_.decode(word, ws.rs, maxCorrect_, erased);
        if (res.status == DecodeStatus::Detected) {
            out.status = DecodeStatus::Detected;
            continue;
        }
        if (res.status == DecodeStatus::Corrected) {
            if (out.status != DecodeStatus::Detected)
                out.status = DecodeStatus::Corrected;
            out.symbolsCorrected += res.symbolsCorrected;
            for (int p : res.positions) {
                out.positions.push_back(p);
                slices[p][c] = word[p]; // write the fix back.
            }
        }
        for (int s = 0; s < k; ++s)
            data[c * k + s] = word[s];
    }
}

// ---------------------------------------------------------------------
// LotLineCodec
// ---------------------------------------------------------------------

CodecTraits
LotLineCodec::traits() const
{
    CodecTraits t;
    t.symbolBits = 8;
    // The checksum+XOR tier reconstructs one whole device per line
    // and detects (per-device) a second checksum mismatch.
    t.correct = 1;
    t.detect = 1;
    t.codewords = 1;
    t.family = "lot";
    return t;
}

LotLineCodec::LotLineCodec(int data_devices, int line_bytes)
    : lot_(data_devices, line_bytes), dataBytes_(line_bytes)
{
}

void
LotLineCodec::encodeInto(std::span<const std::uint8_t> data,
                         DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));

    // LotEcc owns the layout (striping, parity, checksums); this
    // codec only serialises it into the per-device wire format of
    // slice + embedded big-endian checksum.
    LotLine &line = ws.lot;
    lot_.encodeInto(data, line);

    const int dev = devices();
    const int sb = lot_.sliceBytes();
    out.resize(dev);
    for (int d = 0; d < dev; ++d) {
        out[d].resize(sb + 2);
        std::copy(line.slices[d].begin(), line.slices[d].end(),
                  out[d].begin());
        out[d][sb] = static_cast<std::uint8_t>(line.checksums[d] >> 8);
        out[d][sb + 1] =
            static_cast<std::uint8_t>(line.checksums[d] & 0xff);
    }
}

void
LotLineCodec::decodeInto(DeviceSlices &slices,
                         std::span<std::uint8_t> data,
                         std::span<const int> erased, LineWorkspace &ws,
                         DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(devices()));

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    LotLine &line = ws.lot;
    line.slices.resize(devices());
    line.checksums.resize(devices());
    for (int d = 0; d < devices(); ++d) {
        ARCC_ASSERT(slices[d].size() ==
                    static_cast<std::size_t>(sliceBytes()));
        line.slices[d].assign(slices[d].begin(), slices[d].end() - 2);
        line.checksums[d] = static_cast<std::uint16_t>(
            (slices[d][slices[d].size() - 2] << 8) |
            slices[d][slices[d].size() - 1]);
    }
    // A device flagged as erased (remapped to the spare by the memory
    // model) is treated as a forced checksum mismatch so the XOR tier
    // reconstructs it.
    for (int d : erased)
        line.checksums[d] = static_cast<std::uint16_t>(
            ~OnesComplement16::compute(line.slices[d]));

    LotDecodeResult lres = lot_.decode(line);
    if (lres.status == DecodeStatus::Detected) {
        out.status = DecodeStatus::Detected;
        return;
    }
    if (lres.status == DecodeStatus::Corrected) {
        out.status = DecodeStatus::Corrected;
        out.symbolsCorrected = 1;
        out.positions.push_back(lres.deviceCorrected);
        int d = lres.deviceCorrected;
        for (std::size_t i = 0; i < line.slices[d].size(); ++i)
            slices[d][i] = line.slices[d][i];
        slices[d][slices[d].size() - 2] =
            static_cast<std::uint8_t>(line.checksums[d] >> 8);
        slices[d][slices[d].size() - 1] =
            static_cast<std::uint8_t>(line.checksums[d] & 0xff);
    }
    ARCC_ASSERT(data.size() ==
                static_cast<std::size_t>(lot_.dataDevices()) *
                    lot_.sliceBytes());
    lot_.extractInto(line, data);
}

// ---------------------------------------------------------------------
// SecdedLineCodec
// ---------------------------------------------------------------------

CodecTraits
SecdedLineCodec::traits() const
{
    CodecTraits t;
    t.symbolBits = 1;
    t.correct = 1;
    t.detect = 1;
    t.codewords = kWords;
    t.family = "secded";
    return t;
}

void
SecdedLineCodec::encodeInto(std::span<const std::uint8_t> data,
                            DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes()));
    (void)ws; // No scratch needed: words assemble in registers.

    out.resize(9);
    for (int d = 0; d < 9; ++d)
        out[d].resize(kWords);

    for (int w = 0; w < kWords; ++w) {
        std::uint64_t word = 0;
        for (int d = 0; d < 8; ++d) {
            out[d][w] = data[w * 8 + d];
            word |= static_cast<std::uint64_t>(data[w * 8 + d])
                    << (8 * d);
        }
        out[8][w] = Secded::encode(word);
    }
}

void
SecdedLineCodec::decodeInto(DeviceSlices &slices,
                            std::span<std::uint8_t> data,
                            std::span<const int> erased,
                            LineWorkspace &ws, DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == 9);
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes()));
    ARCC_ASSERT(erased.empty()); // SECDED has no erasure channel.
    (void)ws;

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    for (int w = 0; w < kWords; ++w) {
        std::uint64_t word = 0;
        for (int d = 0; d < 8; ++d)
            word |= static_cast<std::uint64_t>(slices[d][w])
                    << (8 * d);
        std::uint8_t check = slices[8][w];

        const Secded::Result res = Secded::decode(word, check);
        if (res.status == DecodeStatus::Detected) {
            out.status = DecodeStatus::Detected;
            continue; // Word unrecoverable; data bytes not written.
        }
        if (res.status == DecodeStatus::Corrected) {
            if (out.status != DecodeStatus::Detected)
                out.status = DecodeStatus::Corrected;
            out.symbolsCorrected += 1;
            out.positions.push_back(w * 73 + res.bitCorrected);
            // Write the fix back to the slices.
            for (int d = 0; d < 8; ++d)
                slices[d][w] =
                    static_cast<std::uint8_t>(word >> (8 * d));
            slices[8][w] = check;
        }
        for (int d = 0; d < 8; ++d)
            data[w * 8 + d] =
                static_cast<std::uint8_t>(word >> (8 * d));
    }
}

// ---------------------------------------------------------------------
// BchLineCodec
// ---------------------------------------------------------------------

BchLineCodec::BchLineCodec(int data_bytes, int t, int devices,
                           const char *name)
    : bch_(data_bytes * 8, t),
      devices_(devices),
      sliceBytes_((bch_.codeBytes() + devices - 1) / devices),
      dataBytes_(data_bytes),
      name_(name)
{
    ARCC_ASSERT(devices > 0);
}

CodecTraits
BchLineCodec::traits() const
{
    CodecTraits t;
    t.symbolBits = 1;
    t.correct = bch_.t();
    // The decoder's syndrome-delta check rejects any pattern that is
    // not exactly consistent, so t+1 errors are detected unless they
    // alias into another weight-<=t coset (no guarantee beyond +1).
    t.detect = 1;
    t.codewords = 1;
    t.family = "bch";
    return t;
}

void
BchLineCodec::encodeInto(std::span<const std::uint8_t> data,
                         DeviceSlices &out, LineWorkspace &ws) const
{
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));

    // Stage the full wire image (data || parity || zero pad || device
    // padding) then carve contiguous per-device chunks off it.
    const int wireBytes = devices_ * sliceBytes_;
    ws.wire.assign(wireBytes, 0);
    std::copy(data.begin(), data.end(), ws.wire.begin());
    bch_.encode(std::span<std::uint8_t>(ws.wire.data(),
                                        bch_.codeBytes()));

    out.resize(devices_);
    for (int d = 0; d < devices_; ++d) {
        out[d].resize(sliceBytes_);
        std::copy(ws.wire.begin() + d * sliceBytes_,
                  ws.wire.begin() + (d + 1) * sliceBytes_,
                  out[d].begin());
    }
}

void
BchLineCodec::decodeInto(DeviceSlices &slices,
                         std::span<std::uint8_t> data,
                         std::span<const int> erased, LineWorkspace &ws,
                         DecodeResult &out) const
{
    ARCC_ASSERT(slices.size() == static_cast<std::size_t>(devices_));
    ARCC_ASSERT(data.size() == static_cast<std::size_t>(dataBytes_));
    ARCC_ASSERT(erased.empty()); // No erasure channel.

    out.status = DecodeStatus::Clean;
    out.symbolsCorrected = 0;
    out.positions.clear();

    const int wireBytes = devices_ * sliceBytes_;
    ws.wire.resize(wireBytes);
    for (int d = 0; d < devices_; ++d) {
        ARCC_ASSERT(slices[d].size() ==
                    static_cast<std::size_t>(sliceBytes_));
        std::copy(slices[d].begin(), slices[d].end(),
                  ws.wire.begin() + d * sliceBytes_);
    }

    const Bch::Result res = bch_.decode(
        std::span<std::uint8_t>(ws.wire.data(), bch_.codeBytes()),
        ws.bch, &out.positions);
    if (res.status == DecodeStatus::Detected) {
        out.status = DecodeStatus::Detected;
        return; // Data bytes not written.
    }
    if (res.status == DecodeStatus::Corrected) {
        out.status = DecodeStatus::Corrected;
        out.symbolsCorrected = res.bitsCorrected;
        // Write the fixes back to the slices.
        for (int d = 0; d < devices_; ++d)
            std::copy(ws.wire.begin() + d * sliceBytes_,
                      ws.wire.begin() + (d + 1) * sliceBytes_,
                      slices[d].begin());
    }
    std::copy(ws.wire.begin(), ws.wire.begin() + dataBytes_,
              data.begin());
}

// ---------------------------------------------------------------------
// Codec registry
// ---------------------------------------------------------------------

namespace codecs
{

namespace
{

struct Entry
{
    std::string summary;
    Factory factory;
};

struct Registry
{
    std::mutex mu;
    std::map<std::string, Entry> entries;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** One-time registration of the built-in zoo. */
void
registerBuiltins()
{
    static const bool once = [] {
        registerCodec("sccdcd", "commercial SCCDCD RS(36,32) x2 / 64B",
                      schemes::commercialSccdcd);
        registerCodec("dcs",
                      "double chip sparing RS(36,32) maxCorrect 2",
                      schemes::doubleChipSparing);
        registerCodec("arcc-relaxed",
                      "ARCC relaxed RS(18,16) x4 / 64B",
                      schemes::arccRelaxed);
        registerCodec("arcc-upgraded",
                      "ARCC upgraded RS(36,32) x4 / 128B",
                      schemes::arccUpgraded);
        registerCodec("arcc-upgraded2",
                      "ARCC 2nd-level RS(72,64) x4 / 256B",
                      schemes::arccUpgraded2);
        registerCodec("lot9", "LOT-ECC nine-device checksum+XOR",
                      schemes::lotEcc9);
        registerCodec("lot18", "LOT-ECC 18-device (Ch 5.2)",
                      schemes::lotEcc18);
        registerCodec("hsiao72", "Hsiao SECDED (72,64) x8 / 64B", [] {
            return std::make_unique<SecdedLineCodec>();
        });
        registerCodec("bch512-t2",
                      "BCH(512+k, 512) t=2 over 18 devices", [] {
                          return std::make_unique<BchLineCodec>(
                              64, 2, 18, "BCH-512 t=2");
                      });
        registerCodec("bch512-t4",
                      "BCH(512+k, 512) t=4 over 18 devices", [] {
                          return std::make_unique<BchLineCodec>(
                              64, 4, 18, "BCH-512 t=4");
                      });
        return true;
    }();
    (void)once;
}

} // anonymous namespace

void
registerCodec(const std::string &key, const std::string &summary,
              Factory factory)
{
    if (!factory)
        fatal("codecs::registerCodec: empty factory for '%s'",
              key.c_str());
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto [it, inserted] =
        r.entries.emplace(key, Entry{summary, std::move(factory)});
    if (!inserted)
        fatal("codecs::registerCodec: duplicate codec key '%s'",
              key.c_str());
}

bool
known(const std::string &key)
{
    registerBuiltins();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.entries.find(key) != r.entries.end();
}

std::unique_ptr<LineCodec>
make(const std::string &key)
{
    registerBuiltins();
    Factory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        auto it = r.entries.find(key);
        if (it == r.entries.end())
            fatal("codecs::make: unknown codec '%s'", key.c_str());
        factory = it->second.factory;
    }
    std::unique_ptr<LineCodec> codec = factory();
    if (!codec)
        fatal("codecs::make: factory for '%s' returned null",
              key.c_str());
    return codec;
}

std::string
summary(const std::string &key)
{
    registerBuiltins();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.entries.find(key);
    if (it == r.entries.end())
        fatal("codecs::summary: unknown codec '%s'", key.c_str());
    return it->second.summary;
}

std::vector<std::string>
names()
{
    registerBuiltins();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::string> out;
    out.reserve(r.entries.size());
    for (const auto &[key, entry] : r.entries)
        out.push_back(key);
    return out; // std::map iteration order is already sorted.
}

} // namespace codecs

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

namespace schemes
{

std::unique_ptr<LineCodec>
commercialSccdcd()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 1,
                                         "SCCDCD RS(36,32)");
}

std::unique_ptr<LineCodec>
doubleChipSparing()
{
    return std::make_unique<RsLineCodec>(36, 32, 64, 2,
                                         "DCS RS(36,32)+spare");
}

std::unique_ptr<LineCodec>
arccRelaxed()
{
    return std::make_unique<RsLineCodec>(18, 16, 64, 1,
                                         "ARCC relaxed RS(18,16)");
}

std::unique_ptr<LineCodec>
arccUpgraded()
{
    return std::make_unique<RsLineCodec>(36, 32, 128, 1,
                                         "ARCC upgraded RS(36,32)");
}

std::unique_ptr<LineCodec>
arccUpgraded2()
{
    return std::make_unique<RsLineCodec>(72, 64, 256, 1,
                                         "ARCC upgraded-2 RS(72,64)");
}

std::unique_ptr<LineCodec>
lotEcc9()
{
    return std::make_unique<LotLineCodec>(8);
}

std::unique_ptr<LineCodec>
lotEcc18()
{
    // Two nine-device channels in lockstep: a 128B paired line.
    return std::make_unique<LotLineCodec>(16, 128);
}

} // namespace schemes

} // namespace arcc
