/**
 * @file
 * Page table implementation.
 */

#include "arcc/page_table.hh"

#include "common/logging.hh"

namespace arcc
{

const char *
toString(PageMode m)
{
    switch (m) {
      case PageMode::Relaxed:   return "relaxed";
      case PageMode::Upgraded:  return "upgraded";
      case PageMode::Upgraded2: return "upgraded-2";
    }
    return "?";
}

PageTable::PageTable(std::uint64_t pages, PageMode initial)
    : modes_(pages, initial)
{
    counts_[static_cast<int>(initial)] = pages;
}

void
PageTable::setMode(std::uint64_t page, PageMode mode)
{
    ARCC_ASSERT(page < modes_.size());
    PageMode old = modes_[page];
    if (old == mode)
        return;
    if (static_cast<int>(mode) > static_cast<int>(old))
        ++upgrades_;
    else
        ++downgrades_;
    --counts_[static_cast<int>(old)];
    ++counts_[static_cast<int>(mode)];
    modes_[page] = mode;
}

std::uint64_t
PageTable::count(PageMode m) const
{
    return counts_[static_cast<int>(m)];
}

double
PageTable::upgradedFraction() const
{
    if (modes_.empty())
        return 0.0;
    return static_cast<double>(counts_[1] + counts_[2]) /
           static_cast<double>(modes_.size());
}

} // namespace arcc
