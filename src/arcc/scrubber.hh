/**
 * @file
 * The ARCC test-pattern memory scrubber (Section 4.2.2).
 *
 * A conventional scrubber only reads and writes back, which leaves
 * hidden stuck-at faults undetected in locations whose current data
 * happens to match the stuck value.  The paper's scrubber therefore
 * runs, per line:
 *
 *   1. read the line and set its (corrected) value aside;
 *   2. write all 0s, read back -- any 1 bit implies stuck-at-1;
 *   3. write all 1s, read back -- any 0 bit implies stuck-at-0;
 *   4. write the corrected original content back.
 *
 * Pages in which any step detects an error are upgraded at the end of
 * the scrub (relaxed -> upgraded; already-upgraded pages escalate to
 * the Chapter 5.1 second level when the memory allows it).  The
 * scrubber can also *relax* fault-free pages, which is how the paper
 * boots: all pages start upgraded, the first scrub demotes the clean
 * ones.
 */

#ifndef ARCC_ARCC_SCRUBBER_HH
#define ARCC_ARCC_SCRUBBER_HH

#include <cstdint>
#include <vector>

#include "arcc/arcc_memory.hh"

namespace arcc
{

class SimEngine;

/** What a scrub pass found and did. */
struct ScrubReport
{
    std::uint64_t linesScrubbed = 0;
    std::uint64_t errorsCorrected = 0;
    std::uint64_t duesFound = 0;
    std::uint64_t stuckAt1Found = 0;
    std::uint64_t stuckAt0Found = 0;
    /** Pages any step flagged. */
    std::vector<std::uint64_t> faultyPages;
    std::uint64_t pagesUpgraded = 0;
    std::uint64_t pagesRelaxed = 0;

    /**
     * Fold another shard's sweep counters in (shard-order merge);
     * faultyPages concatenates, which keeps it sorted because shards
     * cover ascending page ranges.
     */
    void merge(const ScrubReport &o);

    /** Field-wise equality (determinism tests compare whole reports). */
    bool operator==(const ScrubReport &o) const = default;
};

/**
 * Per-shard scratch for the scrub sweep: the memory workspace the
 * decode pipeline runs in, plus the sweep's own staging buffers.  All
 * heap storage is reused page after page, so a steady-state sweep
 * allocates nothing after its first page.
 */
struct ScrubScratch
{
    MemoryWorkspace mem;
    /** Line addresses of the page being swept. */
    std::vector<std::uint64_t> addrs;
    /** Per-line batch results. */
    std::vector<ReadResult> lines;
    /** Raw pre-sweep snapshots, one per group. */
    std::vector<std::vector<std::uint8_t>> snaps;
    /** Reassembled group data for the restore write. */
    std::vector<std::uint8_t> data;
};

/** Scrubber policy knobs. */
struct ScrubberConfig
{
    /** Run the write-0 / write-1 test patterns (steps 2-3). */
    bool testPatterns = true;
    /** Demote fault-free pages to relaxed (boot-time behaviour). */
    bool relaxCleanPages = false;
    /** Escalate already-upgraded faulty pages to level 2 if possible. */
    bool allowLevel2 = true;
};

/**
 * Scrubs an ArccMemory and applies the page-mode transitions.
 */
class Scrubber
{
  public:
    explicit Scrubber(ScrubberConfig config = {}) : config_(config) {}

    /** Scrub the whole memory. */
    ScrubReport scrub(ArccMemory &memory) const;

    /**
     * Scrub the whole memory with the page sweep sharded across the
     * engine (nullptr = the global one).
     *
     * Each shard owns a fixed, thread-count-independent range of
     * pages and runs the per-line read / write-0 / write-1 / restore
     * loop through ArccMemory::accessBatch(), which amortises the
     * page-table lookup across the page and screens the page's groups
     * through the SIMD SoA syndrome kernel (see ecc/gf256_simd.hh) --
     * a scrub sweep is the naturally-batched caller the
     * codeword-transposed layout exists for.  Shards
     * touch disjoint pages -- hence disjoint device bytes -- and
     * accumulate their counters into private ScrubReport /
     * MemoryStats partials, so the sweep is race-free; the partials
     * are merged in shard order and the page-mode transitions are
     * applied afterwards in one ordered pass on the calling thread.
     *
     * The returned report is bit-identical to scrub()'s at any thread
     * count (tests/test_determinism.cc enforces all of this).  The
     * memory's stats() counters differ from the serial path's only in
     * accounting granularity: accessBatch counts one logical read per
     * 64B line where readWholeGroup counts one per group.
     */
    ScrubReport scrubParallel(ArccMemory &memory,
                              SimEngine *engine = nullptr) const;

    /**
     * The paper's boot sequence: everything is already upgraded, so
     * scrub once with relaxCleanPages on.
     */
    ScrubReport bootScrub(ArccMemory &memory) const;

    /** bootScrub on the sharded sweep. */
    ScrubReport bootScrubParallel(ArccMemory &memory,
                                  SimEngine *engine = nullptr) const;

    /** Pages per scrub shard; fixed so sharding never depends on the
     *  thread count (determinism invariant). */
    static constexpr std::uint64_t kShardPages = 8;

    /**
     * DRAM accesses one line's scrub visit costs: 6 with the
     * write-0 / write-1 test patterns (three read passes + three
     * write passes, Section 4.2.2), 2 for a plain read + restore.
     * Shared by the closed-form overhead model below and by the
     * system simulator's background-scrub injection
     * (cpu/system_sim.hh), so the two overhead estimates count the
     * same traffic.
     */
    static int accessesPerLine(bool test_patterns)
    {
        return test_patterns ? 6 : 2;
    }

    /**
     * Closed-form overhead model of Section 4.2.2: scrub duration for
     * a channel of `bytes` at `bus_bytes_per_sec` (a full
     * test-pattern sweep moves accessesPerLine(true) == 6 times the
     * contents), and the fraction of bandwidth consumed at one scrub
     * per `period_hours`.
     */
    static double scrubSeconds(double bytes, double bus_bytes_per_sec);
    static double bandwidthFraction(double scrub_seconds,
                                    double period_hours);

  private:
    /** One page's sweep (steps 1-4 per group), batched reads; flags
     *  the page in `report` and accumulates decode work in `stats`.
     *  All scratch comes from the shard-owned `scratch`, so the sweep
     *  is allocation-free in steady state. */
    void sweepPage(ArccMemory &memory, std::uint64_t page,
                   ScrubReport &report, MemoryStats &stats,
                   ScrubScratch &scratch) const;

    /** End-of-scrub page-mode transitions, one ordered pass; fills
     *  report.faultyPages / pagesUpgraded / pagesRelaxed. */
    void applyTransitions(ArccMemory &memory,
                          const std::vector<bool> &faulty,
                          ScrubReport &report) const;

    ScrubberConfig config_;
};

} // namespace arcc

#endif // ARCC_ARCC_SCRUBBER_HH
