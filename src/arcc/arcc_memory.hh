/**
 * @file
 * The functional (bit-true) ARCC memory: simulated DRAM devices with
 * fault overlays, per-page adaptive ECC, and raw access hooks for the
 * test-pattern scrubber.
 *
 * This is the data plane of the reproduction (DESIGN.md section 7):
 * real bytes are encoded into per-device symbol slices on write,
 * device-level faults corrupt the slices on read, and reads decode and
 * correct through the scheme codecs of ecc_scheme.hh.  Page modes come
 * from the PageTable; upgrading a page re-reads every line under the
 * old code and re-encodes it under the stronger one, touching only the
 * page itself, exactly as Section 4.2.1 describes.
 *
 * Geometry is configurable and deliberately small by default (the
 * functional plane proves the mechanism; the performance plane in
 * src/dram and src/cpu carries the paper's Figure 7.x workloads).
 */

#ifndef ARCC_ARCC_ARCC_MEMORY_HH
#define ARCC_ARCC_ARCC_MEMORY_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arcc/ecc_scheme.hh"
#include "arcc/page_table.hh"
#include "common/units.hh"

namespace arcc
{

/** Protection scheme the functional memory runs. */
enum class SchemeKind
{
    /** Fixed RS(36,32), correct 1 / detect 2 (the baseline). */
    CommercialSccdcd,
    /** Fixed RS(36,32) with spare-device remap, correct up to 2. */
    DoubleChipSparing,
    /** ARCC over commercial chipkill: RS(18,16) <-> RS(36,32). */
    ArccCommercial,
    /** ARCC over double chip sparing (enables the Ch 5.1 level 2). */
    ArccDcs,
    /** Fixed nine-device LOT-ECC. */
    LotEcc9,
    /** ARCC over LOT-ECC: 9-device <-> 18-device (Ch 5.2). */
    ArccLotEcc,
};

/** Display name. */
const char *toString(SchemeKind k);

/** Functional-plane geometry and scheme selection. */
struct FunctionalConfig
{
    SchemeKind scheme = SchemeKind::ArccCommercial;
    int channels = 2;
    int ranksPerChannel = 2;
    /** Devices in one channel's rank (36 / 18 / 9 by scheme). */
    int devicesPerRank = 18;
    int banks = 2;
    int rows = 16;
    int pagesPerRow = 2;
    /** Allow the Chapter 5.1 second upgrade level (needs 4 channels). */
    bool allowLevel2 = false;

    /** Lines per channel-row slice. */
    int linesPerRow() const;
    /** Total data capacity in bytes. */
    std::uint64_t capacity() const;
    /** 4KB pages. */
    std::uint64_t pages() const { return capacity() / kPageBytes; }

    /** Small ARCC-over-commercial config (512 KB, 128 pages). */
    static FunctionalConfig arccSmall();
    /** Small commercial SCCDCD baseline (36-device channels). */
    static FunctionalConfig baselineSmall();
    /** Four-channel config for the Chapter 5.1 second level. */
    static FunctionalConfig arccWide();
    /** ARCC over LOT-ECC (9-device ranks). */
    static FunctionalConfig lotSmall();
};

/** How a faulty device corrupts its output. */
enum class FaultKind
{
    StuckAt1,
    StuckAt0,
    /** Wrong data of full weight (e.g. a broken address decoder). */
    Corrupt,
};

/** Footprint of an injected functional fault. */
enum class FaultScope
{
    Device, ///< the device's whole array.
    Lane,   ///< this device position in every rank of the channel.
    Bank,   ///< one bank.
    Row,    ///< one row of one bank.
    Column, ///< one column of one bank.
    Cell,   ///< a single line slot (bit/word faults).
};

/** One injected device fault. */
struct FunctionalFault
{
    int channel = 0;
    int rank = 0;
    int device = 0;
    FaultScope scope = FaultScope::Device;
    FaultKind kind = FaultKind::Corrupt;
    int bank = 0;
    int row = 0;
    int col = 0;
    /** Bits affected within each slice byte (stuck-at kinds). */
    std::uint8_t mask = 0xff;
};

/** Result of a functional read. */
struct ReadResult
{
    DecodeStatus status = DecodeStatus::Clean;
    int symbolsCorrected = 0;
    std::vector<std::uint8_t> data;
};

/**
 * Per-worker scratch for the allocation-free memory paths: the codec
 * workspace plus the decoded-group staging buffer.  One per shard /
 * worker, reused across batches.
 */
struct MemoryWorkspace
{
    LineWorkspace line;
    /** Whole-group decode staging for the single-group read path. */
    ReadResult whole;

    // ----- batch staging (ArccMemory::accessBatch) -------------------
    //
    // The batched read gathers every distinct group of the address
    // stream up front, SoA-screens runs of them per pass (see
    // accessBatch), and extracts lines at the end.  All capacity is
    // reused across batches, so a steady-state sweep allocates
    // nothing after its first page.

    /** One gathered-but-not-yet-decoded ECC group. */
    struct StagedGroup
    {
        std::uint64_t base;
        PageMode mode;
        /** Needs the scalar per-group decode (LOT wire format or
         *  erased devices) instead of the SoA screen. */
        bool slow;
    };
    std::vector<StagedGroup> groups;
    /** Gathered slices per staged group (ring of reused buffers). */
    std::vector<DeviceSlices> groupSlices;
    /** Decoded whole-group results, parallel to `groups`. */
    std::vector<ReadResult> groupWhole;
    /** Staged-group index serving each batch address. */
    std::vector<std::uint32_t> addrGroup;
};

/** Counters exposed for tests and examples. */
struct MemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t deviceReads = 0;  ///< device touches on reads.
    std::uint64_t deviceWrites = 0; ///< device touches on writes.
    std::uint64_t corrected = 0;
    std::uint64_t dues = 0;

    /** Accumulate a delta (shard-order merge of parallel sweeps). */
    MemoryStats &
    operator+=(const MemoryStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        deviceReads += o.deviceReads;
        deviceWrites += o.deviceWrites;
        corrected += o.corrected;
        dues += o.dues;
        return *this;
    }
};

/**
 * The functional memory.
 */
class ArccMemory
{
  public:
    explicit ArccMemory(const FunctionalConfig &config);

    // ----- normal data path -------------------------------------------
    /** Write one 64B line (read-modify-write inside upgraded groups). */
    void write(std::uint64_t addr, std::span<const std::uint8_t> data);

    /** Read one 64B line through the page's current code. */
    ReadResult read(std::uint64_t addr);

    /**
     * Read a batch of 64B lines, returning one result per address in
     * order.  Consecutive addresses that fall in the same ECC group
     * reuse one gather + decode, and repeated hits to one page reuse
     * its page-table lookup, so a sequential or group-local access
     * stream costs a fraction of per-line read() calls.
     *
     * Returned results (data and per-line status) are identical to
     * calling read() per address.  The decode-work counters
     * (stats().deviceReads / corrected / dues) count actual decode
     * operations and therefore come out *lower* than the per-line
     * path's: that amortisation is the point of batching.
     */
    std::vector<ReadResult>
    accessBatch(std::span<const std::uint64_t> addrs);

    /**
     * Read the full ECC group containing addr (64B for a relaxed page,
     * 128B upgraded, 256B level-2).  The scrubber works at this
     * granularity.
     */
    ReadResult readWholeGroup(std::uint64_t addr);

    /**
     * Encode and store a full group's data directly (no internal
     * read-modify-write).  data.size() must equal the group size of
     * the page's current mode.
     */
    void writeGroup(std::uint64_t addr,
                    std::span<const std::uint8_t> data);

    // ----- stats-sink variants (parallel sweeps) ----------------------
    //
    // These perform the same accesses but accumulate the decode-work
    // counters into a caller-owned MemoryStats instead of the shared
    // stats() member.  Provided the address ranges of concurrent
    // callers are disjoint (the scrubber shards by page), they are
    // safe to call from several threads at once: storage bytes of
    // distinct addresses never alias, the page table and fault list
    // are only read, and the only shared-mutable state -- stats() --
    // is not touched.  Fold the deltas back in with addStats() on the
    // calling thread, in shard order, when the sweep completes.

    /** accessBatch with an explicit stats sink. */
    std::vector<ReadResult>
    accessBatch(std::span<const std::uint64_t> addrs,
                MemoryStats &stats);

    /**
     * The fully allocation-free batch read: scratch comes from `ws`
     * and results land in `results`, whose per-line buffers are
     * reused across calls.  A steady-state sweep (same batch shape
     * page after page, e.g. the scrubber's) allocates nothing after
     * its first batch.  Results and stats accounting are identical to
     * the owning overloads'.
     */
    void accessBatch(std::span<const std::uint64_t> addrs,
                     MemoryStats &stats, MemoryWorkspace &ws,
                     std::vector<ReadResult> &results);

    /** writeGroup with an explicit stats sink. */
    void writeGroup(std::uint64_t addr,
                    std::span<const std::uint8_t> data,
                    MemoryStats &stats);

    /** writeGroup encoding through a caller-owned workspace. */
    void writeGroup(std::uint64_t addr,
                    std::span<const std::uint8_t> data,
                    MemoryStats &stats, MemoryWorkspace &ws);

    /** Fold a parallel sweep's stats delta into stats(). */
    void addStats(const MemoryStats &delta) { stats_ += delta; }

    // ----- fault injection --------------------------------------------
    void injectFault(const FunctionalFault &fault);
    const std::vector<FunctionalFault> &faults() const { return faults_; }
    void clearFaults() { faults_.clear(); }

    // ----- page-mode management (Section 4.2.1) -----------------------
    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }

    /** Page index of an address. */
    std::uint64_t pageOf(std::uint64_t addr) const
    {
        return addr / kPageBytes;
    }

    /**
     * Change a page's chipkill strength, re-encoding every line in the
     * page (and only in the page).  Errors found along the way are
     * corrected by the old code where possible.
     */
    void setPageMode(std::uint64_t page, PageMode mode);

    // ----- raw hooks for the scrubber (Section 4.2.2) -----------------
    /** Fill the line's slices (mode granularity) with a test byte. */
    void rawFill(std::uint64_t addr, std::uint8_t value);
    /** @return true when every slice byte reads back as `value`. */
    bool rawCheck(std::uint64_t addr, std::uint8_t value);
    /** rawCheck gathering through a caller-owned workspace. */
    bool rawCheck(std::uint64_t addr, std::uint8_t value,
                  LineWorkspace &ws);
    /** Snapshot the raw slices of the line's group. */
    std::vector<std::uint8_t> rawSnapshot(std::uint64_t addr);
    /** rawSnapshot into an existing buffer, reusing its storage. */
    void rawSnapshotInto(std::uint64_t addr,
                         std::vector<std::uint8_t> &out);
    /** Restore a snapshot taken by rawSnapshot. */
    void rawRestore(std::uint64_t addr,
                    std::span<const std::uint8_t> snapshot);

    // ----- double-chip-sparing support --------------------------------
    /** Mark a device of a rank as diagnosed-bad (erasure decode). */
    void spareDevice(int channel, int rank, int device);
    /** Diagnosed devices of a rank. */
    const std::vector<int> &sparedDevices(int channel, int rank) const;

    // ----- introspection ----------------------------------------------
    const FunctionalConfig &config() const { return config_; }
    const MemoryStats &stats() const { return stats_; }
    std::uint64_t capacity() const { return config_.capacity(); }

    /** Group span (bytes) a page mode reads per access. */
    std::uint64_t groupBytes(PageMode mode) const;

  private:
    struct Loc
    {
        int channel, rank, bank, col;
        std::uint32_t row;
    };

    Loc locOf(std::uint64_t addr) const;
    std::size_t slotOffset(const Loc &loc) const;
    std::uint8_t *slicePtr(int channel, int rank, int device,
                           const Loc &loc);

    /** Codec serving a page mode. */
    const LineCodec &codecFor(PageMode mode) const;
    /** Number of 64B sub-lines per group in a mode. */
    int subLines(PageMode mode) const;

    /** Gather (overlay-applied) slices for the group holding addr. */
    DeviceSlices gatherGroup(std::uint64_t group_base, PageMode mode);
    /** Gather into an existing buffer, reusing its storage. */
    void gatherGroupInto(std::uint64_t group_base, PageMode mode,
                         DeviceSlices &out);
    /** Store encoded slices for the group holding addr. */
    void storeGroup(std::uint64_t group_base, PageMode mode,
                    const DeviceSlices &slices);
    /** Erased-device indices in codec ordering for a group. */
    std::vector<int> erasedFor(std::uint64_t group_base,
                               PageMode mode) const;
    /** Erased-device indices into an existing buffer. */
    void erasedInto(std::uint64_t group_base, PageMode mode,
                    std::vector<int> &out) const;

    /** Apply fault overlays to a slice just read. */
    void applyOverlay(std::span<std::uint8_t> bytes, int channel,
                      int rank, int device, const Loc &loc) const;

    /** Read a full group, decoding; helper for read / RMW / convert.
     *  Decode-work counters land in `stats` (usually stats_). */
    ReadResult readGroup(std::uint64_t group_base, PageMode mode,
                         MemoryStats &stats);

    /** The allocation-free core of readGroup: scratch from `ws`,
     *  result into `out` (buffers reused across calls). */
    void readGroupInto(std::uint64_t group_base, PageMode mode,
                       MemoryStats &stats, LineWorkspace &ws,
                       ReadResult &out);

    /** Pass 2 of accessBatch: SoA-screen runs of staged groups at
     *  the active SIMD tier, decode flagged / slow ones. */
    void screenStagedGroups(MemoryStats &stats, MemoryWorkspace &ws);

    /** Full scalar decode of staged group g (stats as readGroupInto). */
    void decodeStagedGroup(std::size_t g, MemoryStats &stats,
                           MemoryWorkspace &ws);

    /** Slice one 64B line out of a decoded group's result. */
    static ReadResult extractLine(const ReadResult &whole,
                                  std::uint64_t addr,
                                  std::uint64_t group_base);

    /** extractLine into an existing result, reusing its buffer. */
    static void extractLineInto(const ReadResult &whole,
                                std::uint64_t addr,
                                std::uint64_t group_base,
                                ReadResult &out);

    FunctionalConfig config_;
    std::unique_ptr<LineCodec> relaxedCodec_;
    std::unique_ptr<LineCodec> upgradedCodec_;
    std::unique_ptr<LineCodec> upgraded2Codec_;
    int slotBytes_;

    /** storage_[(channel * ranks + rank) * devices + device]. */
    std::vector<std::vector<std::uint8_t>> storage_;
    std::vector<FunctionalFault> faults_;
    /** sparedDevices_[channel * ranks + rank]. */
    std::vector<std::vector<int>> spared_;

    PageTable pageTable_;
    MemoryStats stats_;
};

} // namespace arcc

#endif // ARCC_ARCC_ARCC_MEMORY_HH
