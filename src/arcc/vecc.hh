/**
 * @file
 * VECC -- Virtualized ECC (Yoon & Erez, ASPLOS 2010) -- and ARCC
 * applied to it (Chapter 5.2).
 *
 * VECC splits a codeword's check symbols in two tiers:
 *
 *  - **tier-1 (inline)**: check symbols stored in the rank's redundant
 *    devices, read with every access, used for *detection*;
 *  - **tier-2 (virtualised)**: the remaining check symbols live in the
 *    *data* space of a different rank, mapped via the page table, and
 *    are fetched only when tier-1 flags an error (or written when a
 *    dirty line leaves the LLC and its tier-2 line is not cached).
 *
 * The virtualised symbols are modelled exactly: they are evaluations
 * of the inline codeword at the extension roots alpha^r, alpha^r+1...,
 * so inline-plus-tier-2 decodes with the full syndrome set through
 * ReedSolomon::decodeWithSyndromes (see that header).
 *
 * Geometries:
 *
 *  - **VECC 18-device** (the ASPLOS configuration): RS(18,16) inline
 *    (2 detection symbols) + 2 virtualised symbols -> 4 total, single
 *    chipkill correct, double detect.  Error-free reads touch 18
 *    devices; error-path reads and tier-2 write-backs touch 36.
 *  - **ARCC+VECC relaxed, 9-device** (Chapter 5.2): RS(9,8) inline
 *    (1 detection symbol) + 1 virtualised symbol -> single chipkill
 *    correct with only nine devices per access.
 *
 * ARCC upgrades a faulty 9-device page to the 18-device layout, the
 * same lockstep-pairing trick as for commercial chipkill.
 */

#ifndef ARCC_ARCC_VECC_HH
#define ARCC_ARCC_VECC_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace arcc
{

/** One VECC tier geometry. */
struct VeccGeometry
{
    int devices = 18;       ///< rank size (inline symbols).
    int dataDevices = 16;   ///< data symbols per codeword.
    int tier2Symbols = 2;   ///< virtualised check symbols.

    int inlineChecks() const { return devices - dataDevices; }
    int totalChecks() const { return inlineChecks() + tier2Symbols; }

    /** The ASPLOS'10 18-device configuration. */
    static VeccGeometry vecc18();
    /** The Chapter 5.2 nine-device relaxed configuration. */
    static VeccGeometry vecc9();
};

/** Outcome of a VECC read, including the access amplification. */
struct VeccReadResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Device accesses consumed (devices, or 2x on the error path). */
    int deviceAccesses = 0;
    /** True when the tier-2 symbols had to be fetched. */
    bool tier2Fetched = false;
    std::vector<std::uint8_t> data;
};

/** Access-accounting statistics. */
struct VeccStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t deviceAccesses = 0;
    std::uint64_t tier2Fetches = 0;
    std::uint64_t tier2Writebacks = 0;
    std::uint64_t corrected = 0;
    std::uint64_t dues = 0;
};

/**
 * A functional VECC-protected memory region: `lines` lines of
 * dataDevices symbols each, with the tier-2 symbols stored in a
 * separate table standing in for another rank's data space.
 */
class VeccMemory
{
  public:
    /**
     * @param geometry      tier geometry (vecc18 or vecc9).
     * @param lines         capacity in lines.
     * @param t2HitRate     probability a line's tier-2 symbols are
     *                      found in the LLC when a dirty write-back
     *                      needs them (spares the extra memory write).
     * @param seed          RNG seed for the t2 hit model.
     */
    VeccMemory(const VeccGeometry &geometry, std::uint64_t lines,
               double t2HitRate = 0.5, std::uint64_t seed = 1);

    /** Bytes of data per line. */
    int lineBytes() const { return geom_.dataDevices; }

    /** Write one line (data symbols only). */
    void write(std::uint64_t line,
               std::span<const std::uint8_t> data);

    /** Read one line: tier-1 fast path, tier-2 on detection. */
    VeccReadResult read(std::uint64_t line);

    /**
     * Batched read: the tier-1 syndrome screen runs over the whole
     * batch first (allocation-free per line), then the lines it
     * flagged take one grouped tier-2 pass -- fetching their
     * virtualised symbols and running the extended-syndrome decode
     * back to back over one reused workspace, the way a memory
     * controller would burst the tier-2 fetches of a faulty rank.
     *
     * `out` is resized to lines.size(); its per-line buffers are
     * reused across calls, so a steady-state caller allocates nothing
     * after the first batch.  Results and stats are identical to
     * calling read() per line in order.
     */
    void readBatch(std::span<const std::uint64_t> lines,
                   std::vector<VeccReadResult> &out);

    /** Mark a device bad: its symbol is corrupted on every read. */
    void killDevice(int device);
    /** Clear injected faults. */
    void clearFaults() { deadDevices_.clear(); }

    const VeccStats &stats() const { return stats_; }
    const VeccGeometry &geometry() const { return geom_; }

  private:
    /** Apply dead-device corruption to a gathered inline word. */
    void corrupt(std::uint64_t line,
                 std::span<std::uint8_t> word) const;

    /** Gather + corrupt a line's inline word into ws_.word. */
    std::span<std::uint8_t> gather(std::uint64_t line);

    /** The tier-2 path: fetch the virtualised symbols and decode
     *  with the extended syndrome set.  `word` is ws_.word. */
    void tier2Decode(std::uint64_t line, std::span<std::uint8_t> word,
                     VeccReadResult &res);

    VeccGeometry geom_;
    ReedSolomon rs_;
    std::uint64_t lines_;
    double t2HitRate_;
    mutable Rng rng_;

    /** Inline storage: lines_ x devices symbols. */
    std::vector<std::uint8_t> inline_;
    /** Virtualised tier-2 storage: lines_ x tier2Symbols. */
    std::vector<std::uint8_t> tier2_;
    std::vector<int> deadDevices_;
    VeccStats stats_;

    /** Decode scratch (this memory is single-owner, like its Rng). */
    RsWorkspace ws_;
    /** Batch indices flagged for the tier-2 pass. */
    std::vector<std::size_t> flagged_;
};

} // namespace arcc

#endif // ARCC_ARCC_VECC_HH
