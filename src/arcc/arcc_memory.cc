/**
 * @file
 * Functional ARCC memory implementation.
 */

#include "arcc/arcc_memory.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace arcc
{

const char *
toString(SchemeKind k)
{
    switch (k) {
      case SchemeKind::CommercialSccdcd:  return "commercial SCCDCD";
      case SchemeKind::DoubleChipSparing: return "double chip sparing";
      case SchemeKind::ArccCommercial:    return "ARCC (commercial)";
      case SchemeKind::ArccDcs:           return "ARCC (chip sparing)";
      case SchemeKind::LotEcc9:           return "LOT-ECC 9-device";
      case SchemeKind::ArccLotEcc:        return "ARCC (LOT-ECC)";
    }
    return "?";
}

int
FunctionalConfig::linesPerRow() const
{
    return pagesPerRow * static_cast<int>(kLinesPerPage) / channels;
}

std::uint64_t
FunctionalConfig::capacity() const
{
    return static_cast<std::uint64_t>(channels) * ranksPerChannel *
           banks * rows * linesPerRow() * kLineBytes;
}

FunctionalConfig
FunctionalConfig::arccSmall()
{
    FunctionalConfig c;
    c.scheme = SchemeKind::ArccCommercial;
    c.channels = 2;
    c.ranksPerChannel = 2;
    c.devicesPerRank = 18;
    c.banks = 2;
    c.rows = 16;
    return c; // 2*2*2*16*64 lines = 512 KB, 128 pages.
}

FunctionalConfig
FunctionalConfig::baselineSmall()
{
    FunctionalConfig c = arccSmall();
    c.scheme = SchemeKind::CommercialSccdcd;
    c.ranksPerChannel = 1;
    c.devicesPerRank = 36;
    c.rows = 32;
    return c;
}

FunctionalConfig
FunctionalConfig::arccWide()
{
    FunctionalConfig c = arccSmall();
    c.scheme = SchemeKind::ArccDcs;
    c.channels = 4;
    c.allowLevel2 = true;
    c.rows = 8;
    return c;
}

FunctionalConfig
FunctionalConfig::lotSmall()
{
    FunctionalConfig c = arccSmall();
    c.scheme = SchemeKind::ArccLotEcc;
    c.devicesPerRank = 9;
    return c;
}

namespace
{

/** Fixed schemes run their single code as "Relaxed"; adaptive schemes
 *  boot every page Upgraded per Section 4.2.1. */
PageMode
bootMode(SchemeKind scheme)
{
    switch (scheme) {
      case SchemeKind::CommercialSccdcd:
      case SchemeKind::DoubleChipSparing:
      case SchemeKind::LotEcc9:
        return PageMode::Relaxed;
      default:
        return PageMode::Upgraded;
    }
}

} // anonymous namespace

ArccMemory::ArccMemory(const FunctionalConfig &config)
    : config_(config),
      pageTable_(config.pages(), bootMode(config.scheme))
{
    switch (config_.scheme) {
      case SchemeKind::CommercialSccdcd:
        relaxedCodec_ = schemes::commercialSccdcd();
        break;
      case SchemeKind::DoubleChipSparing:
        relaxedCodec_ = schemes::doubleChipSparing();
        break;
      case SchemeKind::ArccCommercial:
        relaxedCodec_ = schemes::arccRelaxed();
        upgradedCodec_ = schemes::arccUpgraded();
        if (config_.allowLevel2)
            upgraded2Codec_ = schemes::arccUpgraded2();
        break;
      case SchemeKind::ArccDcs:
        relaxedCodec_ = schemes::arccRelaxed();
        upgradedCodec_ = std::make_unique<RsLineCodec>(
            36, 32, 128, 2, "ARCC+DCS upgraded RS(36,32)");
        if (config_.allowLevel2)
            upgraded2Codec_ = std::make_unique<RsLineCodec>(
                72, 64, 256, 2, "ARCC+DCS upgraded-2 RS(72,64)");
        break;
      case SchemeKind::LotEcc9:
        relaxedCodec_ = schemes::lotEcc9();
        break;
      case SchemeKind::ArccLotEcc:
        relaxedCodec_ = schemes::lotEcc9();
        upgradedCodec_ = schemes::lotEcc18();
        break;
    }

    if (relaxedCodec_->devices() != config_.devicesPerRank)
        fatal("ArccMemory: scheme %s needs %d devices/rank, config has %d",
              toString(config_.scheme), relaxedCodec_->devices(),
              config_.devicesPerRank);
    if (upgradedCodec_ &&
        upgradedCodec_->devices() > 2 * config_.devicesPerRank)
        fatal("ArccMemory: upgraded codec spans %d devices, only %d "
              "available",
              upgradedCodec_->devices(), 2 * config_.devicesPerRank);
    if (upgraded2Codec_ && config_.channels < 4)
        fatal("ArccMemory: level-2 upgrade needs 4 channels, have %d",
              config_.channels);

    slotBytes_ = relaxedCodec_->sliceBytes();
    if (upgradedCodec_)
        slotBytes_ = std::max(slotBytes_, upgradedCodec_->sliceBytes());
    if (upgraded2Codec_)
        slotBytes_ = std::max(slotBytes_, upgraded2Codec_->sliceBytes());

    std::size_t slots = static_cast<std::size_t>(config_.banks) *
                        config_.rows * config_.linesPerRow();
    storage_.assign(static_cast<std::size_t>(config_.channels) *
                        config_.ranksPerChannel * config_.devicesPerRank,
                    std::vector<std::uint8_t>(slots * slotBytes_, 0));
    spared_.assign(static_cast<std::size_t>(config_.channels) *
                       config_.ranksPerChannel,
                   {});

    // Initialise the arrays to *properly encoded* zero content so a
    // fresh memory decodes clean under every scheme (the LOT-ECC
    // checksum convention makes raw zeros inconsistent on purpose).
    PageMode mode = bootMode(config_.scheme);
    const LineCodec &codec = codecFor(mode);
    std::vector<std::uint8_t> zeros(codec.dataBytes(), 0);
    DeviceSlices slices = codec.encode(zeros);
    for (std::uint64_t base = 0; base < capacity();
         base += codec.dataBytes())
        storeGroup(base, mode, slices);
}

ArccMemory::Loc
ArccMemory::locOf(std::uint64_t addr) const
{
    ARCC_ASSERT(addr < capacity());
    std::uint64_t line = addr / kLineBytes;
    Loc loc;
    loc.channel = static_cast<int>(line % config_.channels);
    line /= config_.channels;
    loc.col = static_cast<int>(line % config_.linesPerRow());
    line /= config_.linesPerRow();
    loc.bank = static_cast<int>(line % config_.banks);
    line /= config_.banks;
    loc.rank = static_cast<int>(line % config_.ranksPerChannel);
    line /= config_.ranksPerChannel;
    loc.row = static_cast<std::uint32_t>(line);
    return loc;
}

std::size_t
ArccMemory::slotOffset(const Loc &loc) const
{
    std::size_t slot =
        (static_cast<std::size_t>(loc.bank) * config_.rows + loc.row) *
            config_.linesPerRow() +
        loc.col;
    return slot * slotBytes_;
}

std::uint8_t *
ArccMemory::slicePtr(int channel, int rank, int device, const Loc &loc)
{
    std::size_t dev_idx =
        (static_cast<std::size_t>(channel) * config_.ranksPerChannel +
         rank) * config_.devicesPerRank +
        device;
    return storage_[dev_idx].data() + slotOffset(loc);
}

const LineCodec &
ArccMemory::codecFor(PageMode mode) const
{
    switch (mode) {
      case PageMode::Relaxed:
        return *relaxedCodec_;
      case PageMode::Upgraded:
        ARCC_ASSERT(upgradedCodec_);
        return *upgradedCodec_;
      case PageMode::Upgraded2:
        ARCC_ASSERT(upgraded2Codec_);
        return *upgraded2Codec_;
    }
    return *relaxedCodec_;
}

int
ArccMemory::subLines(PageMode mode) const
{
    return codecFor(mode).dataBytes() / static_cast<int>(kLineBytes);
}

std::uint64_t
ArccMemory::groupBytes(PageMode mode) const
{
    return codecFor(mode).dataBytes();
}

void
ArccMemory::applyOverlay(std::span<std::uint8_t> bytes, int channel,
                         int rank, int device, const Loc &loc) const
{
    for (const FunctionalFault &f : faults_) {
        if (f.channel != channel || f.device != device)
            continue;
        if (f.scope != FaultScope::Lane && f.rank != rank)
            continue;
        bool match = false;
        switch (f.scope) {
          case FaultScope::Device:
          case FaultScope::Lane:
            match = true;
            break;
          case FaultScope::Bank:
            match = loc.bank == f.bank;
            break;
          case FaultScope::Row:
            match = loc.bank == f.bank &&
                    loc.row == static_cast<std::uint32_t>(f.row);
            break;
          case FaultScope::Column:
            match = loc.bank == f.bank && loc.col == f.col;
            break;
          case FaultScope::Cell:
            match = loc.bank == f.bank &&
                    loc.row == static_cast<std::uint32_t>(f.row) &&
                    loc.col == f.col;
            break;
        }
        if (!match)
            continue;
        switch (f.kind) {
          case FaultKind::StuckAt1:
            for (auto &b : bytes)
                b |= f.mask;
            break;
          case FaultKind::StuckAt0:
            for (auto &b : bytes)
                b &= static_cast<std::uint8_t>(~f.mask);
            break;
          case FaultKind::Corrupt: {
            // Deterministic wrong data: the same garbage on every read
            // of the same location, like a broken address decoder.
            std::uint64_t z = (static_cast<std::uint64_t>(channel) << 48) ^
                              (static_cast<std::uint64_t>(rank) << 40) ^
                              (static_cast<std::uint64_t>(device) << 32) ^
                              (static_cast<std::uint64_t>(loc.bank) << 24) ^
                              (static_cast<std::uint64_t>(loc.row) << 12) ^
                              static_cast<std::uint64_t>(loc.col);
            z += 0x9e3779b97f4a7c15ULL;
            for (std::size_t i = 0; i < bytes.size(); ++i) {
                std::uint64_t x = z + i * 0xbf58476d1ce4e5b9ULL;
                x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
                x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
                bytes[i] = static_cast<std::uint8_t>(x >> 56);
            }
            break;
          }
        }
    }
}

void
ArccMemory::gatherGroupInto(std::uint64_t group_base, PageMode mode,
                            DeviceSlices &out)
{
    const LineCodec &codec = codecFor(mode);
    const int dpr = config_.devicesPerRank;
    const int slice = codec.sliceBytes();
    out.resize(codec.devices());

    for (int d = 0; d < codec.devices(); ++d) {
        int sub = d / dpr;
        Loc loc = locOf(group_base + sub * kLineBytes);
        std::uint8_t *p = slicePtr(loc.channel, loc.rank, d % dpr, loc);
        out[d].assign(p, p + slice);
        applyOverlay(out[d], loc.channel, loc.rank, d % dpr, loc);
    }
}

DeviceSlices
ArccMemory::gatherGroup(std::uint64_t group_base, PageMode mode)
{
    DeviceSlices slices;
    gatherGroupInto(group_base, mode, slices);
    return slices;
}

void
ArccMemory::storeGroup(std::uint64_t group_base, PageMode mode,
                       const DeviceSlices &slices)
{
    const LineCodec &codec = codecFor(mode);
    const int dpr = config_.devicesPerRank;
    const int slice = codec.sliceBytes();
    ARCC_ASSERT(slices.size() ==
                static_cast<std::size_t>(codec.devices()));

    for (int d = 0; d < codec.devices(); ++d) {
        int sub = d / dpr;
        Loc loc = locOf(group_base + sub * kLineBytes);
        std::uint8_t *p = slicePtr(loc.channel, loc.rank, d % dpr, loc);
        std::memcpy(p, slices[d].data(), slice);
    }
}

void
ArccMemory::erasedInto(std::uint64_t group_base, PageMode mode,
                       std::vector<int> &out) const
{
    const LineCodec &codec = codecFor(mode);
    const int dpr = config_.devicesPerRank;
    out.clear();
    for (int d = 0; d < codec.devices(); ++d) {
        int sub = d / dpr;
        Loc loc = locOf(group_base + sub * kLineBytes);
        const auto &list = spared_[static_cast<std::size_t>(loc.channel) *
                                       config_.ranksPerChannel +
                                   loc.rank];
        if (std::find(list.begin(), list.end(), d % dpr) != list.end())
            out.push_back(d);
    }
}

std::vector<int>
ArccMemory::erasedFor(std::uint64_t group_base, PageMode mode) const
{
    std::vector<int> erased;
    erasedInto(group_base, mode, erased);
    return erased;
}

void
ArccMemory::readGroupInto(std::uint64_t group_base, PageMode mode,
                          MemoryStats &stats, LineWorkspace &ws,
                          ReadResult &out)
{
    const LineCodec &codec = codecFor(mode);
    gatherGroupInto(group_base, mode, ws.slices);
    erasedInto(group_base, mode, ws.erased);

    out.data.resize(codec.dataBytes());
    codec.decodeInto(ws.slices, out.data, ws.erased, ws, ws.dec);
    out.status = ws.dec.status;
    out.symbolsCorrected = ws.dec.symbolsCorrected;
    stats.deviceReads += codec.devices();
    if (ws.dec.status == DecodeStatus::Corrected)
        stats.corrected += ws.dec.symbolsCorrected;
    if (ws.dec.status == DecodeStatus::Detected)
        ++stats.dues;
}

ReadResult
ArccMemory::readGroup(std::uint64_t group_base, PageMode mode,
                      MemoryStats &stats)
{
    ReadResult res;
    readGroupInto(group_base, mode, stats,
                  LineWorkspace::forThisThread(), res);
    return res;
}

ReadResult
ArccMemory::read(std::uint64_t addr)
{
    ++stats_.reads;
    PageMode mode = pageTable_.mode(pageOf(addr));
    std::uint64_t group = groupBytes(mode);
    std::uint64_t base = addr & ~(group - 1);
    ReadResult whole = readGroup(base, mode, stats_);
    return extractLine(whole, addr, base);
}

std::vector<ReadResult>
ArccMemory::accessBatch(std::span<const std::uint64_t> addrs)
{
    return accessBatch(addrs, stats_);
}

std::vector<ReadResult>
ArccMemory::accessBatch(std::span<const std::uint64_t> addrs,
                        MemoryStats &stats)
{
    // A function-local workspace would also do, but routing through
    // the thread-default one means repeated batches reuse the same
    // buffers.
    static thread_local MemoryWorkspace scratch;
    std::vector<ReadResult> results;
    accessBatch(addrs, stats, scratch, results);
    return results;
}

void
ArccMemory::accessBatch(std::span<const std::uint64_t> addrs,
                        MemoryStats &stats, MemoryWorkspace &ws,
                        std::vector<ReadResult> &results)
{
    results.resize(addrs.size());
    ws.groups.clear();
    ws.addrGroup.resize(addrs.size());

    // Pass 1: walk the stream, discover its distinct groups (the same
    // consecutive-merge rule as the old one-entry decode cache, so
    // the amortisation accounting is unchanged) and gather each one's
    // slices once.  Decoding is deferred: gathering never writes, so
    // nothing a later address reads can depend on an earlier group's
    // decode.
    std::uint64_t cached_page = ~0ULL;
    PageMode mode = PageMode::Relaxed;
    std::uint64_t cached_base = ~0ULL;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        const std::uint64_t addr = addrs[i];
        ++stats.reads;
        const std::uint64_t page = pageOf(addr);
        if (page != cached_page) {
            mode = pageTable_.mode(page);
            cached_page = page;
            cached_base = ~0ULL; // group size may have changed.
        }
        const std::uint64_t group = groupBytes(mode);
        const std::uint64_t base = addr & ~(group - 1);
        if (base != cached_base) {
            const std::size_t gi = ws.groups.size();
            if (ws.groupSlices.size() <= gi) {
                ws.groupSlices.emplace_back();
                ws.groupWhole.emplace_back();
            }
            gatherGroupInto(base, mode, ws.groupSlices[gi]);
            erasedInto(base, mode, ws.line.erased);
            const bool slow = codecFor(mode).soaCodec() == nullptr ||
                              !ws.line.erased.empty();
            ws.groups.push_back({base, mode, slow});
            cached_base = base;
        }
        ws.addrGroup[i] =
            static_cast<std::uint32_t>(ws.groups.size() - 1);
    }

    // Pass 2: screen runs of groups through the SoA kernel; only the
    // lanes it flags (plus LOT / erasure groups) pay a full decode.
    screenStagedGroups(stats, ws);

    // Pass 3: per-address line extraction from the decoded groups.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        const std::uint32_t gi = ws.addrGroup[i];
        extractLineInto(ws.groupWhole[gi], addrs[i],
                        ws.groups[gi].base, results[i]);
    }
}

void
ArccMemory::decodeStagedGroup(std::size_t g, MemoryStats &stats,
                              MemoryWorkspace &ws)
{
    const MemoryWorkspace::StagedGroup &sg = ws.groups[g];
    const LineCodec &codec = codecFor(sg.mode);
    erasedInto(sg.base, sg.mode, ws.line.erased);
    ReadResult &out = ws.groupWhole[g];
    out.data.resize(codec.dataBytes());
    codec.decodeInto(ws.groupSlices[g], out.data, ws.line.erased,
                     ws.line, ws.line.dec);
    out.status = ws.line.dec.status;
    out.symbolsCorrected = ws.line.dec.symbolsCorrected;
    stats.deviceReads += codec.devices();
    if (ws.line.dec.status == DecodeStatus::Corrected)
        stats.corrected += ws.line.dec.symbolsCorrected;
    if (ws.line.dec.status == DecodeStatus::Detected)
        ++stats.dues;
}

void
ArccMemory::screenStagedGroups(MemoryStats &stats, MemoryWorkspace &ws)
{
    RsWorkspace &rws = ws.line.rs;
    constexpr std::size_t kLanes = RsWorkspace::kSoaLanes;
    std::size_t g = 0;
    while (g < ws.groups.size()) {
        if (ws.groups[g].slow) {
            decodeStagedGroup(g, stats, ws);
            ++g;
            continue;
        }
        const PageMode mode = ws.groups[g].mode;
        const LineCodec &codec = codecFor(mode);
        const ReedSolomon &rs = *codec.soaCodec();
        const int cw = codec.sliceBytes(); // codewords per group.
        const int dev = codec.devices();

        // Stage a run of consecutive same-mode groups into one SoA
        // block.  A slice row is symbol d of the group's cw
        // codewords, i.e. already transposed: staging is one row
        // memcpy per device.
        std::size_t h = g;
        int lanes = 0;
        while (h < ws.groups.size() && !ws.groups[h].slow &&
               ws.groups[h].mode == mode &&
               lanes + cw <= static_cast<int>(kLanes)) {
            const DeviceSlices &sl = ws.groupSlices[h];
            for (int d = 0; d < dev; ++d)
                std::memcpy(&rws.soa[static_cast<std::size_t>(d) *
                                         kLanes +
                                     lanes],
                            sl[d].data(), cw);
            lanes += cw;
            ++h;
        }

        rs.computeSyndromesSoa(rws.soa.data(), kLanes, lanes,
                               rws.syndSoa.data(),
                               rws.soaFlags.data());

        int lane0 = 0;
        for (std::size_t x = g; x < h; ++x, lane0 += cw) {
            bool flagged = false;
            for (int c = 0; c < cw; ++c)
                flagged = flagged || rws.soaFlags[lane0 + c] != 0;
            if (flagged) {
                // Same full pipeline (and stats) the serial path
                // runs; the screen cost is sunk but tiny.
                decodeStagedGroup(x, stats, ws);
                continue;
            }
            // Clean group -- the overwhelmingly common case: extract
            // the data symbols straight from the gathered slices,
            // exactly what decodeInto writes when every codeword is
            // clean.
            const DeviceSlices &sl = ws.groupSlices[x];
            ReadResult &out = ws.groupWhole[x];
            out.status = DecodeStatus::Clean;
            out.symbolsCorrected = 0;
            out.data.resize(codec.dataBytes());
            const int k = rs.k();
            for (int c = 0; c < cw; ++c)
                for (int s = 0; s < k; ++s)
                    out.data[c * k + s] = sl[s][c];
            stats.deviceReads += dev;
        }
        g = h;
    }
}

ReadResult
ArccMemory::extractLine(const ReadResult &whole, std::uint64_t addr,
                        std::uint64_t group_base)
{
    ReadResult res;
    extractLineInto(whole, addr, group_base, res);
    return res;
}

void
ArccMemory::extractLineInto(const ReadResult &whole, std::uint64_t addr,
                            std::uint64_t group_base, ReadResult &out)
{
    out.status = whole.status;
    out.symbolsCorrected = whole.symbolsCorrected;
    std::size_t off = static_cast<std::size_t>(addr - group_base) &
                      ~(kLineBytes - 1);
    out.data.assign(whole.data.begin() + off,
                    whole.data.begin() + off + kLineBytes);
}

ReadResult
ArccMemory::readWholeGroup(std::uint64_t addr)
{
    ++stats_.reads;
    PageMode mode = pageTable_.mode(pageOf(addr));
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    return readGroup(base, mode, stats_);
}

void
ArccMemory::writeGroup(std::uint64_t addr,
                       std::span<const std::uint8_t> data)
{
    writeGroup(addr, data, stats_);
}

void
ArccMemory::writeGroup(std::uint64_t addr,
                       std::span<const std::uint8_t> data,
                       MemoryStats &stats)
{
    static thread_local MemoryWorkspace scratch;
    writeGroup(addr, data, stats, scratch);
}

void
ArccMemory::writeGroup(std::uint64_t addr,
                       std::span<const std::uint8_t> data,
                       MemoryStats &stats, MemoryWorkspace &ws)
{
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    ARCC_ASSERT(data.size() ==
                static_cast<std::size_t>(codec.dataBytes()));
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    codec.encodeInto(data, ws.line.slices, ws.line);
    storeGroup(base, mode, ws.line.slices);
    ++stats.writes;
    stats.deviceWrites += codec.devices();
}

void
ArccMemory::write(std::uint64_t addr, std::span<const std::uint8_t> data)
{
    ARCC_ASSERT(data.size() == kLineBytes);
    ++stats_.writes;
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    std::uint64_t group = groupBytes(mode);
    std::uint64_t base = addr & ~(group - 1);

    std::vector<std::uint8_t> buf;
    if (subLines(mode) == 1) {
        buf.assign(data.begin(), data.end());
    } else {
        // Read-modify-write: both (all) sub-lines of the group share
        // check symbols, so the whole group is re-encoded (this is why
        // the LLC evicts upgraded sub-lines together, Section 4.2.3).
        ReadResult whole = readGroup(base, mode, stats_);
        buf = std::move(whole.data);
        std::size_t off = static_cast<std::size_t>(addr - base) &
                          ~(kLineBytes - 1);
        std::copy(data.begin(), data.end(), buf.begin() + off);
    }
    DeviceSlices slices = codec.encode(buf);
    storeGroup(base, mode, slices);
    stats_.deviceWrites += codec.devices();
}

void
ArccMemory::setPageMode(std::uint64_t page, PageMode mode)
{
    PageMode old = pageTable_.mode(page);
    if (old == mode)
        return;
    if (mode != PageMode::Relaxed && !upgradedCodec_)
        fatal("scheme %s has no upgraded mode",
              toString(config_.scheme));
    if (mode == PageMode::Upgraded2 && !upgraded2Codec_)
        fatal("level-2 upgrade not enabled for this memory");

    // Read the whole page under the old code (correcting what we can),
    // then re-encode under the new one.  Only this page is touched.
    std::uint64_t page_base = page * kPageBytes;
    std::vector<std::uint8_t> content(kPageBytes);
    std::uint64_t old_group = groupBytes(old);
    for (std::uint64_t off = 0; off < kPageBytes; off += old_group) {
        ReadResult r = readGroup(page_base + off, old, stats_);
        std::copy(r.data.begin(), r.data.end(),
                  content.begin() + off);
    }

    pageTable_.setMode(page, mode);

    const LineCodec &codec = codecFor(mode);
    std::uint64_t new_group = groupBytes(mode);
    for (std::uint64_t off = 0; off < kPageBytes; off += new_group) {
        std::span<const std::uint8_t> chunk(content.data() + off,
                                            new_group);
        DeviceSlices slices = codec.encode(chunk);
        storeGroup(page_base + off, mode, slices);
        stats_.deviceWrites += codec.devices();
    }
}

void
ArccMemory::rawFill(std::uint64_t addr, std::uint8_t value)
{
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    const int dpr = config_.devicesPerRank;
    for (int d = 0; d < codec.devices(); ++d) {
        Loc loc = locOf(base + (d / dpr) * kLineBytes);
        std::uint8_t *p = slicePtr(loc.channel, loc.rank, d % dpr, loc);
        std::memset(p, value, codec.sliceBytes());
    }
}

bool
ArccMemory::rawCheck(std::uint64_t addr, std::uint8_t value)
{
    return rawCheck(addr, value, LineWorkspace::forThisThread());
}

bool
ArccMemory::rawCheck(std::uint64_t addr, std::uint8_t value,
                     LineWorkspace &ws)
{
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    gatherGroupInto(base, mode, ws.slices);
    for (const auto &s : ws.slices)
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(codec.sliceBytes()); ++i)
            if (s[i] != value)
                return false;
    return true;
}

std::vector<std::uint8_t>
ArccMemory::rawSnapshot(std::uint64_t addr)
{
    std::vector<std::uint8_t> snap;
    rawSnapshotInto(addr, snap);
    return snap;
}

void
ArccMemory::rawSnapshotInto(std::uint64_t addr,
                            std::vector<std::uint8_t> &out)
{
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    const int dpr = config_.devicesPerRank;
    out.clear();
    for (int d = 0; d < codec.devices(); ++d) {
        Loc loc = locOf(base + (d / dpr) * kLineBytes);
        std::uint8_t *p = slicePtr(loc.channel, loc.rank, d % dpr, loc);
        out.insert(out.end(), p, p + codec.sliceBytes());
    }
}

void
ArccMemory::rawRestore(std::uint64_t addr,
                       std::span<const std::uint8_t> snapshot)
{
    PageMode mode = pageTable_.mode(pageOf(addr));
    const LineCodec &codec = codecFor(mode);
    std::uint64_t base = addr & ~(groupBytes(mode) - 1);
    const int dpr = config_.devicesPerRank;
    const int slice = codec.sliceBytes();
    ARCC_ASSERT(snapshot.size() ==
                static_cast<std::size_t>(codec.devices()) * slice);
    for (int d = 0; d < codec.devices(); ++d) {
        Loc loc = locOf(base + (d / dpr) * kLineBytes);
        std::uint8_t *p = slicePtr(loc.channel, loc.rank, d % dpr, loc);
        std::memcpy(p, snapshot.data() + d * slice, slice);
    }
}

void
ArccMemory::injectFault(const FunctionalFault &fault)
{
    ARCC_ASSERT(fault.channel >= 0 && fault.channel < config_.channels);
    ARCC_ASSERT(fault.device >= 0 &&
                fault.device < config_.devicesPerRank);
    faults_.push_back(fault);
}

void
ArccMemory::spareDevice(int channel, int rank, int device)
{
    auto &list = spared_[static_cast<std::size_t>(channel) *
                             config_.ranksPerChannel +
                         rank];
    if (std::find(list.begin(), list.end(), device) == list.end())
        list.push_back(device);
}

const std::vector<int> &
ArccMemory::sparedDevices(int channel, int rank) const
{
    return spared_[static_cast<std::size_t>(channel) *
                       config_.ranksPerChannel +
                   rank];
}

} // namespace arcc
