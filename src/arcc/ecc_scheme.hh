/**
 * @file
 * Line-level ECC scheme codecs: the mapping between a cache line's data
 * bytes and the per-device symbol slices stored in DRAM.
 *
 * Figure 2.1's layout rule is honoured by construction: every symbol of
 * a codeword is stored in a different device, so a whole-device failure
 * costs at most one symbol per codeword.
 *
 * Instances used by the library (symbols are 8-bit, Chapter 4.1's
 * "each symbol maintains its original size" layout):
 *
 *  | scheme                | code        | cw/line | devices | slice |
 *  |-----------------------|-------------|---------|---------|-------|
 *  | commercial SCCDCD     | RS(36,32)   | 2 / 64B | 36      | 2B    |
 *  | double chip sparing   | RS(36,32)+spare remap (maxCorrect 2)    |
 *  | ARCC relaxed          | RS(18,16)   | 4 / 64B | 18      | 4B    |
 *  | ARCC upgraded         | RS(36,32)   | 4 /128B | 36      | 4B    |
 *  | ARCC 2nd-level (5.1)  | RS(72,64)   | 4 /256B | 72      | 4B    |
 *  | LOT-ECC 9-device      | checksum+XOR| - / 64B | 9       | 8B+2B |
 *  | LOT-ECC 18-device     | checksum+XOR+spare    | 18      | 4B+2B |
 */

#ifndef ARCC_ARCC_ECC_SCHEME_HH
#define ARCC_ARCC_ECC_SCHEME_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ecc/lot_ecc.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_workspace.hh"

namespace arcc
{

/** Per-device slices of one encoded line. */
using DeviceSlices = std::vector<std::vector<std::uint8_t>>;

/**
 * Scratch arena for one in-flight line encode / decode: the
 * Reed-Solomon workspace plus staging buffers whose heap storage is
 * reused across calls, so a steady-state sweep (same codec, same
 * geometry) performs zero allocations after its first group.  One per
 * SimEngine worker / shard; not thread-safe.
 */
struct LineWorkspace
{
    RsWorkspace rs;
    /** Gathered per-device slices (storage reused across groups). */
    DeviceSlices slices;
    /** LOT-ECC line staging. */
    LotLine lot;
    /** Erased-device list scratch for the memory model. */
    std::vector<int> erased;
    /** Decode-result scratch (positions keeps its capacity). */
    DecodeResult dec;

    /**
     * The calling thread's default workspace.  Thread-local, so every
     * worker gets its own with no plumbing; sharded sweeps that want
     * explicit ownership construct their own per shard.
     */
    static LineWorkspace &forThisThread();
};

/**
 * Abstract line codec: data line <-> per-device slices.
 */
class LineCodec
{
  public:
    virtual ~LineCodec() = default;

    /** Devices the line is striped over (n). */
    virtual int devices() const = 0;
    /** Bytes stored per device for one line. */
    virtual int sliceBytes() const = 0;
    /** Data payload per line (64, 128 or 256). */
    virtual int dataBytes() const = 0;

    /** Encode data into per-device slices (owning convenience). */
    DeviceSlices encode(std::span<const std::uint8_t> data) const;

    /**
     * Encode data into an existing slices buffer, reusing its heap
     * storage and staging through `ws`: allocation-free once `out`
     * has reached shape.
     */
    virtual void encodeInto(std::span<const std::uint8_t> data,
                            DeviceSlices &out,
                            LineWorkspace &ws) const = 0;

    /**
     * Decode slices into data, correcting in place (convenience;
     * scratch comes from the calling thread's LineWorkspace).
     * @param erased device indices known bad (chip sparing).
     */
    DecodeResult decode(DeviceSlices &slices,
                        std::span<std::uint8_t> data,
                        std::span<const int> erased = {}) const;

    /**
     * Allocation-free decode: all scratch comes from `ws`, and the
     * result lands in `out` reusing its buffers (positions keeps its
     * capacity across calls).
     */
    virtual void decodeInto(DeviceSlices &slices,
                            std::span<std::uint8_t> data,
                            std::span<const int> erased,
                            LineWorkspace &ws,
                            DecodeResult &out) const = 0;

    /**
     * The RS codec behind this line format, or nullptr when the wire
     * format is not SoA-batchable (LOT-ECC's checksum+XOR lines).
     * When non-null, the per-device slice rows double as SoA symbol
     * rows -- slices[d][c] is symbol d of codeword c -- so a batch
     * reader can stage whole groups into an RsWorkspace SoA block
     * with row memcpys and screen them through
     * ReedSolomon::computeSyndromesSoa (see ArccMemory::accessBatch).
     */
    virtual const ReedSolomon *soaCodec() const { return nullptr; }

    /** The per-codeword error cap decodeInto applies (mirrors what a
     *  batched decode must pass for bit-identical outcomes). */
    virtual int soaMaxCorrect() const { return -1; }

    /** Human-readable description. */
    virtual const char *name() const = 0;
};

/**
 * Reed-Solomon line codec: dataBytes/k codewords of RS(n, k); device d
 * stores symbol d of every codeword.
 */
class RsLineCodec : public LineCodec
{
  public:
    /**
     * @param n           devices / symbols per codeword.
     * @param k           data symbols per codeword.
     * @param data_bytes  line payload; must be a multiple of k.
     * @param max_correct per-codeword error-correction cap (SCCDCD
     *                    corrects 1; double chip sparing 2).
     * @param name        display name.
     */
    RsLineCodec(int n, int k, int data_bytes, int max_correct,
                const char *name);

    int devices() const override { return rs_.n(); }
    int sliceBytes() const override { return codewords_; }
    int dataBytes() const override { return dataBytes_; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const ReedSolomon *soaCodec() const override { return &rs_; }
    int soaMaxCorrect() const override { return maxCorrect_; }
    const char *name() const override { return name_; }

    int maxCorrect() const { return maxCorrect_; }

  private:
    ReedSolomon rs_;
    int codewords_;
    int dataBytes_;
    int maxCorrect_;
    const char *name_;
};

/**
 * LOT-ECC line codec: per-device data slice + embedded ones'-complement
 * checksum, plus an XOR parity device.  The 16-data-device variant is
 * the 18-device double-chip-sparing extension of Chapter 5.2 (the
 * spare device is managed by the memory model, not the codec).
 */
class LotLineCodec : public LineCodec
{
  public:
    /**
     * @param data_devices 8 (nine-device rank) or 16 (the 18-device
     *                     upgraded mode of Chapter 5.2).
     * @param line_bytes   64 for the nine-device line; 128 for the
     *                     upgraded line, which pairs two adjacent 64B
     *                     lines across two lockstep channels exactly
     *                     like ARCC over commercial chipkill does.
     */
    explicit LotLineCodec(int data_devices, int line_bytes = 64);

    int devices() const override { return lot_.dataDevices() + 1; }
    int
    sliceBytes() const override
    {
        return lot_.sliceBytes() + 2; // slice + embedded checksum.
    }
    int dataBytes() const override { return dataBytes_; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const char *
    name() const override
    {
        return lot_.dataDevices() == 8 ? "LOT-ECC-9" : "LOT-ECC-18";
    }

  private:
    LotEcc lot_;
    int dataBytes_;
};

/** Factory helpers for the paper's schemes. */
namespace schemes
{

/** Commercial SCCDCD: RS(36,32) x2 per 64B line, correct 1 detect 2. */
std::unique_ptr<LineCodec> commercialSccdcd();

/** Double chip sparing decode (correct up to 2 with spare support). */
std::unique_ptr<LineCodec> doubleChipSparing();

/** ARCC relaxed: RS(18,16) x4 per 64B line. */
std::unique_ptr<LineCodec> arccRelaxed();

/** ARCC upgraded: RS(36,32) x4 per 128B line. */
std::unique_ptr<LineCodec> arccUpgraded();

/** ARCC second-level upgrade (Ch 5.1): RS(72,64) x4 per 256B line. */
std::unique_ptr<LineCodec> arccUpgraded2();

/** LOT-ECC nine-device. */
std::unique_ptr<LineCodec> lotEcc9();

/** LOT-ECC 18-device (Ch 5.2). */
std::unique_ptr<LineCodec> lotEcc18();

} // namespace schemes

} // namespace arcc

#endif // ARCC_ARCC_ECC_SCHEME_HH
