/**
 * @file
 * Line-level ECC scheme codecs: the mapping between a cache line's data
 * bytes and the per-device symbol slices stored in DRAM.
 *
 * Figure 2.1's layout rule is honoured by construction: every symbol of
 * a codeword is stored in a different device, so a whole-device failure
 * costs at most one symbol per codeword.
 *
 * Instances used by the library (symbols are 8-bit, Chapter 4.1's
 * "each symbol maintains its original size" layout):
 *
 *  | scheme                | code        | cw/line | devices | slice |
 *  |-----------------------|-------------|---------|---------|-------|
 *  | commercial SCCDCD     | RS(36,32)   | 2 / 64B | 36      | 2B    |
 *  | double chip sparing   | RS(36,32)+spare remap (maxCorrect 2)    |
 *  | ARCC relaxed          | RS(18,16)   | 4 / 64B | 18      | 4B    |
 *  | ARCC upgraded         | RS(36,32)   | 4 /128B | 36      | 4B    |
 *  | ARCC 2nd-level (5.1)  | RS(72,64)   | 4 /256B | 72      | 4B    |
 *  | LOT-ECC 9-device      | checksum+XOR| - / 64B | 9       | 8B+2B |
 *  | LOT-ECC 18-device     | checksum+XOR+spare    | 18      | 4B+2B |
 */

#ifndef ARCC_ARCC_ECC_SCHEME_HH
#define ARCC_ARCC_ECC_SCHEME_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ecc/bch.hh"
#include "ecc/lot_ecc.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_workspace.hh"

namespace arcc
{

/** Per-device slices of one encoded line. */
using DeviceSlices = std::vector<std::vector<std::uint8_t>>;

/**
 * Scratch arena for one in-flight line encode / decode: the
 * Reed-Solomon workspace plus staging buffers whose heap storage is
 * reused across calls, so a steady-state sweep (same codec, same
 * geometry) performs zero allocations after its first group.  One per
 * SimEngine worker / shard; not thread-safe.
 */
struct LineWorkspace
{
    RsWorkspace rs;
    /** BCH decoder scratch (codec-zoo bit-granularity codecs). */
    BchWorkspace bch;
    /** Serialized-codeword staging for the wire-format codecs. */
    std::vector<std::uint8_t> wire;
    /** Gathered per-device slices (storage reused across groups). */
    DeviceSlices slices;
    /** LOT-ECC line staging. */
    LotLine lot;
    /** Erased-device list scratch for the memory model. */
    std::vector<int> erased;
    /** Decode-result scratch (positions keeps its capacity). */
    DecodeResult dec;

    /**
     * The calling thread's default workspace.  Thread-local, so every
     * worker gets its own with no plumbing; sharded sweeps that want
     * explicit ownership construct their own per shard.
     */
    static LineWorkspace &forThisThread();
};

/**
 * Self-description of a line codec: the granularity it corrects at
 * and its guaranteed per-codeword capability.  The fault-injection
 * matrix (faults/fault_matrix.hh) sizes its error axis and picks its
 * flip granularity from these, so a codec registered in the zoo is
 * automatically swept without campaign-side special cases.
 */
struct CodecTraits
{
    /**
     * Correction granularity in bits: 8 for symbol-oriented codecs
     * (RS, LOT-ECC -- one flipped wire byte is one symbol error),
     * 1 for bit-oriented codecs (BCH, SECDED).
     */
    int symbolBits = 8;
    /** Guaranteed correctable symbols per codeword. */
    int correct = 1;
    /**
     * Additional symbols guaranteed *detected* beyond `correct`
     * (errors of weight correct + detect never silently corrupt a
     * single codeword; more may miscorrect).
     */
    int detect = 1;
    /** Codewords per line. */
    int codewords = 1;
    /** Family tag for reporting: "rs", "lot", "bch", "secded". */
    const char *family = "rs";
};

/**
 * Abstract line codec: data line <-> per-device slices.
 */
class LineCodec
{
  public:
    virtual ~LineCodec() = default;

    /** Self-description (granularity and capability). */
    virtual CodecTraits traits() const = 0;

    /** Devices the line is striped over (n). */
    virtual int devices() const = 0;
    /** Bytes stored per device for one line. */
    virtual int sliceBytes() const = 0;
    /** Data payload per line (64, 128 or 256). */
    virtual int dataBytes() const = 0;

    /** Encode data into per-device slices (owning convenience). */
    DeviceSlices encode(std::span<const std::uint8_t> data) const;

    /**
     * Encode data into an existing slices buffer, reusing its heap
     * storage and staging through `ws`: allocation-free once `out`
     * has reached shape.
     */
    virtual void encodeInto(std::span<const std::uint8_t> data,
                            DeviceSlices &out,
                            LineWorkspace &ws) const = 0;

    /**
     * Decode slices into data, correcting in place (convenience;
     * scratch comes from the calling thread's LineWorkspace).
     * @param erased device indices known bad (chip sparing).
     */
    DecodeResult decode(DeviceSlices &slices,
                        std::span<std::uint8_t> data,
                        std::span<const int> erased = {}) const;

    /**
     * Allocation-free decode: all scratch comes from `ws`, and the
     * result lands in `out` reusing its buffers (positions keeps its
     * capacity across calls).
     */
    virtual void decodeInto(DeviceSlices &slices,
                            std::span<std::uint8_t> data,
                            std::span<const int> erased,
                            LineWorkspace &ws,
                            DecodeResult &out) const = 0;

    /**
     * The RS codec behind this line format, or nullptr when the wire
     * format is not SoA-batchable (LOT-ECC's checksum+XOR lines).
     * When non-null, the per-device slice rows double as SoA symbol
     * rows -- slices[d][c] is symbol d of codeword c -- so a batch
     * reader can stage whole groups into an RsWorkspace SoA block
     * with row memcpys and screen them through
     * ReedSolomon::computeSyndromesSoa (see ArccMemory::accessBatch).
     */
    virtual const ReedSolomon *soaCodec() const { return nullptr; }

    /** The per-codeword error cap decodeInto applies (mirrors what a
     *  batched decode must pass for bit-identical outcomes). */
    virtual int soaMaxCorrect() const { return -1; }

    /** Human-readable description. */
    virtual const char *name() const = 0;
};

/**
 * Reed-Solomon line codec: dataBytes/k codewords of RS(n, k); device d
 * stores symbol d of every codeword.
 */
class RsLineCodec : public LineCodec
{
  public:
    /**
     * @param n           devices / symbols per codeword.
     * @param k           data symbols per codeword.
     * @param data_bytes  line payload; must be a multiple of k.
     * @param max_correct per-codeword error-correction cap (SCCDCD
     *                    corrects 1; double chip sparing 2).
     * @param name        display name.
     */
    RsLineCodec(int n, int k, int data_bytes, int max_correct,
                const char *name);

    CodecTraits traits() const override;
    int devices() const override { return rs_.n(); }
    int sliceBytes() const override { return codewords_; }
    int dataBytes() const override { return dataBytes_; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const ReedSolomon *soaCodec() const override { return &rs_; }
    int soaMaxCorrect() const override { return maxCorrect_; }
    const char *name() const override { return name_; }

    int maxCorrect() const { return maxCorrect_; }

  private:
    ReedSolomon rs_;
    int codewords_;
    int dataBytes_;
    int maxCorrect_;
    const char *name_;
};

/**
 * LOT-ECC line codec: per-device data slice + embedded ones'-complement
 * checksum, plus an XOR parity device.  The 16-data-device variant is
 * the 18-device double-chip-sparing extension of Chapter 5.2 (the
 * spare device is managed by the memory model, not the codec).
 */
class LotLineCodec : public LineCodec
{
  public:
    /**
     * @param data_devices 8 (nine-device rank) or 16 (the 18-device
     *                     upgraded mode of Chapter 5.2).
     * @param line_bytes   64 for the nine-device line; 128 for the
     *                     upgraded line, which pairs two adjacent 64B
     *                     lines across two lockstep channels exactly
     *                     like ARCC over commercial chipkill does.
     */
    explicit LotLineCodec(int data_devices, int line_bytes = 64);

    CodecTraits traits() const override;
    int devices() const override { return lot_.dataDevices() + 1; }
    int
    sliceBytes() const override
    {
        return lot_.sliceBytes() + 2; // slice + embedded checksum.
    }
    int dataBytes() const override { return dataBytes_; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const char *
    name() const override
    {
        return lot_.dataDevices() == 8 ? "LOT-ECC-9" : "LOT-ECC-18";
    }

  private:
    LotEcc lot_;
    int dataBytes_;
};

/**
 * Hsiao-style SECDED line codec on the paper's 9-device (x8) ECC DIMM
 * layout, built on the Secded (72,64) kernel: a 64B line is eight
 * 72-bit words; data device d stores byte lane d of every word, the
 * ninth device stores the eight check bytes.  A whole-device failure
 * therefore puts 8 adjacent bits into *every* word -- the failure
 * mode SECDED cannot handle, which is exactly the baseline-vs-chipkill
 * contrast of Chapter 1 that the fault matrix quantifies.
 */
class SecdedLineCodec : public LineCodec
{
  public:
    SecdedLineCodec() = default;

    CodecTraits traits() const override;
    int devices() const override { return 9; }
    int sliceBytes() const override { return kWords; }
    int dataBytes() const override { return kWords * 8; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    /**
     * Per-word decode.  `out.positions` records one entry per
     * corrected word, encoded as word * 73 + bitCorrected (the
     * Secded::Result position, 1..72, with 72 the overall parity
     * bit).  Erasures are not supported by this family (SECDED has no
     * erasure channel); the list must be empty.
     */
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const char *name() const override { return "Hsiao SECDED (72,64)"; }

  private:
    static constexpr int kWords = 8;
};

/**
 * BCH line codec: the whole line is one shortened binary
 * BCH(dataBytes * 8 + parity, dataBytes * 8) codeword correcting t
 * bit errors, serialized data-then-parity and striped over `devices`
 * in contiguous chunks (device d stores wire bytes
 * [d * sliceBytes, (d+1) * sliceBytes), zero-padded at the tail).
 */
class BchLineCodec : public LineCodec
{
  public:
    /**
     * @param data_bytes line payload (e.g. 64).
     * @param t          bit-correction capability.
     * @param devices    devices the wire format is striped over.
     * @param name       display name.
     */
    BchLineCodec(int data_bytes, int t, int devices, const char *name);

    CodecTraits traits() const override;
    int devices() const override { return devices_; }
    int sliceBytes() const override { return sliceBytes_; }
    int dataBytes() const override { return dataBytes_; }

    void encodeInto(std::span<const std::uint8_t> data,
                    DeviceSlices &out,
                    LineWorkspace &ws) const override;
    /**
     * `out.positions` records the wire bit indices the decoder
     * flipped.  Erasures are not supported (the binary decoder has no
     * erasure channel); the list must be empty.
     */
    void decodeInto(DeviceSlices &slices, std::span<std::uint8_t> data,
                    std::span<const int> erased, LineWorkspace &ws,
                    DecodeResult &out) const override;
    const char *name() const override { return name_; }

    const Bch &bch() const { return bch_; }

  private:
    Bch bch_;
    int devices_;
    int sliceBytes_;
    int dataBytes_;
    const char *name_;
};

/**
 * The codec registry: every line codec the zoo knows, keyed by a
 * short stable name.  The fault-injection matrix, the benches, and
 * the CLI all resolve codecs through here, so adding a codec to the
 * registry automatically adds it to every campaign.
 *
 * The paper's schemes are pre-registered under the keys
 *   sccdcd, dcs, arcc-relaxed, arcc-upgraded, arcc-upgraded2,
 *   lot9, lot18
 * and the zoo additions under
 *   hsiao72, bch512-t2, bch512-t4.
 *
 * Registration and lookup are mutex-guarded; codecs themselves are
 * immutable after construction and safe to share across SimEngine
 * shards (all scratch lives in the caller's LineWorkspace).
 */
namespace codecs
{

using Factory = std::function<std::unique_ptr<LineCodec>()>;

/**
 * Register a codec under `key`.  Fatal on a duplicate key or an
 * empty factory: a silently replaced codec would repin every golden
 * fault-matrix row.
 */
void registerCodec(const std::string &key, const std::string &summary,
                   Factory factory);

/** @return true when `key` is registered. */
bool known(const std::string &key);

/** Instantiate the codec registered under `key`; fatal if unknown. */
std::unique_ptr<LineCodec> make(const std::string &key);

/** One-line description of a registered codec; fatal if unknown. */
std::string summary(const std::string &key);

/** All registered keys, sorted. */
std::vector<std::string> names();

} // namespace codecs

/** Factory helpers for the paper's schemes. */
namespace schemes
{

/** Commercial SCCDCD: RS(36,32) x2 per 64B line, correct 1 detect 2. */
std::unique_ptr<LineCodec> commercialSccdcd();

/** Double chip sparing decode (correct up to 2 with spare support). */
std::unique_ptr<LineCodec> doubleChipSparing();

/** ARCC relaxed: RS(18,16) x4 per 64B line. */
std::unique_ptr<LineCodec> arccRelaxed();

/** ARCC upgraded: RS(36,32) x4 per 128B line. */
std::unique_ptr<LineCodec> arccUpgraded();

/** ARCC second-level upgrade (Ch 5.1): RS(72,64) x4 per 256B line. */
std::unique_ptr<LineCodec> arccUpgraded2();

/** LOT-ECC nine-device. */
std::unique_ptr<LineCodec> lotEcc9();

/** LOT-ECC 18-device (Ch 5.2). */
std::unique_ptr<LineCodec> lotEcc18();

} // namespace schemes

} // namespace arcc

#endif // ARCC_ARCC_ECC_SCHEME_HH
