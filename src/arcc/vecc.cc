/**
 * @file
 * VECC functional model implementation.
 */

#include "arcc/vecc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arcc
{

VeccGeometry
VeccGeometry::vecc18()
{
    VeccGeometry g;
    g.devices = 18;
    g.dataDevices = 16;
    g.tier2Symbols = 2;
    return g;
}

VeccGeometry
VeccGeometry::vecc9()
{
    VeccGeometry g;
    g.devices = 9;
    g.dataDevices = 8;
    g.tier2Symbols = 1;
    return g;
}

VeccMemory::VeccMemory(const VeccGeometry &geometry,
                       std::uint64_t lines, double t2HitRate,
                       std::uint64_t seed)
    : geom_(geometry),
      rs_(geometry.devices, geometry.dataDevices),
      lines_(lines),
      t2HitRate_(t2HitRate),
      rng_(seed),
      inline_(lines * geometry.devices, 0),
      tier2_(lines * geometry.tier2Symbols, 0)
{
    if (geometry.tier2Symbols < 1)
        fatal("VeccMemory: tier-2 needs at least one symbol");
}

void
VeccMemory::write(std::uint64_t line,
                  std::span<const std::uint8_t> data)
{
    ARCC_ASSERT(line < lines_);
    ARCC_ASSERT(data.size() ==
                static_cast<std::size_t>(geom_.dataDevices));
    ++stats_.writes;

    const std::span<std::uint8_t> word(
        ws_.word.data(), static_cast<std::size_t>(geom_.devices));
    std::copy(data.begin(), data.end(), word.begin());
    rs_.encode(word);
    std::copy(word.begin(), word.end(),
              inline_.begin() + line * geom_.devices);
    stats_.deviceAccesses += geom_.devices;

    // Tier-2: the virtualised symbols are the codeword's evaluations
    // at the extension roots alpha^(r), alpha^(r+1), ...
    for (int j = 0; j < geom_.tier2Symbols; ++j) {
        tier2_[line * geom_.tier2Symbols + j] =
            rs_.evalAt(word, geom_.inlineChecks() + j);
    }
    // The tier-2 line lives in another rank's data space; updating it
    // costs a second memory write unless it is resident in the LLC.
    if (!rng_.chance(t2HitRate_)) {
        ++stats_.tier2Writebacks;
        stats_.deviceAccesses += geom_.devices;
    }
}

void
VeccMemory::corrupt(std::uint64_t line,
                    std::span<std::uint8_t> word) const
{
    for (int d : deadDevices_) {
        // Deterministic wrong value per (line, device).
        std::uint64_t z = line * 0x9e3779b97f4a7c15ULL + d;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        word[d] ^= static_cast<std::uint8_t>((z >> 56) | 1);
    }
}

std::span<std::uint8_t>
VeccMemory::gather(std::uint64_t line)
{
    const std::span<std::uint8_t> word(
        ws_.word.data(), static_cast<std::size_t>(geom_.devices));
    std::copy(inline_.begin() + line * geom_.devices,
              inline_.begin() + (line + 1) * geom_.devices,
              word.begin());
    corrupt(line, word);
    return word;
}

void
VeccMemory::tier2Decode(std::uint64_t line,
                        std::span<std::uint8_t> word,
                        VeccReadResult &res)
{
    // Error detected: fetch the tier-2 symbols (a second access, to a
    // different rank -> 2x the devices) and decode with the extended
    // syndrome set.
    res.tier2Fetched = true;
    ++stats_.tier2Fetches;
    res.deviceAccesses += geom_.devices;

    std::uint8_t synd[RsWorkspace::kMaxChecks];
    for (int j = 0; j < geom_.inlineChecks(); ++j)
        synd[j] = rs_.evalAt(word, j);
    for (int j = 0; j < geom_.tier2Symbols; ++j) {
        int jj = geom_.inlineChecks() + j;
        synd[jj] = GF256::add(
            rs_.evalAt(word, jj),
            tier2_[line * geom_.tier2Symbols + j]);
    }

    int max_correct = geom_.totalChecks() / 2;
    RsDecodeView full = rs_.decodeWithSyndromes(
        word,
        std::span<const std::uint8_t>(
            synd, static_cast<std::size_t>(geom_.totalChecks())),
        ws_, max_correct);
    res.status = full.status;
    if (full.status == DecodeStatus::Corrected)
        stats_.corrected += full.symbolsCorrected;
    if (full.status == DecodeStatus::Detected)
        ++stats_.dues;
    res.data.assign(word.begin(), word.begin() + geom_.dataDevices);
    stats_.deviceAccesses += res.deviceAccesses;
}

VeccReadResult
VeccMemory::read(std::uint64_t line)
{
    ARCC_ASSERT(line < lines_);
    ++stats_.reads;

    VeccReadResult res;
    const std::span<std::uint8_t> word = gather(line);
    res.deviceAccesses = geom_.devices;

    // Tier-1 fast path: detection only (a zero syndrome screen; with
    // maxCorrect = 0 the decoder flags every non-zero pattern, so the
    // screen and the old detection-only decode are the same test).
    if (!rs_.computeSyndromes(
            word, std::span<std::uint8_t>(
                      ws_.synd.data(),
                      static_cast<std::size_t>(geom_.inlineChecks())))) {
        res.status = DecodeStatus::Clean;
        res.data.assign(word.begin(),
                        word.begin() + geom_.dataDevices);
        stats_.deviceAccesses += res.deviceAccesses;
        return res;
    }

    tier2Decode(line, word, res);
    return res;
}

void
VeccMemory::readBatch(std::span<const std::uint64_t> lines,
                      std::vector<VeccReadResult> &out)
{
    out.resize(lines.size());

    // Phase 1: the tier-1 syndrome screen over the whole batch, run
    // through the SoA kernel: one VECC line is one codeword, so a
    // chunk of kSoaLanes lines transposes into one block and the
    // inline syndromes of all of them come from a single vector pass
    // (the inline checks are exactly the code's r() syndromes).
    // Clean lines (the overwhelmingly common case) complete here
    // allocation-free; flagged lines stash their corrupted inline
    // word and queue for the tier-2 pass.
    flagged_.clear();
    const int n = geom_.devices;
    constexpr std::size_t kLanes = RsWorkspace::kSoaLanes;
    for (std::size_t c0 = 0; c0 < lines.size(); c0 += kLanes) {
        const int chunk = static_cast<int>(
            std::min(kLanes, lines.size() - c0));

        // Transposed gather + dead-device corruption.
        for (int l = 0; l < chunk; ++l) {
            const std::uint64_t line = lines[c0 + l];
            ARCC_ASSERT(line < lines_);
            const std::uint8_t *src = inline_.data() + line * n;
            for (int s = 0; s < n; ++s)
                ws_.soa[static_cast<std::size_t>(s) * kLanes + l] =
                    src[s];
        }
        for (int d : deadDevices_) {
            std::uint8_t *row =
                ws_.soa.data() + static_cast<std::size_t>(d) * kLanes;
            for (int l = 0; l < chunk; ++l) {
                const std::uint64_t line = lines[c0 + l];
                std::uint64_t z = line * 0x9e3779b97f4a7c15ULL + d;
                z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
                z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
                row[l] ^= static_cast<std::uint8_t>((z >> 56) | 1);
            }
        }

        rs_.computeSyndromesSoa(ws_.soa.data(), kLanes, chunk,
                                ws_.syndSoa.data(),
                                ws_.soaFlags.data());

        for (int l = 0; l < chunk; ++l) {
            const std::size_t i = c0 + l;
            ++stats_.reads;
            VeccReadResult &res = out[i];
            res.tier2Fetched = false;
            res.deviceAccesses = n;
            if (ws_.soaFlags[l] == 0) {
                res.status = DecodeStatus::Clean;
                res.data.resize(
                    static_cast<std::size_t>(geom_.dataDevices));
                for (int s = 0; s < geom_.dataDevices; ++s)
                    res.data[s] =
                        ws_.soa[static_cast<std::size_t>(s) * kLanes +
                                l];
                stats_.deviceAccesses += res.deviceAccesses;
            } else {
                // Park the gathered word (device count symbols) in
                // the result buffer until the tier-2 pass reshapes
                // it.
                res.data.resize(static_cast<std::size_t>(n));
                for (int s = 0; s < n; ++s)
                    res.data[s] =
                        ws_.soa[static_cast<std::size_t>(s) * kLanes +
                                l];
                flagged_.push_back(i);
            }
        }
    }

    // Phase 2: grouped tier-2 fetch + extended-syndrome decode for
    // the flagged lines, back to back over one workspace.
    for (std::size_t i : flagged_) {
        VeccReadResult &res = out[i];
        const std::span<std::uint8_t> word(
            ws_.word.data(), static_cast<std::size_t>(geom_.devices));
        std::copy(res.data.begin(), res.data.end(), word.begin());
        tier2Decode(lines[i], word, res);
    }
}

void
VeccMemory::killDevice(int device)
{
    ARCC_ASSERT(device >= 0 && device < geom_.devices);
    for (int d : deadDevices_)
        if (d == device)
            return;
    deadDevices_.push_back(device);
}

} // namespace arcc
