/**
 * @file
 * Scrubber implementation.
 */

#include "arcc/scrubber.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arcc
{

ScrubReport
Scrubber::scrub(ArccMemory &memory) const
{
    ScrubReport report;
    const std::uint64_t pages = memory.pageTable().pages();

    std::vector<bool> faulty(pages, false);

    for (std::uint64_t page = 0; page < pages; ++page) {
        PageMode mode = memory.pageTable().mode(page);
        std::uint64_t group = memory.groupBytes(mode);
        std::uint64_t base = page * kPageBytes;

        for (std::uint64_t off = 0; off < kPageBytes; off += group) {
            std::uint64_t addr = base + off;
            ++report.linesScrubbed;

            // Step 1: read and set the corrected value aside.  Keep a
            // raw snapshot too: if the line is uncorrectable we must
            // put the original bits back rather than garbage.
            std::vector<std::uint8_t> raw = memory.rawSnapshot(addr);
            ReadResult r = memory.readWholeGroup(addr);
            bool page_bad = false;
            if (r.status == DecodeStatus::Corrected) {
                report.errorsCorrected += r.symbolsCorrected;
                page_bad = true;
            } else if (r.status == DecodeStatus::Detected) {
                ++report.duesFound;
                page_bad = true;
            }

            if (config_.testPatterns) {
                // Step 2: all-0 pattern; surviving 1s = stuck-at-1.
                memory.rawFill(addr, 0x00);
                if (!memory.rawCheck(addr, 0x00)) {
                    ++report.stuckAt1Found;
                    page_bad = true;
                }
                // Step 3: all-1 pattern; surviving 0s = stuck-at-0.
                memory.rawFill(addr, 0xff);
                if (!memory.rawCheck(addr, 0xff)) {
                    ++report.stuckAt0Found;
                    page_bad = true;
                }
            }

            // Step 4: restore.  Corrected content is re-encoded (that
            // also heals soft errors); uncorrectable lines get their
            // original raw bits back so no information is destroyed.
            if (r.status == DecodeStatus::Detected)
                memory.rawRestore(addr, raw);
            else
                memory.writeGroup(addr, r.data);

            if (page_bad)
                faulty[page] = true;
        }
    }

    // End of scrub: apply the page-mode transitions.
    for (std::uint64_t page = 0; page < pages; ++page) {
        PageMode mode = memory.pageTable().mode(page);
        if (faulty[page]) {
            report.faultyPages.push_back(page);
            if (mode == PageMode::Relaxed) {
                memory.setPageMode(page, PageMode::Upgraded);
                ++report.pagesUpgraded;
            } else if (mode == PageMode::Upgraded &&
                       config_.allowLevel2 &&
                       memory.config().allowLevel2) {
                memory.setPageMode(page, PageMode::Upgraded2);
                ++report.pagesUpgraded;
            }
        } else if (config_.relaxCleanPages &&
                   mode != PageMode::Relaxed) {
            memory.setPageMode(page, PageMode::Relaxed);
            ++report.pagesRelaxed;
        }
    }
    return report;
}

ScrubReport
Scrubber::bootScrub(ArccMemory &memory) const
{
    ScrubberConfig boot = config_;
    boot.relaxCleanPages = true;
    return Scrubber(boot).scrub(memory);
}

double
Scrubber::scrubSeconds(double bytes, double bus_bytes_per_sec)
{
    // Three reads + three writes of the full contents (Section 4.2.2).
    return 6.0 * bytes / bus_bytes_per_sec;
}

double
Scrubber::bandwidthFraction(double scrub_seconds, double period_hours)
{
    return scrub_seconds / (period_hours * 3600.0);
}

} // namespace arcc
