/**
 * @file
 * Scrubber implementation.
 *
 * Two sweeps share one set of semantics:
 *
 *  - scrub() walks the memory group by group on the calling thread
 *    (the reference path);
 *  - scrubParallel() shards the page range across the SimEngine, runs
 *    each shard's read / write-0 / write-1 / restore loop through
 *    ArccMemory::accessBatch() with a private stats sink, and merges
 *    the per-shard reports in shard order.
 *
 * Both end with the same ordered page-mode transition pass, so the
 * reports they produce are bit-identical to each other and across
 * thread counts.
 */

#include "arcc/scrubber.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

void
ScrubReport::merge(const ScrubReport &o)
{
    linesScrubbed += o.linesScrubbed;
    errorsCorrected += o.errorsCorrected;
    duesFound += o.duesFound;
    stuckAt1Found += o.stuckAt1Found;
    stuckAt0Found += o.stuckAt0Found;
    faultyPages.insert(faultyPages.end(), o.faultyPages.begin(),
                       o.faultyPages.end());
    pagesUpgraded += o.pagesUpgraded;
    pagesRelaxed += o.pagesRelaxed;
}

ScrubReport
Scrubber::scrub(ArccMemory &memory) const
{
    ScrubReport report;
    const std::uint64_t pages = memory.pageTable().pages();

    std::vector<bool> faulty(pages, false);

    for (std::uint64_t page = 0; page < pages; ++page) {
        PageMode mode = memory.pageTable().mode(page);
        std::uint64_t group = memory.groupBytes(mode);
        std::uint64_t base = page * kPageBytes;

        for (std::uint64_t off = 0; off < kPageBytes; off += group) {
            std::uint64_t addr = base + off;
            ++report.linesScrubbed;

            // Step 1: read and set the corrected value aside.  Keep a
            // raw snapshot too: if the line is uncorrectable we must
            // put the original bits back rather than garbage.
            std::vector<std::uint8_t> raw = memory.rawSnapshot(addr);
            ReadResult r = memory.readWholeGroup(addr);
            bool page_bad = false;
            if (r.status == DecodeStatus::Corrected) {
                report.errorsCorrected += r.symbolsCorrected;
                page_bad = true;
            } else if (r.status == DecodeStatus::Detected) {
                ++report.duesFound;
                page_bad = true;
            }

            if (config_.testPatterns) {
                // Step 2: all-0 pattern; surviving 1s = stuck-at-1.
                memory.rawFill(addr, 0x00);
                if (!memory.rawCheck(addr, 0x00)) {
                    ++report.stuckAt1Found;
                    page_bad = true;
                }
                // Step 3: all-1 pattern; surviving 0s = stuck-at-0.
                memory.rawFill(addr, 0xff);
                if (!memory.rawCheck(addr, 0xff)) {
                    ++report.stuckAt0Found;
                    page_bad = true;
                }
            }

            // Step 4: restore.  Corrected content is re-encoded (that
            // also heals soft errors); uncorrectable lines get their
            // original raw bits back so no information is destroyed.
            if (r.status == DecodeStatus::Detected)
                memory.rawRestore(addr, raw);
            else
                memory.writeGroup(addr, r.data);

            if (page_bad)
                faulty[page] = true;
        }
    }

    applyTransitions(memory, faulty, report);
    return report;
}

void
Scrubber::sweepPage(ArccMemory &memory, std::uint64_t page,
                    ScrubReport &report, MemoryStats &stats,
                    ScrubScratch &scratch) const
{
    PageMode mode = memory.pageTable().mode(page);
    const std::uint64_t group = memory.groupBytes(mode);
    const std::uint64_t base = page * kPageBytes;
    const std::uint64_t groups = kPageBytes / group;
    const std::uint64_t lines_per_group = group / kLineBytes;

    // Raw snapshots first: uncorrectable groups must get their
    // original bits back in step 4 (reads do not mutate, so taking
    // them up front is equivalent to the serial order).
    scratch.snaps.resize(groups);
    for (std::uint64_t g = 0; g < groups; ++g)
        memory.rawSnapshotInto(base + g * group, scratch.snaps[g]);

    // Step 1 for the whole page in one batch: one page-table lookup
    // and one decode per group instead of one of each per call.
    scratch.addrs.resize(kLinesPerPage);
    for (std::uint64_t i = 0; i < kLinesPerPage; ++i)
        scratch.addrs[i] = base + i * kLineBytes;
    memory.accessBatch(scratch.addrs, stats, scratch.mem,
                       scratch.lines);
    const std::vector<ReadResult> &lines = scratch.lines;

    bool page_bad = false;
    for (std::uint64_t g = 0; g < groups; ++g) {
        std::uint64_t addr = base + g * group;
        ++report.linesScrubbed;

        // Every line of a group carries the group's decode outcome;
        // count it once, off the first line.
        const ReadResult &first = lines[g * lines_per_group];
        if (first.status == DecodeStatus::Corrected) {
            report.errorsCorrected += first.symbolsCorrected;
            page_bad = true;
        } else if (first.status == DecodeStatus::Detected) {
            ++report.duesFound;
            page_bad = true;
        }

        if (config_.testPatterns) {
            // Step 2: all-0 pattern; surviving 1s = stuck-at-1.
            memory.rawFill(addr, 0x00);
            if (!memory.rawCheck(addr, 0x00, scratch.mem.line)) {
                ++report.stuckAt1Found;
                page_bad = true;
            }
            // Step 3: all-1 pattern; surviving 0s = stuck-at-0.
            memory.rawFill(addr, 0xff);
            if (!memory.rawCheck(addr, 0xff, scratch.mem.line)) {
                ++report.stuckAt0Found;
                page_bad = true;
            }
        }

        // Step 4: restore, reassembling the group's corrected data
        // from its per-line batch results.
        if (first.status == DecodeStatus::Detected) {
            memory.rawRestore(addr, scratch.snaps[g]);
        } else {
            scratch.data.clear();
            scratch.data.reserve(group);
            for (std::uint64_t l = 0; l < lines_per_group; ++l) {
                const ReadResult &r = lines[g * lines_per_group + l];
                scratch.data.insert(scratch.data.end(), r.data.begin(),
                                    r.data.end());
            }
            memory.writeGroup(addr, scratch.data, stats, scratch.mem);
        }
    }

    if (page_bad)
        report.faultyPages.push_back(page);
}

ScrubReport
Scrubber::scrubParallel(ArccMemory &memory, SimEngine *engine) const
{
    if (!engine)
        engine = &SimEngine::global();
    const std::uint64_t pages = memory.pageTable().pages();

    struct ShardResult
    {
        ScrubReport report;
        MemoryStats stats;
    };

    // Sweep: fixed page-range shards, disjoint storage, private
    // counters; merged in shard order on this thread.
    ShardResult merged = engine->reduceShards(
        pages, kShardPages,
        [&](const ShardRange &shard) {
            // Shard-owned scratch: every page of the shard reuses the
            // same decode workspace and staging buffers.
            ScrubScratch scratch;
            ShardResult partial;
            for (std::uint64_t p = shard.begin; p < shard.end; ++p)
                sweepPage(memory, p, partial.report, partial.stats,
                          scratch);
            return partial;
        },
        [](std::vector<ShardResult> &&partials) {
            ShardResult total;
            for (ShardResult &p : partials) {
                total.report.merge(p.report);
                total.stats += p.stats;
            }
            return total;
        });
    memory.addStats(merged.stats);

    // The sweep recorded flagged pages; the transition pass rebuilds
    // the final report's faultyPages in page order, exactly as the
    // serial path does.
    std::vector<bool> faulty(pages, false);
    ScrubReport report = merged.report;
    for (std::uint64_t page : report.faultyPages)
        faulty[page] = true;
    report.faultyPages.clear();

    applyTransitions(memory, faulty, report);
    return report;
}

void
Scrubber::applyTransitions(ArccMemory &memory,
                           const std::vector<bool> &faulty,
                           ScrubReport &report) const
{
    // End of scrub: apply the page-mode transitions.
    for (std::uint64_t page = 0; page < faulty.size(); ++page) {
        PageMode mode = memory.pageTable().mode(page);
        if (faulty[page]) {
            report.faultyPages.push_back(page);
            if (mode == PageMode::Relaxed) {
                memory.setPageMode(page, PageMode::Upgraded);
                ++report.pagesUpgraded;
            } else if (mode == PageMode::Upgraded &&
                       config_.allowLevel2 &&
                       memory.config().allowLevel2) {
                memory.setPageMode(page, PageMode::Upgraded2);
                ++report.pagesUpgraded;
            }
        } else if (config_.relaxCleanPages &&
                   mode != PageMode::Relaxed) {
            memory.setPageMode(page, PageMode::Relaxed);
            ++report.pagesRelaxed;
        }
    }
}

ScrubReport
Scrubber::bootScrub(ArccMemory &memory) const
{
    ScrubberConfig boot = config_;
    boot.relaxCleanPages = true;
    return Scrubber(boot).scrub(memory);
}

ScrubReport
Scrubber::bootScrubParallel(ArccMemory &memory, SimEngine *engine) const
{
    ScrubberConfig boot = config_;
    boot.relaxCleanPages = true;
    return Scrubber(boot).scrubParallel(memory, engine);
}

double
Scrubber::scrubSeconds(double bytes, double bus_bytes_per_sec)
{
    // Three reads + three writes of the full contents (Section 4.2.2).
    return accessesPerLine(/*test_patterns=*/true) * bytes /
           bus_bytes_per_sec;
}

double
Scrubber::bandwidthFraction(double scrub_seconds, double period_hours)
{
    return scrub_seconds / (period_hours * 3600.0);
}

} // namespace arcc
