/**
 * @file
 * Page-mode bookkeeping (Section 4.2.1).
 *
 * Each physical page entry (and its TLB entry) carries a flag giving
 * the chipkill strength the page currently operates at.  The paper's
 * base design needs one bit (relaxed / upgraded); the Chapter 5.1
 * extension adds a second upgraded level, so the flag here is a small
 * enum.  The OS boots with every page upgraded and the first scrub
 * relaxes the fault-free ones.
 */

#ifndef ARCC_ARCC_PAGE_TABLE_HH
#define ARCC_ARCC_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

namespace arcc
{

/** Chipkill strength a page operates at. */
enum class PageMode : std::uint8_t
{
    Relaxed = 0,   ///< 2 check symbols / codeword, single-channel line.
    Upgraded = 1,  ///< 4 check symbols, two channels in lockstep.
    Upgraded2 = 2, ///< 8 check symbols, four channels (Chapter 5.1).
};

/** Display name. */
const char *toString(PageMode m);

/**
 * The per-page mode table.
 */
class PageTable
{
  public:
    /**
     * @param pages   number of 4KB physical pages.
     * @param initial boot-time mode (the paper boots Upgraded).
     */
    explicit PageTable(std::uint64_t pages,
                       PageMode initial = PageMode::Upgraded);

    /** @return current mode of a page. */
    PageMode
    mode(std::uint64_t page) const
    {
        return modes_[page];
    }

    /** Set a page's mode (scrub-time upgrades / boot-time relaxing). */
    void setMode(std::uint64_t page, PageMode mode);

    /** Total pages tracked. */
    std::uint64_t pages() const { return modes_.size(); }

    /** Pages currently in the given mode. */
    std::uint64_t count(PageMode m) const;

    /** Fraction of pages at Upgraded or stronger. */
    double upgradedFraction() const;

    /** Lifetime number of strength increases. */
    std::uint64_t upgradesPerformed() const { return upgrades_; }
    /** Lifetime number of strength decreases. */
    std::uint64_t downgradesPerformed() const { return downgrades_; }

  private:
    std::vector<PageMode> modes_;
    std::uint64_t counts_[3] = {0, 0, 0};
    std::uint64_t upgrades_ = 0;
    std::uint64_t downgrades_ = 0;
};

} // namespace arcc

#endif // ARCC_ARCC_PAGE_TABLE_HH
