/**
 * @file
 * SDC / DUE model implementation.
 */

#include "reliability/sdc_model.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "ecc/reed_solomon.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

namespace
{

/** Footprint scope of a fault type within its device. */
struct Scope
{
    bool oneBank = false;
    bool oneRow = false;
    bool oneCol = false;
};

Scope
scopeOf(FaultType t)
{
    switch (t) {
      case FaultType::Device:
      case FaultType::Lane:
        return {false, false, false};
      case FaultType::Bank:
        return {true, false, false};
      case FaultType::Column:
        return {true, false, true};
      case FaultType::Row:
        return {true, true, false};
      case FaultType::Word:
      case FaultType::Bit:
        return {true, true, true};
    }
    return {};
}

} // anonymous namespace

bool
faultsOverlap(const ConcreteFault &a, const ConcreteFault &b)
{
    if (a.type == FaultType::Lane || b.type == FaultType::Lane)
        return true;
    if (a.group != b.group || a.device == b.device)
        return false;
    Scope sa = scopeOf(a.type);
    Scope sb = scopeOf(b.type);
    if (sa.oneBank && sb.oneBank && a.bank != b.bank)
        return false;
    if (sa.oneRow && sb.oneRow && a.row != b.row)
        return false;
    if (sa.oneCol && sb.oneCol && a.col != b.col)
        return false;
    return true;
}

SdcModelConfig
SdcModelConfig::sccdcdMachine()
{
    SdcModelConfig c;
    c.devices = 72;
    c.groups = 2;          // two 36-device lockstep ranks.
    c.devicesPerGroup = 36;
    return c;
}

SdcModelConfig
SdcModelConfig::arccMachine()
{
    SdcModelConfig c;
    c.devices = 72;
    c.groups = 4;          // 2 channels x 2 ranks of 18 devices.
    c.devicesPerGroup = 18;
    return c;
}

SdcModel::SdcModel(const SdcModelConfig &config) : config_(config)
{
    if (config_.groups * config_.devicesPerGroup != config_.devices)
        fatal("SdcModel: %d groups x %d devices != %d total",
              config_.groups, config_.devicesPerGroup, config_.devices);
}

double
SdcModel::machineRate(FaultType t) const
{
    return fitToPerHour(config_.rates[t]) * config_.devices;
}

double
SdcModel::pairOverlap(FaultType a, FaultType b) const
{
    // A lane fault blankets every group, bank, row and column: it
    // intersects anything (worst-case corruption assumption).
    if (a == FaultType::Lane || b == FaultType::Lane)
        return 1.0;

    Scope sa = scopeOf(a);
    Scope sb = scopeOf(b);
    double p = 1.0 / config_.groups;             // same codeword group.
    p *= 1.0 - 1.0 / config_.devicesPerGroup;    // distinct devices.
    if (sa.oneBank && sb.oneBank)
        p /= config_.banks;
    if (sa.oneRow && sb.oneRow)
        p /= config_.rowsPerBank;
    if (sa.oneCol && sb.oneCol)
        p /= config_.colsPerBank;
    return p;
}

double
SdcModel::tripleOverlap(FaultType a, FaultType b, FaultType c) const
{
    std::vector<Scope> scopes;
    for (FaultType t : {a, b, c}) {
        if (t != FaultType::Lane)
            scopes.push_back(scopeOf(t));
    }
    if (scopes.size() <= 1)
        return 1.0;

    double p = std::pow(1.0 / config_.groups,
                        static_cast<double>(scopes.size()) - 1.0);
    // All three faults must sit in distinct devices of the group.
    p *= (1.0 - 1.0 / config_.devicesPerGroup) *
         (1.0 - 2.0 / config_.devicesPerGroup);

    auto dim = [&](auto member, double size) {
        int k = 0;
        for (const Scope &s : scopes)
            if (s.*member)
                ++k;
        if (k >= 2)
            p *= std::pow(1.0 / size, k - 1);
    };
    dim(&Scope::oneBank, config_.banks);
    dim(&Scope::oneRow, config_.rowsPerBank);
    dim(&Scope::oneCol, config_.colsPerBank);
    return p;
}

double
SdcModel::arccSdcEvents(double years) const
{
    const double life_hours = years * kHoursPerYear;
    const double window = config_.scrubHours / 2.0;
    double events = 0.0;
    for (FaultType a : allFaultTypes()) {
        for (FaultType b : allFaultTypes()) {
            events += machineRate(a) * life_hours * machineRate(b) *
                      window * pairOverlap(a, b);
        }
    }
    return events * config_.aliasFactor;
}

double
SdcModel::sccdcdSdcEvents(double years) const
{
    const double life_hours = years * kHoursPerYear;
    const double window = config_.scrubHours / 2.0;
    double events = 0.0;
    for (FaultType a : allFaultTypes()) {
        for (FaultType b : allFaultTypes()) {
            for (FaultType c : allFaultTypes()) {
                // a persists (arrives any time before b: L^2/2 term);
                // c must land inside b's exposure window.
                events += machineRate(a) * machineRate(b) *
                          machineRate(c) * life_hours * life_hours /
                          2.0 * window * tripleOverlap(a, b, c);
            }
        }
    }
    return events * config_.aliasFactor;
}

double
SdcModel::arccSdcPer1000MachineYears(double years) const
{
    return arccSdcEvents(years) / years * 1000.0;
}

double
SdcModel::sccdcdSdcPer1000MachineYears(double years) const
{
    return sccdcdSdcEvents(years) / years * 1000.0;
}

double
SdcModel::dueEvents(double years) const
{
    const double life_hours = years * kHoursPerYear;
    double events = 0.0;
    for (FaultType a : allFaultTypes()) {
        for (FaultType b : allFaultTypes()) {
            events += machineRate(a) * machineRate(b) * life_hours *
                      life_hours / 2.0 * pairOverlap(a, b);
        }
    }
    return events;
}

McSdcResult
SdcModel::mcArccSdcEventsDetailed(double years, double boost,
                                  int trials, std::uint64_t seed,
                                  SimEngine *engine) const
{
    if (!engine)
        engine = &SimEngine::global();

    SdcModelConfig boosted = config_;
    boosted.rates = config_.rates.scaled(boost);

    const double life_hours = years * kHoursPerYear;

    // One trial's fault history and overlap scan.  Self-contained:
    // the generator is a pure function of (seed, trial), so trials
    // can run in any order on any shard.
    auto runTrial = [&](std::uint64_t trial, McSdcResult &out) {
        Rng trng = Rng::stream(seed, trial);
        std::vector<ConcreteFault> faults;
        for (FaultType t : allFaultTypes()) {
            double rate =
                fitToPerHour(boosted.rates[t]) * config_.devices;
            std::uint64_t n = trng.poisson(rate * life_hours);
            for (std::uint64_t i = 0; i < n; ++i) {
                ConcreteFault f;
                f.timeHours = trng.uniform() * life_hours;
                f.type = t;
                f.group = static_cast<int>(trng.below(config_.groups));
                f.device = static_cast<int>(
                    trng.below(config_.devicesPerGroup));
                f.bank = static_cast<int>(trng.below(config_.banks));
                f.row = static_cast<int>(trng.below(config_.rowsPerBank));
                f.col = static_cast<int>(trng.below(config_.colsPerBank));
                faults.push_back(f);
            }
        }
        std::sort(faults.begin(), faults.end(),
                  [](const ConcreteFault &a, const ConcreteFault &b) {
                      return a.timeHours < b.timeHours;
                  });

        std::uint64_t trial_events = 0;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            // Fault i is detected (and its pages upgraded) at the end
            // of the scrub period it arrives in.
            double detect =
                (std::floor(faults[i].timeHours / config_.scrubHours) +
                 1.0) *
                config_.scrubHours;
            for (std::size_t j = i + 1; j < faults.size(); ++j) {
                if (faults[j].timeHours >= detect)
                    break;
                if (faultsOverlap(faults[i], faults[j]))
                    ++trial_events;
            }
        }

        ++out.trials;
        out.events += trial_events;
        out.faultsSampled += faults.size();
        int bin = static_cast<int>(
            std::min<std::uint64_t>(trial_events,
                                    McSdcResult::kHistogramBins - 1));
        ++out.eventHistogram[bin];
    };

    // Shard the trial range; each shard's partial is pure integer
    // counters, merged in shard order on the calling thread.
    return engine->reduceShards(
        static_cast<std::uint64_t>(trials), SimEngine::kDefaultShard,
        [&](const ShardRange &shard) {
            McSdcResult partial;
            for (std::uint64_t t = shard.begin; t < shard.end; ++t)
                runTrial(t, partial);
            return partial;
        },
        [](std::vector<McSdcResult> &&partials) {
            McSdcResult total;
            for (const McSdcResult &p : partials)
                total.merge(p);
            return total;
        });
}

double
SdcModel::mcArccSdcEvents(double years, double boost, int trials,
                          std::uint64_t seed, SimEngine *engine) const
{
    return mcArccSdcEventsDetailed(years, boost, trials, seed, engine)
        .eventsPerTrial();
}

double
measureMiscorrectionRate(int n, int k, int maxCorrect, int numErrors,
                         int trials, std::uint64_t seed)
{
    ReedSolomon rs(n, k);
    RsWorkspace ws;
    Rng rng(seed);
    std::vector<std::uint8_t> word(n), original(n);
    std::vector<int> pos;
    int miscorrected = 0;
    for (int t = 0; t < trials; ++t) {
        for (int i = 0; i < k; ++i)
            word[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(word);
        original = word;

        // numErrors distinct positions, random non-zero magnitudes.
        pos.clear();
        while (static_cast<int>(pos.size()) < numErrors) {
            int p = static_cast<int>(rng.below(n));
            if (std::find(pos.begin(), pos.end(), p) == pos.end())
                pos.push_back(p);
        }
        for (int p : pos)
            word[p] ^= static_cast<std::uint8_t>(rng.range(1, 255));

        RsDecodeView res = rs.decode(word, ws, maxCorrect);
        bool silent_wrong =
            (res.status == DecodeStatus::Clean && word != original) ||
            (res.status == DecodeStatus::Corrected && word != original);
        if (silent_wrong)
            ++miscorrected;
        word = original; // reuse the buffer next round.
    }
    return static_cast<double>(miscorrected) / trials;
}

} // namespace arcc
