/**
 * @file
 * Analytic and Monte Carlo SDC / DUE models (Chapter 6, Figure 6.1).
 *
 * The structure follows the tech-report models the paper cites [12]:
 *
 *  - A codeword spans one symbol from every device of its *group* (a
 *    36-device lockstep rank for commercial chipkill; an 18-device
 *    rank for an ARCC relaxed codeword).  Two faults in different
 *    devices of the same group produce two bad symbols in a common
 *    codeword whenever their (bank, row, column) footprints intersect
 *    -- the worst-case corruption assumption of Chapter 3.
 *
 *  - **ARCC's reduced double error detection (ARCC DED)**: a relaxed
 *    codeword only guarantees detection of one bad symbol.  An SDC
 *    candidate occurs when a second overlapping fault arrives *before
 *    the scrub that would have detected the first and upgraded the
 *    page* (an exposure window averaging half the scrub period).  This
 *    is exactly the error-correction reliability structure of double
 *    chip sparing, as Section 6.2 argues.
 *
 *  - **Commercial SCCDCD (simultaneous DED)**: detection of two bad
 *    symbols is guaranteed; an SDC candidate needs *three* overlapping
 *    bad symbols, i.e. a third fault arriving within the exposure
 *    window of the second while a first persists.
 *
 * Both models optionally multiply by an aliasing factor: the measured
 * probability that an overwhelmed Reed-Solomon decode actually returns
 * wrong data silently instead of flagging a DUE.  The factor can be
 * measured empirically with measureMiscorrectionRate(), which runs the
 * real codec from src/ecc.  With the factor at 1.0 the model counts
 * every undetectable-pattern event as an SDC, which is the paper's
 * conservative treatment.
 */

#ifndef ARCC_RELIABILITY_SDC_MODEL_HH
#define ARCC_RELIABILITY_SDC_MODEL_HH

#include <array>
#include <cstdint>

#include "faults/fault_model.hh"

namespace arcc
{

class SimEngine;

/**
 * Detailed outcome of the SDC-event Monte Carlo.  Every field is an
 * integer counter, so cross-thread-count equality is exact (no
 * floating-point reduction is involved until eventsPerTrial()).
 */
struct McSdcResult
{
    /** Bins of the per-trial event histogram; the last bin is >=. */
    static constexpr int kHistogramBins = 8;

    std::uint64_t trials = 0;
    /** Total SDC-candidate events over all trials. */
    std::uint64_t events = 0;
    /** Total concrete faults sampled over all trials. */
    std::uint64_t faultsSampled = 0;
    /** eventHistogram[k] = trials that saw exactly k events. */
    std::array<std::uint64_t, kHistogramBins> eventHistogram{};

    double
    eventsPerTrial() const
    {
        return trials == 0
                   ? 0.0
                   : static_cast<double>(events) / trials;
    }

    /** Accumulate another partial (shard-order merge). */
    void
    merge(const McSdcResult &o)
    {
        trials += o.trials;
        events += o.events;
        faultsSampled += o.faultsSampled;
        for (int i = 0; i < kHistogramBins; ++i)
            eventHistogram[i] += o.eventHistogram[i];
    }
};

/** Reliability-model configuration. */
struct SdcModelConfig
{
    FaultRates rates = FaultRates::fieldStudy();
    /** Total devices in the machine's memory (the paper uses 72). */
    int devices = 72;
    /** Codeword groups the devices are divided into. */
    int groups = 2;
    /** Devices per group (symbols per codeword's reach). */
    int devicesPerGroup = 36;
    /** Per-device geometry for footprint-intersection probabilities. */
    int banks = 8;
    int rowsPerBank = 8192;
    int colsPerBank = 1024;
    /** Scrub period in hours (the paper assumes 4). */
    double scrubHours = 4.0;
    /** P(undetected | overlapping pattern); 1.0 = conservative. */
    double aliasFactor = 1.0;

    /** The commercial-chipkill machine of Figure 6.1. */
    static SdcModelConfig sccdcdMachine();
    /** The same 72 devices under ARCC relaxed grouping. */
    static SdcModelConfig arccMachine();
};

/**
 * A concrete fault with a fully sampled codeword-group footprint --
 * the unit the Monte Carlo overlap scan works on.  Exposed so the
 * campaign driver (src/campaign) runs the *same* overlap kernel as
 * the validation Monte Carlo instead of cloning it.
 */
struct ConcreteFault
{
    double timeHours = 0.0;
    FaultType type = FaultType::Bit;
    int group = 0;   ///< Codeword group (lockstep or relaxed rank).
    int device = 0;  ///< Device within the group.
    int bank = 0;
    int row = 0;
    int col = 0;
};

/**
 * Worst-case footprint intersection (Chapter 3): do two faults
 * produce two bad symbols in a common codeword?  A lane fault
 * blankets everything; any other pair must hit the same group from
 * *different* devices, with matching bank / row / column wherever
 * both footprints are confined to one.
 */
bool faultsOverlap(const ConcreteFault &a, const ConcreteFault &b);

/**
 * Closed-form SDC / DUE rate model with Monte Carlo validation.
 */
class SdcModel
{
  public:
    explicit SdcModel(const SdcModelConfig &config);

    /**
     * P(two faults of the given types produce two bad symbols in some
     * common codeword), under worst-case footprints.
     */
    double pairOverlap(FaultType a, FaultType b) const;

    /** Same for three faults and a common codeword. */
    double tripleOverlap(FaultType a, FaultType b, FaultType c) const;

    /**
     * Expected ARCC-DED SDC events per machine over `years`
     * (second overlapping fault inside the first's exposure window).
     */
    double arccSdcEvents(double years) const;

    /**
     * Expected simultaneous-DED (commercial SCCDCD) SDC events per
     * machine over `years` (three overlapping bad symbols).
     */
    double sccdcdSdcEvents(double years) const;

    /** Events per 1000 machine-years, the unit of Figure 6.1. */
    double arccSdcPer1000MachineYears(double years) const;
    double sccdcdSdcPer1000MachineYears(double years) const;

    /**
     * DUE model (Section 6.1): overlapping pairs regardless of the
     * scrub window -- identical for ARCC and the commercial baseline,
     * which is the section's claim.
     */
    double dueEvents(double years) const;

    /**
     * Monte Carlo validation of arccSdcEvents with rates uniformly
     * boosted (the raw rates are too small to hit in feasible trials).
     * Compare against arccSdcEvents computed on the boosted config.
     *
     * Trials are sharded across the engine (nullptr = the global one).
     * Trial t draws its generator from Rng::stream(seed, t) -- a pure
     * function of the trial index -- and the per-shard partials are
     * integer counters merged in shard order, so the event count and
     * the per-trial histogram are bit-identical at any thread count.
     * tests/test_determinism.cc enforces this.
     */
    double mcArccSdcEvents(double years, double boost, int trials,
                           std::uint64_t seed,
                           SimEngine *engine = nullptr) const;

    /** Same run, returning the full counters and histogram. */
    McSdcResult mcArccSdcEventsDetailed(double years, double boost,
                                        int trials, std::uint64_t seed,
                                        SimEngine *engine
                                        = nullptr) const;

    const SdcModelConfig &config() const { return config_; }

  private:
    /** Rate (per hour) of faults of type t across the machine. */
    double machineRate(FaultType t) const;

    SdcModelConfig config_;
};

/**
 * Empirically measure the miscorrection (silent-aliasing) probability
 * of an RS(n, k) decode limited to maxCorrect errors when hit by
 * `numErrors` random symbol errors.  Uses the real codec.
 *
 * @return fraction of trials where the decoder silently returned a
 *         wrong codeword (status Corrected but data != original).
 */
double measureMiscorrectionRate(int n, int k, int maxCorrect,
                                int numErrors, int trials,
                                std::uint64_t seed);

} // namespace arcc

#endif // ARCC_RELIABILITY_SDC_MODEL_HH
