/**
 * @file
 * LLC model implementations.
 */

#include "cache/llc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arcc
{

namespace
{

/** Sibling 64B line of addr within its 128B pair. */
std::uint64_t
pairSibling(std::uint64_t line_addr)
{
    return line_addr ^ kLineBytes;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// PairedTagLlc
// ---------------------------------------------------------------------

PairedTagLlc::PairedTagLlc(const CacheConfig &config)
    : BaseLlc(config)
{
    sets_ = config.sizeBytes /
            (static_cast<std::uint64_t>(config.assoc) * config.lineBytes);
    ARCC_ASSERT(sets_ > 1 && (sets_ & (sets_ - 1)) == 0);
    lines_.assign(sets_ * config.assoc, Line{});
}

std::uint64_t
PairedTagLlc::setOf(std::uint64_t line_addr) const
{
    return (line_addr / kLineBytes) & (sets_ - 1);
}

PairedTagLlc::Line *
PairedTagLlc::find(std::uint64_t line_addr)
{
    std::uint64_t set = setOf(line_addr);
    Line *base = &lines_[set * config_.assoc];
    for (int w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

int
PairedTagLlc::victimWay(std::uint64_t set) const
{
    const Line *base = &lines_[set * config_.assoc];
    int victim = 0;
    std::uint64_t best = ~0ULL;
    for (int w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            return w;
        // The recency of an upgraded line is kept synchronised with its
        // sibling on every touch, so lastUse already reflects the most
        // recently used sub-line (Section 4.2.3).
        if (base[w].lastUse < best) {
            best = base[w].lastUse;
            victim = w;
        }
    }
    return victim;
}

void
PairedTagLlc::dropLine(std::uint64_t line_addr, LlcOutcome &out,
                       bool emit_writeback)
{
    Line *l = find(line_addr);
    if (!l)
        return;
    if (emit_writeback && l->dirty) {
        Writeback wb;
        wb.addr = l->upgraded ? (line_addr & ~(kUpgradedLineBytes - 1))
                              : line_addr;
        wb.paired = l->upgraded;
        out.writebacks.push_back(wb);
        if (l->upgraded)
            ++stats_.pairedWritebacks;
    }
    l->valid = false;
    ++stats_.evictions;
}

void
PairedTagLlc::fill(std::uint64_t line_addr, bool dirty, bool upgraded,
                   LlcOutcome &out)
{
    std::uint64_t set = setOf(line_addr);
    int way = victimWay(set);
    Line &slot = lines_[set * config_.assoc + way];
    if (slot.valid) {
        out.replaced = true;
        ++stats_.evictions;
        if (slot.dirty) {
            Writeback wb;
            wb.addr = slot.upgraded
                          ? (slot.lineAddr & ~(kUpgradedLineBytes - 1))
                          : slot.lineAddr;
            wb.paired = slot.upgraded;
            out.writebacks.push_back(wb);
            if (slot.upgraded)
                ++stats_.pairedWritebacks;
        }
        if (slot.upgraded) {
            // Both sub-lines leave together; the sibling was already
            // covered by the paired writeback above.
            std::uint64_t sib = pairSibling(slot.lineAddr);
            slot.valid = false;
            dropLine(sib, out, /*emit_writeback=*/false);
        }
    }
    slot.valid = true;
    slot.dirty = dirty;
    slot.upgraded = upgraded;
    slot.lineAddr = line_addr;
    slot.lastUse = clock_;
}

LlcOutcome
PairedTagLlc::access(std::uint64_t addr, bool is_write, bool upgraded)
{
    LlcOutcome out;
    ++clock_;
    std::uint64_t line_addr = addr & ~(kLineBytes - 1);

    Line *l = find(line_addr);
    if (l) {
        out.hit = true;
        ++stats_.hits;
        l->lastUse = clock_;
        if (is_write)
            l->dirty = true;
        if (l->upgraded) {
            // Keep the sibling's recency in sync (coupled recency).
            Line *sib = find(pairSibling(line_addr));
            if (sib)
                sib->lastUse = clock_;
        }
        return out;
    }

    ++stats_.misses;
    fill(line_addr, is_write, upgraded, out);
    if (upgraded) {
        // The 128B fetch brings the sibling too.
        std::uint64_t sib = pairSibling(line_addr);
        if (!find(sib))
            fill(sib, /*dirty=*/false, /*upgraded=*/true, out);
        else
            find(sib)->upgraded = true;
        ++stats_.pairedFills;
    }
    return out;
}

void
PairedTagLlc::flush()
{
    for (auto &l : lines_)
        l = Line{};
    clock_ = 0;
}

bool
PairedTagLlc::checkInvariants() const
{
    for (std::uint64_t set = 0; set < sets_; ++set) {
        for (int w = 0; w < config_.assoc; ++w) {
            const Line &l = lines_[set * config_.assoc + w];
            if (!l.valid)
                continue;
            // Tag maps back to its set.
            if (setOf(l.lineAddr) != set)
                return false;
            if (!l.upgraded)
                continue;
            // Upgraded invariant: the sibling is resident in the
            // adjacent set, flagged, and recency-coupled.
            std::uint64_t sib = l.lineAddr ^ kLineBytes;
            std::uint64_t sset = setOf(sib);
            bool found = false;
            for (int v = 0; v < config_.assoc; ++v) {
                const Line &cand = lines_[sset * config_.assoc + v];
                if (cand.valid && cand.lineAddr == sib) {
                    if (!cand.upgraded)
                        return false;
                    found = true;
                    break;
                }
            }
            if (!found)
                return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// SectoredLlc
// ---------------------------------------------------------------------

SectoredLlc::SectoredLlc(const CacheConfig &config)
    : BaseLlc(config)
{
    sets_ = config.sizeBytes / (static_cast<std::uint64_t>(config.assoc) *
                                kUpgradedLineBytes);
    ARCC_ASSERT(sets_ > 1 && (sets_ & (sets_ - 1)) == 0);
    frames_.assign(sets_ * config.assoc, Frame{});
}

std::uint64_t
SectoredLlc::setOf(std::uint64_t frame_addr) const
{
    return (frame_addr / kUpgradedLineBytes) & (sets_ - 1);
}

SectoredLlc::Frame *
SectoredLlc::find(std::uint64_t frame_addr)
{
    std::uint64_t set = setOf(frame_addr);
    Frame *base = &frames_[set * config_.assoc];
    for (int w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].frameAddr == frame_addr)
            return &base[w];
    }
    return nullptr;
}

int
SectoredLlc::victimWay(std::uint64_t set) const
{
    const Frame *base = &frames_[set * config_.assoc];
    int victim = 0;
    std::uint64_t best = ~0ULL;
    for (int w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            return w;
        if (base[w].lastUse < best) {
            best = base[w].lastUse;
            victim = w;
        }
    }
    return victim;
}

void
SectoredLlc::evictFrame(Frame &f, LlcOutcome &out)
{
    if (f.upgraded && (f.subDirty[0] || f.subDirty[1])) {
        Writeback wb;
        wb.addr = f.frameAddr;
        wb.paired = true;
        out.writebacks.push_back(wb);
        ++stats_.pairedWritebacks;
    } else {
        for (int s = 0; s < 2; ++s) {
            if (f.subValid[s] && f.subDirty[s]) {
                Writeback wb;
                wb.addr = f.frameAddr + s * kLineBytes;
                wb.paired = false;
                out.writebacks.push_back(wb);
            }
        }
    }
    f.valid = false;
    ++stats_.evictions;
}

LlcOutcome
SectoredLlc::access(std::uint64_t addr, bool is_write, bool upgraded)
{
    LlcOutcome out;
    ++clock_;
    std::uint64_t line_addr = addr & ~(kLineBytes - 1);
    std::uint64_t frame_addr = addr & ~(kUpgradedLineBytes - 1);
    int sub = static_cast<int>((line_addr - frame_addr) / kLineBytes);

    Frame *f = find(frame_addr);
    if (f && f->subValid[sub]) {
        out.hit = true;
        ++stats_.hits;
        f->lastUse = clock_;
        if (is_write)
            f->subDirty[sub] = true;
        return out;
    }

    ++stats_.misses;
    if (!f) {
        std::uint64_t set = setOf(frame_addr);
        int way = victimWay(set);
        Frame &slot = frames_[set * config_.assoc + way];
        if (slot.valid) {
            out.replaced = true;
            evictFrame(slot, out);
        }
        slot.valid = true;
        slot.upgraded = false;
        slot.subValid[0] = slot.subValid[1] = false;
        slot.subDirty[0] = slot.subDirty[1] = false;
        slot.frameAddr = frame_addr;
        f = &slot;
    }
    f->lastUse = clock_;
    f->subValid[sub] = true;
    f->subDirty[sub] = f->subDirty[sub] || is_write;
    if (upgraded) {
        f->upgraded = true;
        f->subValid[0] = f->subValid[1] = true;
        ++stats_.pairedFills;
    }
    return out;
}

void
SectoredLlc::flush()
{
    for (auto &f : frames_)
        f = Frame{};
    clock_ = 0;
}

bool
SectoredLlc::checkInvariants() const
{
    for (std::uint64_t set = 0; set < sets_; ++set) {
        for (int w = 0; w < config_.assoc; ++w) {
            const Frame &f = frames_[set * config_.assoc + w];
            if (!f.valid)
                continue;
            if (setOf(f.frameAddr) != set)
                return false;
            if (f.frameAddr % kUpgradedLineBytes != 0)
                return false;
            // An upgraded frame always holds both sub-sectors.
            if (f.upgraded && (!f.subValid[0] || !f.subValid[1]))
                return false;
            // A dirty sub-sector must be valid.
            for (int sx = 0; sx < 2; ++sx)
                if (f.subDirty[sx] && !f.subValid[sx])
                    return false;
        }
    }
    return true;
}

} // namespace arcc
