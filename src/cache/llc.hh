/**
 * @file
 * Last-level cache models with ARCC upgraded-line support.
 *
 * Section 4.2.3 of the paper needs the LLC to hold both relaxed 64B
 * lines and upgraded 128B lines, and to write *both* sub-lines of an
 * upgraded line back together (the four check symbols of each codeword
 * span both sub-lines).  Two designs are provided:
 *
 *  - PairedTagLlc (the paper's proposal): a conventional 64B-line LLC
 *    where each tag carries an "upgraded" bit.  The two sub-lines of an
 *    upgraded line land in adjacent sets (their addresses differ by one
 *    line).  The replacement policy uses the recency of the most
 *    recently used sub-line for both, and evicting one sub-line drags
 *    its sibling out with it.  Each replacement needs a second tag
 *    access (the caller charges the latency).
 *
 *  - SectoredLlc (the alternative the paper rejects): 128B sectors with
 *    two 64B sub-sector valid bits.  Costs effective capacity when
 *    spatial locality is low.
 */

#ifndef ARCC_CACHE_LLC_HH
#define ARCC_CACHE_LLC_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace arcc
{

/** LLC geometry. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 1 * kMiB;
    int assoc = 16;
    int lineBytes = 64;
    /** Hit latency in ns (Table 7.2: 10 cycles). */
    double hitLatencyNs = 3.4;
    /** Extra latency charged per replacement second tag access (ns). */
    double secondTagAccessNs = 1.0;
};

/** A writeback the cache wants sent to memory. */
struct Writeback
{
    std::uint64_t addr = 0;
    /** True when this is a paired 128B (upgraded-line) writeback. */
    bool paired = false;
};

/** Outcome of one LLC access. */
struct LlcOutcome
{
    bool hit = false;
    /** A replacement happened (charge the second tag access). */
    bool replaced = false;
    /** Dirty evictions to forward to memory. */
    std::vector<Writeback> writebacks;
};

/** Running LLC statistics. */
struct LlcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t pairedFills = 0;
    std::uint64_t pairedWritebacks = 0;

    double
    missRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/** Interface shared by the two LLC designs. */
class BaseLlc
{
  public:
    explicit BaseLlc(const CacheConfig &config) : config_(config) {}
    virtual ~BaseLlc() = default;

    /**
     * Access one 64B line.
     *
     * @param addr     byte address (any alignment; line-aligned inside).
     * @param is_write  store (marks the line dirty).
     * @param upgraded the line belongs to an upgraded page: on a miss
     *                 the fill brings both sub-lines of the 128B pair.
     */
    virtual LlcOutcome access(std::uint64_t addr, bool is_write,
                              bool upgraded) = 0;

    const LlcStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /** Invalidate everything (used between experiment phases). */
    virtual void flush() = 0;

    /**
     * Structural self-check (debug hook): verifies the design's
     * internal invariants -- e.g. that every upgraded sub-line's
     * sibling is resident and also flagged.  @return true when sound.
     */
    virtual bool checkInvariants() const = 0;

  protected:
    CacheConfig config_;
    LlcStats stats_;
};

/** The paper's paired-tag 64B-line design. */
class PairedTagLlc : public BaseLlc
{
  public:
    explicit PairedTagLlc(const CacheConfig &config);

    LlcOutcome access(std::uint64_t addr, bool is_write,
                      bool upgraded) override;
    void flush() override;
    bool checkInvariants() const override;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool upgraded = false;
        std::uint64_t lineAddr = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(std::uint64_t line_addr) const;
    Line *find(std::uint64_t line_addr);
    /** Pick the LRU victim way in a set. */
    int victimWay(std::uint64_t set) const;
    /** Remove a specific line (for sibling drag-out); maybe writeback. */
    void dropLine(std::uint64_t line_addr, LlcOutcome &out,
                  bool emit_writeback);
    /** Insert a line, evicting as needed. */
    void fill(std::uint64_t line_addr, bool dirty, bool upgraded,
              LlcOutcome &out);

    std::uint64_t sets_;
    std::vector<Line> lines_; // sets_ x assoc
    std::uint64_t clock_ = 0;
};

/** The sectored alternative. */
class SectoredLlc : public BaseLlc
{
  public:
    explicit SectoredLlc(const CacheConfig &config);

    LlcOutcome access(std::uint64_t addr, bool is_write,
                      bool upgraded) override;
    void flush() override;
    bool checkInvariants() const override;

  private:
    struct Frame
    {
        bool valid = false;
        bool upgraded = false;
        bool subValid[2] = {false, false};
        bool subDirty[2] = {false, false};
        std::uint64_t frameAddr = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(std::uint64_t frame_addr) const;
    Frame *find(std::uint64_t frame_addr);
    int victimWay(std::uint64_t set) const;
    void evictFrame(Frame &f, LlcOutcome &out);

    std::uint64_t sets_;
    std::vector<Frame> frames_;
    std::uint64_t clock_ = 0;
};

} // namespace arcc

#endif // ARCC_CACHE_LLC_HH
