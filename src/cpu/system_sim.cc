/**
 * @file
 * System simulator implementation: the decoupled front-end /
 * channel-sharded back-end pipeline (see the header for the design).
 */

#include "cpu/system_sim.hh"

#include <algorithm>
#include <utility>

#include "arcc/scrubber.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "dram/channel_shard.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

// ---------------------------------------------------------------------
// PageUpgradeOracle
// ---------------------------------------------------------------------

PageUpgradeOracle
PageUpgradeOracle::forScenario(Scenario s, const MemoryConfig &config)
{
    PageUpgradeOracle o;
    o.scenario_ = s;
    o.map_ = std::make_shared<AddressMap>(config, MapPolicy::HiPerf);
    int ranks = config.ranksPerChannel;
    int banks = config.device.banks;
    switch (s) {
      case Scenario::None:
        o.expected_ = 0.0;
        break;
      case Scenario::Lane:
        o.expected_ = 1.0;
        break;
      case Scenario::Device:
        o.expected_ = 1.0 / ranks;
        break;
      case Scenario::Bank:
        o.expected_ = 1.0 / (ranks * banks);
        break;
      case Scenario::Column:
        o.expected_ = 1.0 / (2.0 * ranks * banks);
        break;
      case Scenario::Fraction:
        fatal("use forFraction for the Fraction scenario");
    }
    return o;
}

PageUpgradeOracle
PageUpgradeOracle::forFraction(double fraction, const MemoryConfig &config)
{
    PageUpgradeOracle o;
    o.scenario_ = Scenario::Fraction;
    o.fraction_ = fraction;
    o.expected_ = fraction;
    o.map_ = std::make_shared<AddressMap>(config, MapPolicy::HiPerf);
    return o;
}

bool
PageUpgradeOracle::upgraded(std::uint64_t addr) const
{
    switch (scenario_) {
      case Scenario::None:
        return false;
      case Scenario::Lane:
        return true;
      case Scenario::Device: {
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0;
      }
      case Scenario::Bank: {
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0 && c.bank == 0;
      }
      case Scenario::Column: {
        // A column fault touches one column of one bank; under the
        // worst-case assumption every page whose half-row contains that
        // column is upgraded (half the pages of the bank, Table 7.4).
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0 && c.bank == 0 &&
               c.column < map_->linesPerRow() / 2;
      }
      case Scenario::Fraction: {
        // Deterministic per-page hash (splitmix64 finaliser).
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t z =
            Rng::mix64(page + 0x9e3779b97f4a7c15ULL);
        return (z >> 11) * 0x1.0p-53 < fraction_;
      }
    }
    return false;
}

const char *
PageUpgradeOracle::name(Scenario s)
{
    switch (s) {
      case Scenario::None:     return "no fault";
      case Scenario::Lane:     return "1 lane fault";
      case Scenario::Device:   return "1 device fault";
      case Scenario::Bank:     return "1 subbank fault";
      case Scenario::Column:   return "1 column fault";
      case Scenario::Fraction: return "fraction";
    }
    return "?";
}

// ---------------------------------------------------------------------
// simulateStreams: the sharded pipeline
// ---------------------------------------------------------------------

namespace
{

/** One recorded LLC access of one core (phase 1). */
struct RecordedAccess
{
    std::uint64_t addr = 0;
    /** Full width: capping would desynchronise the recorded budget
     *  from the front-end's replayed one. */
    std::uint64_t instrGap = 0;
    bool isWrite = false;
};

/** One memory request the front-end hands a channel shard. */
struct ChannelRequest
{
    double arrival = 0.0;
    DramCoord a;
    /** Second sub-line of a paired access (unused otherwise). */
    DramCoord b;
    /** Completion slot index; slots are globally unique, so the shard
     *  that owns this request writes the slot without synchronising. */
    std::uint32_t slot = 0;
    bool isWrite = false;
    bool paired = false;
};

/** The per-core timing ledger one front-end pass produces. */
struct CoreLedger
{
    /** Compute time + hit latencies + replacement charges (ns): the
     *  part of the core's finish time that memory cannot change. */
    double fixedNs = 0.0;
    std::uint64_t instrs = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    /** (completion slot, arrival ns) of every demand miss, in order. */
    std::vector<std::pair<std::uint32_t, double>> misses;
};

/** Everything one front-end pass produces. */
struct FrontendPass
{
    /** Arrival-ordered request stream of each channel shard group. */
    std::vector<std::vector<ChannelRequest>> groupRequests;
    std::vector<CoreLedger> cores;
    std::uint32_t slots = 0;
    /** Estimated end of the run (max estimated core finish, ns); the
     *  shards keep injecting scrub traffic until this time. */
    double estEndNs = 0.0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    LlcStats llcStats;
};

/** What one back-end shard returns through reduceShards. */
struct ShardPartial
{
    /** The shard's channel state (on the heap: partials move). */
    std::unique_ptr<ChannelSet> set;
    std::uint64_t scrubReads = 0;
    std::uint64_t scrubWrites = 0;
};

/**
 * Per-channel background-scrub state: walks the channel's coordinate
 * space one line per visit, `period / linesPerChannel` apart, so the
 * whole channel is swept once per period.  A visit's accesses (the
 * test-pattern read/write passes of one line) are *self-paced*: each
 * issues only after the previous one's data is back, like the real
 * scrubber state machine.  Self-pacing bounds the scrubber to one
 * outstanding request, so an unsustainably short period degrades to
 * continuous scrubbing instead of an unbounded request backlog --
 * and per-channel arrival order stays non-decreasing, which the
 * channel model requires.  Pure function of the configuration --
 * every shard derives the same cadence.
 */
struct ScrubCursor
{
    /** Due time of the next scrub access (ns). */
    double nextAt = 0.0;
    /** Cadence slot of the current line visit (ns). */
    double visitAt = 0.0;
    double intervalNs = 0.0;
    /** Which of the visit's accessesPerLine accesses is next. */
    int subIdx = 0;
    DramCoord coord;
    int ranks = 1;
    int banks = 1;
    std::uint32_t rows = 1;
    std::uint32_t columns = 1;

    ScrubCursor(int channel, const SystemConfig &config,
                const AddressMap &map)
    {
        coord.channel = channel;
        ranks = config.mem.ranksPerChannel;
        banks = config.mem.device.banks;
        rows = map.rows();
        columns = map.linesPerRow();
        double period_ns =
            config.backgroundScrub.periodHours * 3600.0 * 1e9;
        intervalNs =
            period_ns / static_cast<double>(map.linesPerChannel());
    }

    /**
     * Account one issued access that completed at `completion`;
     * schedules the next pattern pass (after the data is back) or,
     * at the end of the visit, the next line's cadence slot.
     */
    void
    issued(double completion, int accesses_per_line)
    {
        if (++subIdx < accesses_per_line) {
            nextAt = completion;
            return;
        }
        subIdx = 0;
        advanceLine();
        visitAt += intervalNs;
        nextAt = std::max(visitAt, completion);
    }

    /** Advance to the next line: column fastest, then bank, rank, row
     *  (wrapping), i.e. maximal bank rotation between visits. */
    void
    advanceLine()
    {
        if (++coord.column < columns)
            return;
        coord.column = 0;
        if (++coord.bank < banks)
            return;
        coord.bank = 0;
        if (++coord.rank < ranks)
            return;
        coord.rank = 0;
        if (++coord.row >= rows)
            coord.row = 0;
    }
};

/**
 * Record each core's access stream up to the instruction budget.  The
 * generators are pure per-core sequences (timing never feeds back),
 * so one recording serves every latency-feedback pass.
 */
std::vector<std::vector<RecordedAccess>>
recordTraces(std::vector<StreamSpec> &streams,
             const SystemConfig &config)
{
    std::vector<std::vector<RecordedAccess>> traces(streams.size());
    for (std::size_t i = 0; i < streams.size(); ++i) {
        std::uint64_t instrs = 0;
        do {
            CoreWorkload::Access a = streams[i].next();
            traces[i].push_back({a.addr, a.instrGap, a.isWrite});
            instrs += a.instrGap;
        } while (instrs < config.instrsPerCore);
    }
    return traces;
}

/**
 * One front-end pass: the core + LLC event loop with per-core
 * estimated miss latencies, emitting the channel request streams.
 */
FrontendPass
runFrontend(const std::vector<std::vector<RecordedAccess>> &traces,
            const std::vector<StreamSpec> &specs,
            const SystemConfig &config, const PageUpgradeOracle &oracle,
            const AddressMap &map, const ChannelShardPlan &plan,
            const std::vector<double> &estLatencyNs)
{
    const double cycle_ns = 1.0 / config.cpuGhz;
    const std::uint64_t capacity = map.capacity();
    const int n = static_cast<int>(traces.size());

    FrontendPass fe;
    fe.groupRequests.resize(plan.groups());
    fe.cores.resize(n);

    std::unique_ptr<BaseLlc> llc;
    if (config.sectoredLlc)
        llc = std::make_unique<SectoredLlc>(config.llc);
    else
        llc = std::make_unique<PairedTagLlc>(config.llc);

    auto emit = [&](double now, std::uint64_t addr, bool is_write,
                    bool paired) {
        ChannelRequest rq;
        rq.arrival = now;
        rq.isWrite = is_write;
        rq.paired = paired;
        if (paired) {
            std::uint64_t base = addr & ~(kUpgradedLineBytes - 1);
            rq.a = map.decode(base);
            rq.b = map.decode(base + kLineBytes);
            ARCC_ASSERT(plan.groupOf(rq.a.channel) ==
                        plan.groupOf(rq.b.channel));
        } else {
            rq.a = map.decode(addr);
        }
        rq.slot = fe.slots++;
        fe.groupRequests[plan.groupOf(rq.a.channel)].push_back(rq);
        return rq.slot;
    };

    struct CoreState
    {
        double readyAt = 0.0;
        std::size_t idx = 0;
        bool done = false;
    };
    std::vector<CoreState> cores(n);
    for (int i = 0; i < n; ++i) {
        cores[i].readyAt =
            static_cast<double>(traces[i][0].instrGap) /
            specs[i].baseIpc * cycle_ns;
        fe.cores[i].fixedNs = cores[i].readyAt;
    }

    int active = n;
    while (active > 0) {
        // Pick the core whose pending access is earliest so every
        // channel sees non-decreasing arrival times.
        int ci = -1;
        double best = 0.0;
        for (int i = 0; i < n; ++i) {
            if (cores[i].done)
                continue;
            if (ci < 0 || cores[i].readyAt < best) {
                ci = i;
                best = cores[i].readyAt;
            }
        }
        CoreState &core = cores[ci];
        CoreLedger &ledger = fe.cores[ci];
        const RecordedAccess &acc = traces[ci][core.idx];
        double now = core.readyAt;

        std::uint64_t addr = acc.addr % capacity;
        bool upgraded = oracle.upgraded(addr);
        LlcOutcome out = llc->access(addr, acc.isWrite, upgraded);

        ++ledger.llcAccesses;
        ledger.fixedNs += config.llc.hitLatencyNs;
        double done_at = now + config.llc.hitLatencyNs;
        if (!out.hit) {
            ++ledger.llcMisses;
            // Dirty evictions go to memory without stalling the core.
            for (const Writeback &wb : out.writebacks) {
                emit(now, wb.addr % capacity, /*is_write=*/true,
                     wb.paired);
                ++fe.memWrites;
                if (wb.paired)
                    ++fe.memWrites; // both sub-lines hit the bus.
            }
            std::uint32_t slot =
                emit(now, addr, /*is_write=*/false, upgraded);
            ++fe.memReads;
            if (upgraded)
                ++fe.memReads;
            ledger.misses.emplace_back(slot, now);
            // Estimated stall; the merge replaces it with the stall
            // the shard replay actually measures.
            done_at +=
                estLatencyNs[ci] * (1.0 - config.stallOverlap);
        }
        if (out.replaced) {
            done_at += config.llc.secondTagAccessNs;
            ledger.fixedNs += config.llc.secondTagAccessNs;
        }

        ledger.instrs += acc.instrGap;
        fe.estEndNs = std::max(fe.estEndNs, done_at);

        if (ledger.instrs >= config.instrsPerCore) {
            core.done = true;
            --active;
            continue;
        }

        ++core.idx;
        const RecordedAccess &next = traces[ci][core.idx];
        double gap_ns = static_cast<double>(next.instrGap) /
                        specs[ci].baseIpc * cycle_ns;
        core.readyAt = done_at + gap_ns;
        ledger.fixedNs += gap_ns;
    }

    fe.llcStats = llc->stats();
    return fe;
}

/**
 * One back-end shard: replay the group's request stream (merged with
 * its channels' scrub streams) through a private ChannelSet, writing
 * completions into this shard's disjoint slots.
 */
ShardPartial
replayShard(const SystemConfig &config, const AddressMap &map,
            const ChannelShardPlan &plan, std::size_t group,
            const std::vector<ChannelRequest> &requests,
            double est_end_ns, std::vector<double> &completions)
{
    ShardPartial partial;
    partial.set = std::make_unique<ChannelSet>(config.mem, config.ctrl,
                                               plan.group(group));
    ChannelSet &set = *partial.set;

    const bool scrub_on = config.backgroundScrub.enabled;
    const int accesses_per_line = Scrubber::accessesPerLine(
        config.backgroundScrub.testPatterns);
    std::vector<ScrubCursor> cursors;
    if (scrub_on)
        for (int channel : plan.group(group))
            cursors.emplace_back(channel, config, map);

    // Issue the cursor's next scrub access: the pattern passes of one
    // line alternate read/write and self-pace on their completions.
    auto step = [&](ScrubCursor &cur) {
        bool is_write = (cur.subIdx % 2) == 1;
        double completion =
            set.access(cur.nextAt, cur.coord, is_write);
        if (is_write)
            ++partial.scrubWrites;
        else
            ++partial.scrubReads;
        cur.issued(completion, accesses_per_line);
    };
    // The earliest-due cursor (ties broken by vector order, which is
    // ascending channel id -- deterministic).
    auto dueCursor = [&](double before) -> ScrubCursor * {
        ScrubCursor *due = nullptr;
        for (ScrubCursor &cur : cursors)
            if (cur.nextAt <= before &&
                (!due || cur.nextAt < due->nextAt))
                due = &cur;
        return due;
    };

    for (const ChannelRequest &rq : requests) {
        if (scrub_on)
            while (ScrubCursor *cur = dueCursor(rq.arrival))
                step(*cur);
        completions[rq.slot] =
            rq.paired
                ? set.accessPaired(rq.arrival, rq.a, rq.b, rq.isWrite)
                : set.access(rq.arrival, rq.a, rq.isWrite);
    }
    // Keep scrubbing through the rest of the run window: the traffic
    // is gone but the power (and the sweep cadence) is not.
    if (scrub_on)
        while (ScrubCursor *cur = dueCursor(est_end_ns))
            step(*cur);

    return partial;
}

} // anonymous namespace

SimResult
simulateStreams(std::vector<StreamSpec> streams,
                const SystemConfig &config,
                const PageUpgradeOracle &oracle, SimEngine *engine)
{
    if (config.cores < 1)
        fatal("simulateStreams: config.cores must be >= 1, got %d",
              config.cores);
    if (static_cast<int>(streams.size()) != config.cores)
        fatal("simulateStreams: config.cores is %d, got %zu streams",
              config.cores, streams.size());
    if (config.backgroundScrub.enabled &&
        config.backgroundScrub.periodHours <= 0.0)
        fatal("simulateStreams: backgroundScrub.periodHours must be "
              "> 0, got %g", config.backgroundScrub.periodHours);
    if (!engine)
        engine = &SimEngine::global();

    const double cycle_ns = 1.0 / config.cpuGhz;
    AddressMap map(config.mem, config.mapPolicy);
    ChannelShardPlan plan(map, oracle.mayUpgrade());

    // Phase 1: draw every core's access stream once.
    std::vector<std::vector<RecordedAccess>> traces =
        recordTraces(streams, config);

    std::vector<double> est_latency(
        streams.size(), config.mem.device.unloadedReadLatencyNs());

    // The decoupled model is a fixed point: the front-end spaces
    // arrivals by the estimated miss latency, the replay measures the
    // latency those arrivals produce.  Iterate (damped -- a saturated
    // channel oscillates undamped) until the measurement agrees with
    // the estimate, so the reported timeline is self-consistent: the
    // stalls the merge charges are the stalls the arrival spacing
    // actually caused.  The loop is pure arithmetic on deterministic
    // values, so the pass count never depends on the thread count.
    const int passes = std::max(1, config.latencyPasses);
    constexpr double kLatencyTolerance = 0.05;
    FrontendPass fe;
    std::vector<double> completions;
    std::vector<ShardPartial> partials;
    for (int pass = 0; pass < passes; ++pass) {
        // Phase 2: the serial core + LLC loop.
        fe = runFrontend(traces, streams, config, oracle, map, plan,
                         est_latency);
        completions.assign(fe.slots, 0.0);

        // Phase 3: one shard per channel group, bit-identical at any
        // thread count (fixed boundaries, disjoint completion slots,
        // shard-order merge).
        partials = engine->reduceShards(
            plan.groups(), 1,
            [&](const ShardRange &shard) {
                return replayShard(config, map, plan, shard.begin,
                                   fe.groupRequests[shard.begin],
                                   fe.estEndNs, completions);
            },
            [](std::vector<ShardPartial> &&p) { return std::move(p); });

        if (pass + 1 == passes)
            break;
        double worst_residual = 0.0;
        for (std::size_t i = 0; i < fe.cores.size(); ++i) {
            const CoreLedger &ledger = fe.cores[i];
            if (ledger.misses.empty())
                continue;
            double sum = 0.0;
            for (const auto &[slot, arrival] : ledger.misses)
                sum += completions[slot] - arrival;
            double measured =
                sum / static_cast<double>(ledger.misses.size());
            worst_residual =
                std::max(worst_residual,
                         std::abs(measured - est_latency[i]) /
                             est_latency[i]);
            est_latency[i] = 0.5 * (est_latency[i] + measured);
        }
        if (worst_residual < kLatencyTolerance)
            break;
    }

    // Phase 4: merge, in shard / core order on the calling thread.
    SimResult res;
    res.cores.resize(streams.size());
    double max_finish = 0.0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const CoreLedger &ledger = fe.cores[i];
        double finish = ledger.fixedNs;
        for (const auto &[slot, arrival] : ledger.misses)
            finish += (completions[slot] - arrival) *
                      (1.0 - config.stallOverlap);
        CoreResult &core = res.cores[i];
        core.benchmark = streams[i].name;
        // The recording phase drew the whole stream, so a trace's lap
        // counter is final by now.
        core.traceLaps = streams[i].laps ? streams[i].laps() : 0;
        core.instrs = ledger.instrs;
        core.ipc = static_cast<double>(ledger.instrs) /
                   (finish / cycle_ns);
        core.llcAccesses = ledger.llcAccesses;
        core.llcMisses = ledger.llcMisses;
        res.ipcSum += core.ipc;
        max_finish = std::max(max_finish, finish);
    }

    // The run ends when the last core retires its budget, exactly as
    // in the pre-sharding event loop; queue drain beyond that point
    // (already converged to near zero by the latency fixed point)
    // accrues its activity at commit time and needs no window.
    double end_time = max_finish;
    for (ShardPartial &partial : partials) {
        partial.set->finalize(end_time);
        const PowerBreakdown &p = partial.set->breakdown();
        res.power.dynamicNj += p.dynamicNj;
        res.power.backgroundNj += p.backgroundNj;
        res.power.refreshNj += p.refreshNj;
        res.scrubReads += partial.scrubReads;
        res.scrubWrites += partial.scrubWrites;
    }
    res.elapsedNs = end_time;
    res.avgPowerMw = res.power.avgPowerMw(end_time);
    res.llcStats = fe.llcStats;
    res.memReads = fe.memReads;
    res.memWrites = fe.memWrites;
    return res;
}

std::vector<SimResult>
simulateMixBatch(const std::vector<MixJob> &jobs, SimEngine *engine)
{
    if (!engine)
        engine = &SimEngine::global();
    // Shard-reduce with one job per shard: the partials vector the
    // merge receives *is* the result list in job order.  Each job's
    // own channel shards run nested on the same engine (the worker
    // executes queued shards while it waits, so this cannot
    // deadlock).
    return engine->reduceShards(
        jobs.size(), 1,
        [&](const ShardRange &shard) {
            const MixJob &job = jobs[shard.begin];
            return simulateMix(job.mix, job.config, job.oracle,
                               engine);
        },
        [](std::vector<SimResult> &&results) {
            return std::move(results);
        });
}

StreamSpec
syntheticStreamSpec(const std::string &benchmark,
                    std::uint64_t memBytes, int coreId,
                    std::uint64_t seed)
{
    const BenchmarkProfile &prof = benchmarkProfile(benchmark);
    auto wl =
        std::make_shared<CoreWorkload>(prof, memBytes, coreId, seed);
    StreamSpec spec;
    spec.name = prof.name;
    spec.baseIpc = prof.baseIpc;
    spec.next = [wl]() { return wl->next(); };
    return spec;
}

SimResult
simulateMix(const WorkloadMix &mix, const SystemConfig &config,
            const PageUpgradeOracle &oracle, SimEngine *engine)
{
    if (static_cast<int>(mix.benchmarks.size()) != config.cores)
        fatal("mix '%s' has %zu benchmarks but config.cores is %d",
              mix.name.c_str(), mix.benchmarks.size(), config.cores);

    // Capacity depends only on the memory config, not the controller.
    AddressMap map(config.mem, config.mapPolicy);
    std::vector<StreamSpec> streams;
    for (int i = 0; i < config.cores; ++i)
        streams.push_back(syntheticStreamSpec(
            mix.benchmarks[i], map.capacity(), i,
            mixCoreSeed(config.seed, i)));
    return simulateStreams(std::move(streams), config, oracle, engine);
}

} // namespace arcc
