/**
 * @file
 * System simulator implementation.
 */

#include "cpu/system_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

// ---------------------------------------------------------------------
// PageUpgradeOracle
// ---------------------------------------------------------------------

PageUpgradeOracle
PageUpgradeOracle::forScenario(Scenario s, const MemoryConfig &config)
{
    PageUpgradeOracle o;
    o.scenario_ = s;
    o.map_ = std::make_shared<AddressMap>(config, MapPolicy::HiPerf);
    int ranks = config.ranksPerChannel;
    int banks = config.device.banks;
    switch (s) {
      case Scenario::None:
        o.expected_ = 0.0;
        break;
      case Scenario::Lane:
        o.expected_ = 1.0;
        break;
      case Scenario::Device:
        o.expected_ = 1.0 / ranks;
        break;
      case Scenario::Bank:
        o.expected_ = 1.0 / (ranks * banks);
        break;
      case Scenario::Column:
        o.expected_ = 1.0 / (2.0 * ranks * banks);
        break;
      case Scenario::Fraction:
        fatal("use forFraction for the Fraction scenario");
    }
    return o;
}

PageUpgradeOracle
PageUpgradeOracle::forFraction(double fraction, const MemoryConfig &config)
{
    PageUpgradeOracle o;
    o.scenario_ = Scenario::Fraction;
    o.fraction_ = fraction;
    o.expected_ = fraction;
    o.map_ = std::make_shared<AddressMap>(config, MapPolicy::HiPerf);
    return o;
}

bool
PageUpgradeOracle::upgraded(std::uint64_t addr) const
{
    switch (scenario_) {
      case Scenario::None:
        return false;
      case Scenario::Lane:
        return true;
      case Scenario::Device: {
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0;
      }
      case Scenario::Bank: {
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0 && c.bank == 0;
      }
      case Scenario::Column: {
        // A column fault touches one column of one bank; under the
        // worst-case assumption every page whose half-row contains that
        // column is upgraded (half the pages of the bank, Table 7.4).
        DramCoord c = map_->decode(addr % map_->capacity());
        return c.rank == 0 && c.bank == 0 &&
               c.column < map_->linesPerRow() / 2;
      }
      case Scenario::Fraction: {
        // Deterministic per-page hash (splitmix64 finaliser).
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t z =
            Rng::mix64(page + 0x9e3779b97f4a7c15ULL);
        return (z >> 11) * 0x1.0p-53 < fraction_;
      }
    }
    return false;
}

const char *
PageUpgradeOracle::name(Scenario s)
{
    switch (s) {
      case Scenario::None:     return "no fault";
      case Scenario::Lane:     return "1 lane fault";
      case Scenario::Device:   return "1 device fault";
      case Scenario::Bank:     return "1 subbank fault";
      case Scenario::Column:   return "1 column fault";
      case Scenario::Fraction: return "fraction";
    }
    return "?";
}

// ---------------------------------------------------------------------
// simulateStreams / simulateMix
// ---------------------------------------------------------------------

namespace
{

/** Per-core simulation state. */
struct CoreState
{
    StreamSpec spec;
    /** Time the pending access reaches the LLC. */
    double readyAt = 0.0;
    CoreWorkload::Access pending;
    std::uint64_t instrs = 0;
    bool done = false;
};

} // anonymous namespace

SimResult
simulateStreams(std::vector<StreamSpec> streams,
                const SystemConfig &config,
                const PageUpgradeOracle &oracle)
{
    if (streams.size() != 4)
        fatal("simulateStreams: the system model has 4 cores, got %zu "
              "streams", streams.size());

    MemorySystem memory(config.mem, config.mapPolicy, config.ctrl);
    std::unique_ptr<BaseLlc> llc;
    if (config.sectoredLlc)
        llc = std::make_unique<SectoredLlc>(config.llc);
    else
        llc = std::make_unique<PairedTagLlc>(config.llc);

    const double cycle_ns = 1.0 / config.cpuGhz;
    const std::uint64_t capacity = memory.map().capacity();

    std::vector<CoreState> cores(4);
    std::vector<CoreResult> results(4);
    for (int i = 0; i < 4; ++i) {
        cores[i].spec = std::move(streams[i]);
        cores[i].pending = cores[i].spec.next();
        cores[i].readyAt =
            static_cast<double>(cores[i].pending.instrGap) /
            cores[i].spec.baseIpc * cycle_ns;
        results[i].benchmark = cores[i].spec.name;
    }

    std::uint64_t mem_reads = 0;
    std::uint64_t mem_writes = 0;
    double end_time = 0.0;
    int active = 4;

    while (active > 0) {
        // Pick the core whose pending access is earliest so memory sees
        // non-decreasing arrival times.
        int ci = -1;
        double best = 0.0;
        for (int i = 0; i < 4; ++i) {
            if (cores[i].done)
                continue;
            if (ci < 0 || cores[i].readyAt < best) {
                ci = i;
                best = cores[i].readyAt;
            }
        }
        CoreState &core = cores[ci];
        double now = core.readyAt;

        std::uint64_t addr = core.pending.addr % capacity;
        bool upgraded = oracle.upgraded(addr);
        LlcOutcome out =
            llc->access(addr, core.pending.isWrite, upgraded);

        ++results[ci].llcAccesses;
        double done_at = now + config.llc.hitLatencyNs;
        if (!out.hit) {
            ++results[ci].llcMisses;
            // Dirty evictions go to memory without stalling the core.
            for (const Writeback &wb : out.writebacks) {
                memory.access(now, wb.addr, /*is_write=*/true,
                              wb.paired);
                ++mem_writes;
                if (wb.paired)
                    ++mem_writes; // both sub-lines hit the bus.
            }
            double completion =
                memory.access(now, addr, /*is_write=*/false, upgraded);
            ++mem_reads;
            if (upgraded)
                ++mem_reads;
            double stall =
                (completion - now) * (1.0 - config.stallOverlap);
            done_at = now + config.llc.hitLatencyNs + stall;
        }
        if (out.replaced)
            done_at += config.llc.secondTagAccessNs;

        core.instrs += core.pending.instrGap;
        end_time = std::max(end_time, done_at);

        if (core.instrs >= config.instrsPerCore) {
            core.done = true;
            --active;
            results[ci].instrs = core.instrs;
            results[ci].ipc =
                static_cast<double>(core.instrs) /
                (done_at / cycle_ns);
            continue;
        }

        core.pending = core.spec.next();
        core.readyAt =
            done_at + static_cast<double>(core.pending.instrGap) /
                          core.spec.baseIpc * cycle_ns;
    }

    memory.finalize(end_time);

    SimResult res;
    res.cores = results;
    for (const auto &c : results)
        res.ipcSum += c.ipc;
    res.elapsedNs = end_time;
    res.power = memory.breakdown();
    res.avgPowerMw = res.power.avgPowerMw(end_time);
    res.llcStats = llc->stats();
    res.memReads = mem_reads;
    res.memWrites = mem_writes;
    return res;
}

std::vector<SimResult>
simulateMixBatch(const std::vector<MixJob> &jobs, SimEngine *engine)
{
    if (!engine)
        engine = &SimEngine::global();
    // Shard-reduce with one job per shard: the partials vector the
    // merge receives *is* the result list in job order.
    return engine->reduceShards(
        jobs.size(), 1,
        [&](const ShardRange &shard) {
            const MixJob &job = jobs[shard.begin];
            return simulateMix(job.mix, job.config, job.oracle);
        },
        [](std::vector<SimResult> &&results) {
            return std::move(results);
        });
}

SimResult
simulateMix(const WorkloadMix &mix, const SystemConfig &config,
            const PageUpgradeOracle &oracle)
{
    if (mix.benchmarks.size() != 4)
        fatal("mix '%s' must have 4 benchmarks", mix.name.c_str());

    // Capacity depends only on the memory config, not the controller.
    AddressMap map(config.mem, config.mapPolicy);
    std::vector<StreamSpec> streams;
    for (int i = 0; i < 4; ++i) {
        const BenchmarkProfile &prof =
            benchmarkProfile(mix.benchmarks[i]);
        auto wl = std::make_shared<CoreWorkload>(
            prof, map.capacity(), i, config.seed + 1000003ULL * i);
        StreamSpec spec;
        spec.name = prof.name;
        spec.baseIpc = prof.baseIpc;
        spec.next = [wl]() { return wl->next(); };
        streams.push_back(std::move(spec));
    }
    return simulateStreams(std::move(streams), config, oracle);
}

} // namespace arcc
