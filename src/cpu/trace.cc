/**
 * @file
 * Trace capture / replay implementation.
 */

#include "cpu/trace.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace arcc
{

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_ << "# ARCC memory trace: <hex-addr> <R|W> <instr-gap>\n";
}

void
TraceWriter::append(const CoreWorkload::Access &access)
{
    out_ << std::hex << access.addr << std::dec << ' '
         << (access.isWrite ? 'W' : 'R') << ' ' << access.instrGap
         << '\n';
    ++count_;
}

std::vector<CoreWorkload::Access>
parseTrace(std::istream &in)
{
    std::vector<CoreWorkload::Access> out;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string addr_s, rw;
        std::uint64_t gap = 0;
        if (!(ss >> addr_s >> rw >> gap))
            fatal("trace line %llu malformed: '%s'",
                  static_cast<unsigned long long>(line_no),
                  line.c_str());
        CoreWorkload::Access a;
        a.addr = std::strtoull(addr_s.c_str(), nullptr, 16);
        if (rw == "W" || rw == "w")
            a.isWrite = true;
        else if (rw == "R" || rw == "r")
            a.isWrite = false;
        else
            fatal("trace line %llu: access type '%s' is not R or W",
                  static_cast<unsigned long long>(line_no), rw.c_str());
        a.instrGap = gap;
        out.push_back(a);
    }
    return out;
}

std::vector<CoreWorkload::Access>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return parseTrace(in);
}

TraceReplay::TraceReplay(std::vector<CoreWorkload::Access> accesses)
    : accesses_(std::move(accesses))
{
    if (accesses_.empty())
        fatal("TraceReplay: empty trace");
}

CoreWorkload::Access
TraceReplay::next()
{
    CoreWorkload::Access a = accesses_[pos_];
    if (++pos_ == accesses_.size()) {
        pos_ = 0;
        ++laps_;
    }
    return a;
}

} // namespace arcc
