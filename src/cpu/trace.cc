/**
 * @file
 * Trace capture / replay implementation: the hardened text parser,
 * the 16-byte binary record codec, the streaming converters, and the
 * chunked TraceStream reader.
 */

#include "cpu/trace.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>

#include "common/logging.hh"

namespace arcc
{

namespace
{

/** Write flag: top bit of the gap word. */
constexpr std::uint64_t kWriteBit = 1ULL << 63;

/** Encode one access into a 16-byte little-endian record. */
void
encodeRecord(const CoreWorkload::Access &a, std::uint8_t *out)
{
    if (a.instrGap & kWriteBit)
        fatal("binary trace: instruction gap %llu does not fit the "
              "record's 63-bit field",
              static_cast<unsigned long long>(a.instrGap));
    std::uint64_t gap = a.instrGap | (a.isWrite ? kWriteBit : 0);
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::uint8_t>(a.addr >> (8 * i));
        out[8 + i] = static_cast<std::uint8_t>(gap >> (8 * i));
    }
}

/** Decode one 16-byte little-endian record. */
CoreWorkload::Access
decodeRecord(const std::uint8_t *in)
{
    std::uint64_t addr = 0;
    std::uint64_t gap = 0;
    for (int i = 7; i >= 0; --i) {
        addr = (addr << 8) | in[i];
        gap = (gap << 8) | in[8 + i];
    }
    CoreWorkload::Access a;
    a.addr = addr;
    a.isWrite = (gap & kWriteBit) != 0;
    a.instrGap = gap & ~kWriteBit;
    return a;
}

/**
 * Parse one text trace line into `out`.
 * @return false when the line is skippable (blank, whitespace-only,
 *         or a comment); fatal() on anything malformed.
 */
bool
parseTraceLine(const std::string &line, std::uint64_t line_no,
               CoreWorkload::Access &out)
{
    // Tolerate CRLF endings and indentation: the payload is the slice
    // between the first and last non-whitespace characters.
    const char *ws = " \t\r\n\v\f";
    std::size_t first = line.find_first_not_of(ws);
    if (first == std::string::npos || line[first] == '#')
        return false;
    std::size_t last = line.find_last_not_of(ws);
    const std::string body = line.substr(first, last - first + 1);

    // Split into exactly three whitespace-separated fields.
    std::string field[3];
    std::size_t pos = 0;
    for (int f = 0; f < 3; ++f) {
        pos = body.find_first_not_of(ws, pos);
        if (pos == std::string::npos)
            fatal("trace line %llu malformed (expected <hex-addr> "
                  "<R|W> <instr-gap>): '%s'",
                  static_cast<unsigned long long>(line_no),
                  line.c_str());
        std::size_t end = body.find_first_of(ws, pos);
        if (end == std::string::npos)
            end = body.size();
        field[f] = body.substr(pos, end - pos);
        pos = end;
    }
    if (body.find_first_not_of(ws, pos) != std::string::npos)
        fatal("trace line %llu: trailing garbage after the three "
              "fields: '%s'",
              static_cast<unsigned long long>(line_no), line.c_str());

    errno = 0;
    char *end = nullptr;
    out.addr = std::strtoull(field[0].c_str(), &end, 16);
    // Reject sign prefixes explicitly: strtoull accepts and *wraps*
    // them ('-1000' becomes 0xfff...f000), which would silently model
    // traffic at a bogus address.
    if (field[0][0] == '-' || field[0][0] == '+' ||
        end == field[0].c_str() || *end != '\0' || errno == ERANGE)
        fatal("trace line %llu: '%s' is not a hex address",
              static_cast<unsigned long long>(line_no),
              field[0].c_str());

    if (field[1] == "W" || field[1] == "w")
        out.isWrite = true;
    else if (field[1] == "R" || field[1] == "r")
        out.isWrite = false;
    else
        fatal("trace line %llu: access type '%s' is not R or W",
              static_cast<unsigned long long>(line_no),
              field[1].c_str());

    errno = 0;
    end = nullptr;
    out.instrGap = std::strtoull(field[2].c_str(), &end, 10);
    if (field[2][0] == '-' || field[2][0] == '+' ||
        end == field[2].c_str() || *end != '\0' || errno == ERANGE)
        fatal("trace line %llu: '%s' is not an instruction gap",
              static_cast<unsigned long long>(line_no),
              field[2].c_str());
    return true;
}

/** Read and validate a binary trace header from a stream. */
void
expectMagic(std::istream &in)
{
    char magic[sizeof kTraceMagic];
    in.read(magic, sizeof magic);
    if (in.gcount() != sizeof magic ||
        std::memcmp(magic, kTraceMagic, sizeof magic) != 0)
        fatal("binary trace: missing ARCCTRC1 magic (is this a text "
              "trace? convert it with textTraceToBinary)");
}

} // anonymous namespace

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_ << "# ARCC memory trace: <hex-addr> <R|W> <instr-gap>\n";
}

void
TraceWriter::append(const CoreWorkload::Access &access)
{
    out_ << std::hex << access.addr << std::dec << ' '
         << (access.isWrite ? 'W' : 'R') << ' ' << access.instrGap
         << '\n';
    if (!out_)
        fatal("trace write failed after %llu accesses (disk full?)",
              static_cast<unsigned long long>(count_));
    ++count_;
}

BinaryTraceWriter::BinaryTraceWriter(std::ostream &out) : out_(out)
{
    out_.write(kTraceMagic, sizeof kTraceMagic);
}

void
BinaryTraceWriter::append(const CoreWorkload::Access &access)
{
    std::uint8_t rec[kTraceRecordBytes];
    encodeRecord(access, rec);
    out_.write(reinterpret_cast<const char *>(rec), sizeof rec);
    if (!out_)
        fatal("trace write failed after %llu accesses (disk full?)",
              static_cast<unsigned long long>(count_));
    ++count_;
}

std::vector<CoreWorkload::Access>
parseTrace(std::istream &in)
{
    std::vector<CoreWorkload::Access> out;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        CoreWorkload::Access a;
        if (parseTraceLine(line, line_no, a))
            out.push_back(a);
    }
    return out;
}

std::vector<CoreWorkload::Access>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return parseTrace(in);
}

std::uint64_t
textTraceToBinary(std::istream &text, std::ostream &bin)
{
    BinaryTraceWriter writer(bin);
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(text, line)) {
        ++line_no;
        CoreWorkload::Access a;
        if (parseTraceLine(line, line_no, a))
            writer.append(a);
    }
    return writer.count();
}

std::uint64_t
binaryTraceToText(std::istream &bin, std::ostream &text)
{
    expectMagic(bin);
    TraceWriter writer(text);
    std::uint8_t rec[kTraceRecordBytes];
    for (;;) {
        bin.read(reinterpret_cast<char *>(rec), sizeof rec);
        std::streamsize got = bin.gcount();
        if (got == 0)
            break;
        if (got != static_cast<std::streamsize>(sizeof rec))
            fatal("binary trace: truncated record after %llu accesses "
                  "(%lld trailing bytes -- a torn final write?); "
                  "refusing to emit a partial record",
                  static_cast<unsigned long long>(writer.count()),
                  static_cast<long long>(got));
        writer.append(decodeRecord(rec));
    }
    return writer.count();
}

std::uint64_t
textTraceFileToBinary(const std::string &text_path,
                      const std::string &bin_path)
{
    std::ifstream in(text_path);
    if (!in)
        fatal("cannot open trace file '%s'", text_path.c_str());
    std::ofstream out(bin_path, std::ios::binary);
    if (!out)
        fatal("cannot create trace file '%s'", bin_path.c_str());
    std::uint64_t n = textTraceToBinary(in, out);
    out.flush();
    if (!out)
        fatal("writing trace file '%s' failed (disk full?)",
              bin_path.c_str());
    return n;
}

std::uint64_t
binaryTraceFileToText(const std::string &bin_path,
                      const std::string &text_path)
{
    std::ifstream in(bin_path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file '%s'", bin_path.c_str());
    std::ofstream out(text_path);
    if (!out)
        fatal("cannot create trace file '%s'", text_path.c_str());
    std::uint64_t n = binaryTraceToText(in, out);
    out.flush();
    if (!out)
        fatal("writing trace file '%s' failed (disk full?)",
              text_path.c_str());
    return n;
}

bool
isBinaryTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[sizeof kTraceMagic];
    in.read(magic, sizeof magic);
    return in.gcount() == sizeof magic &&
           std::memcmp(magic, kTraceMagic, sizeof magic) == 0;
}

TraceReplay::TraceReplay(std::vector<CoreWorkload::Access> accesses)
    : accesses_(std::move(accesses))
{
    if (accesses_.empty())
        fatal("TraceReplay: empty trace");
}

CoreWorkload::Access
TraceReplay::next()
{
    CoreWorkload::Access a = accesses_[pos_];
    if (++pos_ == accesses_.size()) {
        pos_ = 0;
        ++laps_;
    }
    return a;
}

TraceStream::TraceStream(std::string path, std::size_t chunkRecords)
    : path_(std::move(path)),
      chunk_records_(chunkRecords ? chunkRecords : 1)
{
    file_ = std::fopen(path_.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path_.c_str());
    // The chunk buffer *is* the read buffer: unbuffered stdio keeps
    // resident memory at O(chunk) instead of O(chunk + BUFSIZ) and
    // every fread() a single read(2) of one chunk.
    std::setvbuf(file_, nullptr, _IONBF, 0);

    std::uint8_t magic[sizeof kTraceMagic];
    if (std::fread(magic, 1, sizeof magic, file_) != sizeof magic ||
        std::memcmp(magic, kTraceMagic, sizeof magic) != 0)
        fatal("trace file '%s' is not an ARCC binary trace (missing "
              "ARCCTRC1 magic; convert text traces with "
              "textTraceToBinary)", path_.c_str());

    if (std::fseek(file_, 0, SEEK_END) != 0)
        fatal("cannot seek in trace file '%s'", path_.c_str());
    long size = std::ftell(file_);
    ARCC_ASSERT(size >= static_cast<long>(sizeof kTraceMagic));
    std::uint64_t payload =
        static_cast<std::uint64_t>(size) - sizeof kTraceMagic;
    if (payload % kTraceRecordBytes != 0)
        fatal("trace file '%s' is truncated: %llu payload bytes is "
              "not a whole number of %zu-byte records (%llu trailing "
              "bytes -- a torn final write?); refusing to replay a "
              "partial record",
              path_.c_str(), static_cast<unsigned long long>(payload),
              kTraceRecordBytes,
              static_cast<unsigned long long>(payload %
                                              kTraceRecordBytes));
    records_ = payload / kTraceRecordBytes;
    if (records_ == 0)
        fatal("trace file '%s' contains no accesses", path_.c_str());
    if (std::fseek(file_, sizeof kTraceMagic, SEEK_SET) != 0)
        fatal("cannot seek in trace file '%s'", path_.c_str());

    buf_.resize(chunk_records_ * kTraceRecordBytes);
}

TraceStream::~TraceStream()
{
    if (file_)
        std::fclose(file_);
}

void
TraceStream::refill()
{
    if (cursor_ == records_) {
        if (std::fseek(file_, sizeof kTraceMagic, SEEK_SET) != 0)
            fatal("cannot seek in trace file '%s'", path_.c_str());
        cursor_ = 0;
    }
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_records_, records_ - cursor_));
    std::size_t got =
        std::fread(buf_.data(), kTraceRecordBytes, want, file_);
    if (got != want)
        fatal("trace file '%s' shrank mid-replay: wanted %zu records "
              "at %llu, got %zu",
              path_.c_str(), want,
              static_cast<unsigned long long>(cursor_), got);
    cursor_ += want;
    buf_records_ = want;
    pos_ = 0;
}

CoreWorkload::Access
TraceStream::next()
{
    if (pos_ == buf_records_)
        refill();
    CoreWorkload::Access a =
        decodeRecord(buf_.data() + pos_ * kTraceRecordBytes);
    ++pos_;
    // Lap accounting matches TraceReplay: the lap increments as the
    // final record is returned, not when the wrap is next read.
    if (++in_pass_ == records_) {
        in_pass_ = 0;
        ++laps_;
    }
    return a;
}

std::uint64_t
captureSyntheticTrace(const std::string &benchmark,
                      std::uint64_t memBytes, int coreId,
                      std::uint64_t seed, std::uint64_t instrBudget,
                      const std::string &path, bool binary)
{
    CoreWorkload wl(benchmarkProfile(benchmark), memBytes, coreId,
                    seed);
    std::ofstream out(path, binary ? std::ios::binary
                                   : std::ios::out);
    if (!out)
        fatal("cannot create trace file '%s'", path.c_str());

    // One writer or the other; the capture loop below is the same
    // do/while as recordTraces in system_sim.cc -- the closure
    // depends on the two terminating on the same record.
    std::uint64_t count = 0;
    auto capture = [&](auto &writer) {
        std::uint64_t instrs = 0;
        do {
            CoreWorkload::Access a = wl.next();
            writer.append(a);
            instrs += a.instrGap;
        } while (instrs < instrBudget);
        count = writer.count();
    };
    if (binary) {
        BinaryTraceWriter writer(out);
        capture(writer);
    } else {
        TraceWriter writer(out);
        capture(writer);
    }
    out.flush();
    if (!out)
        fatal("writing trace file '%s' failed (disk full?)",
              path.c_str());
    return count;
}

StreamSpec
traceStreamSpec(const std::string &path, double baseIpc,
                std::size_t chunkRecords)
{
    StreamSpec spec;
    std::size_t slash = path.find_last_of("/\\");
    spec.name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    spec.baseIpc = baseIpc;
    if (isBinaryTraceFile(path)) {
        auto stream =
            std::make_shared<TraceStream>(path, chunkRecords);
        spec.next = [stream]() { return stream->next(); };
        spec.laps = [stream]() { return stream->laps(); };
    } else {
        std::vector<CoreWorkload::Access> accesses = loadTrace(path);
        if (accesses.empty())
            fatal("trace file '%s' contains no accesses",
                  path.c_str());
        auto replay =
            std::make_shared<TraceReplay>(std::move(accesses));
        spec.next = [replay]() { return replay->next(); };
        spec.laps = [replay]() { return replay->laps(); };
    }
    return spec;
}

} // namespace arcc
