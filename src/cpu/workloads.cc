/**
 * @file
 * Benchmark profiles and mix definitions.
 *
 * The numeric profiles are calibrated to the qualitative memory
 * behaviour reported in published SPEC CPU2000/2006 characterisation
 * studies: mcf is a huge-footprint pointer chaser, libquantum / swim /
 * lbm / leslie3d are streaming codes with strong next-line locality,
 * sjeng / calculix / mesa / h264ref are largely cache-resident, and so
 * on.  Absolute IPCs are not the reproduction target -- the normalised
 * deltas of Figures 7.1-7.5 are.
 */

#include "cpu/workloads.hh"

#include <map>

#include "common/logging.hh"
#include "common/units.hh"

namespace arcc
{

namespace
{

std::vector<BenchmarkProfile>
buildProfiles()
{
    // name, baseIpc, apki, footprintMiB, spatial, writeFrac
    return {
        {"mesa", 1.6, 1.7, 4.0, 0.55, 0.35},
        {"leslie3d", 1.1, 12.1, 80.0, 0.85, 0.25},
        {"GemsFDTD", 0.9, 15.4, 128.0, 0.80, 0.25},
        {"fma3d", 1.2, 5.5, 32.0, 0.65, 0.30},
        {"omnetpp", 0.8, 9.9, 96.0, 0.15, 0.30},
        {"soplex", 0.9, 13.8, 64.0, 0.30, 0.25},
        {"apsi", 1.3, 6.6, 48.0, 0.40, 0.30},
        {"sphinx3", 1.0, 13.2, 64.0, 0.45, 0.15},
        {"calculix", 1.7, 2.2, 6.0, 0.50, 0.25},
        {"wupwise", 1.4, 4.4, 40.0, 0.60, 0.25},
        {"lucas", 1.1, 7.7, 64.0, 0.70, 0.25},
        {"gromacs", 1.6, 2.8, 8.0, 0.45, 0.30},
        {"swim", 0.8, 16.5, 96.0, 0.88, 0.35},
        {"sjeng", 1.5, 1.1, 3.0, 0.20, 0.25},
        {"facerec", 1.2, 6.6, 48.0, 0.70, 0.25},
        {"ammp", 1.0, 5.5, 32.0, 0.25, 0.30},
        {"milc", 0.9, 14.3, 128.0, 0.75, 0.30},
        {"mgrid", 1.2, 8.8, 64.0, 0.80, 0.30},
        {"applu", 1.1, 9.9, 80.0, 0.75, 0.30},
        {"mcf2006", 0.5, 24.8, 256.0, 0.12, 0.25},
        {"libquantum", 0.9, 19.2, 128.0, 0.95, 0.20},
        {"astar", 0.9, 6.6, 48.0, 0.18, 0.30},
        {"art110", 0.9, 15.4, 24.0, 0.35, 0.20},
        {"lbm", 0.8, 17.6, 192.0, 0.90, 0.45},
        {"h264ref", 1.5, 2.2, 8.0, 0.55, 0.30},
    };
}

} // anonymous namespace

const std::vector<BenchmarkProfile> &
allBenchmarkProfiles()
{
    static const std::vector<BenchmarkProfile> profiles =
        buildProfiles();
    return profiles;
}

const BenchmarkProfile &
benchmarkProfile(const std::string &name)
{
    // "fma3di" appears in the thesis's Table 7.3; it is a typo for
    // fma3d and is aliased accordingly.
    std::string wanted = name == "fma3di" ? "fma3d" : name;
    for (const auto &p : allBenchmarkProfiles()) {
        if (p.name == wanted)
            return p;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

const std::vector<WorkloadMix> &
table73Mixes()
{
    static const std::vector<WorkloadMix> mixes = {
        {"Mix1",  {"mesa", "leslie3d", "GemsFDTD", "fma3d"}},
        {"Mix2",  {"omnetpp", "soplex", "apsi", "mesa"}},
        {"Mix3",  {"sphinx3", "calculix", "omnetpp", "wupwise"}},
        {"Mix4",  {"lucas", "gromacs", "swim", "fma3d"}},
        {"Mix5",  {"mesa", "swim", "apsi", "sphinx3"}},
        {"Mix6",  {"sjeng", "swim", "facerec", "ammp"}},
        {"Mix7",  {"milc", "GemsFDTD", "leslie3d", "omnetpp"}},
        {"Mix8",  {"facerec", "leslie3d", "ammp", "mgrid"}},
        {"Mix9",  {"applu", "soplex", "mcf2006", "GemsFDTD"}},
        {"Mix10", {"mcf2006", "libquantum", "omnetpp", "astar"}},
        {"Mix11", {"calculix", "swim", "art110", "omnetpp"}},
        {"Mix12", {"lbm", "facerec", "h264ref", "ammp"}},
    };
    return mixes;
}

CoreWorkload::CoreWorkload(const BenchmarkProfile &profile,
                           std::uint64_t mem_bytes, int core_id,
                           std::uint64_t seed)
    : profile_(profile), rng_(seed ^ (0x1234567ULL * (core_id + 1)))
{
    std::uint64_t quarter = mem_bytes / 4;
    regionBase_ = static_cast<std::uint64_t>(core_id) * quarter;
    std::uint64_t fp_bytes = static_cast<std::uint64_t>(
        profile.footprintMiB * static_cast<double>(kMiB));
    if (fp_bytes > quarter)
        fp_bytes = quarter;
    if (fp_bytes < 64 * kLineBytes)
        fp_bytes = 64 * kLineBytes;
    regionLines_ = fp_bytes / kLineBytes;
    lastLine_ = 0;
    meanGap_ = 1000.0 / profile.apki;
}

CoreWorkload::Access
CoreWorkload::next()
{
    Access a;
    if (rng_.chance(profile_.spatial)) {
        lastLine_ = (lastLine_ + 1) % regionLines_;
    } else {
        lastLine_ = rng_.below(regionLines_);
    }
    a.addr = regionBase_ + lastLine_ * kLineBytes;
    a.isWrite = rng_.chance(profile_.writeFrac);
    a.instrGap = rng_.geometric(meanGap_);
    return a;
}

} // namespace arcc
