/**
 * @file
 * Multi-core trace-driven system simulator (the M5 substitute).
 *
 * N cores (4 by default, SystemConfig::cores), a shared LLC (either
 * ARCC design), and the DDR2 memory system are co-simulated in
 * nanoseconds.  The processor model follows Table 7.2 in spirit: a
 * modest 2-wide core whose compute throughput between LLC accesses is
 * the benchmark's base IPC, with a configurable fraction of each
 * memory stall hidden by the out-of-order window.  Performance of a
 * mix is reported as the sum of the per-core IPCs, exactly as the
 * paper reports it.
 *
 * ## The sharded pipeline
 *
 * Since PR 4 the simulator is a decoupled two-plane pipeline built on
 * `SimEngine::reduceShards`, replacing the original serial event
 * loop:
 *
 *  1. **Record** -- each core's LLC access stream is drawn once from
 *     its StreamSpec generator.  The streams are pure per-core
 *     sequences (timing never feeds back into them), which is what
 *     makes the phases separable.
 *  2. **Front-end (serial)** -- the core + LLC event loop runs with a
 *     per-core *estimated* memory latency and emits each miss /
 *     writeback / eviction as a timestamped request into the stream
 *     of the channel group that owns its DRAM coordinates.
 *  3. **Back-end (sharded)** -- each shard owns one ChannelShardPlan
 *     group (a disjoint set of channels; paired 128B sub-lines always
 *     land in one group) and replays its request stream through a
 *     private ChannelSet, interleaving background-scrub traffic when
 *     enabled.  Shards write completions into disjoint slots.
 *  4. **Merge (shard order)** -- per-core stalls are rebuilt from the
 *     actual completions, the channel power partials are folded in
 *     group order, and the measured per-core miss latency seeds the
 *     next front-end pass (SystemConfig::latencyPasses).
 *
 * Shard boundaries depend only on the address map and the upgrade
 * oracle -- never on the thread count -- so the reported result is
 * bit-identical at 1 thread and at 64 (tests/test_determinism.cc
 * enforces this).  The latency feedback makes the decoupled model
 * self-throttling: pass 1 discovers each core's loaded miss latency,
 * pass 2 re-runs the front-end with arrivals spaced accordingly.
 */

#ifndef ARCC_CPU_SYSTEM_SIM_HH
#define ARCC_CPU_SYSTEM_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "cpu/workloads.hh"
#include "dram/mem_controller.hh"

namespace arcc
{

class SimEngine;

/**
 * Decides which pages run in the upgraded chipkill mode.  The decision
 * is page-granular and derived either from a structured device-level
 * fault (Table 7.4 geometry) or from a target upgraded fraction.
 */
class PageUpgradeOracle
{
  public:
    /** Fault scenarios of Table 7.4. */
    enum class Scenario
    {
        None,
        Lane,    ///< both ranks upgraded: 100% of pages.
        Device,  ///< one of the ranks: 1/2.
        Bank,    ///< one bank of one rank: 1/16.
        Column,  ///< half the pages of one bank: 1/32.
        Fraction ///< pseudo-random pages at a given fraction.
    };

    /** No pages upgraded. */
    PageUpgradeOracle() = default;

    /**
     * Structured scenario evaluated against the given address map.
     * @param s      scenario; Fraction must use forFraction instead.
     * @param config memory geometry the fault is embedded in.
     */
    static PageUpgradeOracle forScenario(Scenario s,
                                         const MemoryConfig &config);

    /**
     * Pseudo-random pages upgraded at the given fraction.
     * @param fraction expected fraction of pages upgraded, in [0, 1].
     * @param config   memory geometry.
     */
    static PageUpgradeOracle forFraction(double fraction,
                                         const MemoryConfig &config);

    /** @return true when addr's page operates in upgraded mode. */
    bool upgraded(std::uint64_t addr) const;

    /** @return expected fraction of pages upgraded. */
    double expectedFraction() const { return expected_; }

    /**
     * @return true when *any* page can be upgraded, i.e. paired 128B
     * traffic can occur.  The channel shard plan keys off this: with
     * no paired traffic every channel is its own shard; with paired
     * traffic the channels a pair spans must share a shard.
     */
    bool mayUpgrade() const { return expected_ > 0.0; }

    Scenario scenario() const { return scenario_; }

    /** @return human-readable scenario name. */
    static const char *name(Scenario s);

  private:
    Scenario scenario_ = Scenario::None;
    double expected_ = 0.0;
    double fraction_ = 0.0;
    std::shared_ptr<AddressMap> map_;
};

/**
 * Background scrubbing interleaved with traffic (Section 4.2.2).
 *
 * When enabled, every channel's back-end replay stream carries the
 * paper's test-pattern scrub sweep as real DRAM traffic: each 64B
 * line of the channel is visited once per `periodHours`, and a visit
 * issues `Scrubber::accessesPerLine(testPatterns)` alternating
 * read/write accesses, each self-paced on the previous one's
 * completion (the scrubber keeps at most one request outstanding, so
 * an unsustainably short period degrades to continuous scrubbing
 * rather than an unbounded backlog).  Scrub traffic competes for
 * banks and the data bus exactly like demand traffic, so the
 * reported IPC degradation is *measured* contention, complementing
 * the closed-form `Scrubber::bandwidthFraction` model (the
 * examples/background_scrub.cpp walkthrough compares the two).
 *
 * The injection window is the front-end's *estimated* run end, while
 * SimResult::elapsedNs is the measured one.  At the latency fixed
 * point's convergence the two agree within its tolerance, so the
 * scrub counters and scrub power are consistent with the reported
 * timeline; under `latencyPasses = 1` (open loop, or when a
 * saturated run exhausts the pass budget) the windows can deviate
 * accordingly -- one more reason the iterated default is preferred.
 */
struct BackgroundScrubConfig
{
    bool enabled = false;
    /** One full sweep of every line per this many hours. */
    double periodHours = 24.0;
    /** Run the write-0 / write-1 test patterns (6 accesses per line
     *  instead of 2) -- the paper's scrubber does. */
    bool testPatterns = true;
};

/** Simulation knobs. */
struct SystemConfig
{
    MemoryConfig mem;
    CacheConfig llc;
    ControllerConfig ctrl;
    MapPolicy mapPolicy = MapPolicy::HiPerf;
    bool sectoredLlc = false;
    /**
     * Core count.  Historically the model hard-wired 4 cores (the
     * paper's quad-core machine, and simulateStreams fatally rejected
     * any other stream count); any count >= 1 now works, with 4 still
     * the default.  simulateMix requires the mix to supply exactly
     * this many benchmarks, simulateStreams this many streams.
     */
    int cores = 4;
    /** Instructions each core retires before the run ends. */
    std::uint64_t instrsPerCore = 2'000'000;
    double cpuGhz = 3.0;
    /** Fraction of each memory stall hidden by the OoO window. */
    double stallOverlap = 0.3;
    /**
     * Maximum front-end/back-end latency-feedback passes (>= 1).
     * Pass 1 spaces arrivals by the unloaded DRAM latency; each
     * further pass re-runs the front-end with a damped update toward
     * the per-core miss latency *measured* by the previous back-end
     * replay, and the loop exits early once measurement and estimate
     * agree within 5% -- the reported timeline is then
     * self-consistent (the stalls charged are the stalls the arrival
     * spacing caused).  Lightly loaded runs settle in 2-3 passes;
     * saturated ones use the full budget.  1 is the fastest
     * (open-loop) setting.
     */
    int latencyPasses = 6;
    /** Background scrubbing interleaved with the traffic. */
    BackgroundScrubConfig backgroundScrub;
    std::uint64_t seed = 42;
};

/** Per-core outcome. */
struct CoreResult
{
    std::string benchmark;
    std::uint64_t instrs = 0;
    double ipc = 0.0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    /** Times the core's trace wrapped while covering the instruction
     *  budget (0 for synthetic streams and unwrapped traces).  A high
     *  lap count means the trace is short relative to the budget and
     *  the run is dominated by repetition. */
    std::uint64_t traceLaps = 0;
};

/** Whole-run outcome. */
struct SimResult
{
    std::vector<CoreResult> cores;
    /** Sum of per-core IPCs (the paper's performance metric). */
    double ipcSum = 0.0;
    double elapsedNs = 0.0;
    PowerBreakdown power;
    double avgPowerMw = 0.0;
    LlcStats llcStats;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    /** Background-scrub accesses the channels absorbed (0 when the
     *  BackgroundScrubConfig is disabled). */
    std::uint64_t scrubReads = 0;
    std::uint64_t scrubWrites = 0;
};

/**
 * Run one mix on one configuration.
 *
 * @param mix    exactly config.cores benchmarks.
 * @param config simulation knobs.
 * @param oracle page upgrade decisions.
 * @param engine engine the back-end shards run on; nullptr uses the
 *               global one.  The result is bit-identical at any
 *               thread count.
 */
SimResult simulateMix(const WorkloadMix &mix, const SystemConfig &config,
                      const PageUpgradeOracle &oracle,
                      SimEngine *engine = nullptr);

/** One self-contained simulation job for the batched entry point. */
struct MixJob
{
    WorkloadMix mix;
    SystemConfig config;
    PageUpgradeOracle oracle;
};

/**
 * Run a batch of independent mix simulations across the engine's
 * workers (one job per shard), returning results in job order.  Every
 * job is deterministic given its config, so the batch is bit-identical
 * to running simulateMix in a loop, at any thread count.
 *
 * This is the entry point the bench scenario sweeps use: a figure's
 * whole (mix x scenario) grid is submitted as one batch.
 *
 * @param engine  engine the jobs run on; nullptr uses the global one.
 */
std::vector<SimResult> simulateMixBatch(const std::vector<MixJob> &jobs,
                                        SimEngine *engine = nullptr);

/**
 * One core's access source for simulateStreams: a name (reporting), a
 * generator, and the core's compute throughput between accesses.
 * Captured trace files (cpu/trace.hh) plug in here just as well as the
 * synthetic generators.
 */
struct StreamSpec
{
    std::string name;
    std::function<CoreWorkload::Access()> next;
    double baseIpc = 1.0;
    /**
     * Optional lap counter of the underlying trace (TraceReplay /
     * TraceStream); sampled once the stream has been drawn and
     * surfaced as CoreResult::traceLaps.  Leave empty for synthetic
     * generators.
     */
    std::function<std::uint64_t()> laps;
};

/**
 * The per-core seed spreading simulateMix applies to its run seed.
 * Capture tools that want replay-closure with a live simulateMix run
 * (tests, bench_trace_replay, examples) must derive their per-core
 * generator seeds the same way.
 */
inline std::uint64_t
mixCoreSeed(std::uint64_t seed, int coreId)
{
    return seed + 1000003ULL * static_cast<std::uint64_t>(coreId);
}

/**
 * Wrap one synthetic benchmark generator as a simulateStreams core --
 * the factory simulateMix uses, exposed so trace-driven and synthetic
 * cores can be mixed freely in one run.
 *
 * @param benchmark Table 7.3 profile name (fatal if unknown).
 * @param memBytes  memory capacity the footprint is placed in
 *                  (AddressMap::capacity() of the run's config).
 * @param coreId    places the core's footprint region.
 * @param seed      RNG seed of this core's stream.
 */
StreamSpec syntheticStreamSpec(const std::string &benchmark,
                               std::uint64_t memBytes, int coreId,
                               std::uint64_t seed);

/**
 * Run config.cores arbitrary access streams (synthetic, trace replay,
 * or a mixture) through the sharded system model described in the
 * file header.  simulateMix is this plus the Table 7.3 generators.
 *
 * @param streams exactly config.cores entries; each generator must
 *                keep producing accesses until its core retires
 *                config.instrsPerCore instructions.
 * @param engine  engine the channel shards run on; nullptr uses the
 *                global one.
 */
SimResult simulateStreams(std::vector<StreamSpec> streams,
                          const SystemConfig &config,
                          const PageUpgradeOracle &oracle,
                          SimEngine *engine = nullptr);

} // namespace arcc

#endif // ARCC_CPU_SYSTEM_SIM_HH
