/**
 * @file
 * Quad-core trace-driven system simulator (the M5 substitute).
 *
 * Four cores, a shared LLC (either ARCC design), and the DDR2 memory
 * system are co-simulated event-driven in nanoseconds.  The processor
 * model follows Table 7.2 in spirit: a modest 2-wide core whose compute
 * throughput between LLC accesses is the benchmark's base IPC, with a
 * configurable fraction of each memory stall hidden by the out-of-order
 * window.  Performance of a mix is reported as the sum of the per-core
 * IPCs, exactly as the paper reports it.
 */

#ifndef ARCC_CPU_SYSTEM_SIM_HH
#define ARCC_CPU_SYSTEM_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "cpu/workloads.hh"
#include "dram/mem_controller.hh"

namespace arcc
{

class SimEngine;

/**
 * Decides which pages run in the upgraded chipkill mode.  The decision
 * is page-granular and derived either from a structured device-level
 * fault (Table 7.4 geometry) or from a target upgraded fraction.
 */
class PageUpgradeOracle
{
  public:
    /** Fault scenarios of Table 7.4. */
    enum class Scenario
    {
        None,
        Lane,    ///< both ranks upgraded: 100% of pages.
        Device,  ///< one of the ranks: 1/2.
        Bank,    ///< one bank of one rank: 1/16.
        Column,  ///< half the pages of one bank: 1/32.
        Fraction ///< pseudo-random pages at a given fraction.
    };

    /** No pages upgraded. */
    PageUpgradeOracle() = default;

    /** Structured scenario evaluated against the given address map. */
    static PageUpgradeOracle forScenario(Scenario s,
                                         const MemoryConfig &config);

    /** Pseudo-random pages upgraded at the given fraction. */
    static PageUpgradeOracle forFraction(double fraction,
                                         const MemoryConfig &config);

    /** @return true when addr's page operates in upgraded mode. */
    bool upgraded(std::uint64_t addr) const;

    /** Expected fraction of pages upgraded. */
    double expectedFraction() const { return expected_; }

    Scenario scenario() const { return scenario_; }

    /** Human-readable scenario name. */
    static const char *name(Scenario s);

  private:
    Scenario scenario_ = Scenario::None;
    double expected_ = 0.0;
    double fraction_ = 0.0;
    std::shared_ptr<AddressMap> map_;
};

/** Simulation knobs. */
struct SystemConfig
{
    MemoryConfig mem;
    CacheConfig llc;
    ControllerConfig ctrl;
    MapPolicy mapPolicy = MapPolicy::HiPerf;
    bool sectoredLlc = false;
    /** Instructions each core retires before the run ends. */
    std::uint64_t instrsPerCore = 2'000'000;
    double cpuGhz = 3.0;
    /** Fraction of each memory stall hidden by the OoO window. */
    double stallOverlap = 0.3;
    std::uint64_t seed = 42;
};

/** Per-core outcome. */
struct CoreResult
{
    std::string benchmark;
    std::uint64_t instrs = 0;
    double ipc = 0.0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
};

/** Whole-run outcome. */
struct SimResult
{
    std::vector<CoreResult> cores;
    /** Sum of per-core IPCs (the paper's performance metric). */
    double ipcSum = 0.0;
    double elapsedNs = 0.0;
    PowerBreakdown power;
    double avgPowerMw = 0.0;
    LlcStats llcStats;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
};

/** Run one mix on one configuration. */
SimResult simulateMix(const WorkloadMix &mix, const SystemConfig &config,
                      const PageUpgradeOracle &oracle);

/** One self-contained simulation job for the batched entry point. */
struct MixJob
{
    WorkloadMix mix;
    SystemConfig config;
    PageUpgradeOracle oracle;
};

/**
 * Run a batch of independent mix simulations across the engine's
 * workers (one job per shard), returning results in job order.  Every
 * job is deterministic given its config, so the batch is bit-identical
 * to running simulateMix in a loop, at any thread count.
 *
 * This is the entry point the bench scenario sweeps use: a figure's
 * whole (mix x scenario) grid is submitted as one batch.
 *
 * @param engine  engine the jobs run on; nullptr uses the global one.
 */
std::vector<SimResult> simulateMixBatch(const std::vector<MixJob> &jobs,
                                        SimEngine *engine = nullptr);

/**
 * One core's access source for simulateStreams: a name (reporting), a
 * generator, and the core's compute throughput between accesses.
 * Captured trace files (cpu/trace.hh) plug in here just as well as the
 * synthetic generators.
 */
struct StreamSpec
{
    std::string name;
    std::function<CoreWorkload::Access()> next;
    double baseIpc = 1.0;
};

/**
 * Run four arbitrary access streams (synthetic, trace replay, or a
 * mixture) through the same system model simulateMix uses.
 */
SimResult simulateStreams(std::vector<StreamSpec> streams,
                          const SystemConfig &config,
                          const PageUpgradeOracle &oracle);

} // namespace arcc

#endif // ARCC_CPU_SYSTEM_SIM_HH
