/**
 * @file
 * Synthetic SPEC-like workload generators and the 12 mixes of
 * Table 7.3.
 *
 * The paper drives its memory system with quad-core multiprogrammed
 * SPEC workloads captured under the M5 full-system simulator.  Neither
 * M5 traces nor SPEC binaries are available here, so each benchmark is
 * substituted by a *statistical twin*: a stream generator parameterised
 * by the memory-behaviour statistics that Figures 7.1-7.5 actually
 * depend on --
 *
 *  - base IPC      (compute throughput between LLC accesses),
 *  - APKI          (LLC accesses per kilo-instruction),
 *  - footprint     (working set; LLC miss rate emerges from it),
 *  - spatial       (probability the next access touches the adjacent
 *                   64B line -- this is what makes an upgraded 128B
 *                   fetch act as a useful prefetch or as pure waste),
 *  - write fraction (dirty-writeback traffic).
 *
 * Parameter values encode the well-known qualitative behaviour of each
 * benchmark (e.g. mcf = huge footprint + pointer chasing, libquantum =
 * extreme streaming, sjeng = cache-resident).  DESIGN.md section 4
 * documents the substitution argument.
 */

#ifndef ARCC_CPU_WORKLOADS_HH
#define ARCC_CPU_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace arcc
{

/** Statistical profile of one benchmark. */
struct BenchmarkProfile
{
    std::string name;
    /** IPC when every LLC access hits (2-wide core, Table 7.2). */
    double baseIpc = 1.2;
    /** LLC accesses per kilo-instruction. */
    double apki = 10.0;
    /** Working-set size in MiB (drives the LLC miss rate). */
    double footprintMiB = 8.0;
    /** P(next LLC access is to the adjacent 64B line). */
    double spatial = 0.4;
    /** Fraction of LLC accesses that are stores. */
    double writeFrac = 0.3;
};

/** Look up a benchmark profile by SPEC name; fatal if unknown. */
const BenchmarkProfile &benchmarkProfile(const std::string &name);

/** All profiles (for tests and tooling). */
const std::vector<BenchmarkProfile> &allBenchmarkProfiles();

/** One quad-core mix of Table 7.3. */
struct WorkloadMix
{
    std::string name;
    std::vector<std::string> benchmarks; // 4 entries
};

/** The 12 mixes of Table 7.3. */
const std::vector<WorkloadMix> &table73Mixes();

/**
 * Stream generator: produces the LLC access stream of one core running
 * one benchmark.
 */
class CoreWorkload
{
  public:
    /** One LLC access. */
    struct Access
    {
        std::uint64_t addr = 0;
        bool isWrite = false;
        /** Instructions retired since the previous LLC access. */
        std::uint64_t instrGap = 0;
    };

    /**
     * @param profile    the benchmark to imitate.
     * @param mem_bytes  memory capacity; footprints are placed inside.
     * @param core_id    places each core's footprint in a distinct
     *                   region, as separate processes would be.
     * @param seed       RNG seed (deterministic streams).
     */
    CoreWorkload(const BenchmarkProfile &profile,
                 std::uint64_t mem_bytes, int core_id,
                 std::uint64_t seed);

    /** Generate the next access. */
    Access next();

    const BenchmarkProfile &profile() const { return profile_; }

  private:
    BenchmarkProfile profile_;
    Rng rng_;
    std::uint64_t regionBase_;
    std::uint64_t regionLines_;
    std::uint64_t lastLine_;
    double meanGap_;
};

} // namespace arcc

#endif // ARCC_CPU_WORKLOADS_HH
