/**
 * @file
 * Memory-access trace capture and replay.
 *
 * The synthetic generators in workloads.hh are statistical stand-ins
 * for SPEC (DESIGN.md section 4).  Users who *do* have real traces --
 * from a PIN tool, gem5, or a production sampler -- can feed them to
 * the same simulator through the StreamSpec factories below and
 * compare against the synthetic twins, or capture the twins' streams
 * for inspection with TraceWriter / BinaryTraceWriter.
 *
 * Two interchangeable on-disk formats:
 *
 *  - **Text** (human-editable): one access per line,
 *
 *        <hex-address> <R|W> <instructions-since-previous-access>
 *
 *    '#'-prefixed lines (leading whitespace allowed) are comments;
 *    blank lines, trailing whitespace, and CRLF endings are
 *    tolerated.  parseTrace / loadTrace slurp it into memory for
 *    TraceReplay.
 *
 *  - **Binary** (production scale): an 8-byte magic ("ARCCTRC1")
 *    followed by fixed 16-byte little-endian records -- bytes 0-7 the
 *    address, bytes 8-15 the instruction gap with the top bit set for
 *    writes.  TraceStream replays it through a bounded chunk buffer,
 *    so resident memory is O(chunk) no matter how long the trace is.
 *
 * textTraceToBinary / binaryTraceToText convert between the two, one
 * access at a time (also O(chunk)).  traceStreamSpec() wraps either
 * format as a simulateStreams core, auto-detected by the magic.
 */

#ifndef ARCC_CPU_TRACE_HH
#define ARCC_CPU_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/system_sim.hh"
#include "cpu/workloads.hh"

namespace arcc
{

/** Write accesses to a text trace stream. */
class TraceWriter
{
  public:
    /** @param out destination stream (not owned). */
    explicit TraceWriter(std::ostream &out);

    /** Append one access. */
    void append(const CoreWorkload::Access &access);

    /** Accesses written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::ostream &out_;
    std::uint64_t count_ = 0;
};

// --- binary format -----------------------------------------------------

/** Magic bytes opening a binary trace ("ARCCTRC1"). */
inline constexpr char kTraceMagic[8] = {'A', 'R', 'C', 'C',
                                        'T', 'R', 'C', '1'};
/** Bytes per binary trace record. */
inline constexpr std::size_t kTraceRecordBytes = 16;

/**
 * Write accesses to a binary trace stream.  The format carries no
 * record count -- the payload length defines it -- so the writer
 * needs no finalisation step and works on non-seekable streams.
 */
class BinaryTraceWriter
{
  public:
    /** @param out destination stream (not owned); magic is written
     *  immediately. */
    explicit BinaryTraceWriter(std::ostream &out);

    /** Append one access; fatal() if the instruction gap does not fit
     *  the record's 63-bit field (never a realistic trace). */
    void append(const CoreWorkload::Access &access);

    /** Accesses written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::ostream &out_;
    std::uint64_t count_ = 0;
};

/**
 * Parse a text trace stream into memory.
 * @throws nothing; calls fatal() on malformed input (user error).
 */
std::vector<CoreWorkload::Access> parseTrace(std::istream &in);

/** Load a text trace file; fatal() if it cannot be opened or parsed. */
std::vector<CoreWorkload::Access> loadTrace(const std::string &path);

/**
 * Convert a text trace to the binary format, one access at a time
 * (O(1) resident memory).
 * @return records converted.
 */
std::uint64_t textTraceToBinary(std::istream &text, std::ostream &bin);

/**
 * Convert a binary trace back to canonical text (the exact bytes
 * TraceWriter would emit for the same accesses), one access at a
 * time.  fatal() on a bad magic or a truncated record.
 * @return records converted.
 */
std::uint64_t binaryTraceToText(std::istream &bin, std::ostream &text);

/** File-path convenience wrapper over textTraceToBinary. */
std::uint64_t textTraceFileToBinary(const std::string &text_path,
                                    const std::string &bin_path);

/** File-path convenience wrapper over binaryTraceToText. */
std::uint64_t binaryTraceFileToText(const std::string &bin_path,
                                    const std::string &text_path);

/** @return true when the file starts with the binary trace magic. */
bool isBinaryTraceFile(const std::string &path);

/**
 * Replays a recorded trace as an access stream, looping when the
 * simulator needs more accesses than the trace holds.  The whole
 * trace is resident; use TraceStream for production-scale files.
 */
class TraceReplay
{
  public:
    explicit TraceReplay(std::vector<CoreWorkload::Access> accesses);

    /** Next access (wraps around at the end of the trace). */
    CoreWorkload::Access next();

    std::size_t size() const { return accesses_.size(); }
    /** Number of times the trace has wrapped. */
    std::uint64_t laps() const { return laps_; }

  private:
    std::vector<CoreWorkload::Access> accesses_;
    std::size_t pos_ = 0;
    std::uint64_t laps_ = 0;
};

/**
 * Streaming replay of a *binary* trace file: records are decoded out
 * of a fixed chunk buffer that is refilled from disk as the replay
 * advances, so resident memory is O(chunkRecords) regardless of the
 * file length (tests/test_alloc_free.cc enforces the bound).  Like
 * TraceReplay it wraps around at the end of the trace and counts
 * laps.
 *
 * fatal() on open failure, a bad magic, a truncated trailing record,
 * an empty trace, or a file that shrinks mid-replay (user error in
 * all cases).
 */
class TraceStream
{
  public:
    /** Default chunk: 4096 records = 64 KiB resident. */
    static constexpr std::size_t kDefaultChunkRecords = 4096;

    explicit TraceStream(std::string path,
                         std::size_t chunkRecords = kDefaultChunkRecords);
    ~TraceStream();

    TraceStream(const TraceStream &) = delete;
    TraceStream &operator=(const TraceStream &) = delete;

    /** Next access (wraps around at the end of the trace). */
    CoreWorkload::Access next();

    /** Records in the file (one lap). */
    std::uint64_t records() const { return records_; }
    /** Number of times the trace has wrapped. */
    std::uint64_t laps() const { return laps_; }
    /** Records the chunk buffer holds. */
    std::size_t chunkRecords() const { return chunk_records_; }

  private:
    void refill();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::size_t chunk_records_;
    std::vector<std::uint8_t> buf_;
    std::size_t buf_records_ = 0; ///< valid records in buf_.
    std::size_t pos_ = 0;         ///< next record index in buf_.
    std::uint64_t records_ = 0;
    std::uint64_t cursor_ = 0; ///< next file record index to read.
    std::uint64_t in_pass_ = 0; ///< records returned this lap.
    std::uint64_t laps_ = 0;
};

// --- simulateStreams plumbing ------------------------------------------

/**
 * Wrap a trace file as one simulateStreams core.  Binary traces
 * (detected by the magic) replay through a TraceStream at O(chunk)
 * memory; text traces are loaded whole into a TraceReplay.  The
 * spec's name is the file's basename and its lap counter feeds
 * CoreResult::traceLaps.  fatal() on an unreadable or empty trace.
 *
 * @param path         trace file, text or binary.
 * @param baseIpc      the traced core's compute throughput between
 *                     accesses (text traces do not carry it).
 * @param chunkRecords TraceStream chunk size for binary traces.
 */
StreamSpec
traceStreamSpec(const std::string &path, double baseIpc,
                std::size_t chunkRecords =
                    TraceStream::kDefaultChunkRecords);

/**
 * Capture one synthetic benchmark stream into a trace file covering
 * `instrBudget` instructions.  The capture loop draws *exactly* the
 * access sequence simulateStreams' record phase consumes for the same
 * (benchmark, memBytes, coreId, seed, budget), so replaying the file
 * reproduces the live generator's SimResult bit for bit -- the
 * capture/replay closure (tests/test_property_trace.cc) -- and the
 * replay wraps exactly once per budget covered
 * (CoreResult::traceLaps).
 *
 * @param binary  true writes the ARCCTRC1 binary format, false the
 *                text format.
 * @return records written.
 */
std::uint64_t captureSyntheticTrace(const std::string &benchmark,
                                    std::uint64_t memBytes, int coreId,
                                    std::uint64_t seed,
                                    std::uint64_t instrBudget,
                                    const std::string &path,
                                    bool binary = true);

} // namespace arcc

#endif // ARCC_CPU_TRACE_HH
