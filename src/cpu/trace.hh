/**
 * @file
 * Memory-access trace capture and replay.
 *
 * The synthetic generators in workloads.hh are statistical stand-ins
 * for SPEC (DESIGN.md section 4).  Users who *do* have real traces --
 * from a PIN tool, gem5, or a production sampler -- can feed them to
 * the same simulator through TraceReplay and compare against the
 * synthetic twins, or capture the twins' streams for inspection with
 * TraceWriter.
 *
 * Format: plain text, one access per line,
 *
 *     <hex-address> <R|W> <instructions-since-previous-access>
 *
 * '#'-prefixed lines are comments.
 */

#ifndef ARCC_CPU_TRACE_HH
#define ARCC_CPU_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/workloads.hh"

namespace arcc
{

/** Write accesses to a trace stream. */
class TraceWriter
{
  public:
    /** @param out destination stream (not owned). */
    explicit TraceWriter(std::ostream &out);

    /** Append one access. */
    void append(const CoreWorkload::Access &access);

    /** Accesses written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::ostream &out_;
    std::uint64_t count_ = 0;
};

/**
 * Parse a trace stream into memory.
 * @throws nothing; calls fatal() on malformed input (user error).
 */
std::vector<CoreWorkload::Access> parseTrace(std::istream &in);

/** Load a trace file; fatal() if it cannot be opened or parsed. */
std::vector<CoreWorkload::Access> loadTrace(const std::string &path);

/**
 * Replays a recorded trace as an access stream, looping when the
 * simulator needs more accesses than the trace holds.
 */
class TraceReplay
{
  public:
    explicit TraceReplay(std::vector<CoreWorkload::Access> accesses);

    /** Next access (wraps around at the end of the trace). */
    CoreWorkload::Access next();

    std::size_t size() const { return accesses_.size(); }
    /** Number of times the trace has wrapped. */
    std::uint64_t laps() const { return laps_; }

  private:
    std::vector<CoreWorkload::Access> accesses_;
    std::size_t pos_ = 0;
    std::uint64_t laps_ = 0;
};

} // namespace arcc

#endif // ARCC_CPU_TRACE_HH
