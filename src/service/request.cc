/**
 * @file
 * Request parsing, validation, canonicalization, and hashing.
 */

#include "service/request.hh"

#include <algorithm>
#include <cstdio>

#include "common/crc32c.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "cpu/workloads.hh"

namespace arcc
{

namespace
{

/** Request-size policy: a shared daemon must bound what one request
 *  may cost.  Out-of-policy requests are rejected at parse time with
 *  a message naming the limit, never truncated to it. */
constexpr std::uint64_t kMaxInstrs = 1ULL << 32;
constexpr std::uint64_t kMaxChannels = 1ULL << 22;
constexpr std::size_t kTraceCores = 4;

const char *
kindName(ServiceRequestKind k)
{
    switch (k) {
      case ServiceRequestKind::Mix: return "mix";
      case ServiceRequestKind::Trace: return "trace";
      case ServiceRequestKind::Campaign: return "campaign";
      case ServiceRequestKind::Stats: return "stats";
      case ServiceRequestKind::Shutdown: return "shutdown";
    }
    panic("unhandled ServiceRequestKind %d", static_cast<int>(k));
}

bool
knownConfig(const std::string &name)
{
    return name == "baseline" || name == "arcc" || name == "arcc4" ||
           name == "arcc8";
}

bool
knownFault(const std::string &name)
{
    return name == "none" || name == "lane" || name == "device" ||
           name == "bank" || name == "column";
}

bool
knownMix(const std::string &name)
{
    for (const WorkloadMix &m : table73Mixes())
        if (m.name == name)
            return true;
    return false;
}

/** CRC-32C of a file's bytes; false when it cannot be read. */
bool
fileCrc32c(const std::string &path, std::uint32_t &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    Crc32c crc;
    std::uint8_t buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        crc.update({buf, n});
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    out = crc.value();
    return ok;
}

/** Typed member extraction; each setter fails with the key name. */
struct Fields
{
    const json::Value &doc;
    std::string &error;

    bool
    u64(const char *key, std::uint64_t &out)
    {
        const json::Value *v = doc.find(key);
        if (!v)
            return true;
        if (v->type != json::Value::Type::Number || !v->isUint) {
            error = std::string("\"") + key +
                    "\" must be an unsigned integer";
            return false;
        }
        out = v->uintValue;
        return true;
    }

    bool
    num(const char *key, double &out)
    {
        const json::Value *v = doc.find(key);
        if (!v)
            return true;
        if (v->type != json::Value::Type::Number) {
            error = std::string("\"") + key + "\" must be a number";
            return false;
        }
        out = v->number;
        return true;
    }

    bool
    str(const char *key, std::string &out)
    {
        const json::Value *v = doc.find(key);
        if (!v)
            return true;
        if (v->type != json::Value::Type::String) {
            error = std::string("\"") + key + "\" must be a string";
            return false;
        }
        out = v->str;
        return true;
    }

    bool
    boolean(const char *key, bool &out)
    {
        const json::Value *v = doc.find(key);
        if (!v)
            return true;
        if (v->type != json::Value::Type::Bool) {
            error = std::string("\"") + key + "\" must be a boolean";
            return false;
        }
        out = v->boolean;
        return true;
    }
};

/** Reject any member outside the kind's schema: a typo'd key must not
 *  silently fall back to a default (the wire-level analogue of the
 *  silent-zero CLI holes). */
bool
onlyKeys(const json::Value &doc, std::string &error,
         std::initializer_list<const char *> allowed)
{
    for (const auto &[key, v] : doc.object) {
        bool ok = false;
        for (const char *a : allowed)
            if (key == a)
                ok = true;
        if (!ok) {
            error = "unknown key \"" + key + "\" for this kind";
            return false;
        }
    }
    return true;
}

std::uint64_t
foldU64(std::uint64_t h, std::uint64_t v)
{
    return Rng::mix64(h ^ v);
}

} // anonymous namespace

bool
ServiceRequest::parse(const std::string &line, ServiceRequest &out,
                      std::string &error)
{
    json::Value doc;
    if (!json::parse(line, doc, error))
        return false;
    if (doc.type != json::Value::Type::Object) {
        error = "request must be a JSON object";
        return false;
    }
    const json::Value *kindV = doc.find("kind");
    if (!kindV || kindV->type != json::Value::Type::String) {
        error = "request needs a string \"kind\"";
        return false;
    }

    out = ServiceRequest{};
    const std::string &kind = kindV->str;
    Fields f{doc, error};

    if (kind == "stats" || kind == "shutdown") {
        out.kind = kind == "stats" ? ServiceRequestKind::Stats
                                   : ServiceRequestKind::Shutdown;
        return onlyKeys(doc, error, {"kind"});
    }

    if (kind == "mix" || kind == "trace") {
        out.kind = kind == "mix" ? ServiceRequestKind::Mix
                                 : ServiceRequestKind::Trace;
        if (kind == "mix") {
            if (!onlyKeys(doc, error,
                          {"kind", "config", "mix", "fault",
                           "fraction", "instrs", "sectored", "seed"}))
                return false;
            if (!f.str("mix", out.mix))
                return false;
        } else {
            if (!onlyKeys(doc, error,
                          {"kind", "config", "fault", "fraction",
                           "instrs", "sectored", "seed", "paths",
                           "trace_crcs"}))
                return false;
        }
        if (!f.str("config", out.config) ||
            !f.str("fault", out.fault) ||
            !f.num("fraction", out.fraction) ||
            !f.u64("instrs", out.instrs) ||
            !f.boolean("sectored", out.sectored) ||
            !f.u64("seed", out.seed))
            return false;

        if (!knownConfig(out.config)) {
            error = "unknown config \"" + out.config +
                    "\" (baseline|arcc|arcc4|arcc8)";
            return false;
        }
        if (!knownFault(out.fault)) {
            error = "unknown fault \"" + out.fault +
                    "\" (none|lane|device|bank|column)";
            return false;
        }
        if (out.kind == ServiceRequestKind::Mix &&
            !knownMix(out.mix)) {
            error = "unknown mix \"" + out.mix + "\" (Mix1..Mix12)";
            return false;
        }
        if (out.fraction != -1.0 &&
            (out.fraction < 0.0 || out.fraction > 1.0)) {
            error = "\"fraction\" must be in [0, 1] (or -1 = unset)";
            return false;
        }
        if (out.fraction >= 0.0 && out.fault != "none") {
            error = "\"fraction\" and \"fault\" are mutually "
                    "exclusive";
            return false;
        }
        if (out.instrs < 1 || out.instrs > kMaxInstrs) {
            error = "\"instrs\" must be in [1, 2^32]";
            return false;
        }

        if (out.kind == ServiceRequestKind::Trace) {
            const json::Value *paths = doc.find("paths");
            if (!paths ||
                paths->type != json::Value::Type::Array ||
                paths->array.size() != kTraceCores) {
                error = "\"paths\" must be an array of exactly 4 "
                        "trace files (one per core)";
                return false;
            }
            for (const json::Value &p : paths->array) {
                if (p.type != json::Value::Type::String) {
                    error = "\"paths\" entries must be strings";
                    return false;
                }
                std::uint32_t crc = 0;
                if (!fileCrc32c(p.str, crc)) {
                    error = "cannot read trace file \"" + p.str +
                            "\"";
                    return false;
                }
                out.tracePaths.push_back(p.str);
                out.traceCrcs.push_back(crc);
            }
            // Optional client assertion of content identity: when
            // supplied, the CRCs must match what is on disk now --
            // the canonical round-trip, and a client's way of
            // detecting that a file changed under it.
            if (const json::Value *crcs = doc.find("trace_crcs")) {
                if (crcs->type != json::Value::Type::Array ||
                    crcs->array.size() != kTraceCores) {
                    error = "\"trace_crcs\" must be an array of 4 "
                            "integers";
                    return false;
                }
                for (std::size_t i = 0; i < kTraceCores; ++i) {
                    const json::Value &c = crcs->array[i];
                    if (c.type != json::Value::Type::Number ||
                        !c.isUint) {
                        error = "\"trace_crcs\" entries must be "
                                "unsigned integers";
                        return false;
                    }
                    if (c.uintValue != out.traceCrcs[i]) {
                        error = "trace file \"" + out.tracePaths[i] +
                                "\" does not match the supplied "
                                "trace_crcs entry (file changed?)";
                        return false;
                    }
                }
            }
        }
        return true;
    }

    if (kind == "campaign") {
        out.kind = ServiceRequestKind::Campaign;
        if (!onlyKeys(doc, error,
                      {"kind", "channels", "years", "boost", "seed",
                       "scrub_hours", "group_devices", "epoch_trials",
                       "shard_trials"}))
            return false;
        CampaignSpec &spec = out.campaign;
        std::uint64_t group = static_cast<std::uint64_t>(
            spec.devicesPerGroup);
        if (!f.u64("channels", spec.channels) ||
            !f.num("years", spec.years) ||
            !f.num("boost", spec.rateBoost) ||
            !f.u64("seed", spec.seed) ||
            !f.num("scrub_hours", spec.scrubHours) ||
            !f.u64("group_devices", group) ||
            !f.u64("epoch_trials", spec.epochTrials) ||
            !f.u64("shard_trials", spec.shardTrials))
            return false;

        if (spec.channels < 1 || spec.channels > kMaxChannels) {
            error = "\"channels\" must be in [1, 2^22]";
            return false;
        }
        if (!(spec.years > 0.0) || spec.years > 1000.0) {
            error = "\"years\" must be in (0, 1000]";
            return false;
        }
        if (!(spec.rateBoost > 0.0) || spec.rateBoost > 1e9) {
            error = "\"boost\" must be in (0, 1e9]";
            return false;
        }
        if (!(spec.scrubHours > 0.0) || spec.scrubHours > 1e6) {
            error = "\"scrub_hours\" must be in (0, 1e6]";
            return false;
        }
        const int devices = spec.geom.totalDevices();
        if (group < 1 ||
            group > static_cast<std::uint64_t>(devices) ||
            static_cast<std::uint64_t>(devices) % group != 0) {
            error = "\"group_devices\" must divide the domain's " +
                    std::to_string(devices) + " devices";
            return false;
        }
        spec.devicesPerGroup = static_cast<int>(group);
        if (spec.epochTrials < 1 ||
            spec.epochTrials > kMaxChannels) {
            error = "\"epoch_trials\" must be in [1, 2^22]";
            return false;
        }
        if (spec.shardTrials < 1 ||
            spec.shardTrials > spec.epochTrials) {
            error = "\"shard_trials\" must be in [1, epoch_trials]";
            return false;
        }
        return true;
    }

    error = "unknown kind \"" + kind +
            "\" (mix|trace|campaign|stats|shutdown)";
    return false;
}

std::string
ServiceRequest::canonical() const
{
    std::string out = "{\"kind\":\"";
    out += kindName(kind);
    out += "\"";
    switch (kind) {
      case ServiceRequestKind::Stats:
      case ServiceRequestKind::Shutdown:
        break;
      case ServiceRequestKind::Mix:
      case ServiceRequestKind::Trace:
        out += ",\"config\":" + json::quote(config);
        out += ",\"fault\":" + json::quote(fault);
        out += ",\"fraction\":" + json::number(fraction);
        out += ",\"instrs\":" + std::to_string(instrs);
        if (kind == ServiceRequestKind::Mix)
            out += ",\"mix\":" + json::quote(mix);
        out += std::string(",\"sectored\":") +
               (sectored ? "true" : "false");
        out += ",\"seed\":" + std::to_string(seed);
        if (kind == ServiceRequestKind::Trace) {
            out += ",\"paths\":[";
            for (std::size_t i = 0; i < tracePaths.size(); ++i) {
                if (i)
                    out += ",";
                out += json::quote(tracePaths[i]);
            }
            out += "],\"trace_crcs\":[";
            for (std::size_t i = 0; i < traceCrcs.size(); ++i) {
                if (i)
                    out += ",";
                out += std::to_string(traceCrcs[i]);
            }
            out += "]";
        }
        break;
      case ServiceRequestKind::Campaign:
        out += ",\"boost\":" + json::number(campaign.rateBoost);
        out += ",\"channels\":" + std::to_string(campaign.channels);
        out += ",\"epoch_trials\":" +
               std::to_string(campaign.epochTrials);
        out += ",\"group_devices\":" +
               std::to_string(campaign.devicesPerGroup);
        out += ",\"scrub_hours\":" + json::number(campaign.scrubHours);
        out += ",\"seed\":" + std::to_string(campaign.seed);
        out += ",\"shard_trials\":" +
               std::to_string(campaign.shardTrials);
        out += ",\"years\":" + json::number(campaign.years);
        break;
    }
    out += "}";
    return out;
}

std::uint64_t
ServiceRequest::hash() const
{
    const std::string c = canonical();
    std::uint64_t h = foldU64(0x41524343ULL, c.size()); // "ARCC"
    for (const char ch : c)
        h = foldU64(h, static_cast<std::uint8_t>(ch));
    // Campaign identity also covers everything the spec itself hashes
    // (geometry, FIT rates, sketch shapes) -- the existing
    // configHash() machinery.
    if (kind == ServiceRequestKind::Campaign)
        h = foldU64(h, campaign.configHash());
    return h;
}

std::vector<ServiceRequest>
standardServiceRequests(std::uint64_t instrs,
                        std::uint64_t campaignChannels)
{
    ARCC_ASSERT(instrs >= 1 && campaignChannels >= 1);
    std::vector<ServiceRequest> out;

    // Eight synthetic mixes: Mix1..Mix4 under clean and device-fault
    // ARCC, ...
    for (const char *mix : {"Mix1", "Mix2", "Mix3", "Mix4"}) {
        for (const char *fault : {"none", "device"}) {
            ServiceRequest r;
            r.kind = ServiceRequestKind::Mix;
            r.mix = mix;
            r.fault = fault;
            r.instrs = instrs;
            out.push_back(r);
        }
    }
    // ... the commercial baseline, and a fractional upgrade.
    {
        ServiceRequest r;
        r.kind = ServiceRequestKind::Mix;
        r.config = "baseline";
        r.instrs = instrs;
        out.push_back(r);
        r = ServiceRequest{};
        r.kind = ServiceRequestKind::Mix;
        r.mix = "Mix2";
        r.fraction = 0.25;
        r.instrs = instrs;
        out.push_back(r);
    }
    // Three campaign slices: two seeds and a double-size fleet.
    for (const auto &[channels, seed] :
         std::initializer_list<std::pair<std::uint64_t,
                                         std::uint64_t>>{
             {campaignChannels, 1},
             {campaignChannels, 2},
             {campaignChannels * 2, 1}}) {
        ServiceRequest r;
        r.kind = ServiceRequestKind::Campaign;
        r.campaign.channels = channels;
        r.campaign.seed = seed;
        r.campaign.epochTrials = 128;
        r.campaign.shardTrials = 64;
        out.push_back(r);
    }
    return out;
}

} // namespace arcc
