/**
 * @file
 * Service requests: the typed, canonicalized unit of work arccd
 * serves.
 *
 * A request arrives as one line of JSON naming a simulation the
 * client wants run: a synthetic Table 7.3 mix, a captured-trace
 * replay, or a campaign slice.  Parsing is strict -- unknown keys,
 * duplicate keys, wrong types, negative values for unsigned fields,
 * and out-of-policy sizes are all rejected with a message instead of
 * being coerced (the same silent-zero holes the CLI parsers were
 * hardened against, closed at the wire).
 *
 * ## Canonical form and the cache key
 *
 * canonical() re-serializes the *typed* request with every default
 * materialized, keys in one fixed order, and doubles in the bench
 * jsonRow "%.17g" rendering.  Two spellings of the same request --
 * reordered keys, extra whitespace, "5.0" vs "5" -- canonicalize to
 * the same bytes; two different requests never do.  The canonical
 * string is the memoization key (so cache correctness never rests on
 * a 64-bit hash not colliding), and hash() folds it through the same
 * splitmix64 chain as CampaignSpec::configHash() -- which is itself
 * mixed in for campaign requests, so everything the spec hashes
 * (geometry, rates, sketch shapes) is part of request identity.
 *
 * Trace requests fold the CRC-32C of every trace file's *content*
 * into the canonical form: memoizing by path alone would serve stale
 * results after the file changed.
 *
 * tests/test_property_service.cc fuzzes near-identical request pairs
 * against both guarantees (differing specs never share a canonical
 * hash; hash-equal requests byte-compare equal responses).
 */

#ifndef ARCC_SERVICE_REQUEST_HH
#define ARCC_SERVICE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hh"

namespace arcc
{

/** What one request asks the daemon to do. */
enum class ServiceRequestKind
{
    /** Synthetic Table 7.3 mix through the system simulator. */
    Mix,
    /** Captured-trace replay through the system simulator. */
    Trace,
    /** A reliability campaign slice (campaign/campaign.hh). */
    Campaign,
    /** Cache / scheduler counters (not memoized, not deterministic). */
    Stats,
    /** Ask the daemon to exit after answering. */
    Shutdown,
};

/** One parsed and validated request. */
struct ServiceRequest
{
    ServiceRequestKind kind = ServiceRequestKind::Mix;

    // -- Mix / Trace: system-simulator knobs. -------------------------
    /** Memory configuration: baseline | arcc | arcc4 | arcc8. */
    std::string config = "arcc";
    std::string mix = "Mix1";
    /** none | lane | device | bank | column (ignored when fraction
     *  is set). */
    std::string fault = "none";
    /** Upgraded-page fraction in [0, 1]; -1 = use `fault`. */
    double fraction = -1.0;
    std::uint64_t instrs = 1'000'000;
    std::uint64_t seed = 42;
    bool sectored = false;
    /** Trace: exactly 4 files (text or ARCCTRC1), one per core. */
    std::vector<std::string> tracePaths;
    /** CRC-32C of each trace file's bytes, filled at parse time. */
    std::vector<std::uint32_t> traceCrcs;

    // -- Campaign. ----------------------------------------------------
    /** The campaign slice; only the wire-exposed fields differ from
     *  the defaults (channels, years, boost, seed, scrub_hours,
     *  group_devices, epoch_trials, shard_trials). */
    CampaignSpec campaign;

    /**
     * Parse and validate one request line.
     * @return true on success; false sets `error` (the daemon turns
     *         it into an error response -- never fatal()).
     */
    static bool parse(const std::string &line, ServiceRequest &out,
                      std::string &error);

    /**
     * The canonical serialization: fixed key order, defaults
     * materialized, "%.17g" doubles.  A canonical string is itself a
     * valid request line and re-parses to an identical request.
     */
    std::string canonical() const;

    /** Stable 64-bit digest of the canonical form (the wire
     *  "request_hash"); campaign requests also fold
     *  CampaignSpec::configHash(). */
    std::uint64_t hash() const;
};

/**
 * The deterministic mixed request set the stress tooling shares:
 * Table 7.3 mixes across configs and fault scenarios plus small
 * campaign slices.  arcc_load fires it concurrently from every
 * client, bench_service times it cold vs cached, and the determinism
 * test pins its responses across thread counts -- one set, three
 * harnesses, so the goldens all talk about the same bytes.
 *
 * @param instrs           per-core instruction budget of the sim
 *                         requests.
 * @param campaignChannels fleet size of the campaign requests.
 */
std::vector<ServiceRequest>
standardServiceRequests(std::uint64_t instrs,
                        std::uint64_t campaignChannels);

} // namespace arcc

#endif // ARCC_SERVICE_REQUEST_HH
