/**
 * @file
 * SimService: the daemon's scheduler + memoizer, transport-free.
 *
 * One SimService owns the response cache, the singleflight table, and
 * a small pool of evaluation workers in front of a shared SimEngine.
 * The socket server (service/server.hh) is a thin framing layer over
 * `submit`; tests and bench_service call `evaluate` directly -- same
 * path, no sockets.
 *
 * ## Fair queueing
 *
 * Every client gets its own FIFO; workers pick the next job
 * round-robin over the non-empty FIFOs.  A client that pipelines a
 * thousand requests therefore delays another client by at most one
 * in-flight request per worker, while each client's own requests
 * still evaluate in submission order whenever the round-robin returns
 * to it.  In-flight work is bounded by the worker count; everything
 * else waits in its client's FIFO.
 *
 * ## Memoization and singleflight
 *
 * Sim responses are memoized in a ResponseCache keyed by the
 * canonical request string.  Identical requests *in flight* are
 * coalesced: the first computes, later arrivals park their callbacks
 * on the flight and are answered from the one computation (counted as
 * `coalesced`, and their worker moves on instead of blocking).
 *
 * ## Determinism contract
 *
 * The response body of a mix / trace / campaign request is a pure
 * function of its canonical form: no timestamps, no thread counts, no
 * cached-or-not marker.  Cold, cached, and coalesced evaluations are
 * byte-identical, at any engine width -- the property
 * tests/test_service_determinism.cc pins.  Cache effectiveness is
 * observable only through the separate "stats" request, which is
 * never memoized and never part of a determinism digest.
 */

#ifndef ARCC_SERVICE_SIM_SERVICE_HH
#define ARCC_SERVICE_SIM_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hh"
#include "service/request.hh"

namespace arcc
{

class SimEngine;

/** One answered request. */
struct ServiceResponse
{
    /** The response line (no trailing newline). */
    std::string body;
    /** True when the request asked the daemon to exit; the transport
     *  acts on it after delivering the body. */
    bool shutdown = false;
};

/** Scheduler counters, sampled atomically under the service locks. */
struct ServiceStats
{
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::uint64_t cacheEntries = 0;
    std::uint64_t cacheBytes = 0;
};

/** The memoizing, fair-queued evaluation core of arccd. */
class SimService
{
  public:
    struct Options
    {
        /** Evaluation worker threads (>= 1): the in-flight bound. */
        int workers = 2;
        ResponseCache::Options cache;
        /** Engine the simulations run on; nullptr = global(). */
        SimEngine *engine = nullptr;
    };

    /** Fires exactly once per submitted request, from a worker
     *  thread.  Must not block for long and must not re-enter the
     *  service. */
    using Callback = std::function<void(const ServiceResponse &)>;

    SimService() : SimService(Options()) {}
    explicit SimService(const Options &options);

    /** Fails every queued job with an error response, then joins the
     *  workers (in-flight evaluations finish first). */
    ~SimService();

    /**
     * Enqueue one request line on `clientId`'s FIFO.
     * @param clientId fair-queueing identity (one per connection).
     * @param line     raw request line (parsed on a worker).
     * @param done     completion callback; see Callback.
     */
    void submit(std::uint64_t clientId, std::string line,
                Callback done);

    /** Synchronous evaluation on the calling thread -- the full
     *  memoized/coalesced path minus the client FIFOs.  The calling
     *  thread does the compute on a miss. */
    ServiceResponse evaluate(const std::string &line);

    ServiceStats stats() const;

  private:
    struct Job
    {
        std::string line;
        Callback done;
    };

    /** One in-flight computation; later identical requests park
     *  their callbacks here. */
    struct Flight
    {
        std::vector<Callback> waiters;
    };

    void workerLoop();
    /** Pop the next job round-robin (queueMutex_ held). */
    bool popJob(Job &out);
    /** Parse, memoize/coalesce, compute; fires `done` (and any
     *  coalesced waiters) exactly once unless the job was parked. */
    void process(const std::string &line, const Callback &done);
    /** The uncached compute: simulate and serialize. */
    std::string computeBody(const ServiceRequest &req) const;
    std::string statsBody() const;

    Options options_;
    SimEngine *engine_;
    ResponseCache cache_;

    mutable std::mutex queueMutex_;
    std::condition_variable queueReady_;
    bool stopping_ = false;
    std::map<std::uint64_t, std::deque<Job>> queues_;
    /** Round-robin ring of clients with non-empty FIFOs. */
    std::deque<std::uint64_t> ring_;

    mutable std::mutex flightMutex_;
    std::map<std::string, Flight> flights_;

    mutable std::mutex statMutex_;
    std::uint64_t received_ = 0;
    std::uint64_t ok_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t coalesced_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace arcc

#endif // ARCC_SERVICE_SIM_SERVICE_HH
