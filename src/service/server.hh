/**
 * @file
 * ArccdServer: newline-delimited JSON over a Unix domain socket.
 *
 * The transport half of arccd, layered over SimService.  Each
 * accepted connection is one fair-queueing client and gets two
 * threads:
 *
 *  - a *reader* that splits the byte stream into request lines and
 *    submits each to the service immediately, so a client may
 *    pipeline any number of requests without waiting;
 *  - a *writer* that delivers responses strictly in request order.
 *    Workers complete out of order; completions park in a
 *    per-connection reorder buffer keyed by the request's sequence
 *    number until their turn.  One line in, one line out, order
 *    preserved -- that is the whole wire contract.
 *
 * A "shutdown" request is acknowledged in order like any response;
 * after writing the ack the server's shutdown latch trips, waking
 * whoever sits in waitForShutdown() (the arccd main).  Stopping the
 * server closes the listener and both ends of every connection, then
 * joins all threads; the service destructor answers anything still
 * queued.
 */

#ifndef ARCC_SERVICE_SERVER_HH
#define ARCC_SERVICE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/sim_service.hh"

namespace arcc
{

/** The arccd daemon core: listener + connections + service. */
class ArccdServer
{
  public:
    struct Options
    {
        /** Unix socket path; bound fresh (stale files unlinked). */
        std::string socketPath;
        SimService::Options service;
        /** Reject request lines longer than this (a malformed client
         *  must not buffer the daemon into the ground). */
        std::size_t maxLineBytes = 1 << 20;
    };

    explicit ArccdServer(const Options &options);

    /** stop()s if still running. */
    ~ArccdServer();

    /**
     * Bind, listen, and start accepting.
     * @return true on success; false sets `error`.
     */
    bool start(std::string &error);

    /** Block until a client's "shutdown" request has been answered
     *  (or until stop() is called from another thread). */
    void waitForShutdown();

    /** Close the listener and every connection, join all threads. */
    void stop();

    SimService &service() { return service_; }
    const std::string &socketPath() const { return options_.socketPath; }

  private:
    /** One accepted connection; owned via shared_ptr because service
     *  callbacks may outlive the socket. */
    struct Connection
    {
        int fd = -1;
        std::uint64_t clientId = 0;
        std::thread reader;
        std::thread writer;

        std::mutex mutex;
        std::condition_variable ready;
        /** Out-of-order completions parked by sequence number. */
        std::map<std::uint64_t, ServiceResponse> completed;
        std::uint64_t submitted = 0;
        std::uint64_t written = 0;
        /** Reader saw EOF / error; writer drains and exits. */
        bool closed = false;
    };

    void acceptLoop();
    void readerLoop(const std::shared_ptr<Connection> &conn);
    void writerLoop(const std::shared_ptr<Connection> &conn);
    void requestShutdown();

    Options options_;
    SimService service_;
    int listenFd_ = -1;
    std::thread acceptor_;
    std::uint64_t nextClientId_ = 1;

    std::mutex mutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ = false;
    bool running_ = false;
    std::vector<std::shared_ptr<Connection>> connections_;
};

} // namespace arcc

#endif // ARCC_SERVICE_SERVER_HH
