/**
 * @file
 * ResponseCache implementation.
 */

#include "service/cache.hh"

#include "common/logging.hh"

namespace arcc
{

ResponseCache::ResponseCache(const Options &options) : options_(options)
{
    ARCC_ASSERT(options_.maxEntries >= 1 && options_.maxBytes >= 1);
}

bool
ResponseCache::get(const std::string &key, std::string &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    out = it->second->second;
    return true;
}

void
ResponseCache::put(const std::string &key, std::string value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t cost = key.size() + value.size();
    if (cost > options_.maxBytes)
        return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= it->second->first.size() + it->second->second.size();
        bytes_ += cost;
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        shrink();
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_.emplace(key, lru_.begin());
    bytes_ += cost;
    shrink();
}

void
ResponseCache::shrink()
{
    while (lru_.size() > options_.maxEntries ||
           bytes_ > options_.maxBytes) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.first.size() + victim.second.size();
        index_.erase(victim.first);
        lru_.pop_back();
        ++evictions_;
    }
}

std::size_t
ResponseCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::size_t
ResponseCache::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::uint64_t
ResponseCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResponseCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
ResponseCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

} // namespace arcc
