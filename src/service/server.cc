/**
 * @file
 * ArccdServer implementation.
 */

#include "service/server.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace arcc
{

namespace
{

std::string
errorLine(const std::string &message)
{
    return "{\"ok\":false,\"error\":" + json::quote(message) + "}";
}

/** Write all of `data` + '\n'; false when the peer is gone. */
bool
sendLine(int fd, const std::string &data)
{
    std::string out = data;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // anonymous namespace

ArccdServer::ArccdServer(const Options &options)
    : options_(options), service_(options.service)
{
}

ArccdServer::~ArccdServer()
{
    stop();
}

bool
ArccdServer::start(std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.empty() ||
        options_.socketPath.size() >= sizeof addr.sun_path) {
        error = "socket path must be 1.." +
                std::to_string(sizeof addr.sun_path - 1) + " bytes";
        return false;
    }
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // A stale socket file from a dead daemon would fail the bind;
    // a *live* daemon keeps serving and the second one fails below.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 64) < 0) {
        error = std::string("bind/listen ") + options_.socketPath +
                ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = true;
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ArccdServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed by stop().
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            // Threads are created under the lock so stop() can never
            // observe a registered connection with threads still
            // unstarted (it would skip the join).
            std::lock_guard<std::mutex> lock(mutex_);
            if (!running_) {
                ::close(fd);
                return;
            }
            conn->clientId = nextClientId_++;
            connections_.push_back(conn);
            conn->reader = std::thread(
                [this, conn] { readerLoop(conn); });
            conn->writer = std::thread(
                [this, conn] { writerLoop(conn); });
        }
    }
}

void
ArccdServer::readerLoop(const std::shared_ptr<Connection> &conn)
{
    std::string pending;
    char buf[65536];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        pending.append(buf, static_cast<std::size_t>(n));

        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = pending.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = pending.substr(start, nl - start);
            start = nl + 1;
            if (line.empty())
                continue;
            std::uint64_t seq;
            {
                std::lock_guard<std::mutex> lock(conn->mutex);
                seq = conn->submitted++;
            }
            service_.submit(
                conn->clientId, std::move(line),
                [conn, seq](const ServiceResponse &r) {
                    {
                        std::lock_guard<std::mutex> lock(conn->mutex);
                        conn->completed.emplace(seq, r);
                    }
                    conn->ready.notify_all();
                });
        }
        pending.erase(0, start);

        if (pending.size() > options_.maxLineBytes) {
            // Park the rejection in the reorder buffer like any
            // response, then stop reading this connection.
            {
                std::lock_guard<std::mutex> lock(conn->mutex);
                const std::uint64_t seq = conn->submitted++;
                conn->completed.emplace(
                    seq,
                    ServiceResponse{
                        errorLine("request line exceeds " +
                                  std::to_string(
                                      options_.maxLineBytes) +
                                  " bytes"),
                        false});
            }
            conn->ready.notify_all();
            break;
        }
    }
    ::shutdown(conn->fd, SHUT_RD);
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->closed = true;
    }
    conn->ready.notify_all();
}

void
ArccdServer::writerLoop(const std::shared_ptr<Connection> &conn)
{
    for (;;) {
        ServiceResponse response;
        {
            std::unique_lock<std::mutex> lock(conn->mutex);
            conn->ready.wait(lock, [&conn] {
                return conn->completed.count(conn->written) > 0 ||
                       (conn->closed &&
                        conn->written == conn->submitted);
            });
            const auto it = conn->completed.find(conn->written);
            if (it == conn->completed.end())
                return; // closed and fully drained.
            response = std::move(it->second);
            conn->completed.erase(it);
            ++conn->written;
        }
        // A vanished peer still drains the buffer (callbacks keep
        // landing); the bytes just have nowhere to go.
        sendLine(conn->fd, response.body);
        if (response.shutdown)
            requestShutdown();
    }
}

void
ArccdServer::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
}

void
ArccdServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
}

void
ArccdServer::stop()
{
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        running_ = false;
    }
    // Closing the listener kicks accept() out of its wait.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    if (acceptor_.joinable())
        acceptor_.join();
    listenFd_ = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        conns.swap(connections_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (const auto &conn : conns) {
        if (conn->reader.joinable())
            conn->reader.join();
        if (conn->writer.joinable())
            conn->writer.join();
        ::close(conn->fd);
    }
    ::unlink(options_.socketPath.c_str());
    requestShutdown(); // release any waitForShutdown() caller.
}

} // namespace arcc
