/**
 * @file
 * Response memoization for arccd: an LRU keyed by canonical request.
 *
 * The key is the full canonical string, not its 64-bit hash -- a hash
 * collision may cost the daemon a cache slot, never a wrong answer.
 * Capacity is bounded both by entry count and by total bytes of
 * stored keys + values, so a few huge campaign responses cannot pin
 * unbounded memory behind a generous entry budget.
 *
 * Thread-safe; every operation is O(1) under one mutex.  Counters
 * (hits / misses / evictions) feed the daemon's "stats" responses and
 * the arcc_load repeat-leg assertion that a warmed sweep is >= 90%
 * cache-served.
 */

#ifndef ARCC_SERVICE_CACHE_HH
#define ARCC_SERVICE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace arcc
{

/** LRU map from canonical request to response line. */
class ResponseCache
{
  public:
    struct Options
    {
        /** Maximum resident entries (>= 1). */
        std::size_t maxEntries = 4096;
        /** Maximum total bytes of keys + values (>= 1). */
        std::size_t maxBytes = 256ULL << 20;
    };

    ResponseCache() : ResponseCache(Options()) {}
    explicit ResponseCache(const Options &options);

    /**
     * Look up `key`, refreshing its recency.
     * @return true and fill `out` on a hit.
     */
    bool get(const std::string &key, std::string &out);

    /** Insert (or refresh) `key` -> `value`, evicting LRU entries
     *  until both budgets hold.  A value larger than maxBytes on its
     *  own is simply not cached. */
    void put(const std::string &key, std::string value);

    std::size_t entries() const;
    std::size_t bytes() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;

  private:
    using Entry = std::pair<std::string, std::string>;

    /** Drop LRU entries until the budgets hold (mutex_ held). */
    void shrink();

    Options options_;
    mutable std::mutex mutex_;
    /** Front = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace arcc

#endif // ARCC_SERVICE_CACHE_HH
