/**
 * @file
 * SimService implementation.
 */

#include "service/sim_service.hh"

#include <exception>
#include <future>

#include "common/json.hh"
#include "common/logging.hh"
#include "cpu/system_sim.hh"
#include "cpu/trace.hh"
#include "dram/dram_params.hh"
#include "engine/sim_engine.hh"

namespace arcc
{

namespace
{

std::string
errorBody(const std::string &message)
{
    return "{\"ok\":false,\"error\":" + json::quote(message) + "}";
}

const WorkloadMix &
mixByName(const std::string &name)
{
    for (const WorkloadMix &m : table73Mixes())
        if (m.name == name)
            return m;
    panic("validated mix \"%s\" disappeared", name.c_str());
}

MemoryConfig
memoryConfigByName(const std::string &name)
{
    if (name == "baseline")
        return baselineConfig();
    if (name == "arcc")
        return arccConfig();
    if (name == "arcc4")
        return arccConfig4();
    if (name == "arcc8")
        return arccConfig8();
    panic("validated config \"%s\" disappeared", name.c_str());
}

PageUpgradeOracle
oracleFor(const ServiceRequest &req, const MemoryConfig &mem)
{
    using S = PageUpgradeOracle::Scenario;
    if (req.fraction >= 0.0)
        return PageUpgradeOracle::forFraction(req.fraction, mem);
    if (req.fault == "none")
        return PageUpgradeOracle{};
    if (req.fault == "lane")
        return PageUpgradeOracle::forScenario(S::Lane, mem);
    if (req.fault == "device")
        return PageUpgradeOracle::forScenario(S::Device, mem);
    if (req.fault == "bank")
        return PageUpgradeOracle::forScenario(S::Bank, mem);
    if (req.fault == "column")
        return PageUpgradeOracle::forScenario(S::Column, mem);
    panic("validated fault \"%s\" disappeared", req.fault.c_str());
}

/** The deterministic sim-result payload: counters and model outputs
 *  only, never timing or thread counts. */
std::string
simResultJson(const SimResult &res)
{
    std::string out = "{\"avg_power_mw\":" +
                      json::number(res.avgPowerMw);
    out += ",\"cores\":[";
    for (std::size_t i = 0; i < res.cores.size(); ++i) {
        const CoreResult &c = res.cores[i];
        if (i)
            out += ",";
        out += "{\"benchmark\":" + json::quote(c.benchmark);
        out += ",\"instrs\":" + std::to_string(c.instrs);
        out += ",\"ipc\":" + json::number(c.ipc);
        out += ",\"llc_accesses\":" + std::to_string(c.llcAccesses);
        out += ",\"llc_misses\":" + std::to_string(c.llcMisses);
        out += ",\"trace_laps\":" + std::to_string(c.traceLaps);
        out += "}";
    }
    out += "],\"elapsed_ns\":" + json::number(res.elapsedNs);
    out += ",\"ipc_sum\":" + json::number(res.ipcSum);
    out += ",\"mem_reads\":" + std::to_string(res.memReads);
    out += ",\"mem_writes\":" + std::to_string(res.memWrites);
    out += ",\"scrub_reads\":" + std::to_string(res.scrubReads);
    out += ",\"scrub_writes\":" + std::to_string(res.scrubWrites);
    out += "}";
    return out;
}

} // anonymous namespace

SimService::SimService(const Options &options)
    : options_(options),
      engine_(options.engine ? options.engine : &SimEngine::global()),
      cache_(options.cache)
{
    ARCC_ASSERT(options_.workers >= 1);
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SimService::~SimService()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueReady_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    // Workers are gone; whatever never got picked up is answered with
    // an error so no client callback is dropped on the floor.
    const ServiceResponse stopped{errorBody("service stopped"), false};
    for (auto &[client, queue] : queues_) {
        for (Job &job : queue)
            job.done(stopped);
    }
}

void
SimService::submit(std::uint64_t clientId, std::string line,
                   Callback done)
{
    {
        std::lock_guard<std::mutex> lock(statMutex_);
        ++received_;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (!stopping_) {
            std::deque<Job> &queue = queues_[clientId];
            if (queue.empty())
                ring_.push_back(clientId);
            queue.push_back(Job{std::move(line), std::move(done)});
            queueReady_.notify_one();
            return;
        }
    }
    {
        std::lock_guard<std::mutex> lock(statMutex_);
        ++errors_;
    }
    done(ServiceResponse{errorBody("service stopped"), false});
}

ServiceResponse
SimService::evaluate(const std::string &line)
{
    {
        std::lock_guard<std::mutex> lock(statMutex_);
        ++received_;
    }
    std::promise<ServiceResponse> promise;
    std::future<ServiceResponse> future = promise.get_future();
    process(line, [&promise](const ServiceResponse &r) {
        promise.set_value(r);
    });
    return future.get();
}

ServiceStats
SimService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lock(statMutex_);
        s.received = received_;
        s.ok = ok_;
        s.errors = errors_;
        s.coalesced = coalesced_;
    }
    s.cacheHits = cache_.hits();
    s.cacheMisses = cache_.misses();
    s.evictions = cache_.evictions();
    s.cacheEntries = cache_.entries();
    s.cacheBytes = cache_.bytes();
    return s;
}

void
SimService::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueReady_.wait(lock, [this] {
                return stopping_ || !ring_.empty();
            });
            if (stopping_)
                return;
            if (!popJob(job))
                continue;
        }
        process(job.line, job.done);
    }
}

bool
SimService::popJob(Job &out)
{
    if (ring_.empty())
        return false;
    const std::uint64_t client = ring_.front();
    ring_.pop_front();
    const auto it = queues_.find(client);
    ARCC_ASSERT(it != queues_.end() && !it->second.empty());
    out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        queues_.erase(it);
    else
        ring_.push_back(client); // round-robin: to the back of the ring.
    return true;
}

void
SimService::process(const std::string &line, const Callback &done)
{
    ServiceRequest req;
    std::string error;
    if (!ServiceRequest::parse(line, req, error)) {
        {
            std::lock_guard<std::mutex> lock(statMutex_);
            ++errors_;
        }
        done(ServiceResponse{errorBody(error), false});
        return;
    }

    if (req.kind == ServiceRequestKind::Stats) {
        const std::string body = statsBody();
        {
            std::lock_guard<std::mutex> lock(statMutex_);
            ++ok_;
        }
        done(ServiceResponse{body, false});
        return;
    }
    if (req.kind == ServiceRequestKind::Shutdown) {
        {
            std::lock_guard<std::mutex> lock(statMutex_);
            ++ok_;
        }
        done(ServiceResponse{"{\"ok\":true,\"kind\":\"shutdown\"}",
                             true});
        return;
    }

    const std::string key = req.canonical();
    {
        std::lock_guard<std::mutex> lock(flightMutex_);
        std::string cached;
        if (cache_.get(key, cached)) {
            {
                std::lock_guard<std::mutex> slock(statMutex_);
                ++ok_;
            }
            done(ServiceResponse{std::move(cached), false});
            return;
        }
        const auto it = flights_.find(key);
        if (it != flights_.end()) {
            it->second.waiters.push_back(done);
            std::lock_guard<std::mutex> slock(statMutex_);
            ++coalesced_;
            return;
        }
        flights_.emplace(key, Flight{});
    }

    // The expensive part, outside every lock.
    std::string body;
    bool okBody = true;
    try {
        body = computeBody(req);
    } catch (const std::exception &e) {
        okBody = false;
        body = errorBody(e.what());
    }
    if (okBody)
        cache_.put(key, body);

    std::vector<Callback> waiters;
    {
        std::lock_guard<std::mutex> lock(flightMutex_);
        waiters = std::move(flights_[key].waiters);
        flights_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(statMutex_);
        const std::uint64_t answered = 1 + waiters.size();
        if (okBody)
            ok_ += answered;
        else
            errors_ += answered;
    }
    const ServiceResponse response{std::move(body), false};
    done(response);
    for (const Callback &w : waiters)
        w(response);
}

std::string
SimService::computeBody(const ServiceRequest &req) const
{
    std::string body = "{\"ok\":true,\"kind\":\"";
    if (req.kind == ServiceRequestKind::Campaign) {
        const CampaignDriver driver(req.campaign, engine_);
        const CampaignRunResult run = driver.run();
        const CampaignAggregate &agg = run.aggregate;
        body += "campaign\",\"request_hash\":" +
                std::to_string(req.hash());
        body += ",\"result\":{\"affected_mean\":" +
                json::number(agg.meanAffected());
        body += ",\"aggregate_hash\":" + std::to_string(agg.hash());
        body += ",\"digest\":" +
                std::to_string(run.digest(req.campaign));
        body += ",\"due_candidates\":" +
                std::to_string(agg.dueCandidates);
        body += ",\"faults_sampled\":" +
                std::to_string(agg.faultsSampled);
        body += ",\"sdc_candidates\":" +
                std::to_string(agg.sdcCandidates);
        body += ",\"trials\":" + std::to_string(agg.trials);
        body += ",\"trials_with_fault\":" +
                std::to_string(agg.trialsWithFault);
        body += "}}";
        return body;
    }

    SystemConfig cfg;
    cfg.mem = memoryConfigByName(req.config);
    cfg.instrsPerCore = req.instrs;
    cfg.sectoredLlc = req.sectored;
    cfg.seed = req.seed;
    const PageUpgradeOracle oracle = oracleFor(req, cfg.mem);

    SimResult res;
    if (req.kind == ServiceRequestKind::Mix) {
        res = simulateMix(mixByName(req.mix), cfg, oracle, engine_);
        body += "mix";
    } else {
        std::vector<StreamSpec> streams;
        for (const std::string &path : req.tracePaths)
            streams.push_back(traceStreamSpec(path, /*baseIpc=*/1.0));
        res = simulateStreams(std::move(streams), cfg, oracle,
                              engine_);
        body += "trace";
    }
    body += "\",\"request_hash\":" + std::to_string(req.hash());
    body += ",\"result\":" + simResultJson(res);
    body += "}";
    return body;
}

std::string
SimService::statsBody() const
{
    const ServiceStats s = stats();
    std::string out = "{\"ok\":true,\"kind\":\"stats\",\"stats\":{";
    out += "\"cache_bytes\":" + std::to_string(s.cacheBytes);
    out += ",\"cache_entries\":" + std::to_string(s.cacheEntries);
    out += ",\"coalesced\":" + std::to_string(s.coalesced);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"evictions\":" + std::to_string(s.evictions);
    out += ",\"hits\":" + std::to_string(s.cacheHits);
    out += ",\"misses\":" + std::to_string(s.cacheMisses);
    out += ",\"ok\":" + std::to_string(s.ok);
    out += ",\"received\":" + std::to_string(s.received);
    out += ",\"workers\":" + std::to_string(options_.workers);
    out += "}}";
    return out;
}

} // namespace arcc
