/**
 * @file
 * CRC-32C (Castagnoli) -- the frame check of the campaign checkpoint
 * log and any other on-disk record framing that must detect torn
 * writes.
 *
 * Software slice-by-4 implementation (no SSE4.2 dependency, no
 * external library): four 256-entry tables processed 4 input bytes
 * per step, with a plain per-byte loop for the unaligned tail.  The
 * polynomial is the Castagnoli 0x1EDC6F41 (reflected 0x82F63B78), the
 * same CRC used by iSCSI, Btrfs and ext4 metadata -- chosen over
 * CRC-32/zlib for its better Hamming distance at the record sizes the
 * checkpoint log writes.
 *
 * The LOT-ECC OnesComplement16 checksum in src/ecc is a *modelled*
 * memory-protection code and is intentionally untouched by this
 * utility; Crc32c is infrastructure, not part of the simulated ECC.
 *
 * tests/test_crc32c.cc pins the RFC 3720 known-answer vectors and the
 * streaming == one-shot equivalence.
 */

#ifndef ARCC_COMMON_CRC32C_HH
#define ARCC_COMMON_CRC32C_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace arcc
{

/**
 * Incremental CRC-32C accumulator.
 *
 *     Crc32c crc;
 *     crc.update(header);
 *     crc.update(payload);
 *     std::uint32_t check = crc.value();
 *
 * value() may be read at any point; update() may continue afterwards.
 */
class Crc32c
{
  public:
    /** Feed a buffer into the running CRC. */
    void update(std::span<const std::uint8_t> bytes);

    /** The CRC of everything fed so far (finalised; state unharmed). */
    std::uint32_t value() const { return ~state_; }

    /** Reset to the empty-message state. */
    void reset() { state_ = ~std::uint32_t{0}; }

  private:
    std::uint32_t state_ = ~std::uint32_t{0};
};

/** One-shot convenience: CRC-32C of a single buffer. */
inline std::uint32_t
crc32c(std::span<const std::uint8_t> bytes)
{
    Crc32c crc;
    crc.update(bytes);
    return crc.value();
}

} // namespace arcc

#endif // ARCC_COMMON_CRC32C_HH
