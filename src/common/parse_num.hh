/**
 * @file
 * Checked numeric parsing for command-line flags and environment
 * variables.
 *
 * Every CLI in the tree used to parse numbers with bare strtoull /
 * atoi, which coerce garbage to 0 and silently *wrap* negative input
 * ("--channels junk" became a 0-channel campaign, "--seed -1" a
 * 2^64-1 seed).  A batch binary limps along; a request-serving daemon
 * cannot.  These helpers accept exactly one well-formed number that
 * fits the target type and fatal() otherwise, naming the flag (or
 * environment variable) and the offending text, so every entry point
 * fails loudly at the argument, not mysteriously at the result.
 *
 * Syntax is strict: the whole string must be consumed, with no
 * leading or trailing whitespace and no '+' prefix.  Unsigned parsers
 * reject a '-' prefix outright instead of wrapping.
 * tests/test_parse_num.cc death-tests each CLI's flag spellings.
 */

#ifndef ARCC_COMMON_PARSE_NUM_HH
#define ARCC_COMMON_PARSE_NUM_HH

#include <cstdint>

namespace arcc
{

/**
 * Parse an unsigned 64-bit integer or fatal().
 * @param what flag / variable name for the diagnostic (e.g.
 *             "--channels" or "ARCC_THREADS").
 * @param text the value text as the user supplied it.
 */
std::uint64_t parseU64(const char *what, const char *text);

/** Parse a signed 64-bit integer or fatal(). */
std::int64_t parseI64(const char *what, const char *text);

/** Parse an unsigned 32-bit integer or fatal() (range-checked). */
std::uint32_t parseU32(const char *what, const char *text);

/** Parse an `int` or fatal() (range-checked). */
int parseInt(const char *what, const char *text);

/** Parse a finite double or fatal() (rejects nan / inf / garbage). */
double parseDouble(const char *what, const char *text);

/**
 * Read an unsigned 64-bit count from the environment.  Unset or empty
 * returns `fallback`; anything set but unparseable is fatal() -- the
 * ARCC_THREADS / ARCC_BENCH_* convention.
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

} // namespace arcc

#endif // ARCC_COMMON_PARSE_NUM_HH
