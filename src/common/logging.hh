/**
 * @file
 * Status-message and error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal invariant of the simulator was violated; this
 *             is a bug in the library itself.  Aborts.
 * fatal()  -- the simulation cannot continue because of a user-supplied
 *             configuration or argument.  Exits with status 1.
 * warn()   -- something is not modelled as faithfully as it could be but
 *             the simulation can continue.
 * inform() -- a purely informational status message.
 */

#ifndef ARCC_COMMON_LOGGING_HH
#define ARCC_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace arcc
{

/** Severity levels understood by the message sink. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/**
 * Global verbosity control.  Messages with a level numerically greater
 * than the threshold are suppressed.  Defaults to Inform.
 */
void setLogThreshold(LogLevel level);

/** @return the current verbosity threshold. */
LogLevel logThreshold();

/** Emit a formatted message at the given level. */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Report an internal invariant violation and abort.  Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).  Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a modelling caveat the user should be aware of. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant.  Unlike the standard assert this is
 * active in all build types, because the cost is negligible relative to
 * the simulation work and silent corruption is far worse.
 */
#define ARCC_ASSERT(cond)                                                 \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::arcc::panic("assertion '%s' failed at %s:%d",               \
                          #cond, __FILE__, __LINE__);                     \
        }                                                                 \
    } while (0)

/** Assert with an explanatory printf-style message. */
#define ARCC_ASSERT_MSG(cond, fmt, ...)                                   \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::arcc::panic("assertion '%s' failed at %s:%d: " fmt,         \
                          #cond, __FILE__, __LINE__, __VA_ARGS__);        \
        }                                                                 \
    } while (0)

} // namespace arcc

#endif // ARCC_COMMON_LOGGING_HH
