/**
 * @file
 * Slice-by-4 CRC-32C implementation.
 */

#include "common/crc32c.hh"

#include <array>

namespace arcc
{

namespace
{

/** Reflected Castagnoli polynomial. */
constexpr std::uint32_t kPoly = 0x82f63b78u;

/**
 * The four slice tables.  table[0] is the classic byte-at-a-time
 * table; table[k][b] extends it by k extra zero bytes, which is what
 * lets the hot loop fold 4 message bytes into the state with four
 * independent lookups.
 */
struct Tables
{
    std::array<std::array<std::uint32_t, 256>, 4> t{};

    Tables()
    {
        for (std::uint32_t b = 0; b < 256; ++b) {
            std::uint32_t crc = b;
            for (int i = 0; i < 8; ++i)
                crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
            t[0][b] = crc;
        }
        for (std::uint32_t b = 0; b < 256; ++b)
            for (int k = 1; k < 4; ++k)
                t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xff];
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // anonymous namespace

void
Crc32c::update(std::span<const std::uint8_t> bytes)
{
    const Tables &tab = tables();
    std::uint32_t crc = state_;
    std::size_t i = 0;

    for (; i + 4 <= bytes.size(); i += 4) {
        crc ^= static_cast<std::uint32_t>(bytes[i]) |
               (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes[i + 3]) << 24);
        crc = tab.t[3][crc & 0xff] ^ tab.t[2][(crc >> 8) & 0xff] ^
              tab.t[1][(crc >> 16) & 0xff] ^ tab.t[0][crc >> 24];
    }
    for (; i < bytes.size(); ++i)
        crc = (crc >> 8) ^ tab.t[0][(crc ^ bytes[i]) & 0xff];

    state_ = crc;
}

} // namespace arcc
