/**
 * @file
 * Plain-text table printer used by the bench binaries to render the
 * rows/series of each reproduced paper table and figure.
 */

#ifndef ARCC_COMMON_TABLE_HH
#define ARCC_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace arcc
{

/**
 * A column-aligned ASCII table.  Cells are strings; numeric helpers
 * format with a fixed precision.  The table renders to stdout so bench
 * output can be diffed run to run.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Format a percentage (value 0.123 -> "12.3%"). */
    static std::string
    pct(double v, int precision = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
        return buf;
    }

    /** Format a scientific-notation value. */
    static std::string
    sci(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
        return buf;
    }

    /** Render the table to the given stream. */
    void
    print(std::FILE *out = stdout) const
    {
        std::size_t cols = header_.size();
        for (const auto &r : rows_)
            cols = std::max(cols, r.size());
        std::vector<std::size_t> width(cols, 0);
        auto measure = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < r.size(); ++i)
                width[i] = std::max(width[i], r[i].size());
        };
        measure(header_);
        for (const auto &r : rows_)
            measure(r);

        auto emit = [&](const std::vector<std::string> &r) {
            for (std::size_t i = 0; i < cols; ++i) {
                const std::string &cell = i < r.size() ? r[i] : empty_;
                std::fprintf(out, "%-*s", static_cast<int>(width[i] + 2),
                             cell.c_str());
            }
            std::fprintf(out, "\n");
        };

        if (!header_.empty()) {
            emit(header_);
            std::size_t total = 0;
            for (std::size_t w : width)
                total += w + 2;
            std::string rule(total, '-');
            std::fprintf(out, "%s\n", rule.c_str());
        }
        for (const auto &r : rows_)
            emit(r);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::string empty_;
};

/** Print a section banner for bench output. */
inline void
printBanner(const std::string &title)
{
    std::printf("\n===== %s =====\n\n", title.c_str());
}

} // namespace arcc

#endif // ARCC_COMMON_TABLE_HH
