/**
 * @file
 * Checked numeric parsing implementation.
 */

#include "common/parse_num.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace arcc
{

namespace
{

/** Shared guts of the integer parsers: strict from_chars over the
 *  whole string.  `kind` names the expected type in diagnostics. */
template <class T>
T
parseIntegral(const char *what, const char *text, const char *kind)
{
    if (!text || *text == '\0')
        fatal("%s: expected %s, got an empty string", what, kind);
    if constexpr (!std::numeric_limits<T>::is_signed) {
        if (*text == '-')
            fatal("%s: expected %s, got negative value '%s'", what,
                  kind, text);
    }
    T value{};
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value, 10);
    if (ec == std::errc::result_out_of_range)
        fatal("%s: value '%s' is out of range for %s", what, text,
              kind);
    if (ec != std::errc() || ptr != end)
        fatal("%s: expected %s, got '%s'", what, kind, text);
    return value;
}

} // anonymous namespace

std::uint64_t
parseU64(const char *what, const char *text)
{
    return parseIntegral<std::uint64_t>(what, text,
                                        "an unsigned integer");
}

std::int64_t
parseI64(const char *what, const char *text)
{
    return parseIntegral<std::int64_t>(what, text, "an integer");
}

std::uint32_t
parseU32(const char *what, const char *text)
{
    return parseIntegral<std::uint32_t>(what, text,
                                        "an unsigned 32-bit integer");
}

int
parseInt(const char *what, const char *text)
{
    return parseIntegral<int>(what, text, "an integer");
}

double
parseDouble(const char *what, const char *text)
{
    if (!text || *text == '\0')
        fatal("%s: expected a number, got an empty string", what);
    // strtod rather than from_chars<double>: identical strictness via
    // the end-pointer check, without depending on the FP from_chars
    // support level of the standard library in use.
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    // strtod tolerates leading whitespace and a '+' sign; the strict
    // contract does not.
    if (end == text || *end != '\0' || text[0] == '+' ||
        std::isspace(static_cast<unsigned char>(text[0])))
        fatal("%s: expected a number, got '%s'", what, text);
    if (errno == ERANGE || !std::isfinite(value))
        fatal("%s: value '%s' is out of range", what, text);
    return value;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || *env == '\0')
        return fallback;
    return parseU64(name, env);
}

} // namespace arcc
