/**
 * @file
 * StreamingHistogram implementation.
 */

#include "common/sketch.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace arcc
{

namespace
{

/** Shape ceiling: a checkpoint-decoded bin count above this is a
 *  format bug, not a real sketch. */
constexpr std::uint32_t kMaxBins = 1u << 20;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t
getU32(const std::uint8_t **cursor, const std::uint8_t *end)
{
    if (end - *cursor < 4)
        fatal("StreamingHistogram: truncated blob (wanted 4 bytes, "
              "have %td)", end - *cursor);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | (*cursor)[i];
    *cursor += 4;
    return v;
}

std::uint64_t
getU64(const std::uint8_t **cursor, const std::uint8_t *end)
{
    if (end - *cursor < 8)
        fatal("StreamingHistogram: truncated blob (wanted 8 bytes, "
              "have %td)", end - *cursor);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | (*cursor)[i];
    *cursor += 8;
    return v;
}

double
getDouble(const std::uint8_t **cursor, const std::uint8_t *end)
{
    return std::bit_cast<double>(getU64(cursor, end));
}

} // anonymous namespace

StreamingHistogram::StreamingHistogram(double lo, double hi,
                                       std::uint32_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(lo < hi))
        fatal("StreamingHistogram: degenerate range [%g, %g)", lo, hi);
    if (bins == 0 || bins > kMaxBins)
        fatal("StreamingHistogram: bad bin count %u", bins);
}

void
StreamingHistogram::add(double x)
{
    if (std::isnan(x))
        fatal("StreamingHistogram: NaN sample");
    ARCC_ASSERT(!counts_.empty());
    if (x < lo_) {
        ++under_;
    } else if (x >= hi_) {
        ++over_;
    } else {
        double t = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<std::size_t>(
            t * static_cast<double>(counts_.size()));
        ++counts_[std::min(idx, counts_.size() - 1)];
    }
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void
StreamingHistogram::merge(const StreamingHistogram &other)
{
    if (other.counts_.empty())
        return;
    if (counts_.empty()) {
        *this = other;
        return;
    }
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        fatal("StreamingHistogram: merging mismatched shapes "
              "([%g, %g) x %zu vs [%g, %g) x %zu)",
              lo_, hi_, counts_.size(), other.lo_, other.hi_,
              other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    under_ += other.under_;
    over_ += other.over_;
    if (other.count_ > 0) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
StreamingHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The endpoints are tracked exactly; only interior quantiles pay
    // the one-bin-width interpolation error.
    if (q == 0.0)
        return min_;
    if (q == 1.0)
        return max_;
    // The 1-based rank of the sample the quantile names.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));

    std::uint64_t seen = under_;
    if (rank <= seen)
        return min_; // landed among the below-range samples.
    const double width =
        (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (rank <= seen + counts_[i]) {
            const double frac =
                (static_cast<double>(rank - seen) - 0.5) /
                static_cast<double>(counts_[i]);
            const double v =
                lo_ + (static_cast<double>(i) + frac) * width;
            return std::clamp(v, min_, max_);
        }
        seen += counts_[i];
    }
    return max_; // landed among the above-range samples.
}

std::uint64_t
StreamingHistogram::hash() const
{
    auto fold = [](std::uint64_t h, std::uint64_t v) {
        return Rng::mix64(h ^ v);
    };
    std::uint64_t h = 0x534b4554ULL; // "SKET"
    h = fold(h, std::bit_cast<std::uint64_t>(lo_));
    h = fold(h, std::bit_cast<std::uint64_t>(hi_));
    h = fold(h, counts_.size());
    for (std::uint64_t c : counts_)
        h = fold(h, c);
    h = fold(h, under_);
    h = fold(h, over_);
    h = fold(h, count_);
    h = fold(h, std::bit_cast<std::uint64_t>(sum_));
    h = fold(h, std::bit_cast<std::uint64_t>(min_));
    h = fold(h, std::bit_cast<std::uint64_t>(max_));
    return h;
}

void
StreamingHistogram::serializeTo(std::vector<std::uint8_t> &out) const
{
    putU32(out, static_cast<std::uint32_t>(counts_.size()));
    putDouble(out, lo_);
    putDouble(out, hi_);
    for (std::uint64_t c : counts_)
        putU64(out, c);
    putU64(out, under_);
    putU64(out, over_);
    putU64(out, count_);
    putDouble(out, sum_);
    putDouble(out, min_);
    putDouble(out, max_);
}

StreamingHistogram
StreamingHistogram::deserializeFrom(const std::uint8_t **cursor,
                                    const std::uint8_t *end)
{
    const std::uint32_t bins = getU32(cursor, end);
    if (bins == 0 || bins > kMaxBins)
        fatal("StreamingHistogram: blob names %u bins", bins);
    const double lo = getDouble(cursor, end);
    const double hi = getDouble(cursor, end);
    StreamingHistogram h(lo, hi, bins);
    for (std::uint32_t i = 0; i < bins; ++i)
        h.counts_[i] = getU64(cursor, end);
    h.under_ = getU64(cursor, end);
    h.over_ = getU64(cursor, end);
    h.count_ = getU64(cursor, end);
    h.sum_ = getDouble(cursor, end);
    h.min_ = getDouble(cursor, end);
    h.max_ = getDouble(cursor, end);
    return h;
}

} // namespace arcc
