/**
 * @file
 * Physical-unit constants and conversions used across the library.
 */

#ifndef ARCC_COMMON_UNITS_HH
#define ARCC_COMMON_UNITS_HH

#include <cstdint>

namespace arcc
{

/** Hours in one (average Gregorian) year, the unit field studies use. */
constexpr double kHoursPerYear = 8766.0;

/** One FIT is one failure per 1e9 device-hours. */
constexpr double kFitToPerHour = 1e-9;

/** Convert a FIT rate to failures per hour. */
constexpr double
fitToPerHour(double fit)
{
    return fit * kFitToPerHour;
}

/** Convert a FIT rate to failures per year. */
constexpr double
fitToPerYear(double fit)
{
    return fit * kFitToPerHour * kHoursPerYear;
}

/** Sizes. */
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** The paper's line / page geometry. */
constexpr std::uint64_t kLineBytes = 64;
constexpr std::uint64_t kUpgradedLineBytes = 128;
constexpr std::uint64_t kPageBytes = 4 * kKiB;
constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

} // namespace arcc

#endif // ARCC_COMMON_UNITS_HH
