/**
 * @file
 * Strict recursive-descent JSON parser and writer helpers.
 */

#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace arcc::json
{

namespace
{

/** Parser state: a cursor over the input plus the first error. */
struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;
    /** Nesting guard: a service must not be stack-smashable by
     *  ten thousand '['s. */
    int depth = 0;
    static constexpr int kMaxDepth = 32;

    bool
    fail(const std::string &message)
    {
        if (error.empty())
            error = message + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool parseValue(Value &out);
    bool parseString(std::string &out);
    bool parseNumber(Value &out);
    bool parseObject(Value &out);
    bool parseArray(Value &out);
    bool parseLiteral(std::string_view word, Value &out);
};

bool
Parser::parseString(std::string &out)
{
    if (!consume('"'))
        return fail("expected '\"'");
    out.clear();
    while (pos < text.size()) {
        const char c = text[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return fail("unescaped control character in string");
        if (c != '\\') {
            out.push_back(c);
            ++pos;
            continue;
        }
        if (pos + 1 >= text.size())
            return fail("truncated escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size())
                return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
                const char h = text[pos + i];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return fail("bad \\u escape digit");
            }
            pos += 4;
            // UTF-8 encode the basic-multilingual-plane code point;
            // surrogate pairs are rejected (the wire format is ASCII
            // in practice, and a half pair must not pass silently).
            if (code >= 0xd800 && code <= 0xdfff)
                return fail("surrogate \\u escapes are not supported");
            if (code < 0x80) {
                out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
                out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                out.push_back(
                    static_cast<char>(0x80 | (code & 0x3f)));
            } else {
                out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                out.push_back(
                    static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                out.push_back(
                    static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
    }
    return fail("unterminated string");
}

bool
Parser::parseNumber(Value &out)
{
    const std::size_t start = pos;
    consume('-');
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos])))
        return fail("malformed number");
    // Leading zero rule: "0" or "0.x", never "042".
    if (text[pos] == '0' && pos + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[pos + 1])))
        return fail("leading zero in number");
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    bool integral = true;
    if (consume('.')) {
        integral = false;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("malformed number");
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
        integral = false;
        ++pos;
        if (pos < text.size() &&
            (text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("malformed number");
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    const std::string_view lit = text.substr(start, pos - start);
    out = Value{};
    out.type = Value::Type::Number;
    if (integral) {
        if (lit[0] != '-') {
            std::uint64_t u = 0;
            const auto [p, ec] = std::from_chars(
                lit.data(), lit.data() + lit.size(), u, 10);
            if (ec == std::errc() && p == lit.data() + lit.size()) {
                out.isUint = true;
                out.uintValue = u;
            }
        }
        std::int64_t i = 0;
        const auto [p, ec] = std::from_chars(
            lit.data(), lit.data() + lit.size(), i, 10);
        if (ec == std::errc() && p == lit.data() + lit.size()) {
            out.isInt = true;
            out.intValue = i;
        }
        if (!out.isInt && !out.isUint)
            return fail("integer literal out of 64-bit range");
    }
    out.number = std::strtod(std::string(lit).c_str(), nullptr);
    return true;
}

bool
Parser::parseObject(Value &out)
{
    out = Value{};
    out.type = Value::Type::Object;
    ++pos; // '{'
    skipSpace();
    if (consume('}'))
        return true;
    for (;;) {
        skipSpace();
        std::string key;
        if (!parseString(key))
            return false;
        for (const auto &[existing, v] : out.object)
            if (existing == key)
                return fail("duplicate key \"" + key + "\"");
        skipSpace();
        if (!consume(':'))
            return fail("expected ':'");
        Value member;
        if (!parseValue(member))
            return false;
        out.object.emplace_back(std::move(key), std::move(member));
        skipSpace();
        if (consume(','))
            continue;
        if (consume('}'))
            return true;
        return fail("expected ',' or '}'");
    }
}

bool
Parser::parseArray(Value &out)
{
    out = Value{};
    out.type = Value::Type::Array;
    ++pos; // '['
    skipSpace();
    if (consume(']'))
        return true;
    for (;;) {
        Value element;
        if (!parseValue(element))
            return false;
        out.array.push_back(std::move(element));
        skipSpace();
        if (consume(','))
            continue;
        if (consume(']'))
            return true;
        return fail("expected ',' or ']'");
    }
}

bool
Parser::parseLiteral(std::string_view word, Value &out)
{
    if (text.substr(pos, word.size()) != word)
        return fail("unexpected token");
    pos += word.size();
    out = Value{};
    if (word == "true") {
        out.type = Value::Type::Bool;
        out.boolean = true;
    } else if (word == "false") {
        out.type = Value::Type::Bool;
        out.boolean = false;
    } else {
        out.type = Value::Type::Null;
    }
    return true;
}

bool
Parser::parseValue(Value &out)
{
    if (++depth > kMaxDepth)
        return fail("nesting too deep");
    skipSpace();
    if (pos >= text.size())
        return fail("unexpected end of input");
    bool ok = false;
    switch (text[pos]) {
      case '{': ok = parseObject(out); break;
      case '[': ok = parseArray(out); break;
      case '"':
        out = Value{};
        out.type = Value::Type::String;
        ok = parseString(out.str);
        break;
      case 't': ok = parseLiteral("true", out); break;
      case 'f': ok = parseLiteral("false", out); break;
      case 'n': ok = parseLiteral("null", out); break;
      default: ok = parseNumber(out); break;
    }
    --depth;
    return ok;
}

} // anonymous namespace

const Value *
Value::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

bool
parse(std::string_view text, Value &out, std::string &error)
{
    Parser p;
    p.text = text;
    if (!p.parseValue(out)) {
        error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        p.fail("trailing garbage after value");
        error = p.error;
        return false;
    }
    return true;
}

std::string
quote(std::string_view s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
number(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace arcc::json
