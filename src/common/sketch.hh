/**
 * @file
 * StreamingHistogram: a mergeable fixed-bin percentile sketch for
 * fleet-scale aggregation.
 *
 * The campaign driver simulates millions of trials but must hold its
 * aggregate state in O(1) memory and serialise it into a checkpoint
 * record, so the per-trial metric distributions are kept as fixed-bin
 * histograms rather than sample lists:
 *
 *  - counts are 64-bit integers, so merging two sketches is exact and
 *    order-independent -- the property that lets shard partials fold
 *    in shard order with bit-identical results at any thread count
 *    (a P^2 quantile estimator, by contrast, is not mergeable and was
 *    rejected for exactly that reason);
 *  - min / max / sum are tracked exactly alongside the bins, so mean
 *    and extremes carry no quantisation error (the sum is a double
 *    whose value depends only on the fixed shard / epoch fold order);
 *  - quantile() interpolates inside the landing bin, so its error is
 *    bounded by one bin width over [lo, hi); samples outside the
 *    range are counted in saturating under/overflow bins and clamp to
 *    the exact min / max.
 *
 * The sketch serialises to a self-describing little-endian blob
 * (shape + counters) for the checkpoint log, and hashes into the
 * campaign digest; both are pinned by tests/test_sketch.cc.
 */

#ifndef ARCC_COMMON_SKETCH_HH
#define ARCC_COMMON_SKETCH_HH

#include <cstdint>
#include <vector>

namespace arcc
{

class StreamingHistogram
{
  public:
    /** An empty, shapeless sketch (only deserialize/merge targets). */
    StreamingHistogram() = default;

    /**
     * Sketch over [lo, hi) with `bins` equal-width bins plus the
     * under/overflow bins.  fatal() on a degenerate range or zero
     * bins.
     */
    StreamingHistogram(double lo, double hi, std::uint32_t bins);

    /** Add one sample.  fatal() on NaN (a corrupt metric must never
     *  be silently absorbed into a checkpointed aggregate). */
    void add(double x);

    /**
     * Fold another sketch of the *same shape* into this one (exact:
     * integer counts, exact min/max, summed sums).  A default-
     * constructed target adopts the other's shape.  fatal() on a
     * shape mismatch.
     */
    void merge(const StreamingHistogram &other);

    /** Total samples (including under/overflow). */
    std::uint64_t count() const { return count_; }

    /** Exact sample mean (0 when empty). */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Exact sum / extremes. */
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * Quantile estimate for q in [0, 1]: linear interpolation inside
     * the landing bin, clamped to the exact [min, max]; q = 0 and
     * q = 1 return the exact extremes.  0 when empty.
     */
    double quantile(double q) const;

    /** Shape accessors. */
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::uint32_t bins() const
    {
        return static_cast<std::uint32_t>(counts_.size());
    }
    std::uint64_t binCount(std::uint32_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return under_; }
    std::uint64_t overflow() const { return over_; }

    /** Order-sensitive digest of shape and every counter. */
    std::uint64_t hash() const;

    /** Append the sketch as a self-describing blob. */
    void serializeTo(std::vector<std::uint8_t> &out) const;

    /**
     * Decode a sketch from `[*cursor, end)`, advancing *cursor past
     * it.  fatal() on truncation or an absurd shape -- checkpoint
     * payloads are CRC-validated before they get here, so a decode
     * failure means a format bug, not line noise.
     */
    static StreamingHistogram
    deserializeFrom(const std::uint8_t **cursor,
                    const std::uint8_t *end);

  private:
    double lo_ = 0.0;
    double hi_ = 0.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t under_ = 0;
    std::uint64_t over_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace arcc

#endif // ARCC_COMMON_SKETCH_HH
