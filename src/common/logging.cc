/**
 * @file
 * Implementation of the message sink.
 */

#include "common/logging.hh"

#include <cstdarg>

namespace arcc
{

namespace
{

LogLevel g_threshold = LogLevel::Inform;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:  return "panic";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Inform: return "info";
      case LogLevel::Debug:  return "debug";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list args)
{
    if (static_cast<int>(level) > static_cast<int>(g_threshold))
        return;
    std::fprintf(stderr, "[%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

LogLevel
logThreshold()
{
    return g_threshold;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Inform, fmt, args);
    va_end(args);
}

} // namespace arcc
