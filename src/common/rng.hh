/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * All stochastic components of the library (workload generators, fault
 * injection, Monte Carlo engines) draw from an explicitly seeded Rng so
 * every experiment is reproducible from its seed.  The core generator is
 * xoshiro256** which is fast, tiny, and of more than adequate quality
 * for simulation use.
 */

#ifndef ARCC_COMMON_RNG_HH
#define ARCC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace arcc
{

/**
 * xoshiro256** pseudo-random generator with simulation-oriented helper
 * distributions.  Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /**
     * The splitmix64 finalizer: a cheap bijective mixer whose output
     * is statistically unrelated to its input.  Shared by reseed(),
     * stream(), and the deterministic per-page hashes elsewhere in
     * the library.
     */
    static constexpr std::uint64_t
    mix64(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Re-initialise the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread the seed across the 256-bit state.
        std::uint64_t x = seed;
        for (int i = 0; i < 4; ++i) {
            x += 0x9e3779b97f4a7c15ULL;
            state_[i] = mix64(x);
        }
        // A zero state would be absorbing; splitmix64 never produces
        // four zero outputs, but guard anyway.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** @return the next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound) using Lemire reduction. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound <= 1)
            return 0;
        // Multiply-shift; bias is < 2^-64 * bound, negligible here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** @return exponential variate with the given rate (mean 1/rate). */
    double
    exponential(double rate)
    {
        // 1 - uniform() is in (0, 1]; log of it is finite.
        return -std::log(1.0 - uniform()) / rate;
    }

    /** @return geometric-ish integer >= 1 with mean roughly `mean`. */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double u = 1.0 - uniform();
        double p = 1.0 / mean;
        double v = std::log(u) / std::log(1.0 - p);
        std::uint64_t n = static_cast<std::uint64_t>(v) + 1;
        return n == 0 ? 1 : n;
    }

    /** @return a Poisson variate (Knuth for small mean, normal approx). */
    std::uint64_t
    poisson(double mean)
    {
        if (mean <= 0)
            return 0;
        if (mean < 32.0) {
            double limit = std::exp(-mean);
            double prod = uniform();
            std::uint64_t n = 0;
            while (prod > limit) {
                prod *= uniform();
                ++n;
            }
            return n;
        }
        // Normal approximation with continuity correction.
        double g = gaussian();
        double v = mean + std::sqrt(mean) * g + 0.5;
        return v < 0 ? 0 : static_cast<std::uint64_t>(v);
    }

    /** @return standard normal variate (Box-Muller, one of the pair). */
    double
    gaussian()
    {
        double u1 = 1.0 - uniform();
        double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Fork an independent stream (e.g. one per simulated channel). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
    }

    /**
     * Splittable stream constructor: an independent generator for
     * stream `index` of the experiment seeded with `seed`.
     *
     * Unlike fork(), which consumes parent state and therefore makes
     * stream c depend on the c-1 forks before it, stream() is a pure
     * function of (seed, index).  Shards of a Monte Carlo can draw
     * their per-trial generators in any order -- on any number of
     * threads -- and still produce bit-identical histories.
     */
    static Rng
    stream(std::uint64_t seed, std::uint64_t index)
    {
        // Finalise the (seed, index) pair with two rounds of the
        // splitmix64 mixer so neighbouring indices land in unrelated
        // regions of the seed space.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
        return Rng(mix64(mix64(z)));
    }

    /**
     * Jump ahead 2^128 steps (the canonical xoshiro256** jump
     * polynomial): carves the period into 2^128 non-overlapping
     * subsequences, one jump() apart.
     */
    void
    jump()
    {
        static constexpr std::uint64_t kJump[] = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        applyJump(kJump);
    }

    /**
     * Jump ahead 2^192 steps; yields 2^64 starting points 2^128
     * long-jump-free steps apart (sub-streams within a jump block).
     */
    void
    longJump()
    {
        static constexpr std::uint64_t kLongJump[] = {
            0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
        applyJump(kLongJump);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Polynomial-jump helper shared by jump() and longJump(). */
    void
    applyJump(const std::uint64_t (&poly)[4])
    {
        std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int i = 0; i < 4; ++i) {
            for (int b = 0; b < 64; ++b) {
                if (poly[i] & (1ULL << b)) {
                    s0 ^= state_[0];
                    s1 ^= state_[1];
                    s2 ^= state_[2];
                    s3 ^= state_[3];
                }
                next();
            }
        }
        state_[0] = s0;
        state_[1] = s1;
        state_[2] = s2;
        state_[3] = s3;
    }

    std::uint64_t state_[4];
};

} // namespace arcc

#endif // ARCC_COMMON_RNG_HH
