/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * All stochastic components of the library (workload generators, fault
 * injection, Monte Carlo engines) draw from an explicitly seeded Rng so
 * every experiment is reproducible from its seed.  The core generator is
 * xoshiro256** which is fast, tiny, and of more than adequate quality
 * for simulation use.
 */

#ifndef ARCC_COMMON_RNG_HH
#define ARCC_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace arcc
{

/**
 * xoshiro256** pseudo-random generator with simulation-oriented helper
 * distributions.  Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread the seed across the 256-bit state.
        std::uint64_t x = seed;
        for (int i = 0; i < 4; ++i) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            state_[i] = z ^ (z >> 31);
        }
        // A zero state would be absorbing; splitmix64 never produces
        // four zero outputs, but guard anyway.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
            state_[0] = 1;
    }

    /** @return the next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound) using Lemire reduction. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound <= 1)
            return 0;
        // Multiply-shift; bias is < 2^-64 * bound, negligible here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** @return exponential variate with the given rate (mean 1/rate). */
    double
    exponential(double rate)
    {
        // 1 - uniform() is in (0, 1]; log of it is finite.
        return -std::log(1.0 - uniform()) / rate;
    }

    /** @return geometric-ish integer >= 1 with mean roughly `mean`. */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        double u = 1.0 - uniform();
        double p = 1.0 / mean;
        double v = std::log(u) / std::log(1.0 - p);
        std::uint64_t n = static_cast<std::uint64_t>(v) + 1;
        return n == 0 ? 1 : n;
    }

    /** @return a Poisson variate (Knuth for small mean, normal approx). */
    std::uint64_t
    poisson(double mean)
    {
        if (mean <= 0)
            return 0;
        if (mean < 32.0) {
            double limit = std::exp(-mean);
            double prod = uniform();
            std::uint64_t n = 0;
            while (prod > limit) {
                prod *= uniform();
                ++n;
            }
            return n;
        }
        // Normal approximation with continuity correction.
        double g = gaussian();
        double v = mean + std::sqrt(mean) * g + 0.5;
        return v < 0 ? 0 : static_cast<std::uint64_t>(v);
    }

    /** @return standard normal variate (Box-Muller, one of the pair). */
    double
    gaussian()
    {
        double u1 = 1.0 - uniform();
        double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Fork an independent stream (e.g. one per simulated channel). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace arcc

#endif // ARCC_COMMON_RNG_HH
