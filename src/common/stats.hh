/**
 * @file
 * Small statistics helpers shared by the simulators and benches.
 */

#ifndef ARCC_COMMON_STATS_HH
#define ARCC_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace arcc
{

/**
 * Online mean / variance accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** @return number of samples accumulated. */
    std::uint64_t count() const { return n_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /** @return population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** @return smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** @return largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** @return sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Merge another accumulator into this one. */
    void
    merge(const RunningStat &other)
    {
        if (other.n_ == 0)
            return;
        if (n_ == 0) {
            *this = other;
            return;
        }
        double total = static_cast<double>(n_ + other.n_);
        double delta = other.mean_ - mean_;
        double new_mean = mean_ + delta * other.n_ / total;
        m2_ += other.m2_ +
               delta * delta * n_ * other.n_ / total;
        mean_ = new_mean;
        n_ += other.n_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi); samples outside the range land in
 * the first / last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    /** Add one sample. */
    void
    add(double x)
    {
        double t = (x - lo_) / (hi_ - lo_);
        std::int64_t idx =
            static_cast<std::int64_t>(t * static_cast<double>(size()));
        idx = std::clamp<std::int64_t>(
            idx, 0, static_cast<std::int64_t>(size()) - 1);
        ++counts_[static_cast<std::size_t>(idx)];
        ++total_;
    }

    /** @return number of bins. */
    std::size_t size() const { return counts_.size(); }

    /** @return raw count of bin i. */
    std::uint64_t count(std::size_t i) const { return counts_[i]; }

    /** @return total samples. */
    std::uint64_t total() const { return total_; }

    /** @return fraction of samples in bin i. */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(counts_[i]) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** @return left edge of bin i. */
    double
    edge(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                         static_cast<double>(size());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** @return arithmetic mean of a vector (0 when empty). */
inline double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** @return geometric mean of a vector of positive values. */
inline double
geomeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

} // namespace arcc

#endif // ARCC_COMMON_STATS_HH
