/**
 * @file
 * Minimal strict JSON for the service wire protocol.
 *
 * The daemon (service/) speaks newline-delimited JSON over a Unix
 * socket.  This is the parsing half: a small recursive-descent parser
 * into an ordered document tree, plus the two writer helpers the
 * canonical serializers share.  It is deliberately strict where
 * request identity is at stake:
 *
 *  - duplicate object keys are an error (a request whose "seed"
 *    appears twice must not silently take either one);
 *  - integer literals that fit are carried *exactly* (isUint /
 *    isInt), so 64-bit seeds and trial counts never round through a
 *    double;
 *  - the whole input must be one value -- trailing garbage is an
 *    error, not ignored.
 *
 * Parsing never fatal()s: the daemon answers a malformed line with an
 * error response and lives on, so every failure is reported through
 * the error string instead.
 */

#ifndef ARCC_COMMON_JSON_HH
#define ARCC_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arcc::json
{

/** One JSON value; a tagged tree with insertion-ordered objects. */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    /** Every number as a double (the JSON model). */
    double number = 0.0;
    /** Set when the literal was integral and fits the type: the exact
     *  value, immune to double rounding past 2^53. */
    bool isInt = false;
    std::int64_t intValue = 0;
    bool isUint = false;
    std::uint64_t uintValue = 0;
    std::string str;
    std::vector<Value> array;
    /** Members in source order (duplicates rejected at parse time). */
    std::vector<std::pair<std::string, Value>> object;

    /** Member lookup; nullptr when absent (objects only). */
    const Value *find(std::string_view key) const;
};

/**
 * Parse exactly one JSON value from `text`.
 * @return true on success; false sets `error` to a message with a
 *         byte offset.
 */
bool parse(std::string_view text, Value &out, std::string &error);

/** Quote + escape a string for embedding in a JSON document. */
std::string quote(std::string_view s);

/**
 * Canonical number rendering: shortest-ish "%.17g", the same
 * formatting the bench jsonRow schema uses, so a double always
 * round-trips bit-exactly through its canonical text.
 */
std::string number(double v);

} // namespace arcc::json

#endif // ARCC_COMMON_JSON_HH
