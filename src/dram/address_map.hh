/**
 * @file
 * Physical-address-to-DRAM-coordinate mapping.
 *
 * Section 4.1 of the paper relies on the conventional mapping policies
 * (SDRAM_BASE_MAP, SDRAM_HIPERF_MAP, SDRAM_CLOSE_PAGE_MAP in DRAMsim
 * terms) placing *adjacent 64B lines in different memory channels*;
 * that property is what lets an upgraded 128B line be fetched from two
 * channels in parallel.  The high-performance map is the paper's
 * default and ours.
 *
 * Row geometry follows the paper's explicit assumption of **two 4KB
 * pages per row** (Section 7.1): a logical row holds 8KB of data split
 * across the channels, so with two channels each channel-row holds 64
 * lines.  Under the HiPerf map a 4KB page therefore occupies exactly
 * one (rank, bank, row, page-half) and spreads its 64 lines over all
 * (channel, column) combinations -- which is precisely the geometry
 * Table 7.4's "fraction of pages upgraded" numbers assume (device
 * fault -> 1/2 of pages, bank fault -> 1/16, column fault -> 1/32).
 */

#ifndef ARCC_DRAM_ADDRESS_MAP_HH
#define ARCC_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/units.hh"
#include "dram/dram_params.hh"

namespace arcc
{

/** DRAM coordinates of one 64B line. */
struct DramCoord
{
    int channel = 0;
    int rank = 0;
    int bank = 0;
    std::uint32_t row = 0;
    /** 64B-line index within the channel's row slice. */
    std::uint32_t column = 0;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bank == o.bank && row == o.row && column == o.column;
    }
};

/** Address-interleave policy (DRAMsim naming). */
enum class MapPolicy
{
    /** line bits low->high: channel, column, bank, rank, row. */
    HiPerf,
    /** line bits low->high: channel, column, rank, bank, row. */
    ClosePage,
    /** line bits low->high: column, channel, bank, rank, row. */
    Base,
};

/**
 * Bidirectional mapper between physical byte addresses and DRAM
 * coordinates for a given MemoryConfig.
 */
class AddressMap
{
  public:
    AddressMap(const MemoryConfig &config,
               MapPolicy policy = MapPolicy::HiPerf);

    /**
     * @param addr physical byte address (any alignment; reduced to
     *             its 64B line internally).  Must be < capacity().
     * @return coordinates of the line containing addr.
     */
    DramCoord decode(std::uint64_t addr) const;

    /**
     * @param coord valid coordinates for this map's geometry.
     * @return byte address (line-aligned) of the given coordinates.
     */
    std::uint64_t encode(const DramCoord &coord) const;

    /** @return total mapped bytes (the config's data capacity). */
    std::uint64_t capacity() const { return capacity_; }

    /** @return 64B lines within one channel's slice of a row. */
    std::uint32_t linesPerRow() const { return lines_per_row_; }

    /** @return logical rows per bank. */
    std::uint32_t rows() const { return rows_; }

    /** @return memory channels the map interleaves over. */
    int channels() const { return channels_; }

    /** @return 64B lines mapped to each channel (uniform: every
     *  policy spreads the capacity evenly over the channels). */
    std::uint64_t linesPerChannel() const
    {
        return capacity_ / kLineBytes / channels_;
    }

    /** @return the interleave policy this map implements. */
    MapPolicy policy() const { return policy_; }

  private:
    MapPolicy policy_;
    int channels_;
    int ranks_;
    int banks_;
    std::uint32_t rows_;
    std::uint32_t lines_per_row_;
    std::uint64_t capacity_;
};

} // namespace arcc

#endif // ARCC_DRAM_ADDRESS_MAP_HH
