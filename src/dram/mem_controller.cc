/**
 * @file
 * Channel timing / power model implementation.
 */

#include "dram/mem_controller.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/units.hh"
#include "dram/channel_shard.hh"

namespace arcc
{

MemChannel::MemChannel(const MemoryConfig &config,
                       const ControllerConfig &ctrl)
    : config_(config),
      ctrl_(ctrl),
      dev_(config.device),
      banks_(config.device.banks),
      ranks_(config.ranksPerChannel),
      bankFree_(static_cast<std::size_t>(banks_) * ranks_, 0.0),
      rankActReady_(ranks_, 0.0),
      rankState_(ranks_)
{
}

double
MemChannel::admissionTime(double arrival) const
{
    std::size_t depth = static_cast<std::size_t>(ctrl_.queueDepth);
    if (outstanding_.size() < depth)
        return arrival;
    // The request must wait until enough older requests drain that a
    // queue slot frees up.
    double frees = outstanding_[outstanding_.size() - depth];
    return std::max(arrival, frees);
}

void
MemChannel::noteOutstanding(double completion)
{
    outstanding_.push_back(completion);
    // Bound memory: drop entries that can no longer matter.
    std::size_t depth = static_cast<std::size_t>(ctrl_.queueDepth);
    while (outstanding_.size() > 4 * depth)
        outstanding_.pop_front();
}

double
MemChannel::earliestIssue(double arrival, const DramCoord &coord,
                          bool paired) const
{
    double t = admissionTime(arrival);
    const std::size_t bank_idx =
        static_cast<std::size_t>(coord.rank) * banks_ + coord.bank;
    t = std::max(t, bankFree_[bank_idx]);
    t = std::max(t, rankActReady_[coord.rank]);
    if (paired && ctrl_.pairing == PairingPolicy::FifoPartition) {
        // Strict FIFO sub-line queue: no bypassing earlier issues.
        t = std::max(t, lastIssue_);
    }
    return t;
}

void
MemChannel::accountActivity(RankState &rank, double start, double end)
{
    if (start > rank.accountedTo) {
        double gap = start - rank.accountedTo;
        if (ctrl_.enablePowerDown && gap > ctrl_.powerDownThresholdNs) {
            rank.standbyTime += ctrl_.powerDownThresholdNs;
            rank.powerDownTime += gap - ctrl_.powerDownThresholdNs;
        } else {
            rank.standbyTime += gap;
        }
        rank.accountedTo = start;
    }
    if (end > rank.accountedTo) {
        rank.activeTime += end - rank.accountedTo;
        rank.accountedTo = end;
    }
}

MemResponse
MemChannel::commit(double issue, const DramCoord &coord, bool is_write,
                   int devicesTouched)
{
    const double tck = dev_.tCK;
    const double t_rcd = dev_.tRCD * tck;
    const double t_cl = dev_.clCycles * tck;
    const double t_cwl = (dev_.clCycles - 1) * tck; // DDR2: CWL = CL-1
    const double t_burst = dev_.burstCycles() * tck;
    const double t_rc = dev_.tRC * tck;
    const double t_rrd = dev_.tRRD * tck;
    const double t_wr = dev_.tWR * tck;
    const double t_rp = dev_.tRP * tck;
    const double t_wtr = dev_.tWTR * tck;

    const double cas_offset = t_rcd + (is_write ? t_cwl : t_cl);

    // Bus constraint, plus turnaround when the direction flips.
    double bus_ready = busFree_;
    if (accesses_ > 0 && lastWasWrite_ != is_write)
        bus_ready += t_wtr;
    double data_start = std::max(issue + cas_offset, bus_ready);
    // If the bus forced a delay, hold the ACT back so the row is not
    // sitting open longer than needed (closed-page controllers chain
    // ACT->CAS->PRE back to back).
    double eff_issue = data_start - cas_offset;
    double completion = data_start + t_burst;

    const std::size_t bank_idx =
        static_cast<std::size_t>(coord.rank) * banks_ + coord.bank;
    double bank_busy_until = eff_issue + t_rc;
    if (is_write) {
        bank_busy_until =
            std::max(bank_busy_until, completion + t_wr + t_rp);
    }
    bankFree_[bank_idx] = bank_busy_until;
    rankActReady_[coord.rank] = eff_issue + t_rrd;
    lastIssue_ = std::max(lastIssue_, eff_issue);
    busFree_ = completion;
    lastWasWrite_ = is_write;

    // Power: the rank's devices are in active standby while the bank
    // cycles; all devices of the rank pay background, only the accessed
    // devices pay ACT/PRE + burst energy.
    accountActivity(rankState_[coord.rank], eff_issue, bank_busy_until);
    double e_dyn = dev_.actPreEnergy() +
                   (is_write ? dev_.writeBurstEnergy()
                             : dev_.readBurstEnergy());
    power_.dynamicNj += e_dyn * devicesTouched;

    noteOutstanding(completion);
    ++accesses_;

    MemResponse resp;
    resp.issueTime = eff_issue;
    resp.completion = completion;
    return resp;
}

MemResponse
MemChannel::schedule(double arrival, const DramCoord &coord,
                     bool is_write, int devicesTouched)
{
    double t = earliestIssue(arrival, coord, /*paired=*/false);
    return commit(t, coord, is_write, devicesTouched);
}

void
MemChannel::finalize(double endTime)
{
    for (int r = 0; r < ranks_; ++r) {
        RankState &rank = rankState_[r];
        if (endTime > rank.accountedTo) {
            double gap = endTime - rank.accountedTo;
            if (ctrl_.enablePowerDown &&
                gap > ctrl_.powerDownThresholdNs) {
                rank.standbyTime += ctrl_.powerDownThresholdNs;
                rank.powerDownTime += gap - ctrl_.powerDownThresholdNs;
            } else {
                rank.standbyTime += gap;
            }
            rank.accountedTo = endTime;
        }
        // mW * ns = pJ; divide by 1e3 for nJ.
        double nj = (rank.activeTime * dev_.pActiveStandby() +
                     rank.standbyTime * dev_.pPrechargeStandby() +
                     rank.powerDownTime * dev_.pPowerDown()) *
                    1e-3 * config_.devicesPerRank;
        power_.backgroundNj += nj;
    }
    // Refresh: every device refreshes every tREFI regardless of state.
    double refreshes = endTime / dev_.tREFI;
    power_.refreshNj += refreshes * dev_.refreshEnergy() *
                        config_.devicesPerRank * ranks_;
}

MemorySystem::MemorySystem(const MemoryConfig &config,
                           MapPolicy map_policy, ControllerConfig ctrl)
    : config_(config), map_(config_, map_policy), ctrl_(ctrl)
{
    std::vector<int> all(config_.channels);
    std::iota(all.begin(), all.end(), 0);
    channels_ =
        std::make_unique<ChannelSet>(config_, ctrl_, std::move(all));
}

MemorySystem::~MemorySystem() = default;

double
MemorySystem::access(double now, std::uint64_t addr, bool is_write,
                     bool paired)
{
    if (!paired) {
        DramCoord coord = map_.decode(addr % map_.capacity());
        return channels_->access(now, coord, is_write);
    }

    // Upgraded line: the two sub-lines live at identical coordinates in
    // the two interleaved channels; ChannelSet issues them in lockstep
    // (or back to back under a non-interleaving map).
    std::uint64_t base =
        (addr % map_.capacity()) & ~(kUpgradedLineBytes - 1);
    DramCoord a = map_.decode(base);
    DramCoord b = map_.decode(base + kLineBytes);
    return channels_->accessPaired(now, a, b, is_write);
}

void
MemorySystem::finalize(double endTime)
{
    channels_->finalize(endTime);
}

PowerBreakdown
MemorySystem::breakdown() const
{
    return channels_->breakdown();
}

std::uint64_t
MemorySystem::accesses() const
{
    return channels_->accesses();
}

} // namespace arcc
