/**
 * @file
 * DDR2 device parameters and the memory configurations of Table 7.1.
 *
 * Timing and current (IDD) values follow the Micron 512Mb DDR2-667
 * datasheet family the paper cites [13].  The power formulation is the
 * Micron power-calculator method that DRAMsim also implements, so the
 * *ratios* the paper reports (the only quantities it reports) are
 * preserved even though our absolute milliwatts are approximations.
 */

#ifndef ARCC_DRAM_DRAM_PARAMS_HH
#define ARCC_DRAM_DRAM_PARAMS_HH

#include <cstdint>
#include <string>

namespace arcc
{

/** Device data-bus width. */
enum class DeviceWidth
{
    X4,
    X8,
    X16,
};

/** @return "x4" / "x8" / "x16". */
const char *toString(DeviceWidth w);

/**
 * Electrical and timing parameters of one DRAM device.
 * Currents are in mA, voltages in V, times in ns.
 */
struct DeviceParams
{
    std::string name;
    DeviceWidth width = DeviceWidth::X4;

    /** Device density in megabits. */
    int densityMbit = 512;
    /** Internal banks. */
    int banks = 8;
    /** Rows per bank. */
    int rowsPerBank = 8192;
    /** Row size in bytes contributed by this device. */
    int rowBytes = 1024;

    // --- Timing (ns); DDR2-667 grade (tCK = 3 ns, CL = 5). ---
    double tCK = 3.0;
    int clCycles = 5;     ///< CAS latency, cycles.
    int tRCD = 5;         ///< ACT-to-CAS, cycles.
    int tRP = 5;          ///< Precharge, cycles.
    int tRAS = 15;        ///< ACT-to-PRE minimum, cycles.
    int tRC = 20;         ///< ACT-to-ACT same bank, cycles.
    int tRRD = 3;         ///< ACT-to-ACT different bank, cycles.
    int tWR = 5;          ///< Write recovery, cycles.
    int tWTR = 3;         ///< Write-to-read turnaround, cycles.
    int burstLength = 4;  ///< Beats per access (DDR: BL/2 cycles).

    // --- Currents (mA) at VDD. ---
    double vdd = 1.8;
    double idd0 = 90.0;   ///< One-bank ACT-PRE average.
    double idd2p = 7.0;   ///< Precharge power-down standby.
    double idd2n = 30.0;  ///< Precharge standby.
    double idd3n = 35.0;  ///< Active standby.
    double idd3p = 12.0;  ///< Active power-down standby.
    double idd4r = 150.0; ///< Burst read.
    double idd4w = 155.0; ///< Burst write.
    double idd5 = 200.0;  ///< Refresh.

    /** Termination / IO energy per data beat (nJ), both directions. */
    double ioEnergyPerBeat = 0.15;

    /** Refresh interval (ns) and refresh command period tRFC (ns). */
    double tREFI = 7800.0;
    double tRFC = 105.0;

    /** Burst duration in clock cycles (DDR moves 2 beats/cycle). */
    int burstCycles() const { return burstLength / 2; }

    /**
     * Unloaded read latency in ns: ACT-to-CAS + CAS latency + burst,
     * with no queueing, bank, or bus contention.  The sharded system
     * simulator's front-end uses this as its initial estimate of a
     * miss's memory latency before the back-end replay refines it.
     */
    double unloadedReadLatencyNs() const
    {
        return (tRCD + clCycles + burstCycles()) * tCK;
    }

    /** Derived per-event energies (nJ per device). */
    double actPreEnergy() const;
    double readBurstEnergy() const;
    double writeBurstEnergy() const;
    /** Background power (mW per device) by state. */
    double pPrechargeStandby() const { return idd2n * vdd; }
    double pPowerDown() const { return idd2p * vdd; }
    double pActiveStandby() const { return idd3n * vdd; }
    double refreshEnergy() const;
};

/** @return Micron-style 512Mb DDR2-667 x4 part. */
DeviceParams ddr2_667_x4();

/** @return Micron-style 512Mb DDR2-667 x8 part. */
DeviceParams ddr2_667_x8();

/**
 * A full memory-system configuration (one row of Table 7.1).
 */
struct MemoryConfig
{
    std::string name;
    DeviceParams device;
    int channels = 2;
    int ranksPerChannel = 1;
    int devicesPerRank = 36;
    int dataDevicesPerRank = 32;

    /**
     * Devices touched by one 64B access under this scheme (36 for the
     * commercial baseline, 18 for an ARCC relaxed access).
     */
    int devicesPerAccess = 36;

    /**
     * The paper's Section 7.1 assumption: 4KB pages per logical row.
     * Drives the address map and the fault-to-page geometry.
     */
    int pagesPerRow = 2;

    /** Rank data-bus width in bits (data devices only). */
    int dataBusBits() const;
    /** Total devices in the system. */
    int totalDevices() const
    {
        return channels * ranksPerChannel * devicesPerRank;
    }
    /** Data capacity in bytes (check devices excluded). */
    std::uint64_t dataBytes() const;
    /** 4KB data pages in the system. */
    std::uint64_t pages() const;
};

/** Table 7.1 "Baseline": 2 channels x 1 rank x 36 DDR2 x4 devices. */
MemoryConfig baselineConfig();

/** Table 7.1 "ARCC": 2 channels x 2 ranks x 18 DDR2 x8 devices. */
MemoryConfig arccConfig();

/** LOT-ECC nine-device configuration (2 channels x 4 ranks x 9 x8). */
MemoryConfig lotEcc9Config();

/**
 * Re-provision a configuration with a different channel count,
 * scaling the capacity with it (per-channel geometry is unchanged).
 * The paper's machine has 2 channels; the wider variants exist to fan
 * the channel-sharded system simulator out past 2 back-end shards.
 * fatal() when the paper's 2-pages-per-row row (Section 7.1) cannot
 * split evenly over the requested channels.
 */
MemoryConfig withChannels(MemoryConfig base, int channels);

/** arccConfig() widened to 4 channels (4 back-end shard groups
 *  unpairable, 2 pairable). */
MemoryConfig arccConfig4();

/** arccConfig() widened to 8 channels (8 back-end shard groups
 *  unpairable, 4 pairable). */
MemoryConfig arccConfig8();

} // namespace arcc

#endif // ARCC_DRAM_DRAM_PARAMS_HH
