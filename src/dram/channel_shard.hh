/**
 * @file
 * Channel-sharded DRAM timing state: the per-channel half of the
 * system simulator's shard-reduce split.
 *
 * `MemorySystem` couples every channel behind one facade, which is
 * what a serial event loop wants but exactly what a sharded back-end
 * must not have.  This header factors the coupling apart:
 *
 *  - ChannelSet owns the MemChannel timing/power state for a
 *    *subset* of the system's channels and carries the paired
 *    (upgraded 128B) lockstep-issue logic that used to live inside
 *    MemorySystem::access().  MemorySystem itself is now a ChannelSet
 *    over all channels plus the address decode.
 *
 *  - ChannelShardPlan partitions the channel ids into shard groups
 *    such that every access -- including a paired access, whose two
 *    sub-lines land in two different channels under the interleaved
 *    maps -- touches channels of exactly one group.  The partition is
 *    a pure function of the AddressMap and the "can upgraded traffic
 *    occur" flag, never of the thread count, so it is a legal shard
 *    boundary under the engine's determinism contract (see
 *    docs/ARCHITECTURE.md).
 */

#ifndef ARCC_DRAM_CHANNEL_SHARD_HH
#define ARCC_DRAM_CHANNEL_SHARD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/mem_controller.hh"

namespace arcc
{

/**
 * The DRAM timing and power state of a disjoint set of channels.
 *
 * A ChannelSet accepts pre-decoded coordinates (the caller owns the
 * AddressMap) whose channel ids must belong to the set; arrival times
 * must be non-decreasing across calls, exactly as for MemChannel.
 * One shard of the sharded system simulator owns one ChannelSet, so
 * no lock is ever needed: shards touch disjoint channel state.
 */
class ChannelSet
{
  public:
    /**
     * @param config   memory configuration; must outlive the set.
     * @param ctrl     controller knobs (queue depth, pairing policy).
     * @param channels global channel ids this set owns.
     */
    ChannelSet(const MemoryConfig &config, const ControllerConfig &ctrl,
               std::vector<int> channels);

    /** @return true when this set owns the given global channel id. */
    bool owns(int channel) const;

    /**
     * Issue one unpaired 64B access at pre-decoded coordinates.
     * @return data-ready time (ns).
     */
    double access(double now, const DramCoord &coord, bool is_write);

    /**
     * Issue one upgraded 128B access: sub-lines `a` and `b` issue in
     * lockstep when they live in two channels (both must be owned by
     * this set), or back to back when a non-interleaving map puts
     * them in the same channel.  This is the logic formerly inlined
     * in MemorySystem::access().
     * @return data-ready time of the later sub-line (ns).
     */
    double accessPaired(double now, const DramCoord &a,
                        const DramCoord &b, bool is_write);

    /** Account background + refresh energy up to endTime; call once. */
    void finalize(double endTime);

    /** Summed power breakdown of the owned channels (in channel-id
     *  order, so the floating-point sum is reproducible). */
    PowerBreakdown breakdown() const;

    /** Total accesses committed across the owned channels. */
    std::uint64_t accesses() const;

    /** The owned global channel ids, ascending. */
    const std::vector<int> &channels() const { return ids_; }

  private:
    MemChannel &chan(int id);

    const MemoryConfig &config_;
    std::vector<int> ids_;
    /** Dense lookup: global channel id -> index into channels_, or -1. */
    std::vector<int> index_;
    std::vector<std::unique_ptr<MemChannel>> channels_;
};

/**
 * Deterministic partition of the channel ids into shard groups.
 *
 * Two channels share a group iff a paired access can span them, which
 * is probed directly from the AddressMap: for every 128B-aligned pair
 * the channels of the two sub-lines are unioned.  Under the
 * interleaved maps (HiPerf, ClosePage) this yields {2k, 2k+1} pairs;
 * under the Base map sub-lines share a channel and every group is a
 * singleton.  When `pairable` is false (the upgrade oracle can never
 * upgrade a page, so no paired traffic exists) the plan skips the
 * union and shards per channel.
 *
 * Group boundaries depend only on (map, pairable) -- never on the
 * thread count -- and groups are emitted in ascending order of their
 * lowest channel id, so a shard-order merge over the plan is
 * bit-identical at any thread count.
 */
class ChannelShardPlan
{
  public:
    ChannelShardPlan(const AddressMap &map, bool pairable);

    /** Number of shard groups (== the back-end's shard count). */
    std::size_t groups() const { return groups_.size(); }

    /** Global channel ids of group `g`, ascending. */
    const std::vector<int> &group(std::size_t g) const
    {
        return groups_[g];
    }

    /** Group index owning the given global channel id. */
    int groupOf(int channel) const { return groupOf_[channel]; }

  private:
    std::vector<std::vector<int>> groups_;
    std::vector<int> groupOf_;
};

} // namespace arcc

#endif // ARCC_DRAM_CHANNEL_SHARD_HH
