/**
 * @file
 * Closed-page DDR2 memory channel timing and power model, plus the
 * multi-channel MemorySystem facade.
 *
 * The model is a reservation-based FCFS simulator: requests must be
 * presented in non-decreasing arrival-time order (the system simulator
 * guarantees this) and each request immediately reserves the earliest
 * feasible ACT slot on its bank and data-burst slot on the channel bus,
 * honouring tRC, tRRD, tRCD, CL/CWL, bus occupancy, read/write
 * turnaround, and a bounded request queue.  With a closed-page policy
 * and in-order issue this reproduces event-driven results exactly.
 *
 * Upgraded (128B) ARCC lines are *paired* accesses: the two 64B
 * sub-lines live at the same coordinates of the two channels
 * (Section 4.1) and must issue in lockstep (Section 4.2.4).  Both
 * pairing designs from the paper are modelled:
 *
 *  - PairingPolicy::FifoPartition -- the sub-line queue is a strict
 *    FIFO; a paired request cannot bypass any earlier request, so its
 *    issue serialises behind the youngest issue in both channels.
 *  - PairingPolicy::Pointer -- the partner entry is promoted to the
 *    head of the other channel's queue, so only physical resource
 *    availability constrains the lockstep issue.
 *
 * Power follows the Micron power-calculator formulation: per-access
 * ACT/PRE and burst energies, state-dependent background power with
 * optional precharge power-down, and refresh energy.
 */

#ifndef ARCC_DRAM_MEM_CONTROLLER_HH
#define ARCC_DRAM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dram/address_map.hh"
#include "dram/dram_params.hh"

namespace arcc
{

/** Lockstep coordination design for upgraded sub-lines (Sec 4.2.4). */
enum class PairingPolicy
{
    FifoPartition,
    Pointer,
};

/** Controller knobs. */
struct ControllerConfig
{
    /** Per-channel request queue capacity. */
    int queueDepth = 32;
    /** Enter precharge power-down after this much rank idle time (ns). */
    double powerDownThresholdNs = 100.0;
    /** Model power-down at all. */
    bool enablePowerDown = true;
    PairingPolicy pairing = PairingPolicy::Pointer;
};

/** Timing outcome of one access. */
struct MemResponse
{
    double issueTime = 0.0;  ///< ACT issue (ns).
    double completion = 0.0; ///< data burst finished (ns).
};

/** Energy breakdown for reporting (nJ). */
struct PowerBreakdown
{
    double dynamicNj = 0.0;
    double backgroundNj = 0.0;
    double refreshNj = 0.0;
    double totalNj() const
    {
        return dynamicNj + backgroundNj + refreshNj;
    }
    /** Average power in mW over the given wall time (ns). */
    double
    avgPowerMw(double elapsed_ns) const
    {
        return elapsed_ns > 0 ? totalNj() / elapsed_ns * 1e3 : 0.0;
    }
};

/**
 * One DDR2 channel: banks, data bus, request queue and per-rank power
 * state tracking.
 */
class MemChannel
{
  public:
    MemChannel(const MemoryConfig &config, const ControllerConfig &ctrl);

    /**
     * Earliest feasible ACT time for a request arriving at `arrival`
     * for the given coordinates, without committing any state.
     */
    double earliestIssue(double arrival, const DramCoord &coord,
                         bool paired) const;

    /**
     * Commit a request with ACT at `issue` (must be >= the value
     * earliestIssue returned for the same request).
     * @param devicesTouched devices consuming ACT + burst energy.
     */
    MemResponse commit(double issue, const DramCoord &coord,
                       bool is_write, int devicesTouched);

    /**
     * Convenience: schedule an unpaired request arriving at `arrival`.
     */
    MemResponse schedule(double arrival, const DramCoord &coord,
                         bool is_write, int devicesTouched);

    /** Account background + refresh energy up to endTime. */
    void finalize(double endTime);

    /** Energy accumulated so far (valid after finalize). */
    const PowerBreakdown &breakdown() const { return power_; }

    /** Number of accesses committed. */
    std::uint64_t accesses() const { return accesses_; }

    /** Arrival adjusted for queue backpressure. */
    double admissionTime(double arrival) const;

    /** Record an admitted request for queue occupancy tracking. */
    void noteOutstanding(double completion);

  private:
    struct RankState
    {
        /** End of the merged "some bank active" window. */
        double activeEnd = 0.0;
        /** Accumulated active (IDD3N) time. */
        double activeTime = 0.0;
        /** Accumulated precharge-standby (IDD2N) time. */
        double standbyTime = 0.0;
        /** Accumulated power-down (IDD2P) time. */
        double powerDownTime = 0.0;
        /** Time fully accounted so far. */
        double accountedTo = 0.0;
    };

    /** Merge [start, end) into the rank's active-window accounting. */
    void accountActivity(RankState &rank, double start, double end);

    const MemoryConfig &config_;
    ControllerConfig ctrl_;
    const DeviceParams &dev_;

    int banks_;
    int ranks_;

    /** bankFree_[rank * banks_ + bank]: earliest next ACT. */
    std::vector<double> bankFree_;
    /** Per-rank earliest next ACT honouring tRRD. */
    std::vector<double> rankActReady_;
    std::vector<RankState> rankState_;

    double busFree_ = 0.0;
    bool lastWasWrite_ = false;
    /** Youngest committed ACT time (for FIFO-partition pairing). */
    double lastIssue_ = 0.0;

    /** Outstanding completions for queue backpressure. */
    std::deque<double> outstanding_;

    PowerBreakdown power_;
    std::uint64_t accesses_ = 0;
};

class ChannelSet;

/**
 * The full memory system: the serial-facing facade over every
 * channel.
 *
 * Internally this is one ChannelSet (dram/channel_shard.hh) spanning
 * all channels plus the address decode; the sharded system simulator
 * bypasses the facade and gives each shard its own ChannelSet over a
 * disjoint channel group instead.
 */
class MemorySystem
{
  public:
    /**
     * @param config     memory geometry and device parameters.
     * @param map_policy address-interleave policy for the decode.
     * @param ctrl       controller knobs (queue depth, pairing).
     */
    MemorySystem(const MemoryConfig &config,
                 MapPolicy map_policy = MapPolicy::HiPerf,
                 ControllerConfig ctrl = {});
    ~MemorySystem();

    /**
     * Issue one access.
     *
     * @param now     arrival time (ns); non-decreasing across calls.
     * @param addr    physical byte address of the 64B line.
     * @param is_write true for a writeback.
     * @param paired  true for an upgraded 128B access: the line pair
     *                {addr & ~127, (addr & ~127) + 64} is fetched from
     *                both channels in lockstep.
     * @return data-ready time (ns).
     */
    double access(double now, std::uint64_t addr, bool is_write,
                  bool paired);

    /**
     * Finish background accounting; call once, at simulation end.
     * @param endTime wall-clock end of the simulated window (ns).
     */
    void finalize(double endTime);

    /** @return aggregate power breakdown (valid after finalize). */
    PowerBreakdown breakdown() const;

    /** @return total accesses issued across all channels. */
    std::uint64_t accesses() const;

    /** @return the address map the facade decodes through. */
    const AddressMap &map() const { return map_; }

    /** @return the memory configuration this system models. */
    const MemoryConfig &config() const { return config_; }

  private:
    MemoryConfig config_;
    AddressMap map_;
    ControllerConfig ctrl_;
    /** All channels as one set (heap: ChannelSet is fwd-declared). */
    std::unique_ptr<ChannelSet> channels_;
};

} // namespace arcc

#endif // ARCC_DRAM_MEM_CONTROLLER_HH
