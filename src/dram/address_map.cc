/**
 * @file
 * Address mapping implementation.
 *
 * All three policies keep the 64B line offset in the low six bits.  The
 * HiPerf and ClosePage policies put the channel index immediately above
 * the offset so adjacent lines alternate channels -- the property ARCC
 * depends on (Section 4.1).
 */

#include "dram/address_map.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace arcc
{

namespace
{

/** Extract a field of `count` values from addr, advancing it. */
std::uint64_t
takeField(std::uint64_t &addr, std::uint64_t count)
{
    std::uint64_t v = addr % count;
    addr /= count;
    return v;
}

} // anonymous namespace

AddressMap::AddressMap(const MemoryConfig &config, MapPolicy policy)
    : policy_(policy),
      channels_(config.channels),
      ranks_(config.ranksPerChannel),
      banks_(config.device.banks)
{
    // The paper's logical row: pagesPerRow 4KB pages spread across the
    // channels; each channel-row slice holds this many 64B lines.
    std::uint64_t lines =
        static_cast<std::uint64_t>(config.pagesPerRow) * kLinesPerPage /
        channels_;
    if (lines == 0 || config.pagesPerRow * kLinesPerPage %
                          static_cast<std::uint64_t>(channels_) != 0)
        fatal("AddressMap: %d pages/row does not split over %d channels",
              config.pagesPerRow, channels_);
    lines_per_row_ = static_cast<std::uint32_t>(lines);

    capacity_ = config.dataBytes();
    std::uint64_t row_slice_bytes = lines_per_row_ * kLineBytes;
    std::uint64_t denom = static_cast<std::uint64_t>(channels_) * ranks_ *
                          banks_ * row_slice_bytes;
    if (capacity_ % denom != 0)
        fatal("AddressMap: capacity %llu not divisible by geometry",
              static_cast<unsigned long long>(capacity_));
    rows_ = static_cast<std::uint32_t>(capacity_ / denom);
}

DramCoord
AddressMap::decode(std::uint64_t addr) const
{
    ARCC_ASSERT(addr < capacity_);
    std::uint64_t line = addr / kLineBytes;
    DramCoord c;
    switch (policy_) {
      case MapPolicy::HiPerf:
        c.channel = static_cast<int>(takeField(line, channels_));
        c.column = static_cast<std::uint32_t>(
            takeField(line, lines_per_row_));
        c.bank = static_cast<int>(takeField(line, banks_));
        c.rank = static_cast<int>(takeField(line, ranks_));
        c.row = static_cast<std::uint32_t>(takeField(line, rows_));
        break;
      case MapPolicy::ClosePage:
        c.channel = static_cast<int>(takeField(line, channels_));
        c.column = static_cast<std::uint32_t>(
            takeField(line, lines_per_row_));
        c.rank = static_cast<int>(takeField(line, ranks_));
        c.bank = static_cast<int>(takeField(line, banks_));
        c.row = static_cast<std::uint32_t>(takeField(line, rows_));
        break;
      case MapPolicy::Base:
        c.column = static_cast<std::uint32_t>(
            takeField(line, lines_per_row_));
        c.channel = static_cast<int>(takeField(line, channels_));
        c.bank = static_cast<int>(takeField(line, banks_));
        c.rank = static_cast<int>(takeField(line, ranks_));
        c.row = static_cast<std::uint32_t>(takeField(line, rows_));
        break;
    }
    return c;
}

std::uint64_t
AddressMap::encode(const DramCoord &coord) const
{
    std::uint64_t line = 0;
    switch (policy_) {
      case MapPolicy::HiPerf:
        line = coord.row;
        line = line * ranks_ + coord.rank;
        line = line * banks_ + coord.bank;
        line = line * lines_per_row_ + coord.column;
        line = line * channels_ + coord.channel;
        break;
      case MapPolicy::ClosePage:
        line = coord.row;
        line = line * banks_ + coord.bank;
        line = line * ranks_ + coord.rank;
        line = line * lines_per_row_ + coord.column;
        line = line * channels_ + coord.channel;
        break;
      case MapPolicy::Base:
        line = coord.row;
        line = line * ranks_ + coord.rank;
        line = line * banks_ + coord.bank;
        line = line * channels_ + coord.channel;
        line = line * lines_per_row_ + coord.column;
        break;
    }
    return line * kLineBytes;
}

} // namespace arcc
