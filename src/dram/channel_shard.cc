/**
 * @file
 * ChannelSet / ChannelShardPlan implementation.
 */

#include "dram/channel_shard.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/units.hh"

namespace arcc
{

ChannelSet::ChannelSet(const MemoryConfig &config,
                       const ControllerConfig &ctrl,
                       std::vector<int> channels)
    : config_(config), ids_(std::move(channels)),
      index_(config.channels, -1)
{
    std::sort(ids_.begin(), ids_.end());
    for (std::size_t i = 0; i < ids_.size(); ++i) {
        int id = ids_[i];
        ARCC_ASSERT(id >= 0 && id < config.channels);
        index_[id] = static_cast<int>(i);
        channels_.push_back(std::make_unique<MemChannel>(config, ctrl));
    }
}

bool
ChannelSet::owns(int channel) const
{
    return channel >= 0 &&
           channel < static_cast<int>(index_.size()) &&
           index_[channel] >= 0;
}

MemChannel &
ChannelSet::chan(int id)
{
    ARCC_ASSERT(owns(id));
    return *channels_[index_[id]];
}

double
ChannelSet::access(double now, const DramCoord &coord, bool is_write)
{
    MemResponse r = chan(coord.channel)
                        .schedule(now, coord, is_write,
                                  config_.devicesPerAccess);
    return r.completion;
}

double
ChannelSet::accessPaired(double now, const DramCoord &a,
                         const DramCoord &b, bool is_write)
{
    if (a.channel == b.channel) {
        // A mapping without channel interleaving (e.g. the Base map)
        // cannot fetch the pair in parallel; the 128B line costs two
        // sequential accesses on the one channel, which is exactly why
        // Section 4.1 requires the interleaved maps.
        MemChannel &ch = chan(a.channel);
        MemResponse r1 =
            ch.schedule(now, a, is_write, config_.devicesPerAccess);
        MemResponse r2 =
            ch.schedule(now, b, is_write, config_.devicesPerAccess);
        return std::max(r1.completion, r2.completion);
    }

    // The two sub-lines issue in lockstep (Section 4.2.4): a common
    // ACT time no earlier than either channel allows.
    MemChannel &cha = chan(a.channel);
    MemChannel &chb = chan(b.channel);
    double t = std::max(cha.earliestIssue(now, a, true),
                        chb.earliestIssue(now, b, true));
    MemResponse ra =
        cha.commit(t, a, is_write, config_.devicesPerAccess);
    MemResponse rb =
        chb.commit(t, b, is_write, config_.devicesPerAccess);
    return std::max(ra.completion, rb.completion);
}

void
ChannelSet::finalize(double endTime)
{
    for (auto &ch : channels_)
        ch->finalize(endTime);
}

PowerBreakdown
ChannelSet::breakdown() const
{
    PowerBreakdown total;
    for (const auto &ch : channels_) {
        total.dynamicNj += ch->breakdown().dynamicNj;
        total.backgroundNj += ch->breakdown().backgroundNj;
        total.refreshNj += ch->breakdown().refreshNj;
    }
    return total;
}

std::uint64_t
ChannelSet::accesses() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->accesses();
    return n;
}

ChannelShardPlan::ChannelShardPlan(const AddressMap &map, bool pairable)
{
    const int n = map.channels();
    std::vector<int> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](int c) {
        while (parent[c] != c)
            c = parent[c] = parent[parent[c]];
        return c;
    };

    if (pairable) {
        // Probe the map directly: union the channels of the two
        // sub-lines of each 128B pair.  All three policies derive the
        // channel from low line-index bits, so a small prefix of the
        // address space visits every (pair -> channel) relation; the
        // probe is still capped by capacity for tiny configurations.
        std::uint64_t pairs =
            std::min<std::uint64_t>(map.capacity() /
                                        kUpgradedLineBytes,
                                    4096);
        for (std::uint64_t p = 0; p < pairs; ++p) {
            std::uint64_t base = p * kUpgradedLineBytes;
            int a = map.decode(base).channel;
            int b = map.decode(base + kLineBytes).channel;
            int ra = find(a);
            int rb = find(b);
            if (ra != rb)
                parent[std::max(ra, rb)] = std::min(ra, rb);
        }
    }

    // Emit groups in ascending order of their lowest channel id: the
    // root of each union is its minimum member, so walking the
    // channels in order lists the groups deterministically.
    groupOf_.assign(n, -1);
    for (int c = 0; c < n; ++c) {
        int root = find(c);
        if (groupOf_[root] < 0) {
            groupOf_[root] = static_cast<int>(groups_.size());
            groups_.emplace_back();
        }
        groupOf_[c] = groupOf_[root];
        groups_[groupOf_[c]].push_back(c);
    }
}

} // namespace arcc
