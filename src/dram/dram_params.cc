/**
 * @file
 * DDR2 parameter sets and Table 7.1 configurations.
 */

#include "dram/dram_params.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace arcc
{

const char *
toString(DeviceWidth w)
{
    switch (w) {
      case DeviceWidth::X4:  return "x4";
      case DeviceWidth::X8:  return "x8";
      case DeviceWidth::X16: return "x16";
    }
    return "?";
}

double
DeviceParams::actPreEnergy() const
{
    // Micron power-calc: the ACT/PRE pair costs IDD0 over tRC minus the
    // standby current that would have flowed anyway (IDD3N while the
    // row is open, IDD2N while precharged).
    double t_rc_ns = tRC * tCK;
    double t_ras_ns = tRAS * tCK;
    double e = idd0 * vdd * t_rc_ns -
               (idd3n * vdd * t_ras_ns +
                idd2n * vdd * (t_rc_ns - t_ras_ns));
    return e * 1e-3; // mA*V*ns = pJ*1e... (mA * V = mW; mW * ns = pJ)
}

double
DeviceParams::readBurstEnergy() const
{
    double t_burst_ns = burstCycles() * tCK;
    double e = (idd4r - idd3n) * vdd * t_burst_ns * 1e-3; // nJ
    return e + ioEnergyPerBeat * burstLength;
}

double
DeviceParams::writeBurstEnergy() const
{
    double t_burst_ns = burstCycles() * tCK;
    double e = (idd4w - idd3n) * vdd * t_burst_ns * 1e-3; // nJ
    return e + ioEnergyPerBeat * burstLength;
}

double
DeviceParams::refreshEnergy() const
{
    double e = (idd5 - idd2n) * vdd * tRFC * 1e-3; // nJ per REF command
    return e;
}

DeviceParams
ddr2_667_x4()
{
    DeviceParams p;
    p.name = "MT47H128M4-3 (512Mb DDR2-667 x4)";
    p.width = DeviceWidth::X4;
    p.densityMbit = 512;
    // The paper's fault model (Table 7.4) assumes 8 banks per device;
    // 8 banks x 8192 rows x 1 KB rows = 512 Mb.
    p.banks = 8;
    p.rowsPerBank = 8192;
    p.rowBytes = 1024; // 2K columns x 4 bits
    // DDR2-667 grade timing (tCK = 3 ns, 5-5-5).
    p.tCK = 3.0;
    p.clCycles = 5;
    p.tRCD = 5;
    p.tRP = 5;
    p.tRAS = 15;
    p.tRC = 20;
    p.tRRD = 3;
    p.tWR = 5;
    p.tWTR = 3;
    p.burstLength = 4;
    // Datasheet-approximate currents.
    p.vdd = 1.8;
    p.idd0 = 90.0;
    p.idd2p = 7.0;
    p.idd2n = 24.0;
    p.idd3n = 30.0;
    p.idd3p = 12.0;
    p.idd4r = 150.0;
    p.idd4w = 155.0;
    p.idd5 = 200.0;
    p.ioEnergyPerBeat = 0.10;
    return p;
}

DeviceParams
ddr2_667_x8()
{
    DeviceParams p = ddr2_667_x4();
    p.name = "MT47H64M8-3 (512Mb DDR2-667 x8)";
    p.width = DeviceWidth::X8;
    p.banks = 8;
    p.rowsPerBank = 8192;
    p.rowBytes = 1024; // 1K columns x 8 bits
    // A x8 part drives twice the DQ pins: slightly higher burst and IO
    // currents, same core timing.
    p.idd4r = 155.0;
    p.idd4w = 160.0;
    p.ioEnergyPerBeat = 0.14;
    return p;
}

int
MemoryConfig::dataBusBits() const
{
    int bits_per_dev = 0;
    switch (device.width) {
      case DeviceWidth::X4:  bits_per_dev = 4;  break;
      case DeviceWidth::X8:  bits_per_dev = 8;  break;
      case DeviceWidth::X16: bits_per_dev = 16; break;
    }
    return dataDevicesPerRank * bits_per_dev;
}

std::uint64_t
MemoryConfig::dataBytes() const
{
    std::uint64_t per_dev =
        static_cast<std::uint64_t>(device.densityMbit) * kMiB / 8;
    return per_dev * static_cast<std::uint64_t>(dataDevicesPerRank) *
           ranksPerChannel * channels;
}

std::uint64_t
MemoryConfig::pages() const
{
    return dataBytes() / kPageBytes;
}

MemoryConfig
baselineConfig()
{
    MemoryConfig c;
    c.name = "Baseline (commercial SCCDCD)";
    c.device = ddr2_667_x4();
    c.channels = 2;
    c.ranksPerChannel = 1;
    c.devicesPerRank = 36;
    c.dataDevicesPerRank = 32;
    c.devicesPerAccess = 36;
    return c;
}

MemoryConfig
arccConfig()
{
    MemoryConfig c;
    c.name = "ARCC (relaxed chipkill)";
    c.device = ddr2_667_x8();
    c.channels = 2;
    c.ranksPerChannel = 2;
    c.devicesPerRank = 18;
    c.dataDevicesPerRank = 16;
    c.devicesPerAccess = 18;
    return c;
}

MemoryConfig
lotEcc9Config()
{
    MemoryConfig c;
    c.name = "LOT-ECC nine-device";
    c.device = ddr2_667_x8();
    c.channels = 2;
    c.ranksPerChannel = 4;
    c.devicesPerRank = 9;
    c.dataDevicesPerRank = 8;
    c.devicesPerAccess = 9;
    return c;
}

MemoryConfig
withChannels(MemoryConfig base, int channels)
{
    if (channels < 1)
        fatal("withChannels: need >= 1 channel, got %d", channels);
    std::uint64_t row_lines =
        static_cast<std::uint64_t>(base.pagesPerRow) * kLinesPerPage;
    if (row_lines % static_cast<std::uint64_t>(channels) != 0)
        fatal("withChannels: %d pages/row (%llu lines) does not "
              "split over %d channels",
              base.pagesPerRow,
              static_cast<unsigned long long>(row_lines), channels);
    base.channels = channels;
    base.name += " @" + std::to_string(channels) + "ch";
    return base;
}

MemoryConfig
arccConfig4()
{
    return withChannels(arccConfig(), 4);
}

MemoryConfig
arccConfig8()
{
    return withChannels(arccConfig(), 8);
}

} // namespace arcc
