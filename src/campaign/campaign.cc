/**
 * @file
 * Campaign driver implementation.
 */

#include "campaign/campaign.hh"

#include <bit>
#include <cmath>
#include <optional>

#include "campaign/checkpoint.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "engine/sim_engine.hh"
#include "reliability/sdc_model.hh"

namespace arcc
{

namespace
{

/** Sketch shapes are part of the campaign format: changing them
 *  changes every digest, so they are named constants, hashed into
 *  configHash(), and never run-time options. */
constexpr std::uint32_t kAffectedBins = 64;
constexpr std::uint32_t kFaultBins = 64;
constexpr double kFaultHistHi = 64.0;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getU64(const std::uint8_t **cursor, const std::uint8_t *end)
{
    if (end - *cursor < 8)
        fatal("campaign: truncated checkpoint payload (wanted 8 "
              "bytes, have %td)", end - *cursor);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | (*cursor)[i];
    *cursor += 8;
    return v;
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return Rng::mix64(h ^ v);
}

std::uint64_t
foldDouble(std::uint64_t h, double v)
{
    return fold(h, std::bit_cast<std::uint64_t>(v));
}

} // anonymous namespace

std::uint64_t
CampaignSpec::configHash() const
{
    std::uint64_t h = 0x43414d5001ULL; // "CAMP" + format version 1.
    h = fold(h, static_cast<std::uint64_t>(geom.ranks));
    h = fold(h, static_cast<std::uint64_t>(geom.devicesPerRank));
    h = fold(h, static_cast<std::uint64_t>(geom.banksPerDevice));
    h = fold(h, static_cast<std::uint64_t>(geom.pagesPerRow));
    h = fold(h, geom.pages);
    for (double fit : rates.fit)
        h = foldDouble(h, fit);
    h = foldDouble(h, rateBoost);
    h = foldDouble(h, years);
    h = foldDouble(h, scrubHours);
    h = fold(h, static_cast<std::uint64_t>(devicesPerGroup));
    h = fold(h, static_cast<std::uint64_t>(rowsPerBank));
    h = fold(h, static_cast<std::uint64_t>(colsPerBank));
    h = fold(h, channels);
    h = fold(h, epochTrials);
    h = fold(h, shardTrials);
    h = fold(h, kAffectedBins);
    h = fold(h, kFaultBins);
    h = foldDouble(h, kFaultHistHi);
    return h;
}

CampaignAggregate
CampaignAggregate::empty()
{
    CampaignAggregate agg;
    agg.affectedHist = StreamingHistogram(0.0, 1.0, kAffectedBins);
    agg.faultHist = StreamingHistogram(0.0, kFaultHistHi, kFaultBins);
    return agg;
}

void
CampaignAggregate::merge(const CampaignAggregate &other)
{
    trials += other.trials;
    faultsSampled += other.faultsSampled;
    trialsWithFault += other.trialsWithFault;
    sdcCandidates += other.sdcCandidates;
    dueCandidates += other.dueCandidates;
    affectedSum += other.affectedSum;
    affectedHist.merge(other.affectedHist);
    faultHist.merge(other.faultHist);
}

std::uint64_t
CampaignAggregate::hash() const
{
    std::uint64_t h = 0x41474752ULL; // "AGGR"
    h = fold(h, trials);
    h = fold(h, faultsSampled);
    h = fold(h, trialsWithFault);
    h = fold(h, sdcCandidates);
    h = fold(h, dueCandidates);
    h = foldDouble(h, affectedSum);
    h = fold(h, affectedHist.hash());
    h = fold(h, faultHist.hash());
    return h;
}

void
CampaignAggregate::serializeTo(std::vector<std::uint8_t> &out) const
{
    putU64(out, trials);
    putU64(out, faultsSampled);
    putU64(out, trialsWithFault);
    putU64(out, sdcCandidates);
    putU64(out, dueCandidates);
    putU64(out, std::bit_cast<std::uint64_t>(affectedSum));
    affectedHist.serializeTo(out);
    faultHist.serializeTo(out);
}

CampaignAggregate
CampaignAggregate::deserializeFrom(const std::uint8_t **cursor,
                                   const std::uint8_t *end)
{
    CampaignAggregate agg;
    agg.trials = getU64(cursor, end);
    agg.faultsSampled = getU64(cursor, end);
    agg.trialsWithFault = getU64(cursor, end);
    agg.sdcCandidates = getU64(cursor, end);
    agg.dueCandidates = getU64(cursor, end);
    agg.affectedSum = std::bit_cast<double>(getU64(cursor, end));
    agg.affectedHist = StreamingHistogram::deserializeFrom(cursor, end);
    agg.faultHist = StreamingHistogram::deserializeFrom(cursor, end);
    return agg;
}

std::uint64_t
CampaignRunResult::digest(const CampaignSpec &spec) const
{
    std::uint64_t h = 0x43414d50ULL; // "CAMP"
    h = fold(h, spec.configHash());
    h = fold(h, spec.seed);
    h = fold(h, aggregate.hash());
    return h;
}

CampaignDriver::CampaignDriver(const CampaignSpec &spec,
                               SimEngine *engine)
    : spec_(spec), engine_(engine ? engine : &SimEngine::global())
{
    if (spec_.channels == 0)
        fatal("CampaignDriver: zero channels");
    if (spec_.epochTrials == 0)
        fatal("CampaignDriver: zero epochTrials");
    if (spec_.shardTrials == 0)
        fatal("CampaignDriver: zero shardTrials");
    if (spec_.years <= 0.0 || spec_.scrubHours <= 0.0)
        fatal("CampaignDriver: non-positive horizon or scrub period");
    if (spec_.devicesPerGroup <= 0 ||
        spec_.geom.totalDevices() % spec_.devicesPerGroup != 0)
        fatal("CampaignDriver: %d devices per group does not divide "
              "the channel's %d devices",
              spec_.devicesPerGroup, spec_.geom.totalDevices());
}

CampaignAggregate
CampaignDriver::runTrials(std::uint64_t begin, std::uint64_t end) const
{
    CampaignAggregate agg = CampaignAggregate::empty();
    const double hours = spec_.years * kHoursPerYear;
    const int groups =
        spec_.geom.totalDevices() / spec_.devicesPerGroup;
    FaultSampler sampler(spec_.geom,
                         spec_.rates.scaled(spec_.rateBoost));

    std::vector<ConcreteFault> faults;
    for (std::uint64_t trial = begin; trial < end; ++trial) {
        // The whole trial is a pure function of (seed, trial): the
        // lifetime draws and the codeword-footprint draws come from
        // one stream in a fixed order.
        Rng trng = Rng::stream(spec_.seed, trial);
        auto events = sampler.sampleLifetime(hours, trng);

        // Concretise each fault's codeword footprint (group, device
        // within group, row, column); the bank rides along from the
        // lifetime sample.  Events are time-sorted, so the concrete
        // list is too.
        faults.clear();
        AffectedTracker tracker(spec_.geom);
        for (const FaultEvent &e : events) {
            ConcreteFault f;
            f.timeHours = e.timeHours;
            f.type = e.type;
            f.group = static_cast<int>(trng.below(groups));
            f.device =
                static_cast<int>(trng.below(spec_.devicesPerGroup));
            f.bank = e.bank;
            f.row = static_cast<int>(trng.below(spec_.rowsPerBank));
            f.col = static_cast<int>(trng.below(spec_.colsPerBank));
            faults.push_back(f);
            tracker.apply(e);
        }

        // Overlap scans, via the same kernel as the SDC model's
        // validation Monte Carlo.  DUE candidates are overlapping
        // pairs at any separation; SDC candidates additionally need
        // the second fault inside the first's scrub-detection window.
        for (std::size_t i = 0; i < faults.size(); ++i) {
            const double detect =
                (std::floor(faults[i].timeHours / spec_.scrubHours) +
                 1.0) *
                spec_.scrubHours;
            for (std::size_t j = i + 1; j < faults.size(); ++j) {
                if (!faultsOverlap(faults[i], faults[j]))
                    continue;
                ++agg.dueCandidates;
                if (faults[j].timeHours < detect)
                    ++agg.sdcCandidates;
            }
        }

        const double frac = tracker.fraction();
        ++agg.trials;
        agg.faultsSampled += faults.size();
        if (!faults.empty())
            ++agg.trialsWithFault;
        agg.affectedSum += frac;
        agg.affectedHist.add(frac);
        agg.faultHist.add(static_cast<double>(faults.size()));
    }
    return agg;
}

CampaignAggregate
CampaignDriver::runEpoch(std::uint64_t begin, std::uint64_t end) const
{
    ARCC_ASSERT(begin < end);
    return engine_->reduceShards(
        end - begin, spec_.shardTrials,
        [&](const ShardRange &shard) {
            return runTrials(begin + shard.begin, begin + shard.end);
        },
        [](std::vector<CampaignAggregate> &&partials) {
            CampaignAggregate total = CampaignAggregate::empty();
            for (const CampaignAggregate &p : partials)
                total.merge(p);
            return total;
        });
}

CampaignRunResult
CampaignDriver::run(const CampaignRunOptions &options) const
{
    CampaignRunResult result;
    result.aggregate = CampaignAggregate::empty();
    std::uint64_t cursor = 0;
    std::uint64_t next_epoch = 0;

    std::optional<CheckpointWriter> writer;
    if (!options.checkpointPath.empty()) {
        const CheckpointIdentity identity{spec_.configHash(),
                                          spec_.seed};
        // The monotonicity check: sealed records must be exactly
        // epochs 0, 1, 2, ... with the cursor this spec's epoch
        // layout dictates.  A duplicated, reordered or re-laid-out
        // record means the log was not written by this campaign
        // resumed cleanly, and no state derived from it is safe.
        std::uint64_t expect_epoch = 0;
        const CheckpointRecovery recovery = recoverCheckpoint(
            options.checkpointPath, identity,
            [&](std::span<const std::uint8_t> payload) {
                const std::uint8_t *cur = payload.data();
                const std::uint8_t *end =
                    payload.data() + payload.size();
                const std::uint64_t epoch = getU64(&cur, end);
                const std::uint64_t next = getU64(&cur, end);
                if (epoch != expect_epoch)
                    fatal("campaign checkpoint '%s': record %llu "
                          "names epoch %llu (duplicated or reordered "
                          "records); refusing to resume",
                          options.checkpointPath.c_str(),
                          static_cast<unsigned long long>(
                              expect_epoch),
                          static_cast<unsigned long long>(epoch));
                if (next != spec_.epochEnd(epoch))
                    fatal("campaign checkpoint '%s': epoch %llu ends "
                          "at trial %llu but this spec's layout says "
                          "%llu (epochTrials changed?); refusing to "
                          "resume",
                          options.checkpointPath.c_str(),
                          static_cast<unsigned long long>(epoch),
                          static_cast<unsigned long long>(next),
                          static_cast<unsigned long long>(
                              spec_.epochEnd(epoch)));
                ++expect_epoch;
            });

        if (recovery.records > 0) {
            const std::uint8_t *cur = recovery.lastPayload.data();
            const std::uint8_t *end =
                cur + recovery.lastPayload.size();
            const std::uint64_t epoch = getU64(&cur, end);
            cursor = getU64(&cur, end);
            result.aggregate =
                CampaignAggregate::deserializeFrom(&cur, end);
            if (result.aggregate.trials != cursor)
                fatal("campaign checkpoint '%s': aggregate covers "
                      "%llu trials but the cursor says %llu; "
                      "refusing to resume",
                      options.checkpointPath.c_str(),
                      static_cast<unsigned long long>(
                          result.aggregate.trials),
                      static_cast<unsigned long long>(cursor));
            next_epoch = epoch + 1;
            result.resumedFromTrial = cursor;
        }
        writer.emplace(
            CheckpointWriter::resume(options.checkpointPath,
                                     recovery));
    }

    while (cursor < spec_.channels) {
        if (options.stopRequested && options.stopRequested()) {
            result.interrupted = true;
            break;
        }
        const std::uint64_t end = spec_.epochEnd(next_epoch);
        CampaignAggregate partial = runEpoch(cursor, end);
        result.aggregate.merge(partial);
        cursor = end;

        if (writer) {
            std::vector<std::uint8_t> payload;
            putU64(payload, next_epoch);
            putU64(payload, cursor);
            result.aggregate.serializeTo(payload);
            writer->append(payload);
        }
        ++next_epoch;
        ++result.epochsRun;
        if (options.maxEpochs != 0 &&
            result.epochsRun >= options.maxEpochs &&
            cursor < spec_.channels) {
            result.interrupted = true;
            break;
        }
    }
    return result;
}

} // namespace arcc
