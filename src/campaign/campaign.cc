/**
 * @file
 * Campaign driver implementation.
 */

#include "campaign/campaign.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "campaign/checkpoint.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "engine/sim_engine.hh"
#include "reliability/sdc_model.hh"

namespace arcc
{

namespace
{

/** Sketch shapes are part of the campaign format: changing them
 *  changes every digest, so they are named constants, hashed into
 *  configHash(), and never run-time options. */
constexpr std::uint32_t kAffectedBins = 64;
constexpr std::uint32_t kFaultBins = 64;
constexpr double kFaultHistHi = 64.0;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getU64(const std::uint8_t **cursor, const std::uint8_t *end)
{
    if (end - *cursor < 8)
        fatal("campaign: truncated checkpoint payload (wanted 8 "
              "bytes, have %td)", end - *cursor);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | (*cursor)[i];
    *cursor += 8;
    return v;
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    return Rng::mix64(h ^ v);
}

std::uint64_t
foldDouble(std::uint64_t h, double v)
{
    return fold(h, std::bit_cast<std::uint64_t>(v));
}

} // anonymous namespace

std::uint64_t
CampaignSpec::configHash() const
{
    std::uint64_t h = 0x43414d5001ULL; // "CAMP" + format version 1.
    h = fold(h, static_cast<std::uint64_t>(geom.ranks));
    h = fold(h, static_cast<std::uint64_t>(geom.devicesPerRank));
    h = fold(h, static_cast<std::uint64_t>(geom.banksPerDevice));
    h = fold(h, static_cast<std::uint64_t>(geom.pagesPerRow));
    h = fold(h, geom.pages);
    for (double fit : rates.fit)
        h = foldDouble(h, fit);
    h = foldDouble(h, rateBoost);
    h = foldDouble(h, years);
    h = foldDouble(h, scrubHours);
    h = fold(h, static_cast<std::uint64_t>(devicesPerGroup));
    h = fold(h, static_cast<std::uint64_t>(rowsPerBank));
    h = fold(h, static_cast<std::uint64_t>(colsPerBank));
    h = fold(h, channels);
    h = fold(h, epochTrials);
    h = fold(h, shardTrials);
    h = fold(h, kAffectedBins);
    h = fold(h, kFaultBins);
    h = foldDouble(h, kFaultHistHi);
    return h;
}

CampaignAggregate
CampaignAggregate::empty()
{
    CampaignAggregate agg;
    agg.affectedHist = StreamingHistogram(0.0, 1.0, kAffectedBins);
    agg.faultHist = StreamingHistogram(0.0, kFaultHistHi, kFaultBins);
    return agg;
}

void
CampaignAggregate::merge(const CampaignAggregate &other)
{
    trials += other.trials;
    faultsSampled += other.faultsSampled;
    trialsWithFault += other.trialsWithFault;
    sdcCandidates += other.sdcCandidates;
    dueCandidates += other.dueCandidates;
    affectedSum += other.affectedSum;
    affectedHist.merge(other.affectedHist);
    faultHist.merge(other.faultHist);
}

std::uint64_t
CampaignAggregate::hash() const
{
    std::uint64_t h = 0x41474752ULL; // "AGGR"
    h = fold(h, trials);
    h = fold(h, faultsSampled);
    h = fold(h, trialsWithFault);
    h = fold(h, sdcCandidates);
    h = fold(h, dueCandidates);
    h = foldDouble(h, affectedSum);
    h = fold(h, affectedHist.hash());
    h = fold(h, faultHist.hash());
    return h;
}

void
CampaignAggregate::serializeTo(std::vector<std::uint8_t> &out) const
{
    putU64(out, trials);
    putU64(out, faultsSampled);
    putU64(out, trialsWithFault);
    putU64(out, sdcCandidates);
    putU64(out, dueCandidates);
    putU64(out, std::bit_cast<std::uint64_t>(affectedSum));
    affectedHist.serializeTo(out);
    faultHist.serializeTo(out);
}

CampaignAggregate
CampaignAggregate::deserializeFrom(const std::uint8_t **cursor,
                                   const std::uint8_t *end)
{
    CampaignAggregate agg;
    agg.trials = getU64(cursor, end);
    agg.faultsSampled = getU64(cursor, end);
    agg.trialsWithFault = getU64(cursor, end);
    agg.sdcCandidates = getU64(cursor, end);
    agg.dueCandidates = getU64(cursor, end);
    agg.affectedSum = std::bit_cast<double>(getU64(cursor, end));
    agg.affectedHist = StreamingHistogram::deserializeFrom(cursor, end);
    agg.faultHist = StreamingHistogram::deserializeFrom(cursor, end);
    return agg;
}

std::uint64_t
CampaignRunResult::digest(const CampaignSpec &spec) const
{
    std::uint64_t h = 0x43414d50ULL; // "CAMP"
    h = fold(h, spec.configHash());
    h = fold(h, spec.seed);
    h = fold(h, aggregate.hash());
    return h;
}

WorkerPlan::WorkerPlan(const CampaignSpec &spec, std::uint32_t workers)
    : workers_(workers), channels_(spec.channels)
{
    if (workers == 0)
        fatal("WorkerPlan: zero workers");
}

WorkerRange
WorkerPlan::range(std::uint32_t id) const
{
    if (id >= workers_)
        fatal("WorkerPlan: worker id %u out of range (plan has %u "
              "workers)", id, workers_);
    // Balanced contiguous split: the first (channels % workers)
    // ranges are one trial longer.  Pure function of (channels,
    // workers), so every process derives identical ranges.
    const std::uint64_t base = channels_ / workers_;
    const std::uint64_t rem = channels_ % workers_;
    WorkerRange r;
    r.begin = static_cast<std::uint64_t>(id) * base +
              std::min<std::uint64_t>(id, rem);
    r.end = r.begin + base + (id < rem ? 1 : 0);
    return r;
}

std::string
workerCheckpointPath(const std::string &base, std::uint32_t workerId)
{
    return base + ".w" + std::to_string(workerId);
}

CampaignDriver::CampaignDriver(const CampaignSpec &spec,
                               SimEngine *engine)
    : spec_(spec), engine_(engine ? engine : &SimEngine::global())
{
    if (spec_.channels == 0)
        fatal("CampaignDriver: zero channels");
    if (spec_.epochTrials == 0)
        fatal("CampaignDriver: zero epochTrials");
    if (spec_.shardTrials == 0)
        fatal("CampaignDriver: zero shardTrials");
    if (spec_.years <= 0.0 || spec_.scrubHours <= 0.0)
        fatal("CampaignDriver: non-positive horizon or scrub period");
    if (spec_.devicesPerGroup <= 0 ||
        spec_.geom.totalDevices() % spec_.devicesPerGroup != 0)
        fatal("CampaignDriver: %d devices per group does not divide "
              "the channel's %d devices",
              spec_.devicesPerGroup, spec_.geom.totalDevices());
}

CampaignAggregate
CampaignDriver::runTrials(std::uint64_t begin, std::uint64_t end) const
{
    CampaignAggregate agg = CampaignAggregate::empty();
    const double hours = spec_.years * kHoursPerYear;
    const int groups =
        spec_.geom.totalDevices() / spec_.devicesPerGroup;
    FaultSampler sampler(spec_.geom,
                         spec_.rates.scaled(spec_.rateBoost));

    std::vector<ConcreteFault> faults;
    for (std::uint64_t trial = begin; trial < end; ++trial) {
        // The whole trial is a pure function of (seed, trial): the
        // lifetime draws and the codeword-footprint draws come from
        // one stream in a fixed order.
        Rng trng = Rng::stream(spec_.seed, trial);
        auto events = sampler.sampleLifetime(hours, trng);

        // Concretise each fault's codeword footprint (group, device
        // within group, row, column); the bank rides along from the
        // lifetime sample.  Events are time-sorted, so the concrete
        // list is too.
        faults.clear();
        AffectedTracker tracker(spec_.geom);
        for (const FaultEvent &e : events) {
            ConcreteFault f;
            f.timeHours = e.timeHours;
            f.type = e.type;
            f.group = static_cast<int>(trng.below(groups));
            f.device =
                static_cast<int>(trng.below(spec_.devicesPerGroup));
            f.bank = e.bank;
            f.row = static_cast<int>(trng.below(spec_.rowsPerBank));
            f.col = static_cast<int>(trng.below(spec_.colsPerBank));
            faults.push_back(f);
            tracker.apply(e);
        }

        // Overlap scans, via the same kernel as the SDC model's
        // validation Monte Carlo.  DUE candidates are overlapping
        // pairs at any separation; SDC candidates additionally need
        // the second fault inside the first's scrub-detection window.
        for (std::size_t i = 0; i < faults.size(); ++i) {
            const double detect =
                (std::floor(faults[i].timeHours / spec_.scrubHours) +
                 1.0) *
                spec_.scrubHours;
            for (std::size_t j = i + 1; j < faults.size(); ++j) {
                if (!faultsOverlap(faults[i], faults[j]))
                    continue;
                ++agg.dueCandidates;
                if (faults[j].timeHours < detect)
                    ++agg.sdcCandidates;
            }
        }

        const double frac = tracker.fraction();
        ++agg.trials;
        agg.faultsSampled += faults.size();
        if (!faults.empty())
            ++agg.trialsWithFault;
        agg.affectedSum += frac;
        agg.affectedHist.add(frac);
        agg.faultHist.add(static_cast<double>(faults.size()));
    }
    return agg;
}

CampaignAggregate
CampaignDriver::runEpoch(std::uint64_t begin, std::uint64_t end) const
{
    ARCC_ASSERT(begin < end);
    return engine_->reduceShards(
        end - begin, spec_.shardTrials,
        [&](const ShardRange &shard) {
            return runTrials(begin + shard.begin, begin + shard.end);
        },
        [](std::vector<CampaignAggregate> &&partials) {
            CampaignAggregate total = CampaignAggregate::empty();
            for (const CampaignAggregate &p : partials)
                total.merge(p);
            return total;
        });
}

CampaignRunResult
CampaignDriver::run(const CampaignRunOptions &options) const
{
    return runWorker(WorkerPlan(spec_, 1), 0, options);
}

CampaignRunResult
CampaignDriver::runWorker(const WorkerPlan &plan,
                          std::uint32_t workerId,
                          const CampaignRunOptions &options) const
{
    if (plan.channels() != spec_.channels)
        fatal("CampaignDriver: worker plan covers %llu channels but "
              "the spec names %llu",
              static_cast<unsigned long long>(plan.channels()),
              static_cast<unsigned long long>(spec_.channels));
    return runRange(plan.range(workerId), workerId, plan.workers(),
                    options);
}

CampaignRunResult
CampaignDriver::runRange(const WorkerRange &range,
                         std::uint32_t workerId,
                         std::uint32_t workerCount,
                         const CampaignRunOptions &options) const
{
    // The worker's epoch grid is local to its range: epoch e covers
    // [begin + e*epochTrials, ...), capped at the range end.  For the
    // whole-range single worker this is exactly the spec's global
    // grid, so pre-scale-out logs keep their meaning.
    const auto epoch_end = [&](std::uint64_t e) {
        const std::uint64_t end =
            range.begin + (e + 1) * spec_.epochTrials;
        return std::min(end, range.end);
    };

    CampaignRunResult result;
    result.aggregate = CampaignAggregate::empty();
    std::uint64_t cursor = range.begin;
    std::uint64_t next_epoch = 0;

    std::optional<CheckpointWriter> writer;
    if (!options.checkpointPath.empty()) {
        CheckpointIdentity identity;
        identity.configHash = spec_.configHash();
        identity.seed = spec_.seed;
        identity.workerId = workerId;
        identity.workerCount = workerCount;
        identity.beginTrial = range.begin;
        identity.endTrial = range.end;
        // The monotonicity check: sealed records must be exactly
        // epochs 0, 1, 2, ... with the cursor this worker's epoch
        // layout dictates.  A duplicated, reordered or re-laid-out
        // record means the log was not written by this campaign
        // resumed cleanly, and no state derived from it is safe.
        std::uint64_t expect_epoch = 0;
        const CheckpointRecovery recovery = recoverCheckpoint(
            options.checkpointPath, identity,
            [&](std::span<const std::uint8_t> payload) {
                const std::uint8_t *cur = payload.data();
                const std::uint8_t *end =
                    payload.data() + payload.size();
                const std::uint64_t epoch = getU64(&cur, end);
                const std::uint64_t next = getU64(&cur, end);
                if (epoch != expect_epoch)
                    fatal("campaign checkpoint '%s': record %llu "
                          "names epoch %llu (duplicated or reordered "
                          "records); refusing to resume",
                          options.checkpointPath.c_str(),
                          static_cast<unsigned long long>(
                              expect_epoch),
                          static_cast<unsigned long long>(epoch));
                if (next != epoch_end(epoch))
                    fatal("campaign checkpoint '%s': epoch %llu ends "
                          "at trial %llu but this spec's layout says "
                          "%llu (epochTrials changed?); refusing to "
                          "resume",
                          options.checkpointPath.c_str(),
                          static_cast<unsigned long long>(epoch),
                          static_cast<unsigned long long>(next),
                          static_cast<unsigned long long>(
                              epoch_end(epoch)));
                ++expect_epoch;
            });

        if (recovery.records > 0) {
            const std::uint8_t *cur = recovery.lastPayload.data();
            const std::uint8_t *end =
                cur + recovery.lastPayload.size();
            const std::uint64_t epoch = getU64(&cur, end);
            cursor = getU64(&cur, end);
            result.aggregate =
                CampaignAggregate::deserializeFrom(&cur, end);
            if (result.aggregate.trials != cursor - range.begin)
                fatal("campaign checkpoint '%s': aggregate covers "
                      "%llu trials but the cursor says %llu; "
                      "refusing to resume",
                      options.checkpointPath.c_str(),
                      static_cast<unsigned long long>(
                          result.aggregate.trials),
                      static_cast<unsigned long long>(
                          cursor - range.begin));
            next_epoch = epoch + 1;
            result.resumedFromTrial = cursor;
        }
        writer.emplace(
            CheckpointWriter::resume(options.checkpointPath,
                                     recovery));
    }

    while (cursor < range.end) {
        if (options.stopRequested && options.stopRequested()) {
            result.interrupted = true;
            break;
        }
        const std::uint64_t end = epoch_end(next_epoch);
        CampaignAggregate partial = runEpoch(cursor, end);
        result.aggregate.merge(partial);
        cursor = end;

        if (writer) {
            std::vector<std::uint8_t> payload;
            putU64(payload, next_epoch);
            putU64(payload, cursor);
            result.aggregate.serializeTo(payload);
            writer->append(payload);
        }
        ++next_epoch;
        ++result.epochsRun;
        if (options.maxEpochs != 0 &&
            result.epochsRun >= options.maxEpochs &&
            cursor < range.end) {
            result.interrupted = true;
            break;
        }
    }
    return result;
}

CampaignWorkerSlice
workerSlice(const CampaignSpec &spec, const WorkerPlan &plan,
            std::uint32_t workerId, const CampaignRunResult &result)
{
    const WorkerRange range = plan.range(workerId);
    CampaignWorkerSlice slice;
    slice.workerId = workerId;
    slice.workerCount = plan.workers();
    slice.beginTrial = range.begin;
    slice.endTrial = range.end;
    slice.configHash = spec.configHash();
    slice.seed = spec.seed;
    slice.aggregate = result.aggregate;
    return slice;
}

CampaignWorkerSlice
loadWorkerSlice(const std::string &path, const CampaignSpec &spec,
                const WorkerPlan &plan, std::uint32_t workerId)
{
    const WorkerRange range = plan.range(workerId);
    CheckpointIdentity expected;
    expected.configHash = spec.configHash();
    expected.seed = spec.seed;
    expected.workerId = workerId;
    expected.workerCount = plan.workers();
    expected.beginTrial = range.begin;
    expected.endTrial = range.end;

    // recoverCheckpoint fatals on corruption, foreign campaigns and
    // swapped worker logs -- all naming `path`.
    const CheckpointRecovery recovery =
        recoverCheckpoint(path, expected);
    if (recovery.fresh)
        fatal("campaign merge: worker %u's checkpoint '%s' does not "
              "exist (or is an unsealed stub); run the worker before "
              "merging", workerId, path.c_str());

    CampaignWorkerSlice slice;
    slice.workerId = workerId;
    slice.workerCount = plan.workers();
    slice.beginTrial = range.begin;
    slice.endTrial = range.end;
    slice.configHash = spec.configHash();
    slice.seed = spec.seed;
    slice.aggregate = CampaignAggregate::empty();
    slice.source = path;

    std::uint64_t cursor = range.begin;
    if (recovery.records > 0) {
        const std::uint8_t *cur = recovery.lastPayload.data();
        const std::uint8_t *end = cur + recovery.lastPayload.size();
        getU64(&cur, end); // epoch index
        cursor = getU64(&cur, end);
        slice.aggregate = CampaignAggregate::deserializeFrom(&cur, end);
    }
    if (cursor != range.end)
        fatal("campaign merge: worker %u's checkpoint '%s' stopped "
              "at trial %llu of [%llu, %llu); resume the worker to "
              "completion before merging", workerId, path.c_str(),
              static_cast<unsigned long long>(cursor),
              static_cast<unsigned long long>(range.begin),
              static_cast<unsigned long long>(range.end));
    if (slice.aggregate.trials != range.trials())
        fatal("campaign merge: worker %u's checkpoint '%s' aggregate "
              "covers %llu trials but the worker owns %llu; refusing "
              "to merge", workerId, path.c_str(),
              static_cast<unsigned long long>(slice.aggregate.trials),
              static_cast<unsigned long long>(range.trials()));
    return slice;
}

CampaignRunResult
mergeCampaigns(const CampaignSpec &spec,
               std::vector<CampaignWorkerSlice> slices)
{
    if (slices.empty())
        fatal("campaign merge: no worker slices to merge");

    std::sort(slices.begin(), slices.end(),
              [](const CampaignWorkerSlice &a,
                 const CampaignWorkerSlice &b) {
                  return a.workerId < b.workerId;
              });

    const auto count = static_cast<std::uint32_t>(slices.size());
    const std::uint64_t config_hash = spec.configHash();
    std::uint64_t cursor = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        const CampaignWorkerSlice &s = slices[i];
        if (i > 0 && s.workerId == slices[i - 1].workerId)
            fatal("campaign merge: duplicate worker id %u (%s and "
                  "%s)", s.workerId, slices[i - 1].source.c_str(),
                  s.source.c_str());
        if (s.workerId != i)
            fatal("campaign merge: worker id %u missing (have %u "
                  "slices, ids must be 0..%u)", i, count, count - 1);
        if (s.workerCount != count)
            fatal("campaign merge: %s is stamped worker %u of %u but "
                  "%u slices were offered; refusing to merge a "
                  "partial or mixed fleet", s.source.c_str(),
                  s.workerId, s.workerCount, count);
        if (s.configHash != config_hash || s.seed != spec.seed)
            fatal("campaign merge: %s was produced by config "
                  "%016llx seed %llu, this campaign is %016llx seed "
                  "%llu (stale or mixed configHash); refusing to "
                  "merge", s.source.c_str(),
                  static_cast<unsigned long long>(s.configHash),
                  static_cast<unsigned long long>(s.seed),
                  static_cast<unsigned long long>(config_hash),
                  static_cast<unsigned long long>(spec.seed));
        if (s.beginTrial > cursor)
            fatal("campaign merge: gap in trial coverage [%llu, "
                  "%llu) before %s; refusing to merge an incomplete "
                  "fleet",
                  static_cast<unsigned long long>(cursor),
                  static_cast<unsigned long long>(s.beginTrial),
                  s.source.c_str());
        if (s.beginTrial < cursor)
            fatal("campaign merge: %s covers trials [%llu, %llu), "
                  "overlapping the %llu trials already folded; "
                  "refusing to double-count", s.source.c_str(),
                  static_cast<unsigned long long>(s.beginTrial),
                  static_cast<unsigned long long>(s.endTrial),
                  static_cast<unsigned long long>(cursor));
        if (s.endTrial < s.beginTrial)
            fatal("campaign merge: %s covers an inverted range "
                  "[%llu, %llu)", s.source.c_str(),
                  static_cast<unsigned long long>(s.beginTrial),
                  static_cast<unsigned long long>(s.endTrial));
        if (s.aggregate.trials != s.endTrial - s.beginTrial)
            fatal("campaign merge: %s owns %llu trials but its "
                  "aggregate covers %llu (incomplete worker?); "
                  "refusing to merge", s.source.c_str(),
                  static_cast<unsigned long long>(s.endTrial -
                                                  s.beginTrial),
                  static_cast<unsigned long long>(s.aggregate.trials));
        cursor = s.endTrial;
    }
    if (cursor != spec.channels)
        fatal("campaign merge: slices cover trials [0, %llu) but the "
              "campaign has %llu; refusing to merge an incomplete "
              "fleet", static_cast<unsigned long long>(cursor),
              static_cast<unsigned long long>(spec.channels));

    CampaignRunResult result;
    result.aggregate = CampaignAggregate::empty();
    for (const CampaignWorkerSlice &s : slices)
        result.aggregate.merge(s.aggregate);
    return result;
}

} // namespace arcc
