/**
 * @file
 * Fleet-scale Monte Carlo campaign driver, hardened against
 * interruption.
 *
 * A *campaign* is the full reliability experiment the smaller Monte
 * Carlos validate in miniature: N memory channels, each simulated for
 * a whole deployment horizon under boosted field-study fault rates,
 * with the codeword grouping of the codec under test (18 devices per
 * relaxed ARCC codeword, 36 for the commercial lockstep baseline).
 * Fleets of interest run millions of channel-lifetimes, which is
 * hours of compute -- long enough that preemption, OOM kills and
 * power loss are expected events, not exceptional ones.  The driver
 * is therefore built around three invariants:
 *
 *  1. **Deterministic decomposition.**  Trial t (channel t's
 *     lifetime) draws its generator from Rng::stream(seed, t), a pure
 *     function of the trial index, and trials are executed through
 *     SimEngine::reduceShards in *fixed-size epochs*.  Shard and
 *     epoch boundaries depend only on the spec, never on the thread
 *     count or on where a previous run stopped.
 *
 *  2. **O(1) aggregate state.**  The running result is a
 *     CampaignAggregate: integer counters plus StreamingHistogram
 *     sketches (common/sketch.hh).  It merges exactly (integer
 *     counts; doubles folded in fixed epoch/shard order), serialises
 *     to a small blob, and digests to a stable hash() -- the value CI
 *     pins across thread counts and kill/resume runs.
 *
 *  3. **Crash-safe progress.**  After every epoch the driver seals
 *     one checkpoint record (campaign/checkpoint.hh): the epoch
 *     index, the next-trial cursor and the full serialized aggregate.
 *     Because the record carries *state*, not a delta, resuming needs
 *     only the last sealed record; because epochs are fixed-size, a
 *     resumed run folds the identical partials in the identical
 *     order and its final digest is bit-identical to an
 *     uninterrupted run's.
 *
 * The RNG bookkeeping in a checkpoint is just the cursor: stream
 * generators make "where was the RNG?" a non-question, which is the
 * reason the sampler API was built on Rng::stream in the first
 * place.
 */

#ifndef ARCC_CAMPAIGN_CAMPAIGN_HH
#define ARCC_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sketch.hh"
#include "faults/fault_model.hh"

namespace arcc
{

class SimEngine;

/** Everything that identifies a campaign (hashed into configHash). */
struct CampaignSpec
{
    /** Per-channel geometry (the unit one trial simulates). */
    DomainGeometry geom;
    /** Base per-device FIT rates. */
    FaultRates rates = FaultRates::fieldStudy();
    /** Uniform rate boost making events observable in feasible
     *  trials (the validation-MC convention). */
    double rateBoost = 100.0;
    /** Deployment horizon per channel. */
    double years = 5.0;
    /** Scrub period bounding the ARCC-DED exposure window. */
    double scrubHours = 4.0;
    /** Codec grouping: devices per codeword group (18 = ARCC relaxed
     *  codeword, 36 = commercial lockstep); must divide the channel's
     *  device count. */
    int devicesPerGroup = 18;
    /** Footprint geometry for the overlap kernel. */
    int rowsPerBank = 8192;
    int colsPerBank = 1024;

    /** Fleet size: total trials (channel-lifetimes). */
    std::uint64_t channels = 1 << 16;
    /** Campaign seed (selects every Rng::stream). */
    std::uint64_t seed = 1;
    /** Trials per epoch: the checkpoint granularity.  Fixed epoch
     *  boundaries are what make resume bit-identical. */
    std::uint64_t epochTrials = 4096;
    /** Trials per engine shard within an epoch. */
    std::uint64_t shardTrials = 64;

    /**
     * Stable digest of every field above *except the seed* (the seed
     * is carried separately in the checkpoint identity).  Stamped
     * into checkpoint headers and bench rows so a resumed run can
     * prove it is the same experiment.
     */
    std::uint64_t configHash() const;

    /** Epochs this spec decomposes into (last one may be short). */
    std::uint64_t
    epochCount() const
    {
        return (channels + epochTrials - 1) / epochTrials;
    }

    /** End-of-epoch trial cursor for epoch `e`. */
    std::uint64_t
    epochEnd(std::uint64_t e) const
    {
        std::uint64_t end = (e + 1) * epochTrials;
        return end < channels ? end : channels;
    }
};

/**
 * The campaign's O(1) running state: what one trial's outcome folds
 * into, what an epoch checkpoint serialises, and what the digest
 * covers.  All merges are exact or fixed-order, so any shard/epoch
 * decomposition of the same trial set yields bit-identical state.
 */
struct CampaignAggregate
{
    std::uint64_t trials = 0;
    /** Concrete faults sampled over all trials. */
    std::uint64_t faultsSampled = 0;
    /** Trials that saw at least one fault. */
    std::uint64_t trialsWithFault = 0;
    /** ARCC-DED SDC candidates: overlapping pairs inside the first
     *  fault's scrub-detection window. */
    std::uint64_t sdcCandidates = 0;
    /** DUE candidates: overlapping pairs regardless of window. */
    std::uint64_t dueCandidates = 0;
    /** Sum over trials of the end-of-life affected-page fraction. */
    double affectedSum = 0.0;
    /** Distribution of the end-of-life affected fraction in [0, 1). */
    StreamingHistogram affectedHist;
    /** Distribution of per-trial fault counts in [0, 64). */
    StreamingHistogram faultHist;

    /** Aggregate with the campaign's fixed sketch shapes. */
    static CampaignAggregate empty();

    /** Fold another aggregate in (shard/epoch-order merge). */
    void merge(const CampaignAggregate &other);

    /** Mean affected fraction (0 when no trials ran). */
    double
    meanAffected() const
    {
        return trials ? affectedSum / static_cast<double>(trials) : 0.0;
    }

    /** Stable digest over every counter and both sketches. */
    std::uint64_t hash() const;

    /** Append the aggregate as a little-endian blob. */
    void serializeTo(std::vector<std::uint8_t> &out) const;

    /** Decode from `[*cursor, end)`, advancing the cursor.  fatal()
     *  on truncation (payloads are CRC-checked before this). */
    static CampaignAggregate
    deserializeFrom(const std::uint8_t **cursor,
                    const std::uint8_t *end);
};

/** One worker's contiguous slice [begin, end) of the trial space. */
struct WorkerRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t trials() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/**
 * Partition of a campaign's trial space into N contiguous worker
 * ranges, balanced to within one trial.  The partition is a pure
 * function of (channels, workers): every participant -- workers,
 * resumers, the merge step -- derives the identical plan from the
 * spec, so worker ranges can be stamped into checkpoint headers and
 * cross-checked at every step.
 *
 * Partitioning never perturbs per-trial randomness: trial i always
 * draws from Rng::stream(seed, i) with its *global* index, so the
 * same trial computes the same outcome no matter which worker owns
 * it or how many workers there are.  When workers > channels the
 * trailing workers own empty ranges, which contribute (exactly)
 * nothing to the merge.
 */
class WorkerPlan
{
  public:
    /** Split `spec`'s trial space across `workers` ranges.  fatal()
     *  on zero workers. */
    WorkerPlan(const CampaignSpec &spec, std::uint32_t workers);

    std::uint32_t workers() const { return workers_; }
    std::uint64_t channels() const { return channels_; }

    /** Worker `id`'s slice; fatal() on an out-of-range id. */
    WorkerRange range(std::uint32_t id) const;

  private:
    std::uint32_t workers_ = 1;
    std::uint64_t channels_ = 0;
};

/**
 * Per-worker checkpoint naming convention: `base` + ".w<id>".  Shared
 * by the CLI's worker and merge modes, the CI smoke, and the tests so
 * a fleet of logs is always discoverable from one base path.
 */
std::string workerCheckpointPath(const std::string &base,
                                 std::uint32_t workerId);

/** Outcome of CampaignDriver::run. */
struct CampaignRunResult
{
    CampaignAggregate aggregate;
    /** Epochs executed by *this* run (not counting resumed ones). */
    std::uint64_t epochsRun = 0;
    /** Trial cursor the run started from (> 0 = resumed). */
    std::uint64_t resumedFromTrial = 0;
    /** True when stopRequested ended the run before the last epoch. */
    bool interrupted = false;

    /** The campaign digest: config hash x seed x aggregate state.
     *  Bit-identical across thread counts and kill/resume splits. */
    std::uint64_t digest(const CampaignSpec &spec) const;
};

/** Knobs for one run() invocation (not part of the config hash). */
struct CampaignRunOptions
{
    /** Checkpoint log path; empty runs without checkpointing. */
    std::string checkpointPath;
    /** Polled between epochs; true => seal the current state and
     *  return with interrupted = true (the SIGTERM path). */
    std::function<bool()> stopRequested;
    /** Stop after this many epochs (0 = no limit); used by tests to
     *  fabricate interrupted runs deterministically. */
    std::uint64_t maxEpochs = 0;
};

/**
 * Executes a CampaignSpec through a SimEngine, epoch by epoch, with
 * optional checkpoint/resume.  See the file comment for the
 * determinism and crash-safety contract; tests/test_campaign.cc and
 * tests/test_determinism.cc enforce it.
 */
class CampaignDriver
{
  public:
    /** nullptr engine = SimEngine::global(). */
    explicit CampaignDriver(const CampaignSpec &spec,
                            SimEngine *engine = nullptr);

    /**
     * Run (or resume) the campaign.  If options.checkpointPath names
     * an existing log, it is recovered first: a torn tail is
     * truncated, a sealed prefix resumes from its last epoch, and a
     * corrupt or foreign file is fatal (never overwritten).
     */
    CampaignRunResult run(const CampaignRunOptions &options = {}) const;

    /**
     * Run (or resume) one worker's slice of the campaign: trials
     * [plan.range(workerId).begin, .end) in worker-local epochs of
     * spec.epochTrials.  The checkpoint log (if any) is stamped with
     * the worker id and range, so swapped or foreign logs are fatal
     * on recovery.  run() is exactly runWorker over the 1-worker
     * plan.
     */
    CampaignRunResult runWorker(const WorkerPlan &plan,
                                std::uint32_t workerId,
                                const CampaignRunOptions &options =
                                    {}) const;

    /**
     * The deterministic kernel: aggregate trials [begin, end) run
     * serially on the calling thread.  Exposed so tests can compare
     * any sharded/resumed decomposition against one serial pass.
     */
    CampaignAggregate runTrials(std::uint64_t begin,
                                std::uint64_t end) const;

    const CampaignSpec &spec() const { return spec_; }

  private:
    /** One epoch [begin, end) through the engine's shard-reduce. */
    CampaignAggregate runEpoch(std::uint64_t begin,
                               std::uint64_t end) const;

    /** The shared run/runWorker core over one stamped range. */
    CampaignRunResult runRange(const WorkerRange &range,
                               std::uint32_t workerId,
                               std::uint32_t workerCount,
                               const CampaignRunOptions &options) const;

    CampaignSpec spec_;
    SimEngine *engine_;
};

/**
 * One worker's completed contribution to a campaign: its stamp, the
 * identity of the experiment that produced it, and the aggregate over
 * its trial range.  Produced in-process by a runWorker result or
 * loaded from a finished worker's checkpoint log.
 */
struct CampaignWorkerSlice
{
    std::uint32_t workerId = 0;
    std::uint32_t workerCount = 1;
    std::uint64_t beginTrial = 0;
    std::uint64_t endTrial = 0;
    std::uint64_t configHash = 0;
    std::uint64_t seed = 0;
    CampaignAggregate aggregate;
    /** Where the slice came from, for merge diagnostics: the log
     *  path, or "<memory>" for in-process slices. */
    std::string source = "<memory>";
};

/** Worker `workerId`'s result as a merge-ready slice. */
CampaignWorkerSlice
workerSlice(const CampaignSpec &spec, const WorkerPlan &plan,
            std::uint32_t workerId, const CampaignRunResult &result);

/**
 * Load worker `workerId`'s *finished* slice from its checkpoint log.
 * fatal() (naming the file) when the log belongs to another campaign
 * or worker, is corrupt, or stopped short of the worker's range end
 * -- an unfinished worker must be resumed, never merged.
 */
CampaignWorkerSlice
loadWorkerSlice(const std::string &path, const CampaignSpec &spec,
                const WorkerPlan &plan, std::uint32_t workerId);

/**
 * The exact cross-worker reduction: fold the slices' aggregates in
 * worker order into one campaign result whose digest is bit-identical
 * to a single-process run of the same spec.
 *
 * Exactness is by construction, not by tolerance.  All counters and
 * histogram bins are 64-bit integers, and min/max fold exactly, so
 * they merge exactly in any grouping.  The double-valued sums
 * (affectedSum and the sketches' sums) are sums of per-trial metrics
 * that are dyadic rationals on one fixed power-of-two denominator --
 * AffectedTracker::fraction() is (cells marked) / (2^k cells) +
 * (pages) / (2^20 pages), and the fault-count metric is a small
 * integer -- so every partial sum is exactly representable and IEEE
 * addition over them is associative: any contiguous split of the
 * trial space folds to the same bits.  The multiproc fuzz suite
 * (tests/test_campaign_multiproc.cc) pins this down to the byte.
 *
 * fatal() on an empty slice list, duplicate or out-of-range worker
 * ids, inconsistent worker counts, overlapping ranges or coverage
 * gaps, an aggregate that does not cover its range, or a slice from
 * a different experiment (configHash/seed mismatch) -- each
 * diagnostic names the offending slice's source.
 */
CampaignRunResult
mergeCampaigns(const CampaignSpec &spec,
               std::vector<CampaignWorkerSlice> slices);

} // namespace arcc

#endif // ARCC_CAMPAIGN_CAMPAIGN_HH
