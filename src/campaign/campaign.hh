/**
 * @file
 * Fleet-scale Monte Carlo campaign driver, hardened against
 * interruption.
 *
 * A *campaign* is the full reliability experiment the smaller Monte
 * Carlos validate in miniature: N memory channels, each simulated for
 * a whole deployment horizon under boosted field-study fault rates,
 * with the codeword grouping of the codec under test (18 devices per
 * relaxed ARCC codeword, 36 for the commercial lockstep baseline).
 * Fleets of interest run millions of channel-lifetimes, which is
 * hours of compute -- long enough that preemption, OOM kills and
 * power loss are expected events, not exceptional ones.  The driver
 * is therefore built around three invariants:
 *
 *  1. **Deterministic decomposition.**  Trial t (channel t's
 *     lifetime) draws its generator from Rng::stream(seed, t), a pure
 *     function of the trial index, and trials are executed through
 *     SimEngine::reduceShards in *fixed-size epochs*.  Shard and
 *     epoch boundaries depend only on the spec, never on the thread
 *     count or on where a previous run stopped.
 *
 *  2. **O(1) aggregate state.**  The running result is a
 *     CampaignAggregate: integer counters plus StreamingHistogram
 *     sketches (common/sketch.hh).  It merges exactly (integer
 *     counts; doubles folded in fixed epoch/shard order), serialises
 *     to a small blob, and digests to a stable hash() -- the value CI
 *     pins across thread counts and kill/resume runs.
 *
 *  3. **Crash-safe progress.**  After every epoch the driver seals
 *     one checkpoint record (campaign/checkpoint.hh): the epoch
 *     index, the next-trial cursor and the full serialized aggregate.
 *     Because the record carries *state*, not a delta, resuming needs
 *     only the last sealed record; because epochs are fixed-size, a
 *     resumed run folds the identical partials in the identical
 *     order and its final digest is bit-identical to an
 *     uninterrupted run's.
 *
 * The RNG bookkeeping in a checkpoint is just the cursor: stream
 * generators make "where was the RNG?" a non-question, which is the
 * reason the sampler API was built on Rng::stream in the first
 * place.
 */

#ifndef ARCC_CAMPAIGN_CAMPAIGN_HH
#define ARCC_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sketch.hh"
#include "faults/fault_model.hh"

namespace arcc
{

class SimEngine;

/** Everything that identifies a campaign (hashed into configHash). */
struct CampaignSpec
{
    /** Per-channel geometry (the unit one trial simulates). */
    DomainGeometry geom;
    /** Base per-device FIT rates. */
    FaultRates rates = FaultRates::fieldStudy();
    /** Uniform rate boost making events observable in feasible
     *  trials (the validation-MC convention). */
    double rateBoost = 100.0;
    /** Deployment horizon per channel. */
    double years = 5.0;
    /** Scrub period bounding the ARCC-DED exposure window. */
    double scrubHours = 4.0;
    /** Codec grouping: devices per codeword group (18 = ARCC relaxed
     *  codeword, 36 = commercial lockstep); must divide the channel's
     *  device count. */
    int devicesPerGroup = 18;
    /** Footprint geometry for the overlap kernel. */
    int rowsPerBank = 8192;
    int colsPerBank = 1024;

    /** Fleet size: total trials (channel-lifetimes). */
    std::uint64_t channels = 1 << 16;
    /** Campaign seed (selects every Rng::stream). */
    std::uint64_t seed = 1;
    /** Trials per epoch: the checkpoint granularity.  Fixed epoch
     *  boundaries are what make resume bit-identical. */
    std::uint64_t epochTrials = 4096;
    /** Trials per engine shard within an epoch. */
    std::uint64_t shardTrials = 64;

    /**
     * Stable digest of every field above *except the seed* (the seed
     * is carried separately in the checkpoint identity).  Stamped
     * into checkpoint headers and bench rows so a resumed run can
     * prove it is the same experiment.
     */
    std::uint64_t configHash() const;

    /** Epochs this spec decomposes into (last one may be short). */
    std::uint64_t
    epochCount() const
    {
        return (channels + epochTrials - 1) / epochTrials;
    }

    /** End-of-epoch trial cursor for epoch `e`. */
    std::uint64_t
    epochEnd(std::uint64_t e) const
    {
        std::uint64_t end = (e + 1) * epochTrials;
        return end < channels ? end : channels;
    }
};

/**
 * The campaign's O(1) running state: what one trial's outcome folds
 * into, what an epoch checkpoint serialises, and what the digest
 * covers.  All merges are exact or fixed-order, so any shard/epoch
 * decomposition of the same trial set yields bit-identical state.
 */
struct CampaignAggregate
{
    std::uint64_t trials = 0;
    /** Concrete faults sampled over all trials. */
    std::uint64_t faultsSampled = 0;
    /** Trials that saw at least one fault. */
    std::uint64_t trialsWithFault = 0;
    /** ARCC-DED SDC candidates: overlapping pairs inside the first
     *  fault's scrub-detection window. */
    std::uint64_t sdcCandidates = 0;
    /** DUE candidates: overlapping pairs regardless of window. */
    std::uint64_t dueCandidates = 0;
    /** Sum over trials of the end-of-life affected-page fraction. */
    double affectedSum = 0.0;
    /** Distribution of the end-of-life affected fraction in [0, 1). */
    StreamingHistogram affectedHist;
    /** Distribution of per-trial fault counts in [0, 64). */
    StreamingHistogram faultHist;

    /** Aggregate with the campaign's fixed sketch shapes. */
    static CampaignAggregate empty();

    /** Fold another aggregate in (shard/epoch-order merge). */
    void merge(const CampaignAggregate &other);

    /** Mean affected fraction (0 when no trials ran). */
    double
    meanAffected() const
    {
        return trials ? affectedSum / static_cast<double>(trials) : 0.0;
    }

    /** Stable digest over every counter and both sketches. */
    std::uint64_t hash() const;

    /** Append the aggregate as a little-endian blob. */
    void serializeTo(std::vector<std::uint8_t> &out) const;

    /** Decode from `[*cursor, end)`, advancing the cursor.  fatal()
     *  on truncation (payloads are CRC-checked before this). */
    static CampaignAggregate
    deserializeFrom(const std::uint8_t **cursor,
                    const std::uint8_t *end);
};

/** Outcome of CampaignDriver::run. */
struct CampaignRunResult
{
    CampaignAggregate aggregate;
    /** Epochs executed by *this* run (not counting resumed ones). */
    std::uint64_t epochsRun = 0;
    /** Trial cursor the run started from (> 0 = resumed). */
    std::uint64_t resumedFromTrial = 0;
    /** True when stopRequested ended the run before the last epoch. */
    bool interrupted = false;

    /** The campaign digest: config hash x seed x aggregate state.
     *  Bit-identical across thread counts and kill/resume splits. */
    std::uint64_t digest(const CampaignSpec &spec) const;
};

/** Knobs for one run() invocation (not part of the config hash). */
struct CampaignRunOptions
{
    /** Checkpoint log path; empty runs without checkpointing. */
    std::string checkpointPath;
    /** Polled between epochs; true => seal the current state and
     *  return with interrupted = true (the SIGTERM path). */
    std::function<bool()> stopRequested;
    /** Stop after this many epochs (0 = no limit); used by tests to
     *  fabricate interrupted runs deterministically. */
    std::uint64_t maxEpochs = 0;
};

/**
 * Executes a CampaignSpec through a SimEngine, epoch by epoch, with
 * optional checkpoint/resume.  See the file comment for the
 * determinism and crash-safety contract; tests/test_campaign.cc and
 * tests/test_determinism.cc enforce it.
 */
class CampaignDriver
{
  public:
    /** nullptr engine = SimEngine::global(). */
    explicit CampaignDriver(const CampaignSpec &spec,
                            SimEngine *engine = nullptr);

    /**
     * Run (or resume) the campaign.  If options.checkpointPath names
     * an existing log, it is recovered first: a torn tail is
     * truncated, a sealed prefix resumes from its last epoch, and a
     * corrupt or foreign file is fatal (never overwritten).
     */
    CampaignRunResult run(const CampaignRunOptions &options = {}) const;

    /**
     * The deterministic kernel: aggregate trials [begin, end) run
     * serially on the calling thread.  Exposed so tests can compare
     * any sharded/resumed decomposition against one serial pass.
     */
    CampaignAggregate runTrials(std::uint64_t begin,
                                std::uint64_t end) const;

    const CampaignSpec &spec() const { return spec_; }

  private:
    /** One epoch [begin, end) through the engine's shard-reduce. */
    CampaignAggregate runEpoch(std::uint64_t begin,
                               std::uint64_t end) const;

    CampaignSpec spec_;
    SimEngine *engine_;
};

} // namespace arcc

#endif // ARCC_CAMPAIGN_CAMPAIGN_HH
