/**
 * @file
 * Crash-safe append-only checkpoint log for the campaign driver.
 *
 * On-disk layout (everything little-endian):
 *
 *     file   := header-frame epoch-frame*
 *     frame  := u32 payload-length | u32 crc32c(payload) | payload
 *
 *     header payload := "ARCCCKP1" magic (8 bytes)
 *                     | u32 format version
 *                     | u64 campaign config hash
 *                     | u64 campaign seed
 *                     | u32 worker id          (v2)
 *                     | u32 worker count       (v2)
 *                     | u64 first owned trial  (v2)
 *                     | u64 one-past-last trial (v2)
 *
 * Version history: v1 logs end after the seed -- they predate the
 * multi-process scale-out and are readable only as the whole-range
 * single worker (worker 0 of 1).  v2 adds the worker-id/range stamp
 * so one campaign's N per-worker logs can never be confused with each
 * other or with another fleet's slices.  A reader confronted with a
 * version *newer* than it writes says so explicitly ("log version
 * newer than binary") instead of hiding behind a generic mismatch.
 *
 *     epoch payload  := opaque bytes owned by the campaign layer
 *                       (epoch index, next-trial cursor, serialized
 *                       aggregate -- see campaign.hh)
 *
 * Write discipline: every frame is appended with one fwrite, then
 * fflush + fsync before append() returns ("sealed-record append").  A
 * crash -- including SIGKILL -- can therefore leave at most one torn
 * frame, and only at the tail of the file.
 *
 * Recovery policy (recoverCheckpoint), the part the fault-injection
 * suite in tests/test_checkpoint.cc pins:
 *
 *  - a frame that fails its CRC or runs past EOF *at the tail* is a
 *    torn write: it is reported, never trusted, and truncated away on
 *    resume, landing the campaign on the last sealed epoch;
 *  - an invalid frame with more data *after* it cannot be a torn
 *    append -- it is corruption, and recovery refuses (fatal) rather
 *    than resume from any state derived from it;
 *  - a header that is valid framing but wrong magic / version /
 *    config hash / seed is somebody else's file or another campaign's
 *    checkpoint: fatal, never overwritten;
 *  - a file shorter than a complete header frame can only be a crash
 *    during creation (the header is the first sealed append): it is
 *    treated as "no checkpoint yet".
 *
 * The epoch payloads themselves are opaque here; the campaign layer
 * validates their monotonicity (strictly advancing epoch index and
 * cursor) and fatals on duplicated or reordered records, so a CRC
 * collision can never smuggle a stale epoch back in.
 */

#ifndef ARCC_CAMPAIGN_CHECKPOINT_HH
#define ARCC_CAMPAIGN_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace arcc
{

/** Magic bytes opening a checkpoint header payload. */
inline constexpr char kCheckpointMagic[8] = {'A', 'R', 'C', 'C',
                                             'C', 'K', 'P', '1'};
/** Checkpoint format version this binary writes (bumped on any
 *  layout change; v2 added the worker-id/range stamp). */
inline constexpr std::uint32_t kCheckpointVersion = 2;
/** Oldest format version this binary still reads. */
inline constexpr std::uint32_t kCheckpointVersionMin = 1;
/** Bytes of frame overhead (length + CRC words). */
inline constexpr std::size_t kFrameOverheadBytes = 8;
/** Serialized header payload size (v2, with the worker stamp). */
inline constexpr std::size_t kHeaderPayloadBytes =
    8 + 4 + 8 + 8 + 4 + 4 + 8 + 8;
/** Serialized header payload size of a v1 (pre-stamp) log. */
inline constexpr std::size_t kHeaderPayloadBytesV1 = 8 + 4 + 8 + 8;

/** Identity a checkpoint file is bound to. */
struct CheckpointIdentity
{
    /** CampaignSpec::configHash() of the owning campaign. */
    std::uint64_t configHash = 0;
    /** Campaign seed (redundant with the hash; kept readable in the
     *  file so a hexdump identifies the experiment). */
    std::uint64_t seed = 0;
    /** Worker stamp: which contiguous slice [beginTrial, endTrial) of
     *  the campaign's trial space this log owns.  The defaults are
     *  the whole-range single worker, which is also what a v1 log
     *  (written before the stamp existed) is read as. */
    std::uint32_t workerId = 0;
    std::uint32_t workerCount = 1;
    std::uint64_t beginTrial = 0;
    std::uint64_t endTrial = 0;
};

/** What a scan of an existing checkpoint file found. */
struct CheckpointRecovery
{
    CheckpointIdentity identity;
    /** Format version the file was written in (v1 logs carry no
     *  worker stamp; their identity adopts the expected stamp after
     *  the single-worker check). */
    std::uint32_t version = kCheckpointVersion;
    /** Sealed epoch records found (0 = header only). */
    std::uint64_t records = 0;
    /** Payload of the last sealed record (empty when records == 0). */
    std::vector<std::uint8_t> lastPayload;
    /** File offset one past the last sealed frame. */
    std::uint64_t validBytes = 0;
    /** Torn trailing bytes that will be truncated on resume. */
    std::uint64_t tornBytes = 0;
    /** True when the file was absent or a torn header stub. */
    bool fresh = false;
};

/**
 * Scan `path` and locate the last sealed record under the recovery
 * policy above.  `onRecord`, when given, receives every sealed epoch
 * payload in file order (the campaign layer's monotonicity check).
 * fatal() on corruption that truncation cannot explain, on an
 * identity mismatch, or on an unreadable file; a missing file or a
 * sub-header stub returns `.fresh = true`.
 */
CheckpointRecovery
recoverCheckpoint(const std::string &path,
                  const CheckpointIdentity &expected,
                  const std::function<void(
                      std::span<const std::uint8_t>)> &onRecord = {});

/**
 * Appender for a checkpoint log.  Obtain via create() (fresh file,
 * header sealed before the constructor returns) or resume() (after
 * recoverCheckpoint; truncates torn bytes).  Every append is sealed
 * -- framed, flushed and fsynced -- before it returns.
 */
class CheckpointWriter
{
  public:
    /** Create or overwrite `path` with a fresh sealed header. */
    static CheckpointWriter create(const std::string &path,
                                   const CheckpointIdentity &identity);

    /**
     * Reopen `path` for appending after recovery, truncating the
     * torn tail (if any) first.
     */
    static CheckpointWriter resume(const std::string &path,
                                   const CheckpointRecovery &recovery);

    /** Seal one epoch record (frame + flush + fsync). */
    void append(std::span<const std::uint8_t> payload);

    ~CheckpointWriter();
    CheckpointWriter(CheckpointWriter &&other) noexcept;
    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(CheckpointWriter &&) = delete;

  private:
    CheckpointWriter(std::string path, std::FILE *file);

    std::string path_;
    std::FILE *file_ = nullptr;
};

} // namespace arcc

#endif // ARCC_CAMPAIGN_CHECKPOINT_HH
