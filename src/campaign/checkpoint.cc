/**
 * @file
 * Checkpoint log implementation: sealed-record append and the
 * torn-tail recovery scan.
 */

#include "campaign/checkpoint.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "common/crc32c.hh"
#include "common/logging.hh"

namespace arcc
{

namespace
{

/** Ceiling on one record payload: larger is a corrupt length word or
 *  a format bug, never a real campaign aggregate. */
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

std::uint32_t
readU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void
writeU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
writeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::vector<std::uint8_t>
encodeHeader(const CheckpointIdentity &identity)
{
    std::vector<std::uint8_t> payload(kHeaderPayloadBytes);
    std::memcpy(payload.data(), kCheckpointMagic,
                sizeof kCheckpointMagic);
    writeU32(payload.data() + 8, kCheckpointVersion);
    writeU64(payload.data() + 12, identity.configHash);
    writeU64(payload.data() + 20, identity.seed);
    writeU32(payload.data() + 28, identity.workerId);
    writeU32(payload.data() + 32, identity.workerCount);
    writeU64(payload.data() + 36, identity.beginTrial);
    writeU64(payload.data() + 44, identity.endTrial);
    return payload;
}

/**
 * Parse and validate a sealed header payload against the expected
 * identity.  fatal() with a diagnostic naming `path` on any mismatch;
 * on success fills `out.identity` and `out.version`.
 */
void
checkHeader(const std::string &path,
            std::span<const std::uint8_t> payload,
            const CheckpointIdentity &expected, CheckpointRecovery &out)
{
    if (payload.size() < 12 ||
        std::memcmp(payload.data(), kCheckpointMagic,
                    sizeof kCheckpointMagic) != 0)
        fatal("checkpoint '%s': missing ARCCCKP1 magic -- not an "
              "ARCC campaign checkpoint; refusing to touch it",
              path.c_str());
    const std::uint32_t version = readU32(payload.data() + 8);
    if (version > kCheckpointVersion)
        fatal("checkpoint '%s': log version newer than binary "
              "(format version %u, this binary reads up to %u) -- "
              "rerun with a build that understands it; refusing to "
              "resume", path.c_str(), version, kCheckpointVersion);
    if (version < kCheckpointVersionMin)
        fatal("checkpoint '%s': format version %u predates the "
              "oldest supported version %u; refusing to resume",
              path.c_str(), version, kCheckpointVersionMin);
    const std::size_t want_len = version == 1 ? kHeaderPayloadBytesV1
                                              : kHeaderPayloadBytes;
    if (payload.size() != want_len)
        fatal("checkpoint '%s': v%u header is %zu bytes, expected "
              "%zu; refusing to resume", path.c_str(), version,
              payload.size(), want_len);

    out.version = version;
    out.identity.configHash = readU64(payload.data() + 12);
    out.identity.seed = readU64(payload.data() + 20);
    if (out.identity.configHash != expected.configHash ||
        out.identity.seed != expected.seed)
        fatal("checkpoint '%s': belongs to a different campaign "
              "(config hash %016llx seed %llu, expected %016llx "
              "seed %llu); refusing to resume or overwrite",
              path.c_str(),
              static_cast<unsigned long long>(out.identity.configHash),
              static_cast<unsigned long long>(out.identity.seed),
              static_cast<unsigned long long>(expected.configHash),
              static_cast<unsigned long long>(expected.seed));

    if (version == 1) {
        // A v1 log predates the worker stamp: it can only have been
        // written by a whole-range single-worker run, so it is
        // readable exactly as that and nothing else.
        if (expected.workerId != 0 || expected.workerCount != 1 ||
            expected.beginTrial != 0)
            fatal("checkpoint '%s': v1 log carries no worker stamp "
                  "and is readable only as the whole-range single "
                  "worker, but this run expects worker %u of %u "
                  "covering trials [%llu, %llu); refusing to resume",
                  path.c_str(), expected.workerId,
                  expected.workerCount,
                  static_cast<unsigned long long>(expected.beginTrial),
                  static_cast<unsigned long long>(expected.endTrial));
        out.identity.workerId = expected.workerId;
        out.identity.workerCount = expected.workerCount;
        out.identity.beginTrial = expected.beginTrial;
        out.identity.endTrial = expected.endTrial;
        return;
    }

    out.identity.workerId = readU32(payload.data() + 28);
    out.identity.workerCount = readU32(payload.data() + 32);
    out.identity.beginTrial = readU64(payload.data() + 36);
    out.identity.endTrial = readU64(payload.data() + 44);
    if (out.identity.workerId != expected.workerId ||
        out.identity.workerCount != expected.workerCount ||
        out.identity.beginTrial != expected.beginTrial ||
        out.identity.endTrial != expected.endTrial)
        fatal("checkpoint '%s': worker stamp mismatch -- the log "
              "belongs to worker %u of %u covering trials "
              "[%llu, %llu), this run expects worker %u of %u "
              "covering [%llu, %llu) (swapped worker logs?); "
              "refusing to resume", path.c_str(),
              out.identity.workerId, out.identity.workerCount,
              static_cast<unsigned long long>(out.identity.beginTrial),
              static_cast<unsigned long long>(out.identity.endTrial),
              expected.workerId, expected.workerCount,
              static_cast<unsigned long long>(expected.beginTrial),
              static_cast<unsigned long long>(expected.endTrial));
}

/** Frame a payload: [len][crc][payload] in one contiguous buffer. */
std::vector<std::uint8_t>
frame(std::span<const std::uint8_t> payload)
{
    ARCC_ASSERT(payload.size() <= kMaxPayloadBytes);
    std::vector<std::uint8_t> out(kFrameOverheadBytes + payload.size());
    writeU32(out.data(), static_cast<std::uint32_t>(payload.size()));
    writeU32(out.data() + 4, crc32c(payload));
    std::memcpy(out.data() + kFrameOverheadBytes, payload.data(),
                payload.size());
    return out;
}

/** fwrite + fflush + fsync one sealed frame; fatal on any failure. */
void
sealFrame(const std::string &path, std::FILE *file,
          std::span<const std::uint8_t> bytes)
{
    if (std::fwrite(bytes.data(), 1, bytes.size(), file) !=
        bytes.size())
        fatal("checkpoint '%s': write failed (%s)", path.c_str(),
              std::strerror(errno));
    if (std::fflush(file) != 0)
        fatal("checkpoint '%s': flush failed (%s)", path.c_str(),
              std::strerror(errno));
    if (::fsync(::fileno(file)) != 0)
        fatal("checkpoint '%s': fsync failed (%s)", path.c_str(),
              std::strerror(errno));
}

} // anonymous namespace

CheckpointRecovery
recoverCheckpoint(const std::string &path,
                  const CheckpointIdentity &expected,
                  const std::function<void(
                      std::span<const std::uint8_t>)> &onRecord)
{
    CheckpointRecovery out;

    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        out.identity = expected;
        out.fresh = true;
        return out;
    }

    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("checkpoint '%s': cannot open (%s)", path.c_str(),
              std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    {
        std::uint8_t chunk[1 << 16];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0)
            bytes.insert(bytes.end(), chunk, chunk + got);
        if (std::ferror(file))
            fatal("checkpoint '%s': read failed (%s)", path.c_str(),
                  std::strerror(errno));
    }
    std::fclose(file);

    if (bytes.empty()) {
        out.identity = expected;
        out.fresh = true;
        return out;
    }

    // Walk the frames.  `offset` always points at a frame boundary.
    std::uint64_t offset = 0;
    bool saw_header = false;
    for (;;) {
        const std::uint64_t remaining = bytes.size() - offset;
        if (remaining == 0)
            break;

        // Does a whole sealed frame fit here?
        bool sealed = false;
        std::uint32_t len = 0;
        if (remaining >= kFrameOverheadBytes) {
            len = readU32(bytes.data() + offset);
            if (len <= kMaxPayloadBytes &&
                kFrameOverheadBytes + len <= remaining) {
                const std::uint32_t want =
                    readU32(bytes.data() + offset + 4);
                const std::uint32_t got = crc32c(
                    {bytes.data() + offset + kFrameOverheadBytes,
                     len});
                sealed = want == got;
            }
        }

        if (!sealed) {
            // Invalid frame.  Only a *tail* can be torn: a bad CRC
            // whose frame nevertheless ends before EOF has sealed
            // data after it, which one interrupted append cannot
            // produce.
            const bool reaches_eof =
                remaining < kFrameOverheadBytes ||
                len > kMaxPayloadBytes ||
                kFrameOverheadBytes + len >= remaining;
            if (!reaches_eof)
                fatal("checkpoint '%s': corrupt record at offset "
                      "%llu with %llu sealed bytes after it -- this "
                      "is not a torn append; refusing to resume from "
                      "a corrupt checkpoint",
                      path.c_str(),
                      static_cast<unsigned long long>(offset),
                      static_cast<unsigned long long>(
                          bytes.size() - offset));
            if (!saw_header) {
                // A file shorter than one sealed header frame can
                // only be a crash during create(): nothing sealed was
                // ever on disk, so nothing is lost by starting over.
                // (Shorter than the *v2* frame: a sealed v1 header is
                // caught by the CRC above before reaching here.)
                if (bytes.size() <
                    kFrameOverheadBytes + kHeaderPayloadBytes) {
                    warn("checkpoint '%s': %zu-byte torn header "
                         "stub; starting the campaign from scratch",
                         path.c_str(), bytes.size());
                    out.identity = expected;
                    out.fresh = true;
                    return out;
                }
                fatal("checkpoint '%s': corrupt header frame -- not "
                      "an ARCC campaign checkpoint, or damaged "
                      "beyond recovery; refusing to touch it",
                      path.c_str());
            }
            out.tornBytes = remaining;
            warn("checkpoint '%s': dropping %llu torn trailing "
                 "bytes; resuming from the last sealed epoch",
                 path.c_str(),
                 static_cast<unsigned long long>(remaining));
            break;
        }

        std::span<const std::uint8_t> payload{
            bytes.data() + offset + kFrameOverheadBytes, len};
        if (!saw_header) {
            checkHeader(path, payload, expected, out);
            saw_header = true;
        } else {
            if (onRecord)
                onRecord(payload);
            out.lastPayload.assign(payload.begin(), payload.end());
            ++out.records;
        }
        offset += kFrameOverheadBytes + len;
        out.validBytes = offset;
    }
    return out;
}

CheckpointWriter::CheckpointWriter(std::string path, std::FILE *file)
    : path_(std::move(path)), file_(file)
{
}

CheckpointWriter::CheckpointWriter(CheckpointWriter &&other) noexcept
    : path_(std::move(other.path_)), file_(other.file_)
{
    other.file_ = nullptr;
}

CheckpointWriter::~CheckpointWriter()
{
    if (file_)
        std::fclose(file_);
}

CheckpointWriter
CheckpointWriter::create(const std::string &path,
                         const CheckpointIdentity &identity)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("checkpoint '%s': cannot create (%s)", path.c_str(),
              std::strerror(errno));
    CheckpointWriter writer(path, file);
    sealFrame(path, file, frame(encodeHeader(identity)));
    return writer;
}

CheckpointWriter
CheckpointWriter::resume(const std::string &path,
                         const CheckpointRecovery &recovery)
{
    if (recovery.fresh)
        return create(path, recovery.identity);
    if (recovery.tornBytes > 0) {
        std::error_code ec;
        std::filesystem::resize_file(path, recovery.validBytes, ec);
        if (ec)
            fatal("checkpoint '%s': cannot truncate the torn tail "
                  "(%s)", path.c_str(), ec.message().c_str());
    }
    std::FILE *file = std::fopen(path.c_str(), "ab");
    if (!file)
        fatal("checkpoint '%s': cannot reopen for append (%s)",
              path.c_str(), std::strerror(errno));
    return CheckpointWriter(path, file);
}

void
CheckpointWriter::append(std::span<const std::uint8_t> payload)
{
    ARCC_ASSERT(file_ != nullptr);
    if (payload.size() > kMaxPayloadBytes)
        fatal("checkpoint '%s': %zu-byte record exceeds the %u-byte "
              "format ceiling", path_.c_str(), payload.size(),
              kMaxPayloadBytes);
    sealFrame(path_, file_, frame(payload));
}

} // namespace arcc
