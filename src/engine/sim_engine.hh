/**
 * @file
 * SimEngine: deterministic sharded execution for the Monte Carlo
 * engines and the bench scenario sweeps.
 *
 * The engine splits N independent items (Monte Carlo trials, (mix,
 * scenario) simulation jobs, scrub page ranges, the system
 * simulator's channel groups) into fixed-size shards and runs the
 * shards on a work-stealing thread pool.  Determinism is a design
 * invariant, not an accident:
 *
 *  - shard boundaries depend only on the item count and the shard
 *    size, never on the worker count, so the floating-point reduction
 *    tree is identical on 1 thread and on 64;
 *  - per-shard results land in a slot indexed by shard number and are
 *    folded in shard order on the calling thread;
 *  - stochastic trials draw their generator from Rng::stream(seed,
 *    trial), a pure function of the trial index.
 *
 * Together these make an N-worker run bit-identical to a 1-worker run
 * of the same configuration.  tests/test_engine.cc enforces this.
 *
 * The calling thread participates: while a sharded call is in flight
 * it executes queued shards itself, so a zero-worker engine is simply
 * a deterministic sequential loop and nested sharded calls cannot
 * deadlock the pool.  simulateMixBatch relies on this: each batched
 * job runs its own channel-sharded back-end nested on the same
 * engine.
 *
 * docs/ARCHITECTURE.md documents the shard-reduce contract every
 * user of this engine honours.
 */

#ifndef ARCC_ENGINE_SIM_ENGINE_HH
#define ARCC_ENGINE_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/thread_pool.hh"

namespace arcc
{

/** One contiguous run of item indices, [begin, end). */
struct ShardRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    /** Shard number, dense from 0; indexes the reduction slots. */
    std::uint64_t index = 0;
};

/**
 * The engine.  Cheap to construct around an existing pool; the
 * process-wide instance is SimEngine::global().
 */
class SimEngine
{
  public:
    struct Options
    {
        /**
         * Total executor count including the calling thread: 1 runs
         * everything inline, N uses N-1 pool workers plus the caller.
         * 0 picks the ARCC_THREADS environment variable, falling back
         * to the hardware thread count.
         */
        int threads = 0;
    };

    /** Engine with default options (ARCC_THREADS / the hardware). */
    SimEngine();
    explicit SimEngine(const Options &options);

    /**
     * The process-wide engine, sized from ARCC_THREADS / the hardware
     * on first use.  Every simulation entry point that takes an
     * optional engine uses this one when handed nullptr.
     */
    static SimEngine &global();

    /** Executor count (pool workers + the calling thread). */
    int threads() const { return pool_.workers() + 1; }

    /**
     * Run body(shard) for every fixed-size shard of [0, items) and
     * wait.  The first exception thrown by a body is rethrown here
     * after every shard has finished or been cancelled; the engine
     * stays usable afterwards.
     *
     * @param shardSize  items per shard (the last shard is short);
     *                   must not depend on the thread count or
     *                   determinism is lost.
     */
    void forEachShard(std::uint64_t items, std::uint64_t shardSize,
                      const std::function<void(const ShardRange &)>
                          &body) const;

    /** One item per shard: body(i) for i in [0, items). */
    void
    forEachIndex(std::uint64_t items,
                 const std::function<void(std::uint64_t)> &body) const
    {
        forEachShard(items, 1, [&](const ShardRange &r) {
            body(r.begin);
        });
    }

    /**
     * The shard-reduce pattern every deterministic parallel kernel in
     * the library is built on: `map(shard)` produces one partial per
     * shard (in parallel, any completion order), then `merge` receives
     * *all* partials as one vector indexed by shard number and combines
     * them on the calling thread.  Because the merge sees the partials
     * in shard order -- an order fixed by (items, shardSize) alone --
     * the result is bit-identical at any thread count.
     *
     * Batch APIs that need the whole partial vector at once (e.g. a
     * per-job result list, or a report merge that concatenates page
     * lists) use this directly; simple accumulations use mapReduce.
     *
     * The Partial type (Map's result) must be default-constructible
     * and movable.
     */
    template <class Map, class Merge>
    auto
    reduceShards(std::uint64_t items, std::uint64_t shardSize,
                 Map &&map, Merge &&merge) const
    {
        using Partial = std::decay_t<
            std::invoke_result_t<Map &, const ShardRange &>>;
        std::vector<Partial> partials(shardCount(items, shardSize));
        forEachShard(items, shardSize, [&](const ShardRange &r) {
            partials[r.index] = map(r);
        });
        return merge(std::move(partials));
    }

    /**
     * Deterministic sharded map-reduce: `map(shard)` produces one
     * partial per shard (in parallel), `fold(accumulator, partial)`
     * combines them *in shard order* on the calling thread.
     */
    template <class Partial, class Map, class Fold>
    Partial
    mapReduce(std::uint64_t items, std::uint64_t shardSize,
              Partial init, Map &&map, Fold &&fold) const
    {
        return reduceShards(
            items, shardSize, std::forward<Map>(map),
            [&](std::vector<Partial> &&partials) {
                for (Partial &p : partials)
                    fold(init, std::move(p));
                return std::move(init);
            });
    }

    /** Shards forEachShard will produce for (items, shardSize). */
    static std::uint64_t
    shardCount(std::uint64_t items, std::uint64_t shardSize)
    {
        return shardSize == 0 ? 0
                              : (items + shardSize - 1) / shardSize;
    }

    /**
     * Default trial-count shard size: coarse enough that queue and
     * slot overheads vanish, fine enough that 8 workers load-balance a
     * 10000-trial fleet.  Callers may override but must keep their
     * choice independent of the thread count.
     */
    static constexpr std::uint64_t kDefaultShard = 64;

    ThreadPool &pool() { return pool_; }

  private:
    mutable ThreadPool pool_;
};

} // namespace arcc

#endif // ARCC_ENGINE_SIM_ENGINE_HH
