/**
 * @file
 * Work-stealing thread pool implementation.
 */

#include "engine/thread_pool.hh"

#include "common/logging.hh"

namespace arcc
{

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int workers)
{
    if (workers < 0)
        workers = hardwareThreads();
    // One deque per worker plus the shared submit inbox.
    queues_.resize(static_cast<std::size_t>(workers) + 1);
    threads_.reserve(workers);
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back(&ThreadPool::workerMain, this,
                              static_cast<std::size_t>(i));
}

ThreadPool::~ThreadPool()
{
    // Drain whatever is still queued -- a submitted task may be the
    // only thing holding a waiter's completion count.
    while (tryRunOneTask()) {
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    ARCC_ASSERT(task);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ARCC_ASSERT(!stopping_);
        // Round-robin across the worker deques so steals stay rare;
        // an inline pool only has the shared inbox.
        std::size_t q = threads_.empty()
                            ? queues_.size() - 1
                            : nextQueue_++ % threads_.size();
        queues_[q].push_back(std::move(task));
    }
    workReady_.notify_one();
}

bool
ThreadPool::popLocked(std::size_t self, Task &out)
{
    // Own queue first, newest task first (LIFO keeps caches hot).
    if (self < queues_.size() && !queues_[self].empty()) {
        out = std::move(queues_[self].back());
        queues_[self].pop_back();
        return true;
    }
    // Steal the oldest task of the busiest victim (FIFO).
    std::size_t victim = queues_.size();
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (q == self || queues_[q].empty())
            continue;
        if (victim == queues_.size() ||
            queues_[q].size() > queues_[victim].size())
            victim = q;
    }
    if (victim == queues_.size())
        return false;
    out = std::move(queues_[victim].front());
    queues_[victim].pop_front();
    return true;
}

bool
ThreadPool::tryRunOneTask()
{
    Task task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // External threads have no own queue; index past the end makes
        // popLocked treat every queue as a steal victim.
        if (!popLocked(queues_.size(), task))
            return false;
    }
    task();
    return true;
}

std::size_t
ThreadPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

void
ThreadPool::workerMain(std::size_t self)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [&] {
                return stopping_ || popLocked(self, task);
            });
            if (!task && stopping_)
                return;
        }
        task();
    }
}

} // namespace arcc
