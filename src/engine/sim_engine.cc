/**
 * @file
 * SimEngine implementation.
 */

#include "engine/sim_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "common/logging.hh"
#include "common/parse_num.hh"

namespace arcc
{

namespace
{

/** Sanity cap on the executor count: far above any machine this runs
 *  on, low enough that a mistyped "ARCC_THREADS=40000" cannot OOM the
 *  process spawning stacks. */
constexpr int kMaxThreads = 1024;

/**
 * Thread count from ARCC_THREADS, or 0 when unset / empty.
 *
 * A set-but-invalid value is fatal, not a warning: the variable sizes
 * every engine in the process, and the old atoi() path silently
 * degraded "ARCC_THREADS=8cores" or "-4" to the hardware default --
 * exactly the silent-zero coercion a long-running service cannot
 * afford.  tests/test_engine.cc pins the fatal paths.
 */
int
envThreads()
{
    const char *env = std::getenv("ARCC_THREADS");
    if (!env || *env == '\0')
        return 0;
    const std::uint64_t n = parseU64("ARCC_THREADS", env);
    if (n < 1 || n > kMaxThreads)
        fatal("ARCC_THREADS=%s: need a thread count in [1, %d]", env,
              kMaxThreads);
    return static_cast<int>(n);
}

/** Completion state shared by one forEachShard call. */
struct ShardGroup
{
    std::mutex mutex;
    std::condition_variable done;
    std::uint64_t remaining;
    std::exception_ptr error;
    /** Set on first failure; later shards return without running. */
    std::atomic<bool> cancelled{false};

    explicit ShardGroup(std::uint64_t shards) : remaining(shards) {}

    void
    finishOne()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (--remaining == 0)
            done.notify_all();
    }

    void
    fail(std::exception_ptr e)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error)
                error = std::move(e);
        }
        cancelled.store(true, std::memory_order_relaxed);
    }
};

} // anonymous namespace

SimEngine::SimEngine() : SimEngine(Options{}) {}

SimEngine::SimEngine(const Options &options)
    : pool_([&] {
          int threads = options.threads;
          if (threads == 0)
              threads = envThreads();
          if (threads == 0)
              threads = ThreadPool::hardwareThreads();
          ARCC_ASSERT(threads >= 1);
          return threads - 1; // the calling thread is an executor too.
      }())
{
}

SimEngine &
SimEngine::global()
{
    static SimEngine engine;
    return engine;
}

void
SimEngine::forEachShard(std::uint64_t items, std::uint64_t shardSize,
                        const std::function<void(const ShardRange &)>
                            &body) const
{
    ARCC_ASSERT(shardSize > 0);
    const std::uint64_t shards = shardCount(items, shardSize);
    if (shards == 0)
        return;

    ShardGroup group(shards);
    auto runShard = [&body, &group](const ShardRange &range) {
        if (!group.cancelled.load(std::memory_order_relaxed)) {
            try {
                body(range);
            } catch (...) {
                group.fail(std::current_exception());
            }
        }
        group.finishOne();
    };

    // Queue every shard but the first; the calling thread takes shard
    // 0 immediately (with 1 thread this degenerates to a plain loop in
    // ascending shard order).
    for (std::uint64_t s = 1; s < shards; ++s) {
        ShardRange range{s * shardSize,
                         std::min(items, (s + 1) * shardSize), s};
        pool_.submit([runShard, range] { runShard(range); });
    }
    runShard({0, std::min(items, shardSize), 0});

    // Work while waiting: execute queued shards (ours or a nested
    // call's) instead of blocking the executor.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(group.mutex);
            if (group.remaining == 0)
                break;
        }
        if (!pool_.tryRunOneTask()) {
            std::unique_lock<std::mutex> lock(group.mutex);
            // Recheck under the lock; a worker may have finished the
            // last shard between the queue probe and here.
            if (group.remaining == 0)
                break;
            group.done.wait_for(lock,
                                std::chrono::milliseconds(1));
        }
    }

    if (group.error)
        std::rethrow_exception(group.error);
}

} // namespace arcc
