/**
 * @file
 * Work-stealing thread pool for the simulation engine.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (hot
 * caches) and steals FIFO from the other workers when it runs dry (the
 * oldest -- usually largest -- task migrates).  The pool is built for
 * the coarse-grained shards the SimEngine submits (thousands of Monte
 * Carlo trials or one whole mix simulation per task), so the queues
 * share one mutex; at that granularity contention is unmeasurable and
 * the single-lock design removes a whole class of lock-order bugs.
 *
 * A pool with zero workers is valid and useful: every task runs inline
 * on the thread that waits for it, which is how the deterministic
 * single-threaded reference mode works.
 */

#ifndef ARCC_ENGINE_THREAD_POOL_HH
#define ARCC_ENGINE_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arcc
{

/**
 * The pool.  Construction spawns the workers; destruction completes
 * every queued task, then joins.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param workers  worker-thread count; 0 means no workers (tasks
     *                 run inline in wait loops), negative means one
     *                 worker per hardware thread.
     */
    explicit ThreadPool(int workers = -1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker-thread count (0 for the inline pool). */
    int workers() const { return static_cast<int>(threads_.size()); }

    /** Queue one task.  Never blocks; never runs the task inline. */
    void submit(Task task);

    /**
     * Steal and run one queued task on the calling thread.
     * @return false when every queue was empty.
     *
     * Threads that wait for a task group call this in their wait loop,
     * so the waiter works instead of idling and a zero-worker pool
     * still makes progress.
     */
    bool tryRunOneTask();

    /** Number of tasks currently queued (for tests / introspection). */
    std::size_t queuedTasks() const;

    /** @return the machine's hardware thread count (at least 1). */
    static int hardwareThreads();

  private:
    void workerMain(std::size_t self);

    /** Pop from own back / steal from another front.  Lock held. */
    bool popLocked(std::size_t self, Task &out);

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    /** queues_[i] feeds worker i; queues_.back() is the submit inbox
     *  drained by everyone (it is the only queue of an inline pool). */
    std::vector<std::deque<Task>> queues_;
    std::vector<std::thread> threads_;
    std::size_t nextQueue_ = 0;
    bool stopping_ = false;
};

} // namespace arcc

#endif // ARCC_ENGINE_THREAD_POOL_HH
