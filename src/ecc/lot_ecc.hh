/**
 * @file
 * Functional model of LOT-ECC line protection (Chapters 2 and 5.2).
 *
 * Two geometries are modelled:
 *
 *  - **9-device** (the ISCA'12 configuration): a 64B line is striped
 *    8 bytes per device across 8 data devices; the 9th device stores
 *    the XOR of the 8 slices.  Each data device additionally keeps a
 *    local ones'-complement checksum of its slice for detection and
 *    localisation.  Corrects one bad device (single chipkill correct).
 *
 *  - **18-device** (the extension ARCC enables, Chapter 5.2): a 64B
 *    line is striped 4 bytes per device across 16 data devices; the
 *    17th device stores XOR parity and the 18th is a *spare* to which
 *    a diagnosed bad device's slice is remapped, providing double chip
 *    sparing.  The checksums live in a different line of the same row,
 *    which is why reads to upgraded pages cost an extra access (that
 *    cost is modelled in the performance plane, not here).
 *
 * The tier-1 checksum caveat is faithfully preserved: corruption whose
 * slice still matches its checksum is *not* detected here, exactly as
 * in the real scheme.
 */

#ifndef ARCC_ECC_LOT_ECC_HH
#define ARCC_ECC_LOT_ECC_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/checksum.hh"
#include "ecc/reed_solomon.hh" // DecodeStatus

namespace arcc
{

/** One LOT-ECC protected line plus its redundancy. */
struct LotLine
{
    /** Per-device data slices; [dataDevices] is the XOR parity slice. */
    std::vector<std::vector<std::uint8_t>> slices;
    /** Per-slice ones'-complement checksums (data + parity slices). */
    std::vector<std::uint16_t> checksums;
};

/** Result of a LOT-ECC line verification. */
struct LotDecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Device whose slice was reconstructed, or -1. */
    int deviceCorrected = -1;
};

/**
 * Encoder / decoder for LOT-ECC lines.
 */
class LotEcc
{
  public:
    /**
     * @param dataDevices  8 (nine-device rank) or 16 (18-device rank).
     * @param lineBytes    line size striped across the data devices.
     */
    LotEcc(int dataDevices, int lineBytes = 64);

    int dataDevices() const { return dataDevices_; }
    int sliceBytes() const { return sliceBytes_; }

    /** Encode a line into slices, parity and checksums. */
    LotLine encode(std::span<const std::uint8_t> line) const;

    /**
     * Verify a line and correct at most one bad device in place.
     * Localisation uses the checksums; correction uses XOR parity.
     * Two or more checksum mismatches are Detected (uncorrectable).
     * Allocation-free.
     */
    LotDecodeResult decode(LotLine &line) const;

    /** Reassemble the data bytes of a (verified) line. */
    std::vector<std::uint8_t> extract(const LotLine &line) const;

    /**
     * Allocation-free variant of extract: writes the data bytes into
     * the caller's buffer (exactly lineBytes long).
     */
    void extractInto(const LotLine &line,
                     std::span<std::uint8_t> out) const;

    /**
     * Re-encode a line into an existing LotLine, reusing its buffers
     * (allocation-free once the buffers have reached capacity).
     */
    void encodeInto(std::span<const std::uint8_t> line,
                    LotLine &out) const;

    /** Largest per-device slice the codec supports (stack buffers in
     *  the allocation-free decode are sized by this). */
    static constexpr int kMaxSliceBytes = 64;

  private:
    int dataDevices_;
    int lineBytes_;
    int sliceBytes_;
};

} // namespace arcc

#endif // ARCC_ECC_LOT_ECC_HH
