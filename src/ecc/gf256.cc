/**
 * @file
 * GF(2^8) table construction.
 */

#include "ecc/gf256.hh"

namespace arcc
{

namespace
{

struct Tables
{
    std::array<std::uint8_t, 256> exp{};
    std::array<std::uint8_t, 256> log{};
    /** Full product table, mul[a * 256 + b] = a * b.  64 KiB. */
    std::array<std::uint8_t, 256 * 256> mul{};
    /** Nibble-split shuffle tables, row a = {a*i} ++ {a*(i<<4)}. */
    std::array<std::uint8_t, 256 * GF256::kNibRowBytes> nib{};

    Tables()
    {
        std::uint16_t x = 1;
        for (int i = 0; i < GF256::kGroupOrder; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[static_cast<std::uint8_t>(x)] =
                static_cast<std::uint8_t>(i);
            x <<= 1;
            if (x & 0x100)
                x ^= GF256::kPoly;
        }
        // exp[255] aliases exp[0] so alphaPow(255) is still correct if
        // reached without the modulo (it is not, but keep it sane).
        exp[255] = exp[0];
        log[0] = 0; // undefined; callers must not ask for log(0).

        // Product table from the log/exp pair; rows 0 and columns 0
        // stay zero from value initialisation.
        for (int a = 1; a < 256; ++a) {
            std::uint8_t *row = mul.data() +
                                static_cast<std::size_t>(a) * 256;
            for (int b = 1; b < 256; ++b) {
                int s = log[a] + log[b];
                if (s >= GF256::kGroupOrder)
                    s -= GF256::kGroupOrder;
                row[b] = exp[s];
            }
        }

        // Nibble-split rows straight from the product table: the two
        // 16-entry halves reconstruct any product by distributivity,
        // a*x = a*(x & 0xf) ^ a*(x & 0xf0).
        for (int a = 0; a < 256; ++a) {
            const std::uint8_t *mrow = mul.data() +
                                       static_cast<std::size_t>(a) * 256;
            std::uint8_t *nrow = nib.data() +
                                 static_cast<std::size_t>(a) *
                                     GF256::kNibRowBytes;
            for (int i = 0; i < 16; ++i) {
                nrow[i] = mrow[i];
                nrow[16 + i] = mrow[i << 4];
            }
        }
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // anonymous namespace

const std::array<std::uint8_t, 256> &
GF256::expTable()
{
    return tables().exp;
}

const std::array<std::uint8_t, 256> &
GF256::logTable()
{
    return tables().log;
}

const std::uint8_t *
GF256::mulTable()
{
    return tables().mul.data();
}

const std::uint8_t *
GF256::nibTable()
{
    return tables().nib.data();
}

} // namespace arcc
