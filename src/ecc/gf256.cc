/**
 * @file
 * GF(2^8) table construction.
 */

#include "ecc/gf256.hh"

namespace arcc
{

namespace
{

struct Tables
{
    std::array<std::uint8_t, 256> exp{};
    std::array<int, 256> log{};

    Tables()
    {
        std::uint16_t x = 1;
        for (int i = 0; i < GF256::kGroupOrder; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[static_cast<std::uint8_t>(x)] = i;
            x <<= 1;
            if (x & 0x100)
                x ^= GF256::kPoly;
        }
        // exp[255] aliases exp[0] so alphaPow(255) is still correct if
        // reached without the modulo (it is not, but keep it sane).
        exp[255] = exp[0];
        log[0] = 0; // undefined; callers must not ask for log(0).
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

} // anonymous namespace

const std::array<std::uint8_t, 256> &
GF256::expTable()
{
    return tables().exp;
}

const std::array<int, 256> &
GF256::logTable()
{
    return tables().log;
}

} // namespace arcc
