/**
 * @file
 * Binary BCH codes over GF(2^m) with configurable block and code size.
 *
 * The codec zoo's bit-granularity workhorse: where the Reed-Solomon
 * schemes correct whole 8-bit device symbols, a BCH(data_bits, t) code
 * corrects up to t arbitrary *bit* errors anywhere in the block --
 * the ECC family NAND controllers and on-die DRAM ECC actually deploy
 * (cf. myssd_sdk's BCH_BLOCK_SIZE/BCH_CODE_SIZE configurations).  The
 * fault-injection matrix compares it head-to-head against the paper's
 * chipkill RS schemes under device-burst fail modes.
 *
 * Construction is the textbook one: the generator polynomial is the
 * LCM of the minimal polynomials of alpha^1 .. alpha^2t over GF(2),
 * the code is shortened from the full 2^m - 1 cyclic length down to
 * data_bits + parity bits, and the field size m is picked
 * automatically as the smallest (4 <= m <= 13) whose dimension fits
 * the requested block.
 *
 * Two decoders ship, mirroring the RS fast/reference split:
 *
 *  - Bch::decode -- syndromes by Horner evaluation, Berlekamp-Massey
 *    for the error locator, a Chien scan over the shortened positions,
 *    and a syndrome-delta safety check before any bit is flipped
 *    (allocation-free through a BchWorkspace);
 *  - BchReference::decode -- an independently written
 *    Peterson-Gorenstein-Zierler oracle (naive per-bit syndromes,
 *    Gaussian elimination on the syndrome matrix, brute-force root
 *    search, full syndrome recomputation before committing).
 *
 * Because both decoders verify every accepted correction against all
 * 2t syndromes, and a weight <= t pattern consistent with a syndrome
 * sequence is unique (two such patterns would XOR to a codeword of
 * weight <= 2t < d), the two decoders agree bit-for-bit on *every*
 * input -- including miscorrection patterns beyond t errors.  The
 * property suite fuzzes exactly this.
 */

#ifndef ARCC_ECC_BCH_HH
#define ARCC_ECC_BCH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/reed_solomon.hh" // for DecodeStatus

namespace arcc
{

/**
 * GF(2^m) arithmetic tables for the BCH codecs, 4 <= m <= 13.
 * Elements are 16-bit polynomial representations; alpha (the primitive
 * root x of the field polynomial) generates the multiplicative group.
 */
class Gf2m
{
  public:
    /** Build the exp/log tables for GF(2^m).  Fatal outside [4, 13]. */
    explicit Gf2m(int m);

    int m() const { return m_; }
    /** Multiplicative group order, 2^m - 1. */
    int n() const { return n_; }

    std::uint16_t
    mul(std::uint16_t a, std::uint16_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[(log_[a] + log_[b]) % n_];
    }

    /** Multiplicative inverse.  Asserts a != 0. */
    std::uint16_t inv(std::uint16_t a) const;

    /** alpha^e for any non-negative exponent (reduced mod n). */
    std::uint16_t
    alphaPow(std::uint64_t e) const
    {
        return exp_[e % static_cast<std::uint64_t>(n_)];
    }

    /** Discrete log base alpha.  Asserts a != 0. */
    int logOf(std::uint16_t a) const;

  private:
    int m_;
    int n_;
    std::vector<std::uint16_t> exp_;
    std::vector<std::uint16_t> log_;
};

/**
 * Scratch arena for one in-flight BCH decode.  All vectors reach
 * steady-state capacity after the first decode of a given code, so a
 * sweep loop performs zero allocations from then on.  One per
 * SimEngine worker / shard; not thread-safe.
 */
struct BchWorkspace
{
    /** Codeword coefficient bits, one byte per bit (staging). */
    std::vector<std::uint8_t> coeff;
    /** Syndromes S_1 .. S_2t (0-indexed: synd[j-1] = S_j). */
    std::vector<std::uint16_t> synd;
    /** Berlekamp-Massey polynomials. */
    std::vector<std::uint16_t> sigma;
    std::vector<std::uint16_t> prev;
    std::vector<std::uint16_t> scratch;
    /** Chien-located error coefficient positions. */
    std::vector<int> roots;
};

/**
 * A shortened binary BCH(data_bits + parity, data_bits) code
 * correcting t bit errors.
 *
 * Wire format: a little-endian bit stream (bit i lives at byte i/8,
 * bit i%8).  Bits [0, dataBits()) are the data block verbatim
 * (systematic), bits [dataBits(), codeBits()) the parity remainder.
 * Any trailing pad bits of the last wire byte are kept zero by
 * encode() so the serialized form is canonical.
 */
class Bch
{
  public:
    /**
     * Build the code.  Fatal when the parameters are unsatisfiable.
     * @param data_bits block size in bits; a positive multiple of 8.
     * @param t         bit-correction capability, 1 <= t <= 16.
     */
    Bch(int data_bits, int t);

    int dataBits() const { return dataBits_; }
    int t() const { return t_; }
    /** Parity (check) bits appended: deg of the generator. */
    int parityBits() const { return r_; }
    /** Total codeword length in bits (shortened). */
    int codeBits() const { return dataBits_ + r_; }
    /** Serialized codeword size, ceil(codeBits / 8). */
    int codeBytes() const { return (codeBits() + 7) / 8; }
    /** Field degree m the code was constructed over. */
    int m() const { return gf_.m(); }

    const Gf2m &field() const { return gf_; }

    /** Outcome of one decode. */
    struct Result
    {
        DecodeStatus status = DecodeStatus::Clean;
        /** Bits flipped by the decoder (0 unless Corrected). */
        int bitsCorrected = 0;

        bool ok() const { return status != DecodeStatus::Detected; }
    };

    /**
     * Systematic encode in place: reads the data bits, writes the
     * parity bits and zeroes the wire pad.  Allocation-free.
     * @param wire buffer of at least codeBytes().
     */
    void encode(std::span<std::uint8_t> wire) const;

    /**
     * Decode in place, correcting up to t bit errors.  A correction
     * is only committed after a syndrome-delta check proves the
     * flipped pattern reproduces every syndrome; anything else is
     * Detected.  Allocation-free at steady state through `ws`.
     *
     * @param positions when non-null, the *wire* bit indices the
     *                  decoder flipped are appended (Corrected only).
     */
    Result decode(std::span<std::uint8_t> wire, BchWorkspace &ws,
                  std::vector<int> *positions = nullptr) const;

    /**
     * Map a codeword polynomial coefficient index (parity occupies
     * [0, parityBits()), data [parityBits(), codeBits())) to its wire
     * bit index, and back.  Shared with the reference decoder and the
     * tests.
     */
    int
    coeffToWire(int c) const
    {
        return c >= r_ ? c - r_ : dataBits_ + c;
    }

    int
    wireToCoeff(int w) const
    {
        return w < dataBits_ ? r_ + w : w - dataBits_;
    }

  private:
    Gf2m gf_;
    int dataBits_;
    int t_;
    /** Generator degree == parity bits. */
    int r_;
    /** Generator polynomial coefficient bits, low-to-high, deg r_. */
    std::vector<std::uint8_t> gen_;
};

/**
 * The retained-oracle decoder: Peterson-Gorenstein-Zierler with a
 * brute-force root search and a full syndrome recomputation before
 * any correction is committed.  Structured independently of
 * Bch::decode on purpose; the property suite pins the two
 * bit-identical (see the file comment for why that equality is exact,
 * not statistical).
 */
class BchReference
{
  public:
    static Bch::Result decode(const Bch &code,
                              std::span<std::uint8_t> wire,
                              std::vector<int> *positions = nullptr);
};

} // namespace arcc

#endif // ARCC_ECC_BCH_HH
