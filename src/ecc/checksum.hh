/**
 * @file
 * Checksum and parity primitives for the LOT-ECC substrate.
 *
 * LOT-ECC (Udipi et al., ISCA 2012) protects each device's slice of a
 * cache line with a local ones'-complement checksum (tier-1 error
 * detection / localisation) and reconstructs a bad device's slice from
 * an XOR parity column (tier-2 error correction).  Chapter 2 of the
 * ARCC paper describes the scheme and its caveat: the checksum only
 * *guarantees* detection of device faults whose output is all-0s or
 * all-1s; arbitrary corruption is detected only probabilistically.
 * That caveat is preserved here -- the checksum really can alias.
 */

#ifndef ARCC_ECC_CHECKSUM_HH
#define ARCC_ECC_CHECKSUM_HH

#include <cstdint>
#include <span>

namespace arcc
{

/**
 * Ones'-complement sum of 16-bit big-endian words, as used by LOT-ECC
 * for its tier-1 error detection code.
 */
class OnesComplement16
{
  public:
    /**
     * Checksum a byte buffer.  Odd trailing bytes are padded with zero.
     * Returns the complement of the end-around-carry sum, so a stuck
     * all-0 or all-1 device output always mismatches (the LOT-ECC
     * detection guarantee of Chapter 2).
     */
    static std::uint16_t compute(std::span<const std::uint8_t> bytes);

    /** @return true when the data matches the stored checksum. */
    static bool
    verify(std::span<const std::uint8_t> bytes, std::uint16_t stored)
    {
        return compute(bytes) == stored;
    }
};

/** XOR a source buffer into an accumulator buffer of equal length. */
void xorInto(std::span<std::uint8_t> acc,
             std::span<const std::uint8_t> src);

} // namespace arcc

#endif // ARCC_ECC_CHECKSUM_HH
