/**
 * @file
 * Binary BCH implementation: GF(2^m) tables, generator construction
 * from cyclotomic cosets, the Berlekamp-Massey fast decoder, and the
 * Peterson-Gorenstein-Zierler reference oracle.
 */

#include "ecc/bch.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace arcc
{

namespace
{

/**
 * Primitive polynomials over GF(2), indexed by m (bit m set).  The
 * standard minimum-weight choices, e.g. x^10 + x^3 + 1 for m = 10.
 */
constexpr std::array<std::uint32_t, 14> kPrimPoly = {
    0,      0,      0,      0,      0x13,   0x25,   0x43,
    0x89,   0x11d,  0x211,  0x409,  0x805,  0x1053, 0x201b,
};

/** Smallest supported field degree. */
constexpr int kMinM = 4;
/** Largest supported field degree (tables stay small: 8K entries). */
constexpr int kMaxM = 13;

/** Read wire bit w (little-endian bit stream). */
inline int
wireBit(std::span<const std::uint8_t> wire, int w)
{
    return (wire[w >> 3] >> (w & 7)) & 1;
}

/** Flip wire bit w. */
inline void
wireFlip(std::span<std::uint8_t> wire, int w)
{
    wire[w >> 3] ^= static_cast<std::uint8_t>(1 << (w & 7));
}

/** Clear wire bit w. */
inline void
wireClear(std::span<std::uint8_t> wire, int w)
{
    wire[w >> 3] &=
        static_cast<std::uint8_t>(~(1 << (w & 7)) & 0xff);
}

/** Set wire bit w to v (assumes the bit is currently clear). */
inline void
wireSet(std::span<std::uint8_t> wire, int w, int v)
{
    wire[w >> 3] |= static_cast<std::uint8_t>(v << (w & 7));
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Gf2m
// ---------------------------------------------------------------------

Gf2m::Gf2m(int m) : m_(m), n_((1 << m) - 1)
{
    if (m < kMinM || m > kMaxM)
        fatal("Gf2m: field degree %d outside [%d, %d]", m, kMinM,
              kMaxM);
    const std::uint32_t poly = kPrimPoly[m];
    exp_.resize(2 * n_);
    log_.assign(n_ + 1, 0);
    std::uint32_t x = 1;
    for (int i = 0; i < n_; ++i) {
        exp_[i] = static_cast<std::uint16_t>(x);
        log_[x] = static_cast<std::uint16_t>(i);
        x <<= 1;
        if (x & (1u << m))
            x ^= poly;
    }
    ARCC_ASSERT(x == 1); // x is primitive: the orbit closes at n.
    // Doubled table so mul() can skip the mod on the summed logs --
    // but keep the mod anyway for alphaPow's large exponents; the
    // duplicate half still spares a branch in hot loops.
    for (int i = 0; i < n_; ++i)
        exp_[n_ + i] = exp_[i];
}

std::uint16_t
Gf2m::inv(std::uint16_t a) const
{
    ARCC_ASSERT(a != 0);
    return exp_[n_ - log_[a]];
}

int
Gf2m::logOf(std::uint16_t a) const
{
    ARCC_ASSERT(a != 0);
    return log_[a];
}

// ---------------------------------------------------------------------
// Bch construction
// ---------------------------------------------------------------------

namespace
{

/**
 * Build the generator polynomial of the t-error-correcting BCH code
 * over `gf`: the product of the distinct minimal polynomials of
 * alpha^1 .. alpha^2t.  Returns coefficient bits, low-to-high.
 */
std::vector<std::uint8_t>
buildGenerator(const Gf2m &gf, int t)
{
    const int n = gf.n();
    std::vector<std::uint8_t> gen = {1};
    std::vector<char> covered(n, 0);
    for (int i = 1; i <= 2 * t; ++i) {
        if (covered[i % n])
            continue;
        // Minimal polynomial of alpha^i: product of (x + alpha^j)
        // over the cyclotomic coset {i, 2i, 4i, ...} mod n, computed
        // with GF(2^m) coefficients.
        std::vector<std::uint16_t> mp = {1};
        int j = i % n;
        do {
            covered[j] = 1;
            const std::uint16_t root = gf.alphaPow(j);
            mp.push_back(0);
            for (std::size_t d = mp.size() - 1; d >= 1; --d)
                mp[d] = mp[d - 1] ^ gf.mul(mp[d], root);
            mp[0] = gf.mul(mp[0], root);
            j = (2 * j) % n;
        } while (j != i % n);
        // Conjugate-closed products have GF(2) coefficients.
        for (std::uint16_t c : mp)
            ARCC_ASSERT(c <= 1);
        // gen *= mp over GF(2).
        std::vector<std::uint8_t> prod(gen.size() + mp.size() - 1, 0);
        for (std::size_t a = 0; a < gen.size(); ++a) {
            if (!gen[a])
                continue;
            for (std::size_t b = 0; b < mp.size(); ++b)
                prod[a + b] ^= static_cast<std::uint8_t>(mp[b]);
        }
        gen = std::move(prod);
    }
    return gen;
}

} // anonymous namespace

Bch::Bch(int data_bits, int t)
    : gf_((
          [&]() {
              // Pick the smallest field whose dimension fits the
              // requested block; the lambda runs before any member
              // initialisation so gf_ can be constructed in place.
              if (data_bits < 8 || data_bits % 8 != 0)
                  fatal("Bch: data_bits %d must be a positive "
                        "multiple of 8",
                        data_bits);
              if (t < 1 || t > 16)
                  fatal("Bch: t=%d outside [1, 16]", t);
              for (int m = kMinM; m <= kMaxM; ++m) {
                  const int n = (1 << m) - 1;
                  if (2 * t >= n)
                      continue;
                  Gf2m gf(m);
                  const int deg =
                      static_cast<int>(buildGenerator(gf, t).size()) -
                      1;
                  if (data_bits + deg <= n)
                      return m;
              }
              fatal("Bch: %d data bits with t=%d does not fit "
                    "GF(2^%d)",
                    data_bits, t, kMaxM);
          })()),
      dataBits_(data_bits),
      t_(t),
      gen_(buildGenerator(gf_, t))
{
    r_ = static_cast<int>(gen_.size()) - 1;
    ARCC_ASSERT(r_ >= 1 && dataBits_ + r_ <= gf_.n());
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

void
Bch::encode(std::span<std::uint8_t> wire) const
{
    ARCC_ASSERT(wire.size() >=
                static_cast<std::size_t>(codeBytes()));
    // Parity = x^r d(x) mod g(x) via the standard bitwise LFSR
    // division; rem[d] holds the coefficient of x^d.
    std::array<std::uint8_t, 256> rem{};
    for (int j = dataBits_ - 1; j >= 0; --j) {
        const int fb = wireBit(wire, j) ^ rem[r_ - 1];
        for (int d = r_ - 1; d > 0; --d)
            rem[d] = rem[d - 1] ^ (fb & gen_[d]);
        rem[0] = static_cast<std::uint8_t>(fb & gen_[0]);
    }
    for (int d = 0; d < r_; ++d) {
        wireClear(wire, dataBits_ + d);
        wireSet(wire, dataBits_ + d, rem[d]);
    }
    // Canonical wire: the pad bits of the last byte stay zero.
    for (int w = codeBits(); w < codeBytes() * 8; ++w)
        wireClear(wire, w);
}

// ---------------------------------------------------------------------
// Fast decode: Horner syndromes + Berlekamp-Massey + Chien + delta
// ---------------------------------------------------------------------

Bch::Result
Bch::decode(std::span<std::uint8_t> wire, BchWorkspace &ws,
            std::vector<int> *positions) const
{
    Result res;
    const int nbits = codeBits();
    const int twoT = 2 * t_;

    // Stage the coefficient view once: coefficient c of the codeword
    // polynomial (parity low, data high).
    ws.coeff.resize(nbits);
    for (int c = 0; c < nbits; ++c)
        ws.coeff[c] = static_cast<std::uint8_t>(
            wireBit(wire, coeffToWire(c)));

    // Syndromes S_j = c(alpha^j), j = 1..2t, by Horner from the top
    // coefficient down.
    ws.synd.assign(twoT, 0);
    bool any = false;
    for (int j = 1; j <= twoT; ++j) {
        const std::uint16_t a = gf_.alphaPow(j);
        std::uint16_t s = 0;
        for (int c = nbits - 1; c >= 0; --c)
            s = gf_.mul(s, a) ^ ws.coeff[c];
        ws.synd[j - 1] = s;
        any = any || s != 0;
    }
    if (!any)
        return res; // Clean.

    // Berlekamp-Massey over GF(2^m) for the error locator sigma(x).
    std::vector<std::uint16_t> &sigma = ws.sigma;
    std::vector<std::uint16_t> &bpoly = ws.prev;
    std::vector<std::uint16_t> &tpoly = ws.scratch;
    sigma.assign(1, 1);
    bpoly.assign(1, 1);
    int L = 0;
    int shift = 1;
    std::uint16_t b = 1;
    for (int step = 0; step < twoT; ++step) {
        std::uint16_t d = ws.synd[step];
        for (int i = 1;
             i <= L && i < static_cast<int>(sigma.size()); ++i)
            d ^= gf_.mul(sigma[i], ws.synd[step - i]);
        if (d == 0) {
            ++shift;
            continue;
        }
        const std::uint16_t coef = gf_.mul(d, gf_.inv(b));
        if (2 * L <= step) {
            tpoly.assign(sigma.begin(), sigma.end());
            if (sigma.size() < bpoly.size() + shift)
                sigma.resize(bpoly.size() + shift, 0);
            for (std::size_t i = 0; i < bpoly.size(); ++i)
                sigma[i + shift] ^= gf_.mul(coef, bpoly[i]);
            L = step + 1 - L;
            bpoly.assign(tpoly.begin(), tpoly.end());
            b = d;
            shift = 1;
        } else {
            if (sigma.size() < bpoly.size() + shift)
                sigma.resize(bpoly.size() + shift, 0);
            for (std::size_t i = 0; i < bpoly.size(); ++i)
                sigma[i + shift] ^= gf_.mul(coef, bpoly[i]);
            ++shift;
        }
    }
    int deg = static_cast<int>(sigma.size()) - 1;
    while (deg > 0 && sigma[deg] == 0)
        --deg;
    if (deg == 0 || deg > t_ || deg != L) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Chien scan over the shortened coefficient positions: position c
    // is in error iff sigma(alpha^-c) == 0.
    const int n = gf_.n();
    ws.roots.clear();
    for (int c = 0; c < nbits; ++c) {
        const std::uint16_t x = gf_.alphaPow(
            static_cast<std::uint64_t>(n - (c % n)) % n);
        std::uint16_t v = sigma[deg];
        for (int i = deg - 1; i >= 0; --i)
            v = gf_.mul(v, x) ^ sigma[i];
        if (v == 0)
            ws.roots.push_back(c);
    }
    if (static_cast<int>(ws.roots.size()) != deg) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Syndrome-delta safety check: the located pattern must reproduce
    // *every* syndrome before anything is flipped.  This is what makes
    // an accepted correction unique (and the reference oracle exact).
    for (int j = 1; j <= twoT; ++j) {
        std::uint16_t delta = 0;
        for (int c : ws.roots)
            delta ^= gf_.alphaPow(static_cast<std::uint64_t>(j) *
                                  static_cast<std::uint64_t>(c));
        if (delta != ws.synd[j - 1]) {
            res.status = DecodeStatus::Detected;
            return res;
        }
    }

    for (int c : ws.roots) {
        const int w = coeffToWire(c);
        wireFlip(wire, w);
        if (positions)
            positions->push_back(w);
    }
    res.status = DecodeStatus::Corrected;
    res.bitsCorrected = static_cast<int>(ws.roots.size());
    return res;
}

// ---------------------------------------------------------------------
// Reference decode: PGZ + brute-force roots + full recomputation
// ---------------------------------------------------------------------

namespace
{

/** Naive syndrome set of the wire (per set bit, no Horner). */
std::vector<std::uint16_t>
referenceSyndromes(const Bch &code, std::span<const std::uint8_t> wire)
{
    const Gf2m &gf = code.field();
    std::vector<std::uint16_t> synd(2 * code.t(), 0);
    for (int c = 0; c < code.codeBits(); ++c) {
        if (!wireBit(wire, code.coeffToWire(c)))
            continue;
        for (int j = 1; j <= 2 * code.t(); ++j)
            synd[j - 1] ^=
                gf.alphaPow(static_cast<std::uint64_t>(j) *
                            static_cast<std::uint64_t>(c));
    }
    return synd;
}

/**
 * Solve the v x v PGZ system A sigma = rhs over GF(2^m) by Gaussian
 * elimination.  A[a][b] = S_{a+b+1}, rhs[a] = S_{v+a+1}; the unknowns
 * come back as sigma_v .. sigma_1.  Returns false when singular.
 */
bool
solvePgz(const Gf2m &gf, const std::vector<std::uint16_t> &synd,
         int v, std::vector<std::uint16_t> &out)
{
    std::vector<std::vector<std::uint16_t>> a(
        v, std::vector<std::uint16_t>(v + 1, 0));
    for (int row = 0; row < v; ++row) {
        for (int col = 0; col < v; ++col)
            a[row][col] = synd[row + col];
        a[row][v] = synd[v + row];
    }
    for (int col = 0; col < v; ++col) {
        int pivot = -1;
        for (int row = col; row < v; ++row) {
            if (a[row][col] != 0) {
                pivot = row;
                break;
            }
        }
        if (pivot < 0)
            return false;
        std::swap(a[col], a[pivot]);
        const std::uint16_t piv_inv = gf.inv(a[col][col]);
        for (int c = col; c <= v; ++c)
            a[col][c] = gf.mul(a[col][c], piv_inv);
        for (int row = 0; row < v; ++row) {
            if (row == col || a[row][col] == 0)
                continue;
            const std::uint16_t f = a[row][col];
            for (int c = col; c <= v; ++c)
                a[row][c] ^= gf.mul(f, a[col][c]);
        }
    }
    out.resize(v);
    for (int row = 0; row < v; ++row)
        out[row] = a[row][v]; // unknown row 0 is sigma_v.
    return true;
}

} // anonymous namespace

Bch::Result
BchReference::decode(const Bch &code, std::span<std::uint8_t> wire,
                     std::vector<int> *positions)
{
    Bch::Result res;
    const Gf2m &gf = code.field();
    const int n = gf.n();

    std::vector<std::uint16_t> synd = referenceSyndromes(code, wire);
    bool any = false;
    for (std::uint16_t s : synd)
        any = any || s != 0;
    if (!any)
        return res; // Clean.

    for (int v = code.t(); v >= 1; --v) {
        std::vector<std::uint16_t> unknowns;
        if (!solvePgz(gf, synd, v, unknowns))
            continue;
        // sigma(x) = 1 + sigma_1 x + ... + sigma_v x^v with
        // unknowns[row] = sigma_{v-row}.
        std::vector<std::uint16_t> sigma(v + 1, 0);
        sigma[0] = 1;
        for (int row = 0; row < v; ++row)
            sigma[v - row] = unknowns[row];
        if (sigma[v] == 0)
            continue; // Degree collapsed: not a weight-v locator.

        // Brute-force root search over the shortened positions.
        std::vector<int> roots;
        for (int c = 0; c < code.codeBits(); ++c) {
            const std::uint16_t x = gf.alphaPow(
                static_cast<std::uint64_t>(n - (c % n)) % n);
            std::uint16_t val = 0;
            std::uint16_t xp = 1;
            for (int i = 0; i <= v; ++i) {
                val ^= gf.mul(sigma[i], xp);
                xp = gf.mul(xp, x);
            }
            if (val == 0)
                roots.push_back(c);
        }
        if (static_cast<int>(roots.size()) != v)
            continue;

        // Tentatively flip, recompute everything, and only commit a
        // correction that leaves a true codeword behind.
        for (int c : roots)
            wireFlip(wire, code.coeffToWire(c));
        std::vector<std::uint16_t> after =
            referenceSyndromes(code, wire);
        bool clean = true;
        for (std::uint16_t s : after)
            clean = clean && s == 0;
        if (!clean) {
            for (int c : roots)
                wireFlip(wire, code.coeffToWire(c));
            continue;
        }
        if (positions) {
            for (int c : roots)
                positions->push_back(code.coeffToWire(c));
        }
        res.status = DecodeStatus::Corrected;
        res.bitsCorrected = v;
        return res;
    }
    res.status = DecodeStatus::Detected;
    return res;
}

} // namespace arcc
