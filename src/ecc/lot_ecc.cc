/**
 * @file
 * LOT-ECC functional encode / localise / reconstruct.
 */

#include "ecc/lot_ecc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arcc
{

LotEcc::LotEcc(int dataDevices, int lineBytes)
    : dataDevices_(dataDevices), lineBytes_(lineBytes)
{
    if (dataDevices != 8 && dataDevices != 16)
        fatal("LotEcc: dataDevices must be 8 or 16, got %d", dataDevices);
    if (lineBytes % dataDevices != 0)
        fatal("LotEcc: line of %d bytes does not stripe over %d devices",
              lineBytes, dataDevices);
    sliceBytes_ = lineBytes / dataDevices;
    if (sliceBytes_ > kMaxSliceBytes)
        fatal("LotEcc: %dB slices exceed the supported %dB",
              sliceBytes_, kMaxSliceBytes);
}

void
LotEcc::encodeInto(std::span<const std::uint8_t> line, LotLine &out) const
{
    ARCC_ASSERT(line.size() == static_cast<std::size_t>(lineBytes_));
    out.slices.resize(dataDevices_ + 1);
    out.checksums.resize(dataDevices_ + 1);

    std::uint8_t parity[kMaxSliceBytes] = {};
    for (int d = 0; d < dataDevices_; ++d) {
        auto first = line.begin() + d * sliceBytes_;
        out.slices[d].assign(first, first + sliceBytes_);
        for (int i = 0; i < sliceBytes_; ++i)
            parity[i] ^= out.slices[d][i];
        out.checksums[d] = OnesComplement16::compute(out.slices[d]);
    }
    out.slices[dataDevices_].assign(parity, parity + sliceBytes_);
    out.checksums[dataDevices_] =
        OnesComplement16::compute(out.slices[dataDevices_]);
}

LotLine
LotEcc::encode(std::span<const std::uint8_t> line) const
{
    LotLine out;
    encodeInto(line, out);
    return out;
}

LotDecodeResult
LotEcc::decode(LotLine &line) const
{
    ARCC_ASSERT(line.slices.size() ==
                static_cast<std::size_t>(dataDevices_ + 1));

    LotDecodeResult res;

    // Tier-1: localise via the per-device checksums.  At most two
    // mismatches matter (a second one already means Detected).
    int bad_count = 0;
    int victim = -1;
    for (int d = 0; d <= dataDevices_; ++d) {
        if (!OnesComplement16::verify(line.slices[d],
                                      line.checksums[d])) {
            if (bad_count == 0)
                victim = d;
            ++bad_count;
        }
    }

    if (bad_count == 0) {
        // Either genuinely clean or an aliasing corruption the real
        // scheme would also miss.  Faithfully report Clean.
        res.status = DecodeStatus::Clean;
        return res;
    }
    if (bad_count > 1) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Tier-2: reconstruct the single bad slice from the XOR of all the
    // other slices (parity included, unless parity itself is bad).
    ARCC_ASSERT(line.slices[victim].size() ==
                static_cast<std::size_t>(sliceBytes_));
    std::uint8_t rebuilt[kMaxSliceBytes] = {};
    for (int d = 0; d <= dataDevices_; ++d) {
        if (d != victim)
            for (int i = 0; i < sliceBytes_; ++i)
                rebuilt[i] ^= line.slices[d][i];
    }
    std::copy(rebuilt, rebuilt + sliceBytes_,
              line.slices[victim].begin());
    line.checksums[victim] = OnesComplement16::compute(
        line.slices[victim]);

    res.status = DecodeStatus::Corrected;
    res.deviceCorrected = victim;
    return res;
}

void
LotEcc::extractInto(const LotLine &line,
                    std::span<std::uint8_t> out) const
{
    ARCC_ASSERT(out.size() == static_cast<std::size_t>(lineBytes_));
    for (int d = 0; d < dataDevices_; ++d)
        std::copy(line.slices[d].begin(), line.slices[d].end(),
                  out.begin() + d * sliceBytes_);
}

std::vector<std::uint8_t>
LotEcc::extract(const LotLine &line) const
{
    std::vector<std::uint8_t> out(lineBytes_);
    extractInto(line, out);
    return out;
}

} // namespace arcc
