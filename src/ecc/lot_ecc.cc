/**
 * @file
 * LOT-ECC functional encode / localise / reconstruct.
 */

#include "ecc/lot_ecc.hh"

#include "common/logging.hh"

namespace arcc
{

LotEcc::LotEcc(int dataDevices, int lineBytes)
    : dataDevices_(dataDevices), lineBytes_(lineBytes)
{
    if (dataDevices != 8 && dataDevices != 16)
        fatal("LotEcc: dataDevices must be 8 or 16, got %d", dataDevices);
    if (lineBytes % dataDevices != 0)
        fatal("LotEcc: line of %d bytes does not stripe over %d devices",
              lineBytes, dataDevices);
    sliceBytes_ = lineBytes / dataDevices;
}

LotLine
LotEcc::encode(std::span<const std::uint8_t> line) const
{
    ARCC_ASSERT(line.size() == static_cast<std::size_t>(lineBytes_));
    LotLine out;
    out.slices.resize(dataDevices_ + 1);
    out.checksums.resize(dataDevices_ + 1);

    std::vector<std::uint8_t> parity(sliceBytes_, 0);
    for (int d = 0; d < dataDevices_; ++d) {
        auto first = line.begin() + d * sliceBytes_;
        out.slices[d].assign(first, first + sliceBytes_);
        xorInto(parity, out.slices[d]);
        out.checksums[d] = OnesComplement16::compute(out.slices[d]);
    }
    out.slices[dataDevices_] = parity;
    out.checksums[dataDevices_] = OnesComplement16::compute(parity);
    return out;
}

LotDecodeResult
LotEcc::decode(LotLine &line) const
{
    ARCC_ASSERT(line.slices.size() ==
                static_cast<std::size_t>(dataDevices_ + 1));

    LotDecodeResult res;

    // Tier-1: localise via the per-device checksums.
    std::vector<int> bad;
    for (int d = 0; d <= dataDevices_; ++d) {
        if (!OnesComplement16::verify(line.slices[d], line.checksums[d]))
            bad.push_back(d);
    }

    if (bad.empty()) {
        // Either genuinely clean or an aliasing corruption the real
        // scheme would also miss.  Faithfully report Clean.
        res.status = DecodeStatus::Clean;
        return res;
    }
    if (bad.size() > 1) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Tier-2: reconstruct the single bad slice from the XOR of all the
    // other slices (parity included, unless parity itself is bad).
    int victim = bad.front();
    std::vector<std::uint8_t> rebuilt(sliceBytes_, 0);
    for (int d = 0; d <= dataDevices_; ++d) {
        if (d != victim)
            xorInto(rebuilt, line.slices[d]);
    }
    line.slices[victim] = rebuilt;
    line.checksums[victim] = OnesComplement16::compute(rebuilt);

    res.status = DecodeStatus::Corrected;
    res.deviceCorrected = victim;
    return res;
}

std::vector<std::uint8_t>
LotEcc::extract(const LotLine &line) const
{
    std::vector<std::uint8_t> out;
    out.reserve(lineBytes_);
    for (int d = 0; d < dataDevices_; ++d)
        out.insert(out.end(), line.slices[d].begin(),
                   line.slices[d].end());
    return out;
}

} // namespace arcc
