/**
 * @file
 * SIMD dispatch tiers for the GF(2^8) kernels.
 *
 * The vector kernels in ecc/gf256_simd.hh are compiled per ISA
 * extension with function-level target attributes (so the baseline
 * build stays runnable on any x86-64) and selected once at runtime:
 *
 *  - **Avx2**:  32-lane nibble shuffles via vpshufb.
 *  - **Ssse3**: 16-lane nibble shuffles via pshufb (the portable x86
 *               floor; every x86-64 part since ~2006 has it).
 *  - **Neon**:  16-lane shuffles via tbl on aarch64 (baseline there).
 *  - **Scalar**: the table-driven loops of ecc/reed_solomon.cc --
 *               the *pinned oracle*.  Every vector kernel is required
 *               to be bit-identical to it (and the scalar pipeline is
 *               in turn fuzzed against RsReference), so "fast" and
 *               "correct" stay the same artifact.
 *
 * Two override knobs force the scalar path:
 *
 *  - `-DARCC_SIMD=OFF` at configure time defines ARCC_SIMD_DISABLED
 *    and compiles the vector kernels out entirely (the CI scalar leg);
 *  - the `ARCC_SIMD` environment variable caps the tier at runtime
 *    without a rebuild: `off` / `scalar` / `0` force scalar, `ssse3`
 *    caps an AVX2 machine at 16 lanes, `avx2` / `neon` / unset /
 *    anything else keep the detected tier.  bench-smoke uses this to
 *    diff the two paths' `check` hashes from one binary.
 */

#ifndef ARCC_ECC_SIMD_HH
#define ARCC_ECC_SIMD_HH

namespace arcc
{
namespace simd
{

/** Instruction-set tier a kernel runs at, best first. */
enum class Tier
{
    Scalar,
    Ssse3,
    Avx2,
    Neon,
};

/** Display name ("scalar", "ssse3", "avx2", "neon"). */
const char *tierName(Tier t);

/**
 * The best tier this binary + CPU supports, ignoring the environment
 * override.  Compile-time gates (ARCC_SIMD_DISABLED, target ISA)
 * apply; the result never names an unsupported path.
 */
Tier detectTier();

/**
 * The tier the dispatched kernels actually use: detectTier() capped
 * by the ARCC_SIMD environment variable.  Resolved once on first use
 * and cached for the process lifetime.
 */
Tier activeTier();

} // namespace simd
} // namespace arcc

#endif // ARCC_ECC_SIMD_HH
