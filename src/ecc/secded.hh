/**
 * @file
 * SECDED (72, 64) extended Hamming code.
 *
 * This is the weaker, 9-device-per-access baseline the paper contrasts
 * chipkill against (Chapter 1).  One 64-bit data word carries 8 check
 * bits: 7 Hamming bits plus one overall parity bit.  Single bit errors
 * are corrected; double bit errors are detected.
 */

#ifndef ARCC_ECC_SECDED_HH
#define ARCC_ECC_SECDED_HH

#include <cstdint>

#include "ecc/reed_solomon.hh" // for DecodeStatus

namespace arcc
{

/** SECDED codec over 64-bit words. */
class Secded
{
  public:
    /** Result of a SECDED decode. */
    struct Result
    {
        DecodeStatus status = DecodeStatus::Clean;
        /** Bit index corrected in the 72-bit word (-1 if none). */
        int bitCorrected = -1;
    };

    /** @return the 8 check bits for a 64-bit data word. */
    static std::uint8_t encode(std::uint64_t data);

    /**
     * Check and correct a (data, check) pair in place.
     * Single-bit errors in either data or check bits are corrected;
     * double-bit errors are Detected.
     */
    static Result decode(std::uint64_t &data, std::uint8_t &check);

    /**
     * Oracle decoder for the property suite: exhaustive
     * nearest-codeword search over the 72 wire bits (0..63 data,
     * 64..71 check).  If (data, check) is consistent it is Clean; if
     * flipping exactly one wire bit makes it consistent that flip is
     * applied and reported as Corrected; otherwise Detected.
     *
     * Note `bitCorrected` here is the *wire* bit index (0..71), not
     * the fast decoder's 1-based Hamming position -- tests pin status
     * and corrected-word equality, not the position encoding.
     */
    static Result referenceDecode(std::uint64_t &data,
                                  std::uint8_t &check);
};

} // namespace arcc

#endif // ARCC_ECC_SECDED_HH
