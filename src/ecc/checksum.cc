/**
 * @file
 * Ones'-complement checksum and XOR parity implementation.
 */

#include "ecc/checksum.hh"

#include "common/logging.hh"

namespace arcc
{

std::uint16_t
OnesComplement16::compute(std::span<const std::uint8_t> bytes)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < bytes.size(); i += 2)
        sum += (static_cast<std::uint32_t>(bytes[i]) << 8) | bytes[i + 1];
    if (i < bytes.size())
        sum += static_cast<std::uint32_t>(bytes[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    // Store the *complement* of the sum, as the Internet-checksum
    // convention does.  This is what gives LOT-ECC its all-0 / all-1
    // guarantee (Chapter 2): a stuck-at-0 device returns a zero slice
    // AND a zero checksum, which mismatch because the complement of a
    // zero sum is 0xffff; dually for stuck-at-1.
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

void
xorInto(std::span<std::uint8_t> acc, std::span<const std::uint8_t> src)
{
    ARCC_ASSERT(acc.size() == src.size());
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] ^= src[i];
}

} // namespace arcc
