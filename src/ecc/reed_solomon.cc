/**
 * @file
 * Reed-Solomon encode and errors-and-erasures decode: the table-driven
 * allocation-free fast path.
 *
 * Conventions: the codeword array c[0..n) maps to the polynomial
 * c(x) = sum_i c[i] * x^(n-1-i), i.e. c[0] carries the highest power.
 * The generator is g(x) = prod_{j=0}^{r-1} (x - alpha^j) (fcr = 0), so
 * the syndromes are S_j = c(alpha^j).  The locator of an error at array
 * index i is X_i = alpha^(n-1-i).
 *
 * The pipeline is algorithmically the same errors-and-erasures decoder
 * as ecc/rs_reference.cc (which is the retained original), restructured
 * for speed:
 *
 *  - every GF multiply is a product-table load; scale-accumulate loops
 *    hoist one 256-byte MulRow per fixed multiplicand;
 *  - all scratch lives in the caller's RsWorkspace -- no heap traffic
 *    anywhere on the encode / syndrome / decode paths;
 *  - syndrome Horner chains are interleaved across j, so the r
 *    dependent-load chains pipeline instead of serialising;
 *  - the Chien search steps the evaluation point incrementally (one
 *    multiply per psi coefficient per position, with per-instance
 *    alpha^j step tables) and exits as soon as deg(Psi) roots are
 *    found;
 *  - the final safety check verifies sum_i mag_i * X_i^j == S_j
 *    (O(errors * r)) instead of re-evaluating the whole corrected
 *    word (O(n * r)); the two are the same field identity.
 *
 * Decode results are bit-identical to the reference implementation;
 * tests/test_property_rs_oracle.cc fuzzes the equivalence.
 */

#include "ecc/reed_solomon.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "ecc/gf256_simd.hh"

namespace arcc
{

namespace gfpoly
{

std::size_t
mulInto(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
        std::span<std::uint8_t> out)
{
    if (a.empty() || b.empty())
        return 0;
    const std::size_t len = a.size() + b.size() - 1;
    ARCC_ASSERT(out.size() >= len);
    std::memset(out.data(), 0, len);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == 0)
            continue;
        const GF256::MulRow row = GF256::mulRow(a[i]);
        for (std::size_t j = 0; j < b.size(); ++j)
            out[i + j] ^= row(b[j]);
    }
    return len;
}

std::vector<std::uint8_t>
mul(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    if (a.empty() || b.empty())
        return {};
    std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
    mulInto(a, b, out);
    return out;
}

std::uint8_t
eval(std::span<const std::uint8_t> p, std::uint8_t x)
{
    // Horner from the highest coefficient, one table row for x.
    const GF256::MulRow row = GF256::mulRow(x);
    std::uint8_t acc = 0;
    for (std::size_t i = p.size(); i-- > 0;)
        acc = row(acc) ^ p[i];
    return acc;
}

std::size_t
derivativeInto(std::span<const std::uint8_t> p,
               std::span<std::uint8_t> out)
{
    // d/dx sum a_i x^i = sum_{i odd} a_i x^(i-1) over GF(2^m).
    if (p.size() <= 1) {
        ARCC_ASSERT(!out.empty());
        out[0] = 0;
        return 1;
    }
    const std::size_t len = p.size() - 1;
    ARCC_ASSERT(out.size() >= len);
    std::memset(out.data(), 0, len);
    for (std::size_t i = 1; i < p.size(); i += 2)
        out[i - 1] = p[i];
    return len;
}

std::vector<std::uint8_t>
derivative(std::span<const std::uint8_t> p)
{
    std::vector<std::uint8_t> out(std::max<std::size_t>(p.size(), 2) - 1,
                                  0);
    derivativeInto(p, out);
    return out;
}

int
degree(std::span<const std::uint8_t> p)
{
    for (std::size_t i = p.size(); i-- > 0;)
        if (p[i] != 0)
            return static_cast<int>(i);
    return -1;
}

} // namespace gfpoly

ReedSolomon::ReedSolomon(int n, int k)
    : n_(n), k_(k)
{
    if (n < 2 || n > 255)
        fatal("ReedSolomon: n = %d out of range [2, 255]", n);
    if (k < 1 || k >= n)
        fatal("ReedSolomon: k = %d out of range [1, n)", k);

    // g(x) = prod_{j=0}^{r-1} (x - alpha^j), built low-to-high.
    gen_ = {1};
    for (int j = 0; j < r(); ++j) {
        std::uint8_t root = GF256::alphaPow(j);
        // Multiply gen_ by (x + root): over GF(2^m), -root == root.
        std::vector<std::uint8_t> factor = {root, 1};
        gen_ = gfpoly::mul(gen_, factor);
    }

    const int rr = r();

    // Encode walks g high-to-low (minus the monic lead): precompute
    // that order so the inner loop is a straight scale-accumulate.
    genHigh_.resize(rr);
    for (int j = 0; j < rr; ++j)
        genHigh_[j] = gen_[rr - 1 - j];

    // One product-table row per syndrome root alpha^j, plus the roots
    // themselves for the SoA shuffle kernel.
    syndRows_.resize(rr);
    syndRoots_.resize(rr);
    for (int j = 0; j < rr; ++j) {
        syndRoots_[j] = GF256::alphaPow(j);
        syndRows_[j] = GF256::mulTable() +
                       static_cast<std::size_t>(syndRoots_[j]) *
                           GF256::kOrder;
    }

    // Locators X_i = alpha^(n-1-i) and their inverses, per position.
    xAt_.resize(n_);
    xInvAt_.resize(n_);
    for (int i = 0; i < n_; ++i) {
        xAt_[i] = GF256::alphaPow(n_ - 1 - i);
        xInvAt_[i] = GF256::inv(xAt_[i]);
    }

    // Incremental Chien tables: scanning positions i = 0, 1, ... puts
    // the evaluation point at alpha^-(n-1-i), i.e. it starts at
    // alpha^-(n-1) and steps by alpha.  Term j therefore starts at
    // psi_j * alpha^(-j(n-1)) and multiplies by alpha^j per position.
    // deg(Psi) <= r < kOrder bounds the table size.
    chienInit_.resize(GF256::kOrder);
    for (int j = 0; j < GF256::kOrder; ++j)
        chienInit_[j] = GF256::alphaPow(-(j * (n_ - 1)));

    // Vector Chien tables: scanning 16 positions per shuffle block,
    // term j spreads across a block with alpha^(j*l) and advances
    // between blocks by alpha^(16j).  Lane 1 of each row is the plain
    // per-position step, which the scalar tier of chienScan reuses.
    chienLane_.resize(GF256::kOrder * gfsimd::kLaneBlock);
    chienStep16_.resize(GF256::kOrder);
    for (int j = 0; j < GF256::kOrder; ++j) {
        for (int l = 0; l < gfsimd::kLaneBlock; ++l)
            chienLane_[j * gfsimd::kLaneBlock + l] =
                GF256::alphaPow(j * l);
        chienStep16_[j] = GF256::alphaPow(gfsimd::kLaneBlock * j);
    }
}

void
ReedSolomon::encode(std::span<std::uint8_t> codeword) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));

    // Polynomial long division of d(x) * x^r by g(x); the remainder is
    // the parity.  Work in the "high power first" view, which matches
    // the array order directly.
    const int rr = r();
    std::uint8_t rem[RsWorkspace::kMaxChecks];
    std::memset(rem, 0, rr);
    for (int i = 0; i < k_; ++i) {
        const std::uint8_t coef = codeword[i] ^ rem[0];
        // Shift the remainder left by one position (a plain loop: rr
        // is single digits for every codec in use, so a memmove call
        // would cost more than the shift).
        for (int j = 0; j < rr - 1; ++j)
            rem[j] = rem[j + 1];
        rem[rr - 1] = 0;
        if (coef != 0) {
            // Subtract coef * g(x); g is monic so the leading term
            // cancels with the shifted-out coefficient.
            const GF256::MulRow row = GF256::mulRow(coef);
            for (int j = 0; j < rr; ++j)
                rem[j] ^= row(genHigh_[j]);
        }
    }
    for (int j = 0; j < rr; ++j)
        codeword[k_ + j] = rem[j];
}

bool
ReedSolomon::computeSyndromes(std::span<const std::uint8_t> codeword,
                              std::span<std::uint8_t> synd) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    ARCC_ASSERT(synd.size() <= static_cast<std::size_t>(r()));
    const int rr = static_cast<int>(synd.size());
    if (rr == 0)
        return false;

    // S_j = c(alpha^j), Horner over the array (highest power first).
    // Chains are run four at a time in register lanes over one pass
    // of the codeword, so the per-chain L1-load latency overlaps
    // instead of adding up (a lone chain is a serial load-to-load
    // dependency).  Lanes past rr recompute the last row's chain and
    // are discarded -- cheaper than branching in the inner loop.
    bool any = false;
    for (int j0 = 0; j0 < rr; j0 += 4) {
        const std::uint8_t *r0 = syndRows_[j0];
        const std::uint8_t *r1 = syndRows_[std::min(j0 + 1, rr - 1)];
        const std::uint8_t *r2 = syndRows_[std::min(j0 + 2, rr - 1)];
        const std::uint8_t *r3 = syndRows_[std::min(j0 + 3, rr - 1)];
        std::uint8_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int i = 0; i < n_; ++i) {
            const std::uint8_t c = codeword[i];
            s0 = r0[s0] ^ c;
            s1 = r1[s1] ^ c;
            s2 = r2[s2] ^ c;
            s3 = r3[s3] ^ c;
        }
        synd[j0] = s0;
        any = any || s0 != 0;
        if (j0 + 1 < rr) {
            synd[j0 + 1] = s1;
            any = any || s1 != 0;
        }
        if (j0 + 2 < rr) {
            synd[j0 + 2] = s2;
            any = any || s2 != 0;
        }
        if (j0 + 3 < rr) {
            synd[j0 + 3] = s3;
            any = any || s3 != 0;
        }
    }
    return any;
}

bool
ReedSolomon::syndromesZero(std::span<const std::uint8_t> codeword) const
{
    std::uint8_t synd[RsWorkspace::kMaxChecks];
    return !computeSyndromes(codeword, std::span<std::uint8_t>(synd, r()));
}

std::uint8_t
ReedSolomon::evalAt(std::span<const std::uint8_t> codeword, int j) const
{
    const GF256::MulRow row = GF256::mulRow(GF256::alphaPow(j));
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i)
        acc = row(acc) ^ codeword[i];
    return acc;
}

RsWorkspace &
ReedSolomon::tlsWorkspace()
{
    static thread_local RsWorkspace ws;
    return ws;
}

RsDecodeView
ReedSolomon::decodeCore(std::span<std::uint8_t> codeword,
                        std::span<const std::uint8_t> synd,
                        RsWorkspace &ws, int maxCorrect,
                        std::span<const int> erasures) const
{
    const int rr = static_cast<int>(synd.size());
    ARCC_ASSERT(rr <= RsWorkspace::kMaxChecks);

    RsDecodeView res;
    const int f = static_cast<int>(erasures.size());
    if (f > rr) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Erasure locator Gamma(x) = prod (1 - X_i x), built in place.
    std::uint8_t *gamma = ws.gamma.data();
    int gamma_len = 1;
    gamma[0] = 1;
    for (int pos : erasures) {
        ARCC_ASSERT(pos >= 0 && pos < n_);
        const GF256::MulRow row = GF256::mulRow(xAt_[pos]);
        gamma[gamma_len] = 0;
        for (int j = gamma_len; j >= 1; --j)
            gamma[j] ^= row(gamma[j - 1]);
        ++gamma_len;
    }

    // Modified syndromes Xi(x) = S(x) * Gamma(x) mod x^rr.
    const std::size_t xi_len = gfpoly::mulInto(
        synd, std::span<const std::uint8_t>(gamma, gamma_len), ws.xi);
    for (std::size_t j = xi_len; j < static_cast<std::size_t>(rr); ++j)
        ws.xi[j] = 0;
    const std::uint8_t *xi = ws.xi.data();

    // Berlekamp-Massey for up to floor((rr - f) / 2) errors.  The
    // state polynomials keep explicit storage lengths that replicate
    // the reference's vector sizes exactly (they matter in the
    // discrepancy guard below).
    const int e_cap = (rr - f) / 2;
    std::uint8_t *lambda = ws.lambda.data();
    std::uint8_t *prev = ws.prev.data();
    int lambda_len = 1;
    int prev_len = 1;
    lambda[0] = 1;
    prev[0] = 1;
    int big_l = 0;
    int m = 1;
    std::uint8_t b = 1;
    for (int it = 0; it < rr - f; ++it) {
        std::uint8_t delta = xi[f + it];
        for (int i = 1; i <= big_l; ++i) {
            if (i < lambda_len && f + it - i >= 0)
                delta ^= GF256::mul(lambda[i], xi[f + it - i]);
        }
        if (delta == 0) {
            ++m;
            continue;
        }
        const GF256::MulRow row = GF256::mulRow(GF256::div(delta, b));
        if (lambda_len < prev_len + m) {
            ARCC_ASSERT(prev_len + m <= RsWorkspace::kPolyCap);
            std::memset(lambda + lambda_len, 0,
                        prev_len + m - lambda_len);
        }
        if (2 * big_l <= it) {
            std::memcpy(ws.tmp.data(), lambda, lambda_len);
            const int tmp_len = lambda_len;
            lambda_len = std::max(lambda_len, prev_len + m);
            for (int i = 0; i < prev_len; ++i)
                lambda[i + m] ^= row(prev[i]);
            big_l = it + 1 - big_l;
            std::memcpy(prev, ws.tmp.data(), tmp_len);
            prev_len = tmp_len;
            b = delta;
            m = 1;
        } else {
            lambda_len = std::max(lambda_len, prev_len + m);
            for (int i = 0; i < prev_len; ++i)
                lambda[i + m] ^= row(prev[i]);
            ++m;
        }
    }

    const int num_errors = gfpoly::degree(
        std::span<const std::uint8_t>(lambda, lambda_len));
    const int allowed =
        maxCorrect < 0 ? e_cap : std::min(maxCorrect, e_cap);
    if (num_errors < 0 || num_errors > allowed || big_l != num_errors) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Combined locator Psi = Lambda * Gamma; Lambda trimmed to its
    // degree (trailing storage zeros contribute nothing).
    const std::size_t psi_len = gfpoly::mulInto(
        std::span<const std::uint8_t>(lambda, num_errors + 1),
        std::span<const std::uint8_t>(gamma, gamma_len), ws.psi);
    const std::uint8_t *psi = ws.psi.data();
    const int psi_deg =
        gfpoly::degree(std::span<const std::uint8_t>(psi, psi_len));

    // Chien search, ascending array positions: term j starts at
    // psi_j * alpha^(-j(n-1)) and the dispatched kernel evaluates 16
    // positions per shuffle block (or steps one at a time on the
    // scalar tier).  A polynomial with psi[0] == 1 has at most
    // psi_deg roots, so the scan stops as soon as they are all found.
    for (std::size_t j = 0; j < psi_len; ++j)
        ws.terms[j] = GF256::mul(psi[j], chienInit_[j]);
    const int found = gfsimd::chienScan(
        ws.terms.data(), static_cast<int>(psi_len), n_, psi_deg,
        chienLane_.data(), chienStep16_.data(), ws.errPos.data());
    if (found != psi_deg) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Forney: Omega = S * Psi mod x^rr, magnitudes from Omega / Psi'.
    const std::size_t omega_len = gfpoly::mulInto(
        synd, std::span<const std::uint8_t>(psi, psi_len), ws.omega);
    for (std::size_t j = omega_len; j < static_cast<std::size_t>(rr);
         ++j)
        ws.omega[j] = 0;
    const std::span<const std::uint8_t> omega(ws.omega.data(),
                                              static_cast<std::size_t>(rr));
    const std::size_t pp_len = gfpoly::derivativeInto(
        std::span<const std::uint8_t>(psi, psi_len), ws.psiPrime);
    const std::span<const std::uint8_t> psi_prime(ws.psiPrime.data(),
                                                  pp_len);

    auto rollback = [&](int applied) {
        for (int a = 0; a < applied; ++a)
            codeword[ws.positions[a]] ^= ws.mags[a];
    };

    int applied = 0;
    for (int idx = 0; idx < found; ++idx) {
        const int i = ws.errPos[idx];
        const std::uint8_t x_i = xAt_[i];
        const std::uint8_t x_inv = xInvAt_[i];
        const std::uint8_t denom = gfpoly::eval(psi_prime, x_inv);
        if (denom == 0) {
            rollback(applied);
            res.status = DecodeStatus::Detected;
            return res;
        }
        const std::uint8_t num = gfpoly::eval(omega, x_inv);
        const std::uint8_t magnitude =
            GF256::mul(x_i, GF256::div(num, denom));
        if (magnitude != 0) {
            codeword[i] ^= magnitude;
            ws.positions[applied] = i;
            ws.mags[applied] = magnitude;
            ++applied;
        }
    }

    // Safety: the corrected word must reproduce every expected
    // evaluation.  Since evalAt(corrected, j) differs from
    // evalAt(original, j) by exactly sum_i mag_i * X_i^j, that is the
    // identity  sum_i mag_i * X_i^j == S_j  for every supplied
    // syndrome -- checked incrementally in O(applied * rr) rather
    // than re-evaluating the whole word.  On failure the pattern
    // exceeded the capability; restore the original word so the
    // caller gets a clean DUE.
    for (int a = 0; a < applied; ++a)
        ws.terms[a] = ws.mags[a];
    for (int j = 0; j < rr; ++j) {
        std::uint8_t sum = 0;
        for (int a = 0; a < applied; ++a)
            sum ^= ws.terms[a];
        if (sum != synd[j]) {
            rollback(applied);
            res.status = DecodeStatus::Detected;
            return res;
        }
        if (j + 1 < rr) {
            for (int a = 0; a < applied; ++a)
                ws.terms[a] =
                    GF256::mul(ws.terms[a], xAt_[ws.positions[a]]);
        }
    }

    res.status = DecodeStatus::Corrected;
    res.symbolsCorrected = applied;
    res.positions = std::span<const int>(ws.positions.data(),
                                         static_cast<std::size_t>(applied));
    return res;
}

RsDecodeView
ReedSolomon::decodeWithSyndromes(std::span<std::uint8_t> codeword,
                                 std::span<const std::uint8_t> synd,
                                 RsWorkspace &ws, int maxCorrect,
                                 std::span<const int> erasures) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    bool any = false;
    for (std::uint8_t s : synd)
        any = any || s != 0;
    if (!any)
        return {};
    return decodeCore(codeword, synd, ws, maxCorrect, erasures);
}

RsDecodeView
ReedSolomon::decode(std::span<std::uint8_t> codeword, RsWorkspace &ws,
                    int maxCorrect, std::span<const int> erasures) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    const std::span<std::uint8_t> synd(ws.synd.data(),
                                       static_cast<std::size_t>(r()));
    if (!computeSyndromes(codeword, synd))
        return {};
    return decodeCore(codeword, synd, ws, maxCorrect, erasures);
}

bool
ReedSolomon::computeSyndromesSoa(const std::uint8_t *soa,
                                 std::size_t stride, int lanes,
                                 std::uint8_t *synd_soa,
                                 std::uint8_t *flags) const
{
    ARCC_ASSERT(lanes > 0 &&
                lanes <= static_cast<int>(stride));
    gfsimd::syndromeSoa(soa, stride, n_, lanes, syndRoots_.data(), r(),
                        synd_soa, flags);
    for (int l = 0; l < lanes; ++l)
        if (flags[l] != 0)
            return true;
    return false;
}

void
ReedSolomon::decodeSoa(std::uint8_t *soa, std::size_t stride, int lanes,
                       RsWorkspace &ws, int maxCorrect,
                       std::span<const int> erasures,
                       RsLaneResult *results) const
{
    ARCC_ASSERT(lanes <= RsWorkspace::kSoaLanes &&
                stride <= static_cast<std::size_t>(
                              RsWorkspace::kSoaLanes));
    if (results) {
        for (int l = 0; l < lanes; ++l)
            results[l] = RsLaneResult{};
    }
    if (!computeSyndromesSoa(soa, stride, lanes, ws.syndSoa.data(),
                             ws.soaFlags.data()))
        return;

    // Flagged lanes fall back to the scalar pipeline one column at a
    // time, reusing the syndromes the screen already computed -- the
    // zero-syndrome early-out of decode() is exactly the flags test,
    // so each lane's outcome is bit-identical to decode() on its
    // word (erasures included: a clean screen returns Clean without
    // consulting them, as decode() does).
    const int rr = r();
    const std::span<std::uint8_t> word(
        ws.word.data(), static_cast<std::size_t>(n_));
    for (int l = 0; l < lanes; ++l) {
        if (ws.soaFlags[l] == 0)
            continue;
        for (int i = 0; i < n_; ++i)
            word[i] = soa[static_cast<std::size_t>(i) * stride + l];
        for (int j = 0; j < rr; ++j)
            ws.synd[j] =
                ws.syndSoa[static_cast<std::size_t>(j) * stride + l];
        const RsDecodeView v = decodeCore(
            word,
            std::span<const std::uint8_t>(
                ws.synd.data(), static_cast<std::size_t>(rr)),
            ws, maxCorrect, erasures);
        for (int p : v.positions)
            soa[static_cast<std::size_t>(p) * stride + l] = word[p];
        if (results) {
            results[l].status = v.status;
            results[l].symbolsCorrected = v.symbolsCorrected;
        }
    }
}

namespace
{

/** Copy a fast-path view into the owning legacy result. */
DecodeResult
own(const RsDecodeView &v)
{
    DecodeResult res;
    res.status = v.status;
    res.symbolsCorrected = v.symbolsCorrected;
    res.positions.assign(v.positions.begin(), v.positions.end());
    return res;
}

} // anonymous namespace

DecodeResult
ReedSolomon::decode(std::span<std::uint8_t> codeword, int maxCorrect,
                    std::span<const int> erasures) const
{
    return own(decode(codeword, tlsWorkspace(), maxCorrect, erasures));
}

DecodeResult
ReedSolomon::decodeWithSyndromes(std::span<std::uint8_t> codeword,
                                 std::span<const std::uint8_t> synd,
                                 int maxCorrect,
                                 std::span<const int> erasures) const
{
    return own(decodeWithSyndromes(codeword, synd, tlsWorkspace(),
                                   maxCorrect, erasures));
}

} // namespace arcc
