/**
 * @file
 * Vectorized GF(2^8) kernels over codeword-transposed (SoA) batches.
 *
 * The scalar decoder is bound by one L1 load per field multiply; the
 * only data-level parallelism a single codeword offers is the handful
 * of syndrome chains.  These kernels flip the layout instead: a batch
 * of up to RsWorkspace::kSoaLanes codewords is stored transposed,
 *
 *     soa[symbol * stride + lane]
 *
 * so symbol i of every lane is one contiguous row and a 16/32-byte
 * vector register holds the same pipeline stage of 16/32 *different*
 * codewords.  A multiply by a constant then becomes two table-lookup
 * shuffles (pshufb / NEON tbl) against the 16-entry nibble-split rows
 * of GF256::nibTable() -- the ISA-L recipe:
 *
 *     a * x == nibRow(a)[x & 0xf] ^ nibRow(a)[16 + (x >> 4)]
 *
 * All kernels dispatch on simd::activeTier() and have tier-explicit
 * `*At` variants so tests can run the scalar and vector paths in one
 * process and assert bit-identical results.  The scalar tier is the
 * same arithmetic as ecc/reed_solomon.cc (product-table loads), which
 * is fuzzed against RsReference -- the oracle chain the dispatch
 * contract hangs off.
 *
 * Lane-count convention: rows are processed in 16-lane blocks, so a
 * kernel may read and write up to roundUp16(lanes) entries of every
 * row (garbage lanes compute garbage, which callers ignore).  The
 * caller must therefore provide stride >= roundUp16(lanes); the
 * RsWorkspace staging buffers use stride == kSoaLanes == 32.
 */

#ifndef ARCC_ECC_GF256_SIMD_HH
#define ARCC_ECC_GF256_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "ecc/simd.hh"

namespace arcc
{
namespace gfsimd
{

/** Lanes one 16-byte shuffle register covers (the dispatch block). */
constexpr int kLaneBlock = 16;

/** lanes rounded up to a whole 16-lane block. */
constexpr int
roundUpLanes(int lanes)
{
    return (lanes + kLaneBlock - 1) & ~(kLaneBlock - 1);
}

/**
 * out[i] = a * in[i] for i in [0, len).  out may alias in.  Unlike
 * the SoA kernels this is exact-length (scalar tail); it is the
 * building block benchmark and the mulRow() analogue for flat spans.
 */
void mulConst(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
              std::size_t len);

/** mulConst at an explicit tier (tests; unavailable tiers -> scalar). */
void mulConstAt(simd::Tier t, std::uint8_t a, const std::uint8_t *in,
                std::uint8_t *out, std::size_t len);

/**
 * Batched Horner syndrome evaluation over an SoA block.
 *
 * For each root j < rr and lane l < lanes:
 *
 *     synd_soa[j * stride + l] = sum_i soa[i * stride + l]
 *                                * roots[j]^(symbols - 1 - i)
 *
 * i.e. exactly ReedSolomon::computeSyndromes per lane.  flags[l] is
 * the OR of lane l's rr syndromes, so flags[l] != 0 marks a flagged
 * codeword.  Rows are processed in 16-lane blocks: entries of
 * synd_soa and flags in [lanes, roundUp16(lanes)) are clobbered with
 * garbage.
 *
 * @pre stride >= roundUp16(lanes), stride % 16 == 0.
 */
void syndromeSoa(const std::uint8_t *soa, std::size_t stride,
                 int symbols, int lanes, const std::uint8_t *roots,
                 int rr, std::uint8_t *synd_soa, std::uint8_t *flags);

/** syndromeSoa at an explicit tier (tests). */
void syndromeSoaAt(simd::Tier t, const std::uint8_t *soa,
                   std::size_t stride, int symbols, int lanes,
                   const std::uint8_t *roots, int rr,
                   std::uint8_t *synd_soa, std::uint8_t *flags);

/**
 * Chien search over ascending array positions, vectorized across the
 * *positions* of one codeword (16 evaluation points per shuffle
 * block).  Equivalent to the incremental scalar scan of
 * ReedSolomon::decodeCore: position i evaluates
 *
 *     v(i) = sum_j terms0[j] * lane_step[j * 16 + (i % 16)]
 *                            * block_step[j]^(i / 16)
 *
 * where terms0[j] = psi_j * alpha^(-j(n-1)) carries the start-of-scan
 * term, lane_step[j*16 + l] = alpha^(j*l) spreads it across a block
 * and block_step[j] = alpha^(16j) advances between blocks.  Roots are
 * reported ascending; the scan stops once max_roots are found (a
 * locator with psi[0] == 1 has at most deg(psi) roots).
 *
 * @return the number of roots written to err_pos.
 */
int chienScan(const std::uint8_t *terms0, int psi_len, int n,
              int max_roots, const std::uint8_t *lane_step,
              const std::uint8_t *block_step, int *err_pos);

/** chienScan at an explicit tier (tests). */
int chienScanAt(simd::Tier t, const std::uint8_t *terms0, int psi_len,
                int n, int max_roots, const std::uint8_t *lane_step,
                const std::uint8_t *block_step, int *err_pos);

/**
 * AoS -> SoA transpose: scatter `lanes` codewords of `symbols` bytes
 * (word l starting at words + l * word_stride) into the transposed
 * block.  Scalar on purpose -- the staging is bandwidth-trivial next
 * to the decode work it feeds, and the real callers mostly stage
 * straight from per-device slices, which are already SoA rows.
 */
void soaScatter(const std::uint8_t *words, std::size_t word_stride,
                int symbols, int lanes, std::uint8_t *soa,
                std::size_t soa_stride);

/** SoA -> AoS transpose: exact inverse of soaScatter. */
void soaGather(const std::uint8_t *soa, std::size_t soa_stride,
               int symbols, int lanes, std::uint8_t *words,
               std::size_t word_stride);

} // namespace gfsimd
} // namespace arcc

#endif // ARCC_ECC_GF256_SIMD_HH
