/**
 * @file
 * Reference Reed-Solomon encode and errors-and-erasures decode.
 *
 * This is the library's original decoder, kept as the correctness
 * oracle (see the header).  Conventions: the codeword array c[0..n)
 * maps to the polynomial c(x) = sum_i c[i] * x^(n-1-i), i.e. c[0]
 * carries the highest power.  The generator is
 * g(x) = prod_{j=0}^{r-1} (x - alpha^j) (fcr = 0), so the syndromes
 * are S_j = c(alpha^j).  The locator of an error at array index i is
 * X_i = alpha^(n-1-i).
 */

#include "ecc/rs_reference.hh"

#include <algorithm>

#include "common/logging.hh"

namespace arcc
{

RsReference::RsReference(int n, int k)
    : n_(n), k_(k)
{
    if (n < 2 || n > 255)
        fatal("RsReference: n = %d out of range [2, 255]", n);
    if (k < 1 || k >= n)
        fatal("RsReference: k = %d out of range [1, n)", k);

    // g(x) = prod_{j=0}^{r-1} (x - alpha^j), built low-to-high.
    gen_ = {1};
    for (int j = 0; j < r(); ++j) {
        std::uint8_t root = GF256::alphaPow(j);
        // Multiply gen_ by (x + root): over GF(2^m), -root == root.
        std::vector<std::uint8_t> factor = {root, 1};
        gen_ = gfpoly::mul(gen_, factor);
    }
}

void
RsReference::encode(std::span<std::uint8_t> codeword) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));

    // Polynomial long division of d(x) * x^r by g(x); the remainder is
    // the parity.  Work in the "high power first" view, which matches
    // the array order directly.
    const int rr = r();
    std::vector<std::uint8_t> rem(rr, 0);
    for (int i = 0; i < k_; ++i) {
        std::uint8_t coef = GF256::add(codeword[i], rem[0]);
        // Shift the remainder left by one position.
        for (int j = 0; j < rr - 1; ++j)
            rem[j] = rem[j + 1];
        rem[rr - 1] = 0;
        if (coef != 0) {
            // Subtract coef * g(x); g is monic so gen_[rr] == 1 and the
            // leading term cancels with the shifted-out coefficient.
            for (int j = 0; j < rr; ++j) {
                rem[j] ^= GF256::mul(coef, gen_[rr - 1 - j]);
            }
        }
    }
    for (int j = 0; j < rr; ++j)
        codeword[k_ + j] = rem[j];
}

bool
RsReference::computeSyndromes(std::span<const std::uint8_t> codeword,
                              std::vector<std::uint8_t> &synd) const
{
    const int rr = r();
    synd.assign(rr, 0);
    bool any = false;
    for (int j = 0; j < rr; ++j) {
        // S_j = c(alpha^j); Horner over the array (highest power first).
        std::uint8_t x = GF256::alphaPow(j);
        std::uint8_t acc = 0;
        for (int i = 0; i < n_; ++i)
            acc = GF256::add(GF256::mul(acc, x), codeword[i]);
        synd[j] = acc;
        any = any || acc != 0;
    }
    return any;
}

bool
RsReference::syndromesZero(std::span<const std::uint8_t> codeword) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    std::vector<std::uint8_t> synd;
    return !computeSyndromes(codeword, synd);
}

std::uint8_t
RsReference::evalAt(std::span<const std::uint8_t> codeword, int j) const
{
    std::uint8_t x = GF256::alphaPow(j);
    std::uint8_t acc = 0;
    for (int i = 0; i < n_; ++i)
        acc = GF256::add(GF256::mul(acc, x), codeword[i]);
    return acc;
}

namespace
{

/** One applied correction, for rollback on a failed safety check. */
struct Applied
{
    int pos;
    std::uint8_t mag;
};

} // anonymous namespace

DecodeResult
RsReference::decodeWithSyndromes(std::span<std::uint8_t> codeword,
                                 std::span<const std::uint8_t> synd,
                                 int maxCorrect,
                                 std::span<const int> erasures) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    const int rr = static_cast<int>(synd.size());

    DecodeResult res;
    bool any = false;
    for (std::uint8_t s : synd)
        any = any || s != 0;
    if (!any) {
        res.status = DecodeStatus::Clean;
        return res;
    }

    const int f = static_cast<int>(erasures.size());
    if (f > rr) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // The evaluations the corrected word must reproduce (for the
    // in-line syndromes these are zero; for virtualised tier-2 checks
    // they are the stored evaluations themselves).
    std::vector<std::uint8_t> expect(rr);
    for (int j = 0; j < rr; ++j)
        expect[j] = GF256::add(evalAt(codeword, j), synd[j]);

    // Erasure locator Gamma(x) = prod (1 - X_i x).
    std::vector<std::uint8_t> gamma = {1};
    for (int pos : erasures) {
        ARCC_ASSERT(pos >= 0 && pos < n_);
        std::uint8_t x_i = GF256::alphaPow(n_ - 1 - pos);
        std::vector<std::uint8_t> factor = {1, x_i};
        gamma = gfpoly::mul(gamma, factor);
    }

    // Modified syndromes Xi(x) = S(x) * Gamma(x) mod x^rr.
    std::vector<std::uint8_t> sv(synd.begin(), synd.end());
    std::vector<std::uint8_t> xi = gfpoly::mul(sv, gamma);
    xi.resize(rr, 0);

    // Berlekamp-Massey for up to floor((rr - f) / 2) errors.
    const int e_cap = (rr - f) / 2;
    std::vector<std::uint8_t> lambda = {1};
    std::vector<std::uint8_t> prev = {1};
    int big_l = 0;
    int m = 1;
    std::uint8_t b = 1;
    for (int it = 0; it < rr - f; ++it) {
        std::uint8_t delta = xi[f + it];
        for (int i = 1; i <= big_l; ++i) {
            if (i < static_cast<int>(lambda.size()) && f + it - i >= 0)
                delta ^= GF256::mul(lambda[i], xi[f + it - i]);
        }
        if (delta == 0) {
            ++m;
            continue;
        }
        if (2 * big_l <= it) {
            std::vector<std::uint8_t> t = lambda;
            std::uint8_t scale = GF256::div(delta, b);
            if (lambda.size() < prev.size() + m)
                lambda.resize(prev.size() + m, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                lambda[i + m] ^= GF256::mul(scale, prev[i]);
            big_l = it + 1 - big_l;
            prev = t;
            b = delta;
            m = 1;
        } else {
            std::uint8_t scale = GF256::div(delta, b);
            if (lambda.size() < prev.size() + m)
                lambda.resize(prev.size() + m, 0);
            for (std::size_t i = 0; i < prev.size(); ++i)
                lambda[i + m] ^= GF256::mul(scale, prev[i]);
            ++m;
        }
    }

    const int num_errors = gfpoly::degree(lambda);
    const int allowed =
        maxCorrect < 0 ? e_cap : std::min(maxCorrect, e_cap);
    if (num_errors < 0 || num_errors > allowed || big_l != num_errors) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Combined locator Psi = Lambda * Gamma.
    std::vector<std::uint8_t> psi = gfpoly::mul(lambda, gamma);
    const int psi_deg = gfpoly::degree(psi);

    // Chien search over all positions.
    std::vector<int> err_pos;
    for (int i = 0; i < n_; ++i) {
        std::uint8_t x_inv = GF256::alphaPow(-(n_ - 1 - i));
        if (gfpoly::eval(psi, x_inv) == 0)
            err_pos.push_back(i);
    }
    if (static_cast<int>(err_pos.size()) != psi_deg) {
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Forney: Omega = S * Psi mod x^rr.
    std::vector<std::uint8_t> omega = gfpoly::mul(sv, psi);
    omega.resize(rr, 0);
    std::vector<std::uint8_t> psi_prime = gfpoly::derivative(psi);

    std::vector<Applied> applied;
    for (int i : err_pos) {
        std::uint8_t x_i = GF256::alphaPow(n_ - 1 - i);
        std::uint8_t x_inv = GF256::inv(x_i);
        std::uint8_t denom = gfpoly::eval(psi_prime, x_inv);
        if (denom == 0) {
            for (auto [pos, mag] : applied)
                codeword[pos] ^= mag;
            res.status = DecodeStatus::Detected;
            return res;
        }
        std::uint8_t num = gfpoly::eval(omega, x_inv);
        std::uint8_t magnitude =
            GF256::mul(x_i, GF256::div(num, denom));
        if (magnitude != 0) {
            codeword[i] ^= magnitude;
            applied.push_back({i, magnitude});
            res.positions.push_back(i);
        }
    }

    // Safety: the corrected word must reproduce every expected
    // evaluation.  If not, the pattern exceeded the capability;
    // restore the original word so the caller gets a clean DUE.
    for (int j = 0; j < rr; ++j) {
        if (evalAt(codeword, j) != expect[j]) {
            for (auto [pos, mag] : applied)
                codeword[pos] ^= mag;
            res.status = DecodeStatus::Detected;
            res.positions.clear();
            res.symbolsCorrected = 0;
            return res;
        }
    }

    res.status = DecodeStatus::Corrected;
    res.symbolsCorrected = static_cast<int>(res.positions.size());
    return res;
}

DecodeResult
RsReference::decode(std::span<std::uint8_t> codeword, int maxCorrect,
                    std::span<const int> erasures) const
{
    ARCC_ASSERT(codeword.size() >= static_cast<std::size_t>(n_));
    std::vector<std::uint8_t> synd;
    if (!computeSyndromes(codeword, synd)) {
        DecodeResult res;
        res.status = DecodeStatus::Clean;
        return res;
    }
    return decodeWithSyndromes(codeword, synd, maxCorrect, erasures);
}

} // namespace arcc
