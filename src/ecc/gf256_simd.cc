/**
 * @file
 * GF(2^8) SIMD kernels: nibble-split shuffle implementations per ISA
 * tier, plus the runtime dispatch.
 *
 * The x86 kernels are compiled with function-level target attributes
 * so the translation unit builds at the project's baseline -march
 * (plain x86-64); detectTier() guarantees a kernel is only ever
 * entered on a CPU that has its extension.  aarch64 NEON is baseline
 * and needs no attribute.  With ARCC_SIMD_DISABLED every vector body
 * drops out and the dispatch degenerates to the scalar tier.
 */

#include "ecc/gf256_simd.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "ecc/gf256.hh"

#if !defined(ARCC_SIMD_DISABLED) && \
    (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define ARCC_SIMD_X86 1
#include <immintrin.h>
#endif

#if !defined(ARCC_SIMD_DISABLED) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define ARCC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace arcc
{

namespace simd
{

const char *
tierName(Tier t)
{
    switch (t) {
      case Tier::Scalar: return "scalar";
      case Tier::Ssse3:  return "ssse3";
      case Tier::Avx2:   return "avx2";
      case Tier::Neon:   return "neon";
    }
    return "?";
}

Tier
detectTier()
{
#if defined(ARCC_SIMD_X86)
    if (__builtin_cpu_supports("avx2"))
        return Tier::Avx2;
    if (__builtin_cpu_supports("ssse3"))
        return Tier::Ssse3;
#elif defined(ARCC_SIMD_NEON)
    return Tier::Neon;
#endif
    return Tier::Scalar;
}

namespace
{

/** Apply the ARCC_SIMD environment cap to the detected tier. */
Tier
resolveTier()
{
    const Tier det = detectTier();
    const char *env = std::getenv("ARCC_SIMD");
    if (!env || !*env)
        return det;
    std::string v;
    for (const char *p = env; *p; ++p)
        v.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (v == "off" || v == "0" || v == "scalar" || v == "false")
        return Tier::Scalar;
    // Capping below the detected tier is allowed (e.g. ssse3 on an
    // AVX2 part); asking for more than the hardware has keeps the
    // detected tier.
    if (v == "ssse3" && det == Tier::Avx2)
        return Tier::Ssse3;
    return det;
}

} // anonymous namespace

Tier
activeTier()
{
    static const Tier t = resolveTier();
    return t;
}

} // namespace simd

namespace gfsimd
{

// ---------------------------------------------------------------------
// Scalar tier: the pinned oracle.  Identical arithmetic to the
// product-table loops in ecc/reed_solomon.cc.
// ---------------------------------------------------------------------

namespace
{

void
mulConstScalar(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
               std::size_t len)
{
    const GF256::MulRow row = GF256::mulRow(a);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = row(in[i]);
}

void
syndromeSoaScalar(const std::uint8_t *soa, std::size_t stride,
                  int symbols, int lanes, const std::uint8_t *roots,
                  int rr, std::uint8_t *synd_soa, std::uint8_t *flags)
{
    std::memset(flags, 0, static_cast<std::size_t>(lanes));
    for (int j = 0; j < rr; ++j) {
        const GF256::MulRow row = GF256::mulRow(roots[j]);
        std::uint8_t *srow = synd_soa + static_cast<std::size_t>(j) *
                                            stride;
        for (int l = 0; l < lanes; ++l) {
            std::uint8_t acc = 0;
            for (int i = 0; i < symbols; ++i)
                acc = row(acc) ^ soa[static_cast<std::size_t>(i) *
                                         stride +
                                     l];
            srow[l] = acc;
            flags[l] |= acc;
        }
    }
}

int
chienScanScalar(const std::uint8_t *terms0, int psi_len, int n,
                int max_roots, const std::uint8_t *lane_step,
                int *err_pos)
{
    // The incremental scan of ReedSolomon::decodeCore: term j steps
    // by alpha^j per position, which is lane_step[j * 16 + 1].
    std::uint8_t terms[256];
    std::memcpy(terms, terms0, static_cast<std::size_t>(psi_len));
    int found = 0;
    for (int i = 0; i < n; ++i) {
        std::uint8_t v = 0;
        for (int j = 0; j < psi_len; ++j)
            v ^= terms[j];
        if (v == 0 && found < max_roots)
            err_pos[found++] = i;
        if (found == max_roots || i + 1 == n)
            break;
        for (int j = 1; j < psi_len; ++j)
            terms[j] = GF256::mul(terms[j],
                                  lane_step[j * kLaneBlock + 1]);
    }
    return found;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// SSSE3 / AVX2 tiers (x86).
// ---------------------------------------------------------------------

#if defined(ARCC_SIMD_X86)

namespace
{

__attribute__((target("ssse3"))) inline __m128i
mulVec128(__m128i lo_tbl, __m128i hi_tbl, __m128i x)
{
    const __m128i mask = _mm_set1_epi8(0x0f);
    const __m128i lo = _mm_and_si128(x, mask);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(x, 4), mask);
    return _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo),
                         _mm_shuffle_epi8(hi_tbl, hi));
}

__attribute__((target("ssse3"))) void
mulConstSsse3(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
              std::size_t len)
{
    const std::uint8_t *nib = GF256::nibRow(a);
    const __m128i lo_tbl =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(nib));
    const __m128i hi_tbl =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(nib + 16));
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         mulVec128(lo_tbl, hi_tbl, x));
    }
    if (i < len)
        mulConstScalar(a, in + i, out + i, len - i);
}

__attribute__((target("ssse3"))) void
syndromeSoaSsse3(const std::uint8_t *soa, std::size_t stride,
                 int symbols, int lanes, const std::uint8_t *roots,
                 int rr, std::uint8_t *synd_soa, std::uint8_t *flags)
{
    const int blocks = roundUpLanes(lanes) / kLaneBlock;
    for (int b = 0; b < blocks; ++b) {
        const std::size_t off =
            static_cast<std::size_t>(b) * kLaneBlock;
        __m128i flag = _mm_setzero_si128();
        for (int j = 0; j < rr; ++j) {
            const std::uint8_t *nib = GF256::nibRow(roots[j]);
            const __m128i lo_tbl = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(nib));
            const __m128i hi_tbl = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(nib + 16));
            __m128i acc = _mm_setzero_si128();
            for (int i = 0; i < symbols; ++i) {
                const __m128i c = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(
                        soa + static_cast<std::size_t>(i) * stride +
                        off));
                acc = _mm_xor_si128(mulVec128(lo_tbl, hi_tbl, acc), c);
            }
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(
                    synd_soa + static_cast<std::size_t>(j) * stride +
                    off),
                acc);
            flag = _mm_or_si128(flag, acc);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(flags + off),
                         flag);
    }
}

__attribute__((target("ssse3"))) int
chienScanSsse3(const std::uint8_t *terms0, int psi_len, int n,
               int max_roots, const std::uint8_t *lane_step,
               const std::uint8_t *block_step, int *err_pos)
{
    if (max_roots == 0)
        return 0;
    // cur[j] tracks terms0[j] * block_step[j]^b across blocks.
    std::uint8_t cur[256];
    std::memcpy(cur, terms0, static_cast<std::size_t>(psi_len));
    int found = 0;
    for (int i0 = 0; i0 < n; i0 += kLaneBlock) {
        __m128i acc = _mm_setzero_si128();
        for (int j = 0; j < psi_len; ++j) {
            if (cur[j] == 0)
                continue;
            const std::uint8_t *nib = GF256::nibRow(cur[j]);
            const __m128i lo_tbl = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(nib));
            const __m128i hi_tbl = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(nib + 16));
            const __m128i lanes = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    lane_step + j * kLaneBlock));
            acc = _mm_xor_si128(acc,
                                mulVec128(lo_tbl, hi_tbl, lanes));
        }
        int mask = _mm_movemask_epi8(
            _mm_cmpeq_epi8(acc, _mm_setzero_si128()));
        const int limit = std::min(n - i0, kLaneBlock);
        if (limit < kLaneBlock)
            mask &= (1 << limit) - 1;
        while (mask != 0) {
            const int l = __builtin_ctz(static_cast<unsigned>(mask));
            err_pos[found++] = i0 + l;
            if (found == max_roots)
                return found;
            mask &= mask - 1;
        }
        for (int j = 1; j < psi_len; ++j)
            cur[j] = GF256::mul(cur[j], block_step[j]);
    }
    return found;
}

__attribute__((target("avx2"))) inline __m256i
mulVec256(__m256i lo_tbl, __m256i hi_tbl, __m256i x)
{
    const __m256i mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(x, mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(x, 4), mask);
    return _mm256_xor_si256(_mm256_shuffle_epi8(lo_tbl, lo),
                            _mm256_shuffle_epi8(hi_tbl, hi));
}

__attribute__((target("avx2"))) void
mulConstAvx2(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
             std::size_t len)
{
    const std::uint8_t *nib = GF256::nibRow(a);
    const __m256i lo_tbl = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(nib)));
    const __m256i hi_tbl = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(nib + 16)));
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            mulVec256(lo_tbl, hi_tbl, x));
    }
    if (i < len)
        mulConstSsse3(a, in + i, out + i, len - i);
}

__attribute__((target("avx2"))) void
syndromeSoaAvx2(const std::uint8_t *soa, std::size_t stride,
                int symbols, int lanes, const std::uint8_t *roots,
                int rr, std::uint8_t *synd_soa, std::uint8_t *flags)
{
    // 32-lane blocks; a trailing 16-lane block falls to SSSE3.
    const int rounded = roundUpLanes(lanes);
    int off = 0;
    for (; off + 32 <= rounded; off += 32) {
        __m256i flag = _mm256_setzero_si256();
        for (int j = 0; j < rr; ++j) {
            const std::uint8_t *nib = GF256::nibRow(roots[j]);
            const __m256i lo_tbl = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(nib)));
            const __m256i hi_tbl = _mm256_broadcastsi128_si256(
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(nib + 16)));
            __m256i acc = _mm256_setzero_si256();
            for (int i = 0; i < symbols; ++i) {
                const __m256i c = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        soa + static_cast<std::size_t>(i) * stride +
                        off));
                acc = _mm256_xor_si256(mulVec256(lo_tbl, hi_tbl, acc),
                                       c);
            }
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(
                    synd_soa + static_cast<std::size_t>(j) * stride +
                    off),
                acc);
            flag = _mm256_or_si256(flag, acc);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(flags + off),
                            flag);
    }
    if (off < rounded)
        syndromeSoaSsse3(soa + off, stride, symbols, rounded - off,
                         roots, rr, synd_soa + off, flags + off);
}

} // anonymous namespace

#endif // ARCC_SIMD_X86

// ---------------------------------------------------------------------
// NEON tier (aarch64).
// ---------------------------------------------------------------------

#if defined(ARCC_SIMD_NEON)

namespace
{

inline uint8x16_t
mulVecNeon(uint8x16_t lo_tbl, uint8x16_t hi_tbl, uint8x16_t x)
{
    const uint8x16_t mask = vdupq_n_u8(0x0f);
    const uint8x16_t lo = vandq_u8(x, mask);
    const uint8x16_t hi = vshrq_n_u8(x, 4);
    return veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi));
}

void
mulConstNeon(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
             std::size_t len)
{
    const std::uint8_t *nib = GF256::nibRow(a);
    const uint8x16_t lo_tbl = vld1q_u8(nib);
    const uint8x16_t hi_tbl = vld1q_u8(nib + 16);
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16)
        vst1q_u8(out + i, mulVecNeon(lo_tbl, hi_tbl, vld1q_u8(in + i)));
    if (i < len)
        mulConstScalar(a, in + i, out + i, len - i);
}

void
syndromeSoaNeon(const std::uint8_t *soa, std::size_t stride,
                int symbols, int lanes, const std::uint8_t *roots,
                int rr, std::uint8_t *synd_soa, std::uint8_t *flags)
{
    const int blocks = roundUpLanes(lanes) / kLaneBlock;
    for (int b = 0; b < blocks; ++b) {
        const std::size_t off =
            static_cast<std::size_t>(b) * kLaneBlock;
        uint8x16_t flag = vdupq_n_u8(0);
        for (int j = 0; j < rr; ++j) {
            const std::uint8_t *nib = GF256::nibRow(roots[j]);
            const uint8x16_t lo_tbl = vld1q_u8(nib);
            const uint8x16_t hi_tbl = vld1q_u8(nib + 16);
            uint8x16_t acc = vdupq_n_u8(0);
            for (int i = 0; i < symbols; ++i) {
                const uint8x16_t c = vld1q_u8(
                    soa + static_cast<std::size_t>(i) * stride + off);
                acc = veorq_u8(mulVecNeon(lo_tbl, hi_tbl, acc), c);
            }
            vst1q_u8(synd_soa + static_cast<std::size_t>(j) * stride +
                         off,
                     acc);
            flag = vorrq_u8(flag, acc);
        }
        vst1q_u8(flags + off, flag);
    }
}

int
chienScanNeon(const std::uint8_t *terms0, int psi_len, int n,
              int max_roots, const std::uint8_t *lane_step,
              const std::uint8_t *block_step, int *err_pos)
{
    if (max_roots == 0)
        return 0;
    std::uint8_t cur[256];
    std::memcpy(cur, terms0, static_cast<std::size_t>(psi_len));
    int found = 0;
    for (int i0 = 0; i0 < n; i0 += kLaneBlock) {
        uint8x16_t acc = vdupq_n_u8(0);
        for (int j = 0; j < psi_len; ++j) {
            if (cur[j] == 0)
                continue;
            const std::uint8_t *nib = GF256::nibRow(cur[j]);
            acc = veorq_u8(acc,
                           mulVecNeon(vld1q_u8(nib), vld1q_u8(nib + 16),
                                      vld1q_u8(lane_step +
                                               j * kLaneBlock)));
        }
        // A zero byte marks a root; scan the two 64-bit halves with
        // the eq-mask trick (0xff per zero byte).
        const uint8x16_t eq = vceqq_u8(acc, vdupq_n_u8(0));
        const int limit = std::min(n - i0, kLaneBlock);
        std::uint64_t half[2];
        vst1q_u8(reinterpret_cast<std::uint8_t *>(half), eq);
        for (int l = 0; l < limit; ++l) {
            if ((half[l / 8] >> ((l % 8) * 8)) & 0xff) {
                err_pos[found++] = i0 + l;
                if (found == max_roots)
                    return found;
            }
        }
        for (int j = 1; j < psi_len; ++j)
            cur[j] = GF256::mul(cur[j], block_step[j]);
    }
    return found;
}

} // anonymous namespace

#endif // ARCC_SIMD_NEON

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

void
mulConstAt(simd::Tier t, std::uint8_t a, const std::uint8_t *in,
           std::uint8_t *out, std::size_t len)
{
    switch (t) {
#if defined(ARCC_SIMD_X86)
      case simd::Tier::Avx2:
        mulConstAvx2(a, in, out, len);
        return;
      case simd::Tier::Ssse3:
        mulConstSsse3(a, in, out, len);
        return;
#endif
#if defined(ARCC_SIMD_NEON)
      case simd::Tier::Neon:
        mulConstNeon(a, in, out, len);
        return;
#endif
      default:
        mulConstScalar(a, in, out, len);
        return;
    }
}

void
mulConst(std::uint8_t a, const std::uint8_t *in, std::uint8_t *out,
         std::size_t len)
{
    mulConstAt(simd::activeTier(), a, in, out, len);
}

void
syndromeSoaAt(simd::Tier t, const std::uint8_t *soa, std::size_t stride,
              int symbols, int lanes, const std::uint8_t *roots, int rr,
              std::uint8_t *synd_soa, std::uint8_t *flags)
{
    ARCC_ASSERT(stride % kLaneBlock == 0 &&
                stride >= static_cast<std::size_t>(roundUpLanes(lanes)));
    switch (t) {
#if defined(ARCC_SIMD_X86)
      case simd::Tier::Avx2:
        syndromeSoaAvx2(soa, stride, symbols, lanes, roots, rr,
                        synd_soa, flags);
        return;
      case simd::Tier::Ssse3:
        syndromeSoaSsse3(soa, stride, symbols, lanes, roots, rr,
                         synd_soa, flags);
        return;
#endif
#if defined(ARCC_SIMD_NEON)
      case simd::Tier::Neon:
        syndromeSoaNeon(soa, stride, symbols, lanes, roots, rr,
                        synd_soa, flags);
        return;
#endif
      default:
        syndromeSoaScalar(soa, stride, symbols, lanes, roots, rr,
                          synd_soa, flags);
        return;
    }
}

void
syndromeSoa(const std::uint8_t *soa, std::size_t stride, int symbols,
            int lanes, const std::uint8_t *roots, int rr,
            std::uint8_t *synd_soa, std::uint8_t *flags)
{
    syndromeSoaAt(simd::activeTier(), soa, stride, symbols, lanes,
                  roots, rr, synd_soa, flags);
}

int
chienScanAt(simd::Tier t, const std::uint8_t *terms0, int psi_len,
            int n, int max_roots, const std::uint8_t *lane_step,
            const std::uint8_t *block_step, int *err_pos)
{
    ARCC_ASSERT(psi_len <= 256);
    switch (t) {
#if defined(ARCC_SIMD_X86)
      case simd::Tier::Avx2:
      case simd::Tier::Ssse3:
        // One codeword's scan never exceeds n <= 255 positions; the
        // 16-point SSSE3 block is the sweet spot for both x86 tiers.
        return chienScanSsse3(terms0, psi_len, n, max_roots, lane_step,
                              block_step, err_pos);
#endif
#if defined(ARCC_SIMD_NEON)
      case simd::Tier::Neon:
        return chienScanNeon(terms0, psi_len, n, max_roots, lane_step,
                             block_step, err_pos);
#endif
      default:
        (void)block_step; // scalar steps one position at a time.
        return chienScanScalar(terms0, psi_len, n, max_roots,
                               lane_step, err_pos);
    }
}

int
chienScan(const std::uint8_t *terms0, int psi_len, int n, int max_roots,
          const std::uint8_t *lane_step, const std::uint8_t *block_step,
          int *err_pos)
{
    return chienScanAt(simd::activeTier(), terms0, psi_len, n,
                       max_roots, lane_step, block_step, err_pos);
}

void
soaScatter(const std::uint8_t *words, std::size_t word_stride,
           int symbols, int lanes, std::uint8_t *soa,
           std::size_t soa_stride)
{
    for (int l = 0; l < lanes; ++l) {
        const std::uint8_t *w =
            words + static_cast<std::size_t>(l) * word_stride;
        for (int i = 0; i < symbols; ++i)
            soa[static_cast<std::size_t>(i) * soa_stride + l] = w[i];
    }
}

void
soaGather(const std::uint8_t *soa, std::size_t soa_stride, int symbols,
          int lanes, std::uint8_t *words, std::size_t word_stride)
{
    for (int l = 0; l < lanes; ++l) {
        std::uint8_t *w =
            words + static_cast<std::size_t>(l) * word_stride;
        for (int i = 0; i < symbols; ++i)
            w[i] = soa[static_cast<std::size_t>(i) * soa_stride + l];
    }
}

} // namespace gfsimd
} // namespace arcc
