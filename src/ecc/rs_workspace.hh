/**
 * @file
 * RsWorkspace: the per-worker scratch arena of the Reed-Solomon fast
 * path.
 *
 * The original decoder heap-allocated roughly ten std::vectors per
 * call (syndromes, the erasure/error locators, the Berlekamp-Massey
 * state, the Forney polynomials, the position lists).  Per decode
 * that is more allocator time than field arithmetic once the
 * arithmetic is table-driven, and it serialises threads on the
 * allocator under the sharded sweeps.  The workspace replaces all of
 * them with fixed-capacity inline buffers: one workspace per
 * SimEngine worker (or one per shard, or the per-thread default from
 * ReedSolomon::tlsWorkspace()), reused across every encode / syndrome
 * / decode call that worker makes.
 *
 * Capacities are compile-time upper bounds over every code the
 * library can construct (n <= 255, so r <= 254; VECC hands the
 * decoder syndrome sequences slightly longer than r).  The decoder
 * asserts against them at entry, so a workspace can never be
 * silently outgrown.  Sizing is generous rather than tight -- the
 * whole arena is ~12 KiB, i.e. noise next to the 64 KiB GF(2^8)
 * product table it feeds from.
 */

#ifndef ARCC_ECC_RS_WORKSPACE_HH
#define ARCC_ECC_RS_WORKSPACE_HH

#include <array>
#include <cstdint>

namespace arcc
{

/**
 * Scratch buffers for one in-flight Reed-Solomon operation.  Plain
 * aggregates; nothing is initialised up front because every user
 * writes before it reads (lengths travel separately inside the
 * decoder).  Not thread-safe: give each worker its own.
 */
struct RsWorkspace
{
    /** Max syndromes a decode may be handed (r + tier-2 extras). */
    static constexpr int kMaxChecks = 255;
    /** Max codeword length. */
    static constexpr int kMaxSymbols = 255;
    /**
     * Polynomial buffer capacity.  Berlekamp-Massey storage can
     * carry trailing zeros beyond the mathematical degree (bounded
     * by ~2r), and the products Psi = Lambda * Gamma and
     * Omega = S * Psi are formed in full before truncation, so the
     * buffers leave ample headroom over kMaxChecks.
     */
    static constexpr int kPolyCap = 1024;
    /**
     * Lanes of the codeword-transposed (SoA) batch buffers: how many
     * codewords one ReedSolomon::decodeSoa call screens per pass.
     * A multiple of 16 (the SIMD shuffle width, see ecc/gf256_simd.hh)
     * sized to swallow the widest natural batch in one block -- eight
     * relaxed RS(18,16) groups of 4 codewords, a full VECC chunk, or
     * two upgraded groups.
     */
    static constexpr int kSoaLanes = 32;

    /** Syndrome sequence (decode) / remainder (encode). */
    std::array<std::uint8_t, kMaxChecks> synd;

    /** Erasure locator Gamma. */
    std::array<std::uint8_t, kPolyCap> gamma;
    /** Modified syndromes Xi = S * Gamma mod x^rr. */
    std::array<std::uint8_t, kPolyCap> xi;
    /** Berlekamp-Massey error locator Lambda and its B polynomial. */
    std::array<std::uint8_t, kPolyCap> lambda;
    std::array<std::uint8_t, kPolyCap> prev;
    /** Scratch copy of Lambda taken before an in-place update. */
    std::array<std::uint8_t, kPolyCap> tmp;
    /** Combined locator Psi = Lambda * Gamma and its derivative. */
    std::array<std::uint8_t, kPolyCap> psi;
    std::array<std::uint8_t, kPolyCap> psiPrime;
    /** Error evaluator Omega = S * Psi mod x^rr. */
    std::array<std::uint8_t, kPolyCap> omega;
    /** Chien running terms psi_j * x^j. */
    std::array<std::uint8_t, kPolyCap> terms;

    /** Root positions the Chien search found. */
    std::array<int, kMaxSymbols> errPos;
    /** Correction magnitudes applied (parallel to positions). */
    std::array<std::uint8_t, kMaxSymbols> mags;
    /** Codeword positions changed; RsDecodeView::positions points
     *  here, so the view is valid until the next use of this
     *  workspace. */
    std::array<int, kMaxSymbols> positions;

    /** Codeword staging for line codecs (one symbol per device). */
    std::array<std::uint8_t, kMaxSymbols> word;

    // ----- SoA batch staging (ReedSolomon::decodeSoa) ----------------
    //
    // The transposed block soa[symbol * kSoaLanes + lane] plus its
    // per-lane syndrome rows and screen flags.  ~10 KiB on top of the
    // scalar arena; one workspace still serves both paths.

    /** Codeword-transposed batch: symbol i of lane l at
     *  soa[i * kSoaLanes + l]. */
    std::array<std::uint8_t, kMaxSymbols * kSoaLanes> soa;
    /** Per-lane syndromes, same transposed layout. */
    std::array<std::uint8_t, kMaxChecks * kSoaLanes> syndSoa;
    /** Per-lane screen flags (non-zero = lane needs a full decode). */
    std::array<std::uint8_t, kSoaLanes> soaFlags;
};

} // namespace arcc

#endif // ARCC_ECC_RS_WORKSPACE_HH
