/**
 * @file
 * The *reference* Reed-Solomon implementation: the original
 * allocation-heavy, log/exp-multiply decoder this library shipped
 * before the table-driven fast path replaced it in the hot paths.
 *
 * It is retained, unoptimised and deliberately simple, as the oracle
 * the fast pipeline is pinned against: tests/test_property_rs_oracle.cc
 * fuzzes >= 10k words per codec shape and requires bit-identical
 * status / corrected word / positions from both decoders, and
 * bench_ecc reports both so the speedup is tracked per PR.  Do not
 * optimise this class; its value is that it stays obviously correct.
 *
 * Semantics are documented in ecc/reed_solomon.hh; the two classes
 * are drop-in interchangeable.
 */

#ifndef ARCC_ECC_RS_REFERENCE_HH
#define ARCC_ECC_RS_REFERENCE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/reed_solomon.hh"

namespace arcc
{

/**
 * Systematic RS(n, k) over GF(2^8), reference implementation.
 */
class RsReference
{
  public:
    RsReference(int n, int k);

    int n() const { return n_; }
    int k() const { return k_; }
    int r() const { return n_ - k_; }

    /** Encode in place: reads codeword[0..k), writes codeword[k..n). */
    void encode(std::span<std::uint8_t> codeword) const;

    /** @return true when all syndromes are zero. */
    bool syndromesZero(std::span<const std::uint8_t> codeword) const;

    /** Decode in place (see ReedSolomon::decode). */
    DecodeResult decode(std::span<std::uint8_t> codeword,
                        int maxCorrect = -1,
                        std::span<const int> erasures = {}) const;

    /** Evaluate the received word at alpha^j. */
    std::uint8_t evalAt(std::span<const std::uint8_t> codeword,
                        int j) const;

    /** Decode with an externally supplied syndrome sequence. */
    DecodeResult decodeWithSyndromes(
        std::span<std::uint8_t> codeword,
        std::span<const std::uint8_t> synd, int maxCorrect = -1,
        std::span<const int> erasures = {}) const;

  private:
    bool computeSyndromes(std::span<const std::uint8_t> codeword,
                          std::vector<std::uint8_t> &synd) const;

    int n_;
    int k_;
    /** Generator polynomial, low-order coefficient first. */
    std::vector<std::uint8_t> gen_;
};

} // namespace arcc

#endif // ARCC_ECC_RS_REFERENCE_HH
