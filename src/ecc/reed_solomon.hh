/**
 * @file
 * Systematic Reed-Solomon codes over GF(2^8) with errors-and-erasures
 * decoding.
 *
 * One codec instance models one (n, k) code.  The codes the paper uses:
 *
 *  - RS(18, 16): the ARCC *relaxed* codeword (2 check symbols, one
 *    18-device rank).  Guarantees single-symbol correction.
 *  - RS(36, 32): the ARCC *upgraded* codeword and the commercial
 *    SCCDCD codeword (4 check symbols, 36 devices).  Decoded with
 *    maxCorrect = 1 this corrects one bad symbol and is guaranteed to
 *    detect up to three more (d = 5); decoded with maxCorrect = 2 it
 *    models the correction capability of double chip sparing once the
 *    first bad device has been identified.
 *  - RS(72, 64): the second-level upgraded codeword of Chapter 5.1
 *    (8 check symbols across four channels).
 *
 * The decoder also accepts *erasures* (positions known bad, e.g. a
 * device already diagnosed and remapped by chip sparing); e errors and
 * f erasures are corrected whenever 2e + f <= n - k.
 *
 * This is the *fast* implementation: table-driven GF(2^8) arithmetic
 * (see gf256.hh), zero heap allocations on every encode / syndrome /
 * decode path when driven through an RsWorkspace, per-instance
 * precomputed locator tables, and an incremental alpha-stepping Chien
 * search.  Its decode results are bit-identical to the retained
 * reference implementation (ecc/rs_reference.hh); the property suite
 * fuzzes the two against each other.
 */

#ifndef ARCC_ECC_REED_SOLOMON_HH
#define ARCC_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gf256.hh"
#include "ecc/rs_workspace.hh"

namespace arcc
{

/** Outcome of a decode attempt. */
enum class DecodeStatus
{
    /** Syndromes were all zero: no error present (or undetectable). */
    Clean,
    /** Errors were found and corrected in place. */
    Corrected,
    /**
     * An error was detected but exceeds the configured correction
     * capability: a detectable uncorrectable error (DUE).
     */
    Detected,
};

/** Full result of a decode attempt (owning; legacy convenience). */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of symbols changed by the decoder (errors + erasures). */
    int symbolsCorrected = 0;
    /** Codeword positions the decoder changed. */
    std::vector<int> positions;

    bool ok() const { return status != DecodeStatus::Detected; }
};

/**
 * Per-lane outcome of a batched SoA decode (ReedSolomon::decodeSoa).
 * Plain values only -- changed positions stay in the SoA block.
 */
struct RsLaneResult
{
    DecodeStatus status = DecodeStatus::Clean;
    int symbolsCorrected = 0;

    bool ok() const { return status != DecodeStatus::Detected; }
};

/**
 * Non-owning decode result of the allocation-free fast path.
 * `positions` aliases the workspace the decode ran in, so it is valid
 * until that workspace's next decode.  Copy it out if you need it
 * longer.
 */
struct RsDecodeView
{
    DecodeStatus status = DecodeStatus::Clean;
    int symbolsCorrected = 0;
    /** Codeword positions changed, ascending; view into workspace. */
    std::span<const int> positions{};

    bool ok() const { return status != DecodeStatus::Detected; }
};

/**
 * A systematic RS(n, k) codec over GF(2^8).  Codewords are arrays of n
 * bytes: data symbols in [0, k), check symbols in [k, n).
 */
class ReedSolomon
{
  public:
    /**
     * Build the codec.
     * @param n codeword length in symbols (2 <= n <= 255).
     * @param k data symbols per codeword (1 <= k < n).
     */
    ReedSolomon(int n, int k);

    int n() const { return n_; }
    int k() const { return k_; }
    /** Number of check symbols. */
    int r() const { return n_ - k_; }

    /**
     * Encode in place: reads codeword[0..k), writes codeword[k..n).
     * Allocation-free.
     * @param codeword buffer of at least n symbols.
     */
    void encode(std::span<std::uint8_t> codeword) const;

    /**
     * Syndrome check without correction.  Allocation-free; this is
     * the per-clean-line fast path of every sweep.
     * @return true when all syndromes are zero.
     */
    bool syndromesZero(std::span<const std::uint8_t> codeword) const;

    /**
     * Compute the first `synd.size()` syndromes S_j = c(alpha^j) into
     * the caller's buffer.  Allocation-free.
     * @pre synd.size() <= r().  Evaluations at the extension roots
     *      j >= r (VECC's virtualised check symbols) are not
     *      syndromes of this code; compute those with evalAt().
     * @return true if any syndrome is non-zero.
     */
    bool computeSyndromes(std::span<const std::uint8_t> codeword,
                          std::span<std::uint8_t> synd) const;

    /**
     * Batched syndrome screen over a codeword-transposed (SoA) block:
     * lane l's word is soa[i * stride + l] for i in [0, n).  Computes
     * all r() syndromes of every lane into synd_soa (same transposed
     * layout, r() rows) and ORs each lane's syndromes into flags[l].
     * Runs at the active SIMD tier; bit-identical per lane to
     * computeSyndromes().  Allocation-free.
     *
     * @pre stride is a multiple of 16 and >= lanes rounded up to 16;
     *      entries in [lanes, roundUp16(lanes)) of every synd_soa row
     *      and of flags are clobbered (see ecc/gf256_simd.hh).
     * @return true if any lane in [0, lanes) flagged.
     */
    bool computeSyndromesSoa(const std::uint8_t *soa, std::size_t stride,
                             int lanes, std::uint8_t *synd_soa,
                             std::uint8_t *flags) const;

    /**
     * Batched decode of an SoA block, in place: the vector syndrome
     * screen above, then the full decode pipeline for just the lanes
     * it flagged (gathered one column at a time, syndromes reused).
     * Lane l's outcome is bit-identical to decode() on that word --
     * same status, same corrected symbols -- with corrections written
     * back into the block.  `erasures` applies to every lane (the
     * callers batch codewords that share a device group, so a spared
     * device erases the same position in each).  Screen scratch comes
     * from ws.syndSoa / ws.soaFlags; the block itself is the
     * caller's (usually ws.soa).  Allocation-free.
     *
     * @param results one RsLaneResult per lane, or nullptr when only
     *                the corrected block is wanted.
     */
    void decodeSoa(std::uint8_t *soa, std::size_t stride, int lanes,
                   RsWorkspace &ws, int maxCorrect = -1,
                   std::span<const int> erasures = {},
                   RsLaneResult *results = nullptr) const;

    /**
     * Decode in place through a workspace: the allocation-free fast
     * path.  The returned view's `positions` aliases `ws`.
     *
     * @param codeword   buffer of n symbols, corrected on success.
     * @param ws         scratch arena (one per worker, reused).
     * @param maxCorrect cap on the number of *errors* (not erasures)
     *                   the decoder may correct; -1 means the full
     *                   capability floor((r - f) / 2).  SCCDCD uses 1.
     * @param erasures   positions known to be unreliable.
     */
    RsDecodeView decode(std::span<std::uint8_t> codeword,
                        RsWorkspace &ws, int maxCorrect = -1,
                        std::span<const int> erasures = {}) const;

    /**
     * Decode in place (owning-result convenience; uses the calling
     * thread's default workspace).  The clean path allocates nothing;
     * a correction allocates only the returned position list.
     */
    DecodeResult decode(std::span<std::uint8_t> codeword,
                        int maxCorrect = -1,
                        std::span<const int> erasures = {}) const;

    /**
     * Evaluate the received word at alpha^j (the j-th syndrome of the
     * error polynomial when j < r; for j >= r this is the evaluation a
     * *virtualised* check symbol must match).  VECC stores such extra
     * evaluations out of line (tier-2 ECC) and hands them back via
     * decodeWithSyndromes.
     */
    std::uint8_t evalAt(std::span<const std::uint8_t> codeword,
                        int j) const;

    /**
     * Decode with an externally supplied syndrome sequence.  `synd`
     * may be *longer* than r: VECC's tier-2 check symbols extend the
     * effective redundancy of the inline codeword (Chapter 5.2), so an
     * RS(18,16) word plus two virtualised evaluations decodes with
     * four syndromes.  Allocation-free fast path; the view's
     * `positions` aliases `ws`.
     */
    RsDecodeView decodeWithSyndromes(
        std::span<std::uint8_t> codeword,
        std::span<const std::uint8_t> synd, RsWorkspace &ws,
        int maxCorrect = -1, std::span<const int> erasures = {}) const;

    /** Owning-result convenience overload (thread-default workspace). */
    DecodeResult decodeWithSyndromes(
        std::span<std::uint8_t> codeword,
        std::span<const std::uint8_t> synd, int maxCorrect = -1,
        std::span<const int> erasures = {}) const;

    /**
     * The calling thread's default workspace.  Thread-local, so
     * "one per SimEngine worker" holds with no plumbing; the explicit
     * workspace overloads exist so sharded sweeps can own theirs.
     */
    static RsWorkspace &tlsWorkspace();

  private:
    /**
     * The decode pipeline behind both syndrome entry points.  `synd`
     * must already be known non-zero somewhere.
     */
    RsDecodeView decodeCore(std::span<std::uint8_t> codeword,
                            std::span<const std::uint8_t> synd,
                            RsWorkspace &ws, int maxCorrect,
                            std::span<const int> erasures) const;

    int n_;
    int k_;
    /** Generator polynomial, low-order coefficient first. */
    std::vector<std::uint8_t> gen_;
    /** gen_ reversed (high-order first, monic lead dropped): the
     *  order encode's scale-accumulate walks it in. */
    std::vector<std::uint8_t> genHigh_;
    /** Syndrome Horner multiplier rows: row j scales by alpha^j. */
    std::vector<const std::uint8_t *> syndRows_;
    /** The syndrome roots alpha^j themselves (SoA kernel input). */
    std::vector<std::uint8_t> syndRoots_;
    /** Locator tables: xAt_[i] = alpha^(n-1-i), xInvAt_[i] its
     *  inverse -- the locator of an error at array index i and the
     *  Chien root that reveals it. */
    std::vector<std::uint8_t> xAt_;
    std::vector<std::uint8_t> xInvAt_;
    /** Chien start tables: scanning array positions in ascending
     *  order puts the evaluation point at alpha^-(n-1-i), so term j
     *  starts at psi_j * chienInit_[j] = psi_j * alpha^(-j(n-1)). */
    std::vector<std::uint8_t> chienInit_;
    /** Chien step tables (see gfsimd::chienScan): per term j, the 16
     *  within-block factors alpha^(j*l) (lane 1 doubles as the scalar
     *  tier's per-position step alpha^j) ... */
    std::vector<std::uint8_t> chienLane_;
    /** ... and the block-advance factors alpha^(16j). */
    std::vector<std::uint8_t> chienStep16_;
};

/** Polynomial helpers shared with tests (coefficients low-to-high). */
namespace gfpoly
{

/** Multiply two polynomials over GF(2^8). */
std::vector<std::uint8_t> mul(std::span<const std::uint8_t> a,
                              std::span<const std::uint8_t> b);

/**
 * In-place span variant of mul: writes a * b into `out` (which must
 * not alias the inputs and must hold a.size() + b.size() - 1
 * coefficients) and returns that length.  Zero-length inputs produce
 * a zero-length product.
 */
std::size_t mulInto(std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b,
                    std::span<std::uint8_t> out);

/** Evaluate a polynomial at x. */
std::uint8_t eval(std::span<const std::uint8_t> p, std::uint8_t x);

/** Formal derivative (over GF(2^m) even-power terms vanish). */
std::vector<std::uint8_t> derivative(std::span<const std::uint8_t> p);

/**
 * In-place span variant of derivative: writes p' into `out` (needs
 * max(p.size() - 1, 1) coefficients; may not alias p) and returns
 * that length.
 */
std::size_t derivativeInto(std::span<const std::uint8_t> p,
                           std::span<std::uint8_t> out);

/** Degree of p (-1 for the zero polynomial). */
int degree(std::span<const std::uint8_t> p);

} // namespace gfpoly

} // namespace arcc

#endif // ARCC_ECC_REED_SOLOMON_HH
