/**
 * @file
 * Systematic Reed-Solomon codes over GF(2^8) with errors-and-erasures
 * decoding.
 *
 * One codec instance models one (n, k) code.  The codes the paper uses:
 *
 *  - RS(18, 16): the ARCC *relaxed* codeword (2 check symbols, one
 *    18-device rank).  Guarantees single-symbol correction.
 *  - RS(36, 32): the ARCC *upgraded* codeword and the commercial
 *    SCCDCD codeword (4 check symbols, 36 devices).  Decoded with
 *    maxCorrect = 1 this corrects one bad symbol and is guaranteed to
 *    detect up to three more (d = 5); decoded with maxCorrect = 2 it
 *    models the correction capability of double chip sparing once the
 *    first bad device has been identified.
 *  - RS(72, 64): the second-level upgraded codeword of Chapter 5.1
 *    (8 check symbols across four channels).
 *
 * The decoder also accepts *erasures* (positions known bad, e.g. a
 * device already diagnosed and remapped by chip sparing); e errors and
 * f erasures are corrected whenever 2e + f <= n - k.
 */

#ifndef ARCC_ECC_REED_SOLOMON_HH
#define ARCC_ECC_REED_SOLOMON_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gf256.hh"

namespace arcc
{

/** Outcome of a decode attempt. */
enum class DecodeStatus
{
    /** Syndromes were all zero: no error present (or undetectable). */
    Clean,
    /** Errors were found and corrected in place. */
    Corrected,
    /**
     * An error was detected but exceeds the configured correction
     * capability: a detectable uncorrectable error (DUE).
     */
    Detected,
};

/** Full result of a decode attempt. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::Clean;
    /** Number of symbols changed by the decoder (errors + erasures). */
    int symbolsCorrected = 0;
    /** Codeword positions the decoder changed. */
    std::vector<int> positions;

    bool ok() const { return status != DecodeStatus::Detected; }
};

/**
 * A systematic RS(n, k) codec over GF(2^8).  Codewords are arrays of n
 * bytes: data symbols in [0, k), check symbols in [k, n).
 */
class ReedSolomon
{
  public:
    /**
     * Build the codec.
     * @param n codeword length in symbols (2 <= n <= 255).
     * @param k data symbols per codeword (1 <= k < n).
     */
    ReedSolomon(int n, int k);

    int n() const { return n_; }
    int k() const { return k_; }
    /** Number of check symbols. */
    int r() const { return n_ - k_; }

    /**
     * Encode in place: reads codeword[0..k), writes codeword[k..n).
     * @param codeword buffer of at least n symbols.
     */
    void encode(std::span<std::uint8_t> codeword) const;

    /**
     * Syndrome check without correction.
     * @return true when all syndromes are zero.
     */
    bool syndromesZero(std::span<const std::uint8_t> codeword) const;

    /**
     * Decode in place.
     *
     * @param codeword   buffer of n symbols, corrected on success.
     * @param maxCorrect cap on the number of *errors* (not erasures)
     *                   the decoder may correct; -1 means the full
     *                   capability floor((r - f) / 2).  SCCDCD uses 1.
     * @param erasures   positions known to be unreliable.
     * @return the decode outcome.
     */
    DecodeResult decode(std::span<std::uint8_t> codeword,
                        int maxCorrect = -1,
                        std::span<const int> erasures = {}) const;

    /**
     * Evaluate the received word at alpha^j (the j-th syndrome of the
     * error polynomial when j < r; for j >= r this is the evaluation a
     * *virtualised* check symbol must match).  VECC stores such extra
     * evaluations out of line (tier-2 ECC) and hands them back via
     * decodeWithSyndromes.
     */
    std::uint8_t evalAt(std::span<const std::uint8_t> codeword,
                        int j) const;

    /**
     * Decode with an externally supplied syndrome sequence.  `synd`
     * may be *longer* than r: VECC's tier-2 check symbols extend the
     * effective redundancy of the inline codeword (Chapter 5.2), so an
     * RS(18,16) word plus two virtualised evaluations decodes with
     * four syndromes.
     */
    DecodeResult decodeWithSyndromes(
        std::span<std::uint8_t> codeword,
        std::span<const std::uint8_t> synd, int maxCorrect = -1,
        std::span<const int> erasures = {}) const;

  private:
    /** Compute the r syndromes; @return true if any is non-zero. */
    bool computeSyndromes(std::span<const std::uint8_t> codeword,
                          std::vector<std::uint8_t> &synd) const;

    int n_;
    int k_;
    /** Generator polynomial, low-order coefficient first. */
    std::vector<std::uint8_t> gen_;
};

/** Polynomial helpers shared with tests (coefficients low-to-high). */
namespace gfpoly
{

/** Multiply two polynomials over GF(2^8). */
std::vector<std::uint8_t> mul(std::span<const std::uint8_t> a,
                              std::span<const std::uint8_t> b);

/** Evaluate a polynomial at x. */
std::uint8_t eval(std::span<const std::uint8_t> p, std::uint8_t x);

/** Formal derivative (over GF(2^m) even-power terms vanish). */
std::vector<std::uint8_t> derivative(std::span<const std::uint8_t> p);

/** Degree of p (-1 for the zero polynomial). */
int degree(std::span<const std::uint8_t> p);

} // namespace gfpoly

} // namespace arcc

#endif // ARCC_ECC_REED_SOLOMON_HH
