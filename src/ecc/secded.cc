/**
 * @file
 * SECDED (72, 64) implementation: Hamming(71, 64) plus overall parity.
 */

#include "ecc/secded.hh"

#include <array>

namespace arcc
{

namespace
{

/** True when p is a power of two (a Hamming check-bit position). */
constexpr bool
isPow2(int p)
{
    return (p & (p - 1)) == 0;
}

/** Positions of the 7 Hamming check bits within the 1-based codeword. */
constexpr std::array<int, 7> kCheckPos = {1, 2, 4, 8, 16, 32, 64};

/**
 * Codeword position (1-based Hamming numbering) of each data bit.
 * Data bits fill non-power-of-two positions in increasing order.
 */
struct PositionMap
{
    std::array<int, 64> dataPos{};
    // Reverse map: position -> data bit index, or -1.
    std::array<int, 128> posData{};

    PositionMap()
    {
        posData.fill(-1);
        int p = 1;
        for (int d = 0; d < 64; ++d) {
            while (isPow2(p))
                ++p;
            dataPos[d] = p;
            posData[p] = d;
            ++p;
        }
    }
};

const PositionMap &
posMap()
{
    static const PositionMap m;
    return m;
}

/** Syndrome contribution of the data bits only. */
int
dataSyndrome(std::uint64_t data)
{
    const PositionMap &m = posMap();
    int s = 0;
    while (data) {
        int d = __builtin_ctzll(data);
        data &= data - 1;
        s ^= m.dataPos[d];
    }
    return s;
}

/** Parity (popcount mod 2) of a 64-bit word. */
int
parity64(std::uint64_t x)
{
    return __builtin_parityll(x);
}

} // anonymous namespace

std::uint8_t
Secded::encode(std::uint64_t data)
{
    int s = dataSyndrome(data);
    std::uint8_t check = 0;
    // Hamming bits: bit i of the syndrome lives at position 2^i.
    for (int i = 0; i < 7; ++i) {
        if (s & (1 << i))
            check |= static_cast<std::uint8_t>(1 << i);
    }
    // Overall parity over data plus the 7 Hamming bits.
    int p = parity64(data) ^ parity64(check & 0x7f);
    if (p)
        check |= 0x80;
    return check;
}

Secded::Result
Secded::decode(std::uint64_t &data, std::uint8_t &check)
{
    Result res;
    const PositionMap &m = posMap();

    int s = dataSyndrome(data);
    for (int i = 0; i < 7; ++i) {
        if (check & (1 << i))
            s ^= kCheckPos[i];
    }
    int p = parity64(data) ^ parity64(check);

    if (s == 0 && p == 0) {
        res.status = DecodeStatus::Clean;
        return res;
    }
    if (s == 0 && p == 1) {
        // The overall parity bit itself flipped.
        check ^= 0x80;
        res.status = DecodeStatus::Corrected;
        res.bitCorrected = 72;
        return res;
    }
    if (p == 0) {
        // Non-zero syndrome with even parity: double-bit error.
        res.status = DecodeStatus::Detected;
        return res;
    }

    // Single-bit error at position s.
    if (s < 128 && m.posData[s] >= 0) {
        data ^= 1ULL << m.posData[s];
        res.status = DecodeStatus::Corrected;
        res.bitCorrected = s;
        return res;
    }
    if (s < 128 && isPow2(s) && s <= 64) {
        int i = __builtin_ctz(static_cast<unsigned>(s));
        check ^= static_cast<std::uint8_t>(1 << i);
        res.status = DecodeStatus::Corrected;
        res.bitCorrected = s;
        return res;
    }

    // Syndrome points outside the codeword: not a single-bit pattern.
    res.status = DecodeStatus::Detected;
    return res;
}

Secded::Result
Secded::referenceDecode(std::uint64_t &data, std::uint8_t &check)
{
    Result res;
    if (encode(data) == check) {
        res.status = DecodeStatus::Clean;
        return res;
    }
    // Try every single wire-bit flip; with minimum distance 4 at most
    // one of the 72 candidates can be a codeword.
    for (int b = 0; b < 72; ++b) {
        std::uint64_t d = data;
        std::uint8_t c = check;
        if (b < 64)
            d ^= 1ULL << b;
        else
            c ^= static_cast<std::uint8_t>(1 << (b - 64));
        if (encode(d) == c) {
            data = d;
            check = c;
            res.status = DecodeStatus::Corrected;
            res.bitCorrected = b;
            return res;
        }
    }
    res.status = DecodeStatus::Detected;
    return res;
}

} // namespace arcc
