/**
 * @file
 * Edge-case tests for the functional memory: faults on check devices,
 * lane-scope overlays, partial-bit stuck-ats, writes into groups with
 * uncorrectable errors, and fault bookkeeping.
 */

#include <gtest/gtest.h>

#include "arcc/arcc_memory.hh"
#include "arcc/scrubber.hh"
#include "common/rng.hh"

namespace arcc
{
namespace
{

std::vector<std::uint8_t>
randomLine(Rng &rng)
{
    std::vector<std::uint8_t> v(kLineBytes);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.below(256));
    return v;
}

TEST(ArccMemoryEdge, FaultOnACheckDeviceIsStillCorrected)
{
    // Devices 16 and 17 of a relaxed rank hold the check symbols; a
    // chipkill code must not care which device dies.
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(1);
    mem.setPageMode(0, PageMode::Relaxed);
    auto data = randomLine(rng);
    mem.write(0, data);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 17; // check device.
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    auto r = mem.read(0);
    EXPECT_NE(r.status, DecodeStatus::Detected);
    EXPECT_EQ(r.data, data);
}

TEST(ArccMemoryEdge, LaneScopeHitsEveryRankOfTheChannel)
{
    // A lane fault is a shared data-lane defect: the same device
    // position fails in *both* ranks of the channel (Table 7.4 says
    // both ranks upgrade).
    ArccMemory mem(FunctionalConfig::arccSmall());
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0; // ignored for Lane scope.
    f.device = 4;
    f.scope = FaultScope::Lane;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    scrubber.scrub(mem);
    // Every page has lines in channel 0, so every page is faulty.
    EXPECT_DOUBLE_EQ(mem.pageTable().upgradedFraction(), 1.0);
}

TEST(ArccMemoryEdge, PartialBitMaskStuckAtOnlyFlipsMaskedBits)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    mem.setPageMode(0, PageMode::Relaxed);
    std::vector<std::uint8_t> zeros(kLineBytes, 0);
    mem.write(0, zeros);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 2;
    f.scope = FaultScope::Cell;
    f.bank = 0;
    f.row = 0;
    f.col = 0;
    f.kind = FaultKind::StuckAt1;
    f.mask = 0x01; // a single stuck bit per slice byte.
    mem.injectFault(f);

    auto r = mem.read(0);
    ASSERT_EQ(r.status, DecodeStatus::Corrected);
    EXPECT_EQ(r.data, zeros);
    // The corruption magnitude was exactly the masked bit: verify via
    // raw readback that unmasked bits stayed zero.
    mem.rawFill(0, 0x00);
    EXPECT_FALSE(mem.rawCheck(0, 0x00));
    mem.rawFill(0, 0xfe); // stuck bit forces 0xff there.
    EXPECT_FALSE(mem.rawCheck(0, 0xfe));
}

TEST(ArccMemoryEdge, WriteIntoDueGroupStillProducesValidCodewords)
{
    // Two dead devices make a relaxed group uncorrectable.  A write
    // must still leave *stored* codewords valid (garbage-in respected,
    // structure preserved) so later reads flag errors from the
    // overlay, not from torn encoding.
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(3);
    std::uint64_t page = 0;
    mem.setPageMode(page, PageMode::Relaxed);
    mem.write(0, randomLine(rng));

    for (int dev : {3, 8}) {
        FunctionalFault f;
        f.channel = 0;
        f.rank = 0;
        f.device = dev;
        f.scope = FaultScope::Device;
        f.kind = FaultKind::Corrupt;
        mem.injectFault(f);
    }
    auto broken = mem.read(0);
    EXPECT_NE(broken.status, DecodeStatus::Clean);

    // Overwrite the line: the new write re-encodes everything.
    auto fresh = randomLine(rng);
    mem.write(0, fresh);
    // Remove the faults: the stored bits must now decode cleanly to
    // the new data (the write was not corrupted by the overlay).
    mem.clearFaults();
    auto r = mem.read(0);
    EXPECT_EQ(r.status, DecodeStatus::Clean);
    EXPECT_EQ(r.data, fresh);
}

TEST(ArccMemoryEdge, FaultBookkeeping)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    EXPECT_TRUE(mem.faults().empty());
    FunctionalFault f;
    f.channel = 1;
    f.rank = 1;
    f.device = 5;
    mem.injectFault(f);
    EXPECT_EQ(mem.faults().size(), 1u);
    mem.clearFaults();
    EXPECT_TRUE(mem.faults().empty());
}

TEST(ArccMemoryEdge, InjectFaultValidatesCoordinates)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    FunctionalFault f;
    f.channel = 9; // out of range.
    EXPECT_DEATH(mem.injectFault(f), "assertion");
}

TEST(ArccMemoryEdge, StatsCountReadsAndWrites)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(4);
    auto line = randomLine(rng);
    mem.write(0, line);
    mem.read(0);
    mem.read(64);
    EXPECT_EQ(mem.stats().writes, 1u);
    EXPECT_EQ(mem.stats().reads, 2u);
    EXPECT_GT(mem.stats().deviceWrites, 0u);
    EXPECT_GT(mem.stats().deviceReads, 0u);
}

TEST(ArccMemoryEdge, AccessBatchMatchesPerLineReads)
{
    // Every line of two upgraded pages, written with distinct content,
    // some lines hit by a device fault: the batched path must return
    // exactly what per-line read() returns, status included.
    ArccMemory mem(FunctionalConfig::arccSmall());
    ArccMemory ref(FunctionalConfig::arccSmall());
    Rng rng(11);
    std::vector<std::uint64_t> addrs;
    for (std::uint64_t addr = 0; addr < 2 * kPageBytes;
         addr += kLineBytes) {
        auto line = randomLine(rng);
        mem.write(addr, line);
        ref.write(addr, line);
        addrs.push_back(addr);
    }
    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 3;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);
    ref.injectFault(f);

    auto batch = mem.accessBatch(addrs);
    ASSERT_EQ(batch.size(), addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        ReadResult one = ref.read(addrs[i]);
        EXPECT_EQ(batch[i].status, one.status) << "line " << i;
        EXPECT_EQ(batch[i].data, one.data) << "line " << i;
    }
}

TEST(ArccMemoryEdge, AccessBatchAmortizesGroupDecodes)
{
    // Upgraded pages decode a 128B group per access: a sequential
    // 64B-line sweep through accessBatch must touch the devices half
    // as often as per-line read() calls do.
    ArccMemory batched(FunctionalConfig::arccSmall());
    ArccMemory single(FunctionalConfig::arccSmall());
    std::vector<std::uint64_t> addrs;
    for (std::uint64_t addr = 0; addr < kPageBytes;
         addr += kLineBytes)
        addrs.push_back(addr);

    batched.accessBatch(addrs);
    for (std::uint64_t addr : addrs)
        single.read(addr);

    EXPECT_EQ(batched.stats().reads, single.stats().reads);
    EXPECT_EQ(2 * batched.stats().deviceReads,
              single.stats().deviceReads);
}

TEST(ArccMemoryEdge, AccessBatchCountsDecodeWorkNotLines)
{
    // corrected / dues count decode operations, so a batched sweep of
    // a faulty upgraded page (2 lines per 128B group) records half of
    // what per-line read() calls do -- while every returned line
    // still carries its own status.
    ArccMemory batched(FunctionalConfig::arccSmall());
    ArccMemory single(FunctionalConfig::arccSmall());
    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 2;
    f.kind = FaultKind::Corrupt;
    batched.injectFault(f);
    single.injectFault(f);

    std::vector<std::uint64_t> addrs;
    for (std::uint64_t addr = 0; addr < kPageBytes;
         addr += kLineBytes)
        addrs.push_back(addr);

    auto results = batched.accessBatch(addrs);
    for (std::uint64_t addr : addrs)
        single.read(addr);

    ASSERT_GT(single.stats().corrected, 0u);
    EXPECT_EQ(2 * batched.stats().corrected,
              single.stats().corrected);
    for (const ReadResult &r : results)
        EXPECT_EQ(r.status, DecodeStatus::Corrected);
}

TEST(ArccMemoryEdge, SpareListIsIdempotent)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    mem.spareDevice(0, 0, 7);
    mem.spareDevice(0, 0, 7);
    EXPECT_EQ(mem.sparedDevices(0, 0).size(), 1u);
    EXPECT_TRUE(mem.sparedDevices(1, 1).empty());
}

} // namespace
} // namespace arcc
