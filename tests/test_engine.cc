/**
 * @file
 * Tests for the parallel simulation engine: splittable / jump-ahead
 * RNG streams, the work-stealing thread pool, deterministic sharding,
 * and bit-identical Monte Carlo results across thread counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "cpu/system_sim.hh"
#include "dram/dram_params.hh"
#include "engine/sim_engine.hh"
#include "engine/thread_pool.hh"
#include "faults/lifetime_mc.hh"

namespace arcc
{
namespace
{

// --- RNG streams -------------------------------------------------------

TEST(RngStream, PureFunctionOfSeedAndIndex)
{
    Rng a = Rng::stream(42, 7);
    Rng b = Rng::stream(42, 7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, OrderIndependentUnlikeFork)
{
    // fork() makes stream c depend on the c-1 forks before it;
    // stream() must not.  Drawing stream 5 before stream 2 gives the
    // same sequences as the other way around.
    Rng early = Rng::stream(9, 5);
    Rng late2 = Rng::stream(9, 2);
    Rng early2 = Rng::stream(9, 2);
    Rng late = Rng::stream(9, 5);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(early.next(), late.next());
        EXPECT_EQ(early2.next(), late2.next());
    }
}

TEST(RngStream, NeighbouringStreamsAreUncorrelated)
{
    // Cheap independence smoke test: pairwise-distinct outputs and a
    // balanced bit mix across 4 adjacent streams.
    const int draws = 1024;
    std::set<std::uint64_t> seen;
    for (std::uint64_t s = 0; s < 4; ++s) {
        Rng r = Rng::stream(1234, s);
        int ones = 0;
        for (int i = 0; i < draws; ++i) {
            std::uint64_t x = r.next();
            seen.insert(x);
            ones += __builtin_popcountll(x);
        }
        // 64 * 1024 bits, expect ~50% ones (binomial sigma ~0.2%).
        EXPECT_NEAR(ones / (64.0 * draws), 0.5, 0.01);
    }
    EXPECT_EQ(seen.size(), 4u * draws);
}

TEST(RngJump, CommutesWithStepping)
{
    // The state transition and the jump are both linear maps over
    // GF(2), so they commute: step^3(jump(s)) == jump(step^3(s)).
    // This exercises every bit of the jump polynomial arithmetic.
    Rng a(77), b(77);
    a.next();
    a.next();
    a.next();
    a.jump();
    b.jump();
    b.next();
    b.next();
    b.next();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng c(77), d(77);
    c.next();
    c.longJump();
    d.longJump();
    d.next();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(c.next(), d.next());
}

TEST(RngJump, JumpAndLongJumpLandInDistinctRegions)
{
    Rng base(5), j(5), lj(5);
    j.jump();
    lj.longJump();
    bool all_equal = true;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t x = base.next(), y = j.next(), z = lj.next();
        if (x != y || x != z || y != z)
            all_equal = false;
    }
    EXPECT_FALSE(all_equal);
}

// --- thread pool -------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ++count; });
        // Destructor completes whatever is still queued.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkerPoolRunsTasksInWaitLoops)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { ++count; });
    EXPECT_EQ(count.load(), 0); // nothing runs until someone waits.
    while (pool.tryRunOneTask()) {
    }
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

// --- SimEngine sharding ------------------------------------------------

TEST(SimEngine, ThreadCountsComeOut)
{
    SimEngine one(SimEngine::Options{1});
    EXPECT_EQ(one.threads(), 1);
    EXPECT_EQ(one.pool().workers(), 0);
    SimEngine eight(SimEngine::Options{8});
    EXPECT_EQ(eight.threads(), 8);
}

TEST(SimEngine, ForEachShardCoversEveryItemExactlyOnce)
{
    SimEngine engine(SimEngine::Options{4});
    const std::uint64_t items = 1003; // deliberately not a multiple.
    std::vector<std::atomic<int>> hits(items);
    engine.forEachShard(items, 17, [&](const ShardRange &r) {
        EXPECT_EQ(r.begin, r.index * 17);
        for (std::uint64_t i = r.begin; i < r.end; ++i)
            ++hits[i];
    });
    for (std::uint64_t i = 0; i < items; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(SimEngine, MapReduceSumsInShardOrder)
{
    for (int threads : {1, 8}) {
        SimEngine engine(SimEngine::Options{threads});
        std::uint64_t total = engine.mapReduce(
            1000, 64, std::uint64_t{0},
            [](const ShardRange &r) {
                std::uint64_t s = 0;
                for (std::uint64_t i = r.begin; i < r.end; ++i)
                    s += i;
                return s;
            },
            [](std::uint64_t &acc, std::uint64_t &&p) { acc += p; });
        EXPECT_EQ(total, 1000ull * 999 / 2);
    }
}

TEST(SimEngine, ExceptionsPropagateAndEngineStaysUsable)
{
    SimEngine engine(SimEngine::Options{4});
    EXPECT_THROW(
        engine.forEachShard(100, 8,
                            [&](const ShardRange &r) {
                                if (r.index == 5)
                                    throw std::runtime_error("boom");
                            }),
        std::runtime_error);

    // A failed sweep must not poison the pool.
    std::atomic<int> ran{0};
    engine.forEachShard(100, 8, [&](const ShardRange &) { ++ran; });
    EXPECT_EQ(ran.load(), 13); // ceil(100 / 8).
}

TEST(SimEngine, NestedShardedCallsDoNotDeadlock)
{
    SimEngine engine(SimEngine::Options{2});
    std::atomic<int> inner{0};
    engine.forEachIndex(4, [&](std::uint64_t) {
        engine.forEachIndex(4, [&](std::uint64_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 16);
}

// --- ARCC_THREADS validation -------------------------------------------

/** RAII guard: set ARCC_THREADS for one test, restore on exit. */
class ArccThreadsGuard
{
  public:
    explicit ArccThreadsGuard(const char *value)
    {
        if (const char *old = ::getenv("ARCC_THREADS")) {
            had_ = true;
            old_ = old;
        }
        ::setenv("ARCC_THREADS", value, 1);
    }

    ~ArccThreadsGuard()
    {
        if (had_)
            ::setenv("ARCC_THREADS", old_.c_str(), 1);
        else
            ::unsetenv("ARCC_THREADS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

TEST(SimEngineEnv, ValidThreadCountSizesTheEngine)
{
    ArccThreadsGuard guard("3");
    SimEngine engine(SimEngine::Options{0}); // 0 = consult the env.
    EXPECT_EQ(engine.threads(), 3);
}

TEST(SimEngineEnv, ExplicitOptionsIgnoreTheEnv)
{
    ArccThreadsGuard guard("3");
    SimEngine engine(SimEngine::Options{2});
    EXPECT_EQ(engine.threads(), 2);
}

// Regression: SimEngine used to read ARCC_THREADS with std::atoi and
// silently fall back to the hardware count on garbage -- the variable
// that sizes every engine in the process deserves a loud failure.
TEST(SimEngineEnvDeath, GarbageThreadCountIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ArccThreadsGuard guard("8cores");
    EXPECT_DEATH({ SimEngine engine(SimEngine::Options{0}); },
                 "ARCC_THREADS.*8cores");
}

TEST(SimEngineEnvDeath, NegativeThreadCountIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ArccThreadsGuard guard("-4");
    EXPECT_DEATH({ SimEngine engine(SimEngine::Options{0}); },
                 "ARCC_THREADS.*negative");
}

TEST(SimEngineEnvDeath, ZeroThreadsIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ArccThreadsGuard guard("0");
    EXPECT_DEATH({ SimEngine engine(SimEngine::Options{0}); },
                 "ARCC_THREADS.*thread count");
}

TEST(SimEngineEnvDeath, AbsurdThreadCountIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    ArccThreadsGuard guard("40000");
    EXPECT_DEATH({ SimEngine engine(SimEngine::Options{0}); },
                 "ARCC_THREADS.*thread count");
}

// --- determinism across thread counts ----------------------------------

TEST(SimEngine, LifetimeMcIsBitIdenticalAcrossThreadCounts)
{
    LifetimeMcConfig cfg;
    cfg.channels = 2000;
    cfg.gridPerYear = 2;

    SimEngine one(SimEngine::Options{1});
    SimEngine eight(SimEngine::Options{8});
    LifetimeMc serial(cfg, &one);
    LifetimeMc parallel(cfg, &eight);

    AffectedCurve a = serial.affectedFraction();
    AffectedCurve b = parallel.affectedFraction();
    ASSERT_EQ(a.avgFraction.size(), b.avgFraction.size());
    for (std::size_t i = 0; i < a.avgFraction.size(); ++i)
        EXPECT_EQ(a.avgFraction[i], b.avgFraction[i]) << "point " << i;

    PerTypeOverhead overhead{};
    for (FaultType t : allFaultTypes())
        overhead[static_cast<int>(t)] = 0.25;
    std::vector<double> oa =
        serial.cumulativeOverheadByYear(overhead, 1.0);
    std::vector<double> ob =
        parallel.cumulativeOverheadByYear(overhead, 1.0);
    EXPECT_EQ(oa, ob);
}

TEST(SimEngine, MixBatchMatchesSequentialSimulateMix)
{
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 20000; // keep the test quick.
    cfg.seed = 20130223;

    std::vector<MixJob> jobs;
    jobs.push_back({table73Mixes()[0], cfg, {}});
    jobs.push_back({table73Mixes()[1], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Lane, cfg.mem)});
    jobs.push_back({table73Mixes()[2], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Bank, cfg.mem)});

    SimEngine eight(SimEngine::Options{8});
    std::vector<SimResult> batch = simulateMixBatch(jobs, &eight);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        SimResult ref =
            simulateMix(jobs[j].mix, jobs[j].config, jobs[j].oracle);
        EXPECT_EQ(batch[j].ipcSum, ref.ipcSum) << "job " << j;
        EXPECT_EQ(batch[j].avgPowerMw, ref.avgPowerMw) << "job " << j;
        EXPECT_EQ(batch[j].memReads, ref.memReads) << "job " << j;
    }
}

} // namespace
} // namespace arcc
