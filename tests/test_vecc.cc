/**
 * @file
 * VECC tests (Chapter 5.2): tier-1 fast-path detection, tier-2
 * virtualised correction, access amplification accounting, and the
 * extended-syndrome decoder underneath it.
 */

#include <gtest/gtest.h>

#include "arcc/vecc.hh"
#include "common/rng.hh"

namespace arcc
{
namespace
{

std::vector<std::uint8_t>
randomData(Rng &rng, int n)
{
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.below(256));
    return v;
}

// --- extended-syndrome decoding (the substrate) -------------------------

TEST(DecodeWithSyndromes, MatchesPlainDecodeForInlineSyndromes)
{
    ReedSolomon rs(36, 32);
    Rng rng(1);
    for (int t = 0; t < 200; ++t) {
        std::vector<std::uint8_t> w(36);
        for (int i = 0; i < 32; ++i)
            w[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(w);
        auto orig = w;
        w[7] ^= 0x3c;
        std::vector<std::uint8_t> synd(4);
        for (int j = 0; j < 4; ++j)
            synd[j] = rs.evalAt(w, j);
        auto res = rs.decodeWithSyndromes(w, synd, 1);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(w, orig);
    }
}

TEST(DecodeWithSyndromes, VirtualisedChecksExtendTheCapability)
{
    // RS(18,16) alone cannot reliably handle two bad symbols; with two
    // virtualised evaluations (alpha^2, alpha^3) it corrects them.
    ReedSolomon rs(18, 16);
    Rng rng(2);
    for (int t = 0; t < 300; ++t) {
        std::vector<std::uint8_t> w(18);
        for (int i = 0; i < 16; ++i)
            w[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(w);
        auto orig = w;
        std::uint8_t t2[2] = {rs.evalAt(w, 2), rs.evalAt(w, 3)};

        int p1 = static_cast<int>(rng.below(18));
        int p2;
        do {
            p2 = static_cast<int>(rng.below(18));
        } while (p2 == p1);
        w[p1] ^= static_cast<std::uint8_t>(rng.range(1, 255));
        w[p2] ^= static_cast<std::uint8_t>(rng.range(1, 255));

        std::vector<std::uint8_t> synd(4);
        synd[0] = rs.evalAt(w, 0);
        synd[1] = rs.evalAt(w, 1);
        synd[2] = GF256::add(rs.evalAt(w, 2), t2[0]);
        synd[3] = GF256::add(rs.evalAt(w, 3), t2[1]);
        auto res = rs.decodeWithSyndromes(w, synd, 2);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(w, orig);
    }
}

TEST(DecodeWithSyndromes, AllZeroSyndromesIsClean)
{
    ReedSolomon rs(18, 16);
    std::vector<std::uint8_t> w(18, 0);
    std::vector<std::uint8_t> synd(4, 0);
    EXPECT_EQ(rs.decodeWithSyndromes(w, synd).status,
              DecodeStatus::Clean);
}

// --- VeccMemory ----------------------------------------------------------

class VeccSweep : public ::testing::TestWithParam<bool>
{
  protected:
    VeccGeometry
    geom() const
    {
        return GetParam() ? VeccGeometry::vecc9()
                          : VeccGeometry::vecc18();
    }
};

TEST_P(VeccSweep, CleanReadsStayOnTheFastPath)
{
    VeccMemory mem(geom(), 64);
    Rng rng(3);
    std::vector<std::vector<std::uint8_t>> golden;
    for (std::uint64_t l = 0; l < 64; ++l) {
        golden.push_back(randomData(rng, mem.lineBytes()));
        mem.write(l, golden.back());
    }
    for (std::uint64_t l = 0; l < 64; ++l) {
        auto r = mem.read(l);
        EXPECT_EQ(r.status, DecodeStatus::Clean);
        EXPECT_FALSE(r.tier2Fetched);
        EXPECT_EQ(r.deviceAccesses, geom().devices)
            << "error-free reads touch only the inline rank";
        EXPECT_EQ(r.data, golden[l]);
    }
    EXPECT_EQ(mem.stats().tier2Fetches, 0u);
}

TEST_P(VeccSweep, DeviceKillIsCorrectedViaTier2)
{
    VeccMemory mem(geom(), 64);
    Rng rng(4);
    std::vector<std::vector<std::uint8_t>> golden;
    for (std::uint64_t l = 0; l < 64; ++l) {
        golden.push_back(randomData(rng, mem.lineBytes()));
        mem.write(l, golden.back());
    }
    mem.killDevice(geom().devices / 2);
    for (std::uint64_t l = 0; l < 64; ++l) {
        auto r = mem.read(l);
        EXPECT_EQ(r.status, DecodeStatus::Corrected) << l;
        EXPECT_TRUE(r.tier2Fetched);
        EXPECT_EQ(r.deviceAccesses, 2 * geom().devices)
            << "the error path costs a second rank access";
        EXPECT_EQ(r.data, golden[l]) << l;
    }
}

TEST_P(VeccSweep, WritebackAmplificationFollowsT2HitRate)
{
    // t2HitRate 0 -> every write pays the extra tier-2 write;
    // t2HitRate 1 -> none do.
    for (double hit : {0.0, 1.0}) {
        VeccMemory mem(geom(), 32, hit, 7);
        Rng rng(5);
        for (std::uint64_t l = 0; l < 32; ++l)
            mem.write(l, randomData(rng, mem.lineBytes()));
        if (hit == 0.0)
            EXPECT_EQ(mem.stats().tier2Writebacks, 32u);
        else
            EXPECT_EQ(mem.stats().tier2Writebacks, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, VeccSweep,
                         ::testing::Values(false, true));

TEST(Vecc, TwoDeadDevicesDetectedBy18Device)
{
    // 2 inline + 2 tier-2 checks, correction capped at 2: two dead
    // devices are right at the limit and correctable; three are not.
    VeccMemory mem(VeccGeometry::vecc18(), 16);
    Rng rng(6);
    std::vector<std::vector<std::uint8_t>> golden;
    for (std::uint64_t l = 0; l < 16; ++l) {
        golden.push_back(randomData(rng, mem.lineBytes()));
        mem.write(l, golden.back());
    }
    mem.killDevice(1);
    mem.killDevice(9);
    for (std::uint64_t l = 0; l < 16; ++l) {
        auto r = mem.read(l);
        EXPECT_EQ(r.status, DecodeStatus::Corrected);
        EXPECT_EQ(r.data, golden[l]);
    }
    mem.killDevice(14);
    int dues = 0;
    for (std::uint64_t l = 0; l < 16; ++l) {
        auto r = mem.read(l);
        if (r.status == DecodeStatus::Detected)
            ++dues;
        else
            EXPECT_NE(r.data, golden[l])
                << "a silent decode of 3 kills cannot be right";
    }
    EXPECT_GT(dues, 8) << "three dead devices mostly flag DUEs";
}

TEST_P(VeccSweep, ReadBatchMatchesPerLineReads)
{
    // The batched tier-2 API must be indistinguishable from per-line
    // reads: same data, statuses, access accounting and stats -- with
    // and without a dead device forcing the tier-2 pass.
    for (bool kill : {false, true}) {
        VeccMemory a(geom(), 48, 0.5, 21);
        VeccMemory b(geom(), 48, 0.5, 21);
        Rng rng(9);
        for (std::uint64_t l = 0; l < 48; ++l) {
            auto data = randomData(rng, a.lineBytes());
            a.write(l, data);
            b.write(l, data);
        }
        if (kill) {
            a.killDevice(1);
            b.killDevice(1);
        }

        std::vector<std::uint64_t> lines;
        for (std::uint64_t l = 0; l < 48; ++l)
            lines.push_back((l * 7) % 48); // shuffled, with reuse
        std::vector<VeccReadResult> batch;
        a.readBatch(lines, batch);

        ASSERT_EQ(batch.size(), lines.size());
        for (std::size_t i = 0; i < lines.size(); ++i) {
            VeccReadResult single = b.read(lines[i]);
            EXPECT_EQ(batch[i].status, single.status) << i;
            EXPECT_EQ(batch[i].tier2Fetched, single.tier2Fetched);
            EXPECT_EQ(batch[i].deviceAccesses, single.deviceAccesses);
            EXPECT_EQ(batch[i].data, single.data) << i;
        }
        EXPECT_EQ(a.stats().reads, b.stats().reads);
        EXPECT_EQ(a.stats().deviceAccesses, b.stats().deviceAccesses);
        EXPECT_EQ(a.stats().tier2Fetches, b.stats().tier2Fetches);
        EXPECT_EQ(a.stats().corrected, b.stats().corrected);
        EXPECT_EQ(a.stats().dues, b.stats().dues);
    }
}

TEST(Vecc, NineDeviceGeometryHalvesTheFaultFreeCost)
{
    VeccMemory v18(VeccGeometry::vecc18(), 32, 1.0);
    VeccMemory v9(VeccGeometry::vecc9(), 32, 1.0);
    Rng rng(8);
    for (std::uint64_t l = 0; l < 32; ++l) {
        v18.write(l, randomData(rng, v18.lineBytes()));
        v9.write(l, randomData(rng, v9.lineBytes()));
    }
    auto base18 = v18.stats().deviceAccesses;
    auto base9 = v9.stats().deviceAccesses;
    for (std::uint64_t l = 0; l < 32; ++l) {
        v18.read(l);
        v9.read(l);
    }
    auto reads18 = v18.stats().deviceAccesses - base18;
    auto reads9 = v9.stats().deviceAccesses - base9;
    EXPECT_EQ(reads18, 32u * 18u);
    EXPECT_EQ(reads9, 32u * 9u)
        << "the Chapter 5.2 ARCC+VECC relaxed mode halves the "
           "devices per access";
}

} // namespace
} // namespace arcc
