/**
 * @file
 * Property tests for the trace layer (ctest label `property`):
 *
 *  - seed-logged random access streams survive the
 *    text -> binary -> text round trip bit-identically, and the
 *    binary -> accesses -> binary trip byte-identically;
 *  - capture / replay closure: a TraceWriter-captured synthetic
 *    stream replayed through TraceReplay / TraceStream reproduces the
 *    *exact* SimResult of the live generator run, bit for bit.
 *
 * Every randomised case logs its seed via SCOPED_TRACE so a failure
 * is reproducible from the test output alone.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/rng.hh"
#include "cpu/system_sim.hh"
#include "cpu/trace.hh"

namespace arcc
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("arcc_test_property_trace." + tag + "." +
             std::to_string(::getpid())))
        .string();
}

/** RAII deleter for a set of temp files (safe to grow: cleanup only
 *  happens when the whole set goes out of scope). */
struct TempFiles
{
    ~TempFiles()
    {
        for (const std::string &path : paths)
            std::remove(path.c_str());
    }
    std::vector<std::string> paths;
};

/** A random access stream stressing the full field ranges. */
std::vector<CoreWorkload::Access>
randomAccesses(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<CoreWorkload::Access> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
        CoreWorkload::Access a;
        // Mix small line-aligned addresses with full-width ones.
        a.addr = rng.chance(0.5)
                     ? rng.below(1ULL << 32) * kLineBytes
                     : rng.below(~0ULL);
        a.isWrite = rng.chance(0.4);
        a.instrGap = rng.chance(0.9) ? rng.below(10000)
                                     : rng.below((1ULL << 63) - 1);
        out.push_back(a);
    }
    return out;
}

TEST(TraceRoundTripProperty, TextBinaryTextIsBitIdentical)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 987654321ULL, 2026ULL}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        auto accesses = randomAccesses(seed, 2000);

        std::ostringstream text1;
        TraceWriter writer(text1);
        for (const auto &a : accesses)
            writer.append(a);

        std::istringstream text_in(text1.str());
        std::ostringstream bin1;
        ASSERT_EQ(textTraceToBinary(text_in, bin1), 2000u);

        std::istringstream bin_in(bin1.str());
        std::ostringstream text2;
        ASSERT_EQ(binaryTraceToText(bin_in, text2), 2000u);

        // Canonical text in, canonical text out: bit-identical.
        EXPECT_EQ(text1.str(), text2.str());

        // And the binary itself round-trips byte-identically through
        // a decode -> re-encode pass.
        std::istringstream text2_in(text2.str());
        std::ostringstream bin2;
        ASSERT_EQ(textTraceToBinary(text2_in, bin2), 2000u);
        EXPECT_EQ(bin1.str(), bin2.str());
    }
}

TEST(TraceRoundTripProperty, ParsedFieldsMatchTheOriginals)
{
    for (std::uint64_t seed : {7ULL, 5150ULL}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        auto accesses = randomAccesses(seed, 1000);
        std::ostringstream text;
        TraceWriter writer(text);
        for (const auto &a : accesses)
            writer.append(a);
        std::istringstream in(text.str());
        auto parsed = parseTrace(in);
        ASSERT_EQ(parsed.size(), accesses.size());
        for (std::size_t i = 0; i < parsed.size(); ++i) {
            EXPECT_EQ(parsed[i].addr, accesses[i].addr) << i;
            EXPECT_EQ(parsed[i].isWrite, accesses[i].isWrite) << i;
            EXPECT_EQ(parsed[i].instrGap, accesses[i].instrGap) << i;
        }
    }
}

/** Exact (bit-identical) equality of two whole-run outcomes, modulo
 *  the reported stream names (a trace core is named after its file). */
void
expectSameNumbers(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.ipcSum, b.ipcSum);
    EXPECT_EQ(a.elapsedNs, b.elapsedNs);
    EXPECT_EQ(a.avgPowerMw, b.avgPowerMw);
    EXPECT_EQ(a.power.dynamicNj, b.power.dynamicNj);
    EXPECT_EQ(a.power.backgroundNj, b.power.backgroundNj);
    EXPECT_EQ(a.power.refreshNj, b.power.refreshNj);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.llcStats.hits, b.llcStats.hits);
    EXPECT_EQ(a.llcStats.misses, b.llcStats.misses);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].ipc, b.cores[i].ipc) << i;
        EXPECT_EQ(a.cores[i].instrs, b.cores[i].instrs) << i;
        EXPECT_EQ(a.cores[i].llcAccesses, b.cores[i].llcAccesses)
            << i;
        EXPECT_EQ(a.cores[i].llcMisses, b.cores[i].llcMisses) << i;
    }
}

TEST(CaptureReplayClosureProperty, CapturedStreamsReproduceTheLiveRun)
{
    // For several seeds: run the live generators, then capture the
    // exact access sequence the simulator consumed (the same do/while
    // the record phase runs) into binary trace files and replay them.
    // The decoupled pipeline sees identical inputs, so the outcome
    // must be bit-identical -- the capture/replay closure.
    for (std::uint64_t seed : {77ULL, 20130223ULL}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        SystemConfig cfg;
        cfg.mem = arccConfig();
        cfg.instrsPerCore = 40'000;
        cfg.seed = seed;
        const WorkloadMix &mix = table73Mixes()[5];
        auto oracle = PageUpgradeOracle::forScenario(
            PageUpgradeOracle::Scenario::Device, cfg.mem);

        SimResult live = simulateMix(mix, cfg, oracle);

        AddressMap map(cfg.mem, cfg.mapPolicy);
        TempFiles files;
        std::vector<StreamSpec> streams;
        for (int i = 0; i < cfg.cores; ++i) {
            files.paths.push_back(
                tempPath("closure." + std::to_string(i) + ".bin"));
            captureSyntheticTrace(mix.benchmarks[i], map.capacity(),
                                  i, mixCoreSeed(cfg.seed, i),
                                  cfg.instrsPerCore,
                                  files.paths.back());
        }
        for (int i = 0; i < cfg.cores; ++i)
            streams.push_back(traceStreamSpec(
                files.paths[i],
                benchmarkProfile(mix.benchmarks[i]).baseIpc,
                /*chunkRecords=*/256));

        SimResult replayed =
            simulateStreams(std::move(streams), cfg, oracle);
        expectSameNumbers(replayed, live);
        // The capture covers the budget exactly, so each trace wraps
        // exactly once (the lap closes on its final record).
        for (const CoreResult &core : replayed.cores)
            EXPECT_EQ(core.traceLaps, 1u);
    }
}

} // namespace
} // namespace arcc
