/**
 * @file
 * Checkpoint-log fault-injection suite: round trips, torn-tail
 * truncation at every byte of the final record, bit flips in payload
 * / CRC / length / header bytes, and the identity checks.  The
 * invariant under test: recovery lands on the last sealed epoch or
 * fails fatally -- it never hands back state derived from a corrupt
 * record.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>
#include <unistd.h>

#include "campaign/checkpoint.hh"
#include "common/crc32c.hh"
#include "common/rng.hh"

namespace arcc
{
namespace
{

/** Seed for the randomized corruption choices; logged so a failure
 *  reproduces. */
constexpr std::uint64_t kFaultSeed = 20130223;

std::string
tempPath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("arcc_test_ckpt." + tag + "." +
             std::to_string(::getpid())))
        .string();
}

struct TempFile
{
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

const CheckpointIdentity kIdentity{0x1234abcd5678ef00ULL, 42};

/** Deterministic epoch payload: distinct per epoch, multi-byte. */
std::vector<std::uint8_t>
epochPayload(int epoch)
{
    std::vector<std::uint8_t> p(24 + epoch);
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = static_cast<std::uint8_t>(epoch * 131 + i * 7);
    return p;
}

/** Write a fresh log with `epochs` sealed records. */
void
buildLog(const std::string &path, int epochs)
{
    CheckpointWriter writer = CheckpointWriter::create(path, kIdentity);
    for (int e = 0; e < epochs; ++e) {
        auto p = epochPayload(e);
        writer.append(p);
    }
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(out.good());
}

/** Offset one past frame `n` (0 = header) in a well-formed log. */
std::size_t
frameEnd(const std::vector<std::uint8_t> &bytes, int n)
{
    std::size_t off = 0;
    for (int i = 0; i <= n; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(bytes[off]) |
            (static_cast<std::uint32_t>(bytes[off + 1]) << 8) |
            (static_cast<std::uint32_t>(bytes[off + 2]) << 16) |
            (static_cast<std::uint32_t>(bytes[off + 3]) << 24);
        off += kFrameOverheadBytes + len;
    }
    return off;
}

TEST(Checkpoint, CreateAppendRecoverRoundTrip)
{
    TempFile f(tempPath("roundtrip"));
    buildLog(f.path, 3);

    std::vector<std::vector<std::uint8_t>> seen;
    CheckpointRecovery rec = recoverCheckpoint(
        f.path, kIdentity,
        [&](std::span<const std::uint8_t> payload) {
            seen.emplace_back(payload.begin(), payload.end());
        });

    EXPECT_FALSE(rec.fresh);
    EXPECT_EQ(rec.records, 3u);
    EXPECT_EQ(rec.tornBytes, 0u);
    EXPECT_EQ(rec.identity.configHash, kIdentity.configHash);
    EXPECT_EQ(rec.identity.seed, kIdentity.seed);
    ASSERT_EQ(seen.size(), 3u);
    for (int e = 0; e < 3; ++e)
        EXPECT_EQ(seen[e], epochPayload(e)) << e;
    EXPECT_EQ(rec.lastPayload, epochPayload(2));
    EXPECT_EQ(rec.validBytes, readFile(f.path).size());
}

TEST(Checkpoint, MissingFileIsFresh)
{
    CheckpointRecovery rec =
        recoverCheckpoint(tempPath("never-created"), kIdentity);
    EXPECT_TRUE(rec.fresh);
    EXPECT_EQ(rec.records, 0u);
}

TEST(Checkpoint, TornHeaderStubStartsFresh)
{
    // SIGKILL between create() and the header seal leaves a stub
    // shorter than one header frame: nothing sealed was lost, so the
    // campaign starts over instead of dying.
    TempFile f(tempPath("stub"));
    buildLog(f.path, 1);
    auto bytes = readFile(f.path);
    const std::size_t header_frame =
        kFrameOverheadBytes + kHeaderPayloadBytes;
    for (std::size_t cut : {std::size_t{1}, header_frame / 2,
                            header_frame - 1}) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        writeFile(f.path, {bytes.begin(), bytes.begin() + cut});
        CheckpointRecovery rec = recoverCheckpoint(f.path, kIdentity);
        EXPECT_TRUE(rec.fresh);
        // resume() on a fresh recovery rewrites a clean log.
        CheckpointWriter writer =
            CheckpointWriter::resume(f.path, rec);
        auto p = epochPayload(0);
        writer.append(p);
    }
    CheckpointRecovery rec = recoverCheckpoint(f.path, kIdentity);
    EXPECT_EQ(rec.records, 1u);
}

TEST(Checkpoint, TruncationAtEveryByteOfTheFinalRecordRecovers)
{
    // The torn-append property: cut the file anywhere in the final
    // record (including exactly at its start) and recovery must land
    // on the previous sealed epoch; resuming truncates the tail and
    // appending re-seals the lost epoch.
    TempFile f(tempPath("torn-sweep"));
    buildLog(f.path, 3);
    const auto whole = readFile(f.path);
    const std::size_t prefix = frameEnd(whole, 2); // header + 2 epochs
    ASSERT_LT(prefix, whole.size());

    for (std::size_t cut = prefix; cut < whole.size(); ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        writeFile(f.path, {whole.begin(), whole.begin() + cut});

        CheckpointRecovery rec = recoverCheckpoint(f.path, kIdentity);
        EXPECT_FALSE(rec.fresh);
        EXPECT_EQ(rec.records, 2u);
        EXPECT_EQ(rec.lastPayload, epochPayload(1));
        EXPECT_EQ(rec.validBytes, prefix);
        EXPECT_EQ(rec.tornBytes, cut - prefix);

        CheckpointWriter writer = CheckpointWriter::resume(f.path, rec);
        auto p = epochPayload(2);
        writer.append(p);
        EXPECT_EQ(readFile(f.path), whole); // byte-identical again.
    }
}

TEST(Checkpoint, BitFlipsInFinalPayloadOrCrcAreTornTail)
{
    // Random single-bit flips anywhere past the final record's length
    // word: the CRC catches them, and because the damage is at the
    // tail, recovery treats it as torn and lands on the prior epoch.
    TempFile f(tempPath("flip-tail"));
    buildLog(f.path, 3);
    const auto whole = readFile(f.path);
    const std::size_t prefix = frameEnd(whole, 2);

    Rng rng(kFaultSeed);
    SCOPED_TRACE("kFaultSeed=" + std::to_string(kFaultSeed));
    for (int round = 0; round < 64; ++round) {
        const std::size_t lo = prefix + 4; // skip the length word.
        const std::size_t byte = lo + static_cast<std::size_t>(
            rng.below(whole.size() - lo));
        const int bit = static_cast<int>(rng.below(8));
        SCOPED_TRACE("round=" + std::to_string(round) + " byte=" +
                     std::to_string(byte) + " bit=" +
                     std::to_string(bit));

        auto bytes = whole;
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        writeFile(f.path, bytes);

        CheckpointRecovery rec = recoverCheckpoint(f.path, kIdentity);
        EXPECT_EQ(rec.records, 2u);
        EXPECT_EQ(rec.lastPayload, epochPayload(1));
        EXPECT_EQ(rec.tornBytes, whole.size() - prefix);
    }
}

TEST(CheckpointDeathTest, FinalLengthWordCorruptionNeverResumesCorrupt)
{
    // Flipping bits of the final record's length word either grows
    // the frame past EOF (torn tail, recover to the prior epoch) or
    // shrinks it so sealed bytes follow an invalid frame (fatal).
    // Both outcomes are safe; silently resuming epoch 2 is not.
    TempFile f(tempPath("flip-len"));
    buildLog(f.path, 3);
    const auto whole = readFile(f.path);
    const std::size_t prefix = frameEnd(whole, 2);
    const std::uint32_t true_len =
        static_cast<std::uint32_t>(epochPayload(2).size());

    for (int bit = 0; bit < 32; ++bit) {
        SCOPED_TRACE("bit=" + std::to_string(bit));
        auto bytes = whole;
        bytes[prefix + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
        writeFile(f.path, bytes);

        const std::uint32_t flipped = true_len ^ (1u << bit);
        if (flipped < true_len) {
            EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                        ::testing::ExitedWithCode(1),
                        "refusing to resume from a corrupt "
                        "checkpoint");
        } else {
            CheckpointRecovery rec =
                recoverCheckpoint(f.path, kIdentity);
            EXPECT_EQ(rec.records, 2u);
            EXPECT_EQ(rec.lastPayload, epochPayload(1));
        }
    }
}

TEST(CheckpointDeathTest, MidFileCorruptionIsFatal)
{
    // A bad CRC with sealed data after it cannot be a torn append:
    // recovery must refuse rather than skip or truncate sealed
    // epochs.
    TempFile f(tempPath("flip-middle"));
    buildLog(f.path, 3);
    const auto whole = readFile(f.path);
    const std::size_t begin = frameEnd(whole, 1); // epoch-1 frame
    const std::size_t end = frameEnd(whole, 2);

    Rng rng(kFaultSeed);
    SCOPED_TRACE("kFaultSeed=" + std::to_string(kFaultSeed));
    for (int round = 0; round < 16; ++round) {
        // Skip the length word: shrinking/growing the middle frame is
        // covered by its own invalid-frame scan, flips past it hit
        // CRC or payload.
        const std::size_t byte = begin + 4 + static_cast<std::size_t>(
            rng.below(end - begin - 4));
        const int bit = static_cast<int>(rng.below(8));
        SCOPED_TRACE("round=" + std::to_string(round) + " byte=" +
                     std::to_string(byte) + " bit=" +
                     std::to_string(bit));
        auto bytes = whole;
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        writeFile(f.path, bytes);
        EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                    ::testing::ExitedWithCode(1),
                    "refusing to resume from a corrupt checkpoint");
    }
}

TEST(CheckpointDeathTest, HeaderCorruptionIsFatal)
{
    TempFile f(tempPath("bad-header"));

    // A flipped magic byte breaks the header frame's CRC; with a
    // sealed epoch after it this cannot be a torn append, so
    // recovery refuses the whole file.
    buildLog(f.path, 1);
    auto bytes = readFile(f.path);
    bytes[kFrameOverheadBytes] ^= 0xff; // first magic byte
    writeFile(f.path, bytes);
    EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                ::testing::ExitedWithCode(1), "corrupt");

    // A header-only file with a broken header is equally dead: the
    // invalid frame reaches EOF, but there is no sealed header to
    // fall back on, and a file this large is not a creation stub.
    buildLog(f.path, 0);
    bytes = readFile(f.path);
    bytes[kFrameOverheadBytes] ^= 0xff;
    writeFile(f.path, bytes);
    EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                ::testing::ExitedWithCode(1), "corrupt header");

    // A valid log for a different campaign: fatal, never overwritten.
    buildLog(f.path, 2);
    CheckpointIdentity other = kIdentity;
    other.configHash ^= 1;
    EXPECT_EXIT(recoverCheckpoint(f.path, other),
                ::testing::ExitedWithCode(1), "different campaign");
    other = kIdentity;
    other.seed ^= 1;
    EXPECT_EXIT(recoverCheckpoint(f.path, other),
                ::testing::ExitedWithCode(1), "different campaign");
}

TEST(CheckpointDeathTest, OversizedAppendIsFatal)
{
    TempFile f(tempPath("oversize"));
    EXPECT_EXIT(
        {
            CheckpointWriter w =
                CheckpointWriter::create(f.path, kIdentity);
            std::vector<std::uint8_t> huge((64u << 20) + 1);
            w.append(huge);
        },
        ::testing::ExitedWithCode(1), "format ceiling");
}

// --- the v2 worker stamp and version gates -----------------------------

/** Byte offset of a header-payload field within the file (the header
 *  frame's payload starts after the length + CRC words). */
constexpr std::size_t kVersionOff = kFrameOverheadBytes + 8;
constexpr std::size_t kWorkerIdOff = kFrameOverheadBytes + 28;

/** Patch `bytes[off..]` in the header payload and re-seal the header
 *  CRC, so the damage models a buggy writer rather than line noise. */
void
patchHeader(std::vector<std::uint8_t> &bytes, std::size_t off,
            std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        bytes[off + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
    const std::uint32_t len =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    const std::uint32_t crc = crc32c(
        {bytes.data() + kFrameOverheadBytes, len});
    for (int i = 0; i < 4; ++i)
        bytes[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
}

/** A stamped multi-worker identity (worker 1 of 4, trials
 *  [512, 1024)). */
CheckpointIdentity
stampedIdentity()
{
    CheckpointIdentity id = kIdentity;
    id.workerId = 1;
    id.workerCount = 4;
    id.beginTrial = 512;
    id.endTrial = 1024;
    return id;
}

/** Hand-craft a sealed v1 (pre-stamp) log: header + `epochs`
 *  records, exactly as the pre-scale-out writer laid them out. */
void
buildV1Log(const std::string &path, int epochs)
{
    std::vector<std::uint8_t> bytes;
    auto seal = [&](const std::vector<std::uint8_t> &payload) {
        const auto len = static_cast<std::uint32_t>(payload.size());
        const std::uint32_t crc =
            crc32c({payload.data(), payload.size()});
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
        bytes.insert(bytes.end(), payload.begin(), payload.end());
    };

    std::vector<std::uint8_t> header;
    header.insert(header.end(), std::begin(kCheckpointMagic),
                  std::end(kCheckpointMagic));
    auto put32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto put64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put32(1); // format version
    put64(kIdentity.configHash);
    put64(kIdentity.seed);
    ASSERT_EQ(header.size(), kHeaderPayloadBytesV1);
    seal(header);
    for (int e = 0; e < epochs; ++e)
        seal(epochPayload(e));
    writeFile(path, bytes);
}

TEST(Checkpoint, WorkerStampRoundTrips)
{
    TempFile f(tempPath("stamp"));
    const CheckpointIdentity stamped = stampedIdentity();
    {
        CheckpointWriter w =
            CheckpointWriter::create(f.path, stamped);
        auto p = epochPayload(0);
        w.append(p);
    }
    CheckpointRecovery rec = recoverCheckpoint(f.path, stamped);
    EXPECT_FALSE(rec.fresh);
    EXPECT_EQ(rec.records, 1u);
    EXPECT_EQ(rec.version, kCheckpointVersion);
    EXPECT_EQ(rec.identity.workerId, 1u);
    EXPECT_EQ(rec.identity.workerCount, 4u);
    EXPECT_EQ(rec.identity.beginTrial, 512u);
    EXPECT_EQ(rec.identity.endTrial, 1024u);
}

TEST(Checkpoint, V1LogReadsAsTheWholeRangeSingleWorker)
{
    // A pre-stamp log keeps working after the version bump -- but
    // only as worker 0 of 1 over the whole range, the only thing a
    // v1 writer could have meant.
    TempFile f(tempPath("v1"));
    buildV1Log(f.path, 2);
    CheckpointIdentity expected = kIdentity; // defaults: 0 of 1
    expected.endTrial = 2048;
    CheckpointRecovery rec = recoverCheckpoint(f.path, expected);
    EXPECT_FALSE(rec.fresh);
    EXPECT_EQ(rec.records, 2u);
    EXPECT_EQ(rec.version, 1u);
    // The identity adopts the expected stamp (the file carries none).
    EXPECT_EQ(rec.identity.endTrial, 2048u);
    EXPECT_EQ(rec.lastPayload, epochPayload(1));
}

TEST(CheckpointDeathTest, V1LogUnderAMultiWorkerExpectationIsFatal)
{
    TempFile f(tempPath("v1-multi"));
    buildV1Log(f.path, 1);
    EXPECT_EXIT(recoverCheckpoint(f.path, stampedIdentity()),
                ::testing::ExitedWithCode(1),
                "whole-range single worker");
}

TEST(CheckpointDeathTest, SwappedWorkerLogsAreFatal)
{
    // Worker 1's log offered as worker 2's: same campaign, same
    // fleet, wrong slice -- the classic operator mistake the stamp
    // exists to catch.
    TempFile f(tempPath("swapped"));
    {
        CheckpointWriter w =
            CheckpointWriter::create(f.path, stampedIdentity());
        auto p = epochPayload(0);
        w.append(p);
    }
    CheckpointIdentity other = stampedIdentity();
    other.workerId = 2;
    other.beginTrial = 1024;
    other.endTrial = 1536;
    EXPECT_EXIT(recoverCheckpoint(f.path, other),
                ::testing::ExitedWithCode(1),
                "worker stamp mismatch");

    // A different fleet size over the same slice is equally fatal.
    other = stampedIdentity();
    other.workerCount = 8;
    EXPECT_EXIT(recoverCheckpoint(f.path, other),
                ::testing::ExitedWithCode(1),
                "worker stamp mismatch");
}

TEST(CheckpointDeathTest, CorruptedStampWithValidCrcIsFatal)
{
    // Rewrite the worker-id field and re-seal the CRC: framing is
    // pristine, the stamp lies.  Recovery must still refuse -- the
    // identity check is what stands between a renamed/doctored log
    // and a silently wrong merge.
    TempFile f(tempPath("stamp-forge"));
    {
        CheckpointWriter w =
            CheckpointWriter::create(f.path, stampedIdentity());
        auto p = epochPayload(0);
        w.append(p);
    }
    auto bytes = readFile(f.path);
    patchHeader(bytes, kWorkerIdOff, 3); // claims worker 3, range of 1
    writeFile(f.path, bytes);
    EXPECT_EXIT(recoverCheckpoint(f.path, stampedIdentity()),
                ::testing::ExitedWithCode(1),
                "worker stamp mismatch");
}

TEST(CheckpointDeathTest, VersionNewerThanBinaryIsFatal)
{
    // Regression: a log written by a future format version must fail
    // with the explicit "newer than binary" diagnostic, not a generic
    // identity mismatch (and never be truncated or overwritten).
    TempFile f(tempPath("v3"));
    buildLog(f.path, 1);
    auto bytes = readFile(f.path);
    patchHeader(bytes, kVersionOff, kCheckpointVersion + 1);
    writeFile(f.path, bytes);
    EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                ::testing::ExitedWithCode(1),
                "log version newer than binary");
}

TEST(CheckpointDeathTest, VersionOlderThanSupportedIsFatal)
{
    TempFile f(tempPath("v0"));
    buildLog(f.path, 1);
    auto bytes = readFile(f.path);
    patchHeader(bytes, kVersionOff, 0);
    writeFile(f.path, bytes);
    EXPECT_EXIT(recoverCheckpoint(f.path, kIdentity),
                ::testing::ExitedWithCode(1),
                "oldest supported version");
}

} // namespace
} // namespace arcc
