/**
 * @file
 * LLC tests: both ARCC designs of Section 4.2.3.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/llc.hh"
#include "common/rng.hh"

namespace arcc
{
namespace
{

CacheConfig
smallCache()
{
    CacheConfig c;
    c.sizeBytes = 64 * kKiB; // 64 sets x 16 ways x 64B.
    c.assoc = 16;
    return c;
}

// --- shared behaviour across both designs ------------------------------

class LlcBothDesigns : public ::testing::TestWithParam<bool>
{
  protected:
    std::unique_ptr<BaseLlc>
    make(const CacheConfig &c)
    {
        if (GetParam())
            return std::make_unique<SectoredLlc>(c);
        return std::make_unique<PairedTagLlc>(c);
    }
};

TEST_P(LlcBothDesigns, MissThenHit)
{
    auto llc = make(smallCache());
    EXPECT_FALSE(llc->access(0x1000, false, false).hit);
    EXPECT_TRUE(llc->access(0x1000, false, false).hit);
    EXPECT_TRUE(llc->access(0x1020, false, false).hit) // same line.
        << "sub-line offsets must hit";
    EXPECT_EQ(llc->stats().hits, 2u);
    EXPECT_EQ(llc->stats().misses, 1u);
}

TEST_P(LlcBothDesigns, UpgradedFillBringsTheSibling)
{
    auto llc = make(smallCache());
    EXPECT_FALSE(llc->access(0x2000, false, true).hit);
    // The 128B fetch brought the second sub-line: this is the
    // prefetch effect behind Figure 7.3's improvements.
    EXPECT_TRUE(llc->access(0x2040, false, true).hit);
}

TEST_P(LlcBothDesigns, DirtyUpgradedLineWritesBackPaired)
{
    CacheConfig cfg = smallCache();
    auto llc = make(cfg);
    llc->access(0x3000, true, true); // dirty upgraded fill.

    // Evict it by flooding its set(s) with conflicting lines.
    std::uint64_t stride = cfg.sizeBytes; // same set index, new tags.
    bool saw_paired_wb = false;
    for (int i = 1; i <= 40; ++i) {
        LlcOutcome out =
            llc->access(0x3000 + i * stride, false, false);
        for (const Writeback &wb : out.writebacks) {
            if (wb.paired) {
                saw_paired_wb = true;
                EXPECT_EQ(wb.addr % kUpgradedLineBytes, 0u)
                    << "paired writeback must be 128B-aligned";
            }
        }
    }
    EXPECT_TRUE(saw_paired_wb)
        << "both sub-lines must leave memory-ward together";
}

TEST_P(LlcBothDesigns, CleanEvictionsProduceNoWriteback)
{
    CacheConfig cfg = smallCache();
    auto llc = make(cfg);
    Rng rng(1);
    std::uint64_t wbs = 0;
    for (int i = 0; i < 4000; ++i) {
        auto out = llc->access(rng.below(1 << 24) * kLineBytes, false,
                               false);
        wbs += out.writebacks.size();
    }
    EXPECT_EQ(wbs, 0u);
}

TEST_P(LlcBothDesigns, FlushEmptiesTheCache)
{
    auto llc = make(smallCache());
    llc->access(0x4000, false, false);
    llc->flush();
    EXPECT_FALSE(llc->access(0x4000, false, false).hit);
}

INSTANTIATE_TEST_SUITE_P(Designs, LlcBothDesigns,
                         ::testing::Values(false, true));

// --- paired-tag specifics ----------------------------------------------

TEST(PairedTagLlc, LruEvictsTheColdestLine)
{
    CacheConfig cfg = smallCache();
    PairedTagLlc llc(cfg);
    std::uint64_t stride = cfg.sizeBytes; // all map to set 0.
    // Fill all 16 ways.
    for (int w = 0; w < 16; ++w)
        llc.access(w * stride, false, false);
    // Touch every way except way 3.
    for (int w = 0; w < 16; ++w)
        if (w != 3)
            llc.access(w * stride, false, false);
    // The next fill must evict way 3's line.
    llc.access(16 * stride, false, false);
    // Probe the survivors first (probing a miss would fill and evict
    // somebody else), the victim last.
    for (int w = 0; w < 16; ++w) {
        if (w != 3) {
            EXPECT_TRUE(llc.access(w * stride, false, false).hit)
                << "way " << w;
        }
    }
    EXPECT_TRUE(llc.access(16 * stride, false, false).hit);
    EXPECT_FALSE(llc.access(3 * stride, false, false).hit);
}

TEST(PairedTagLlc, SiblingRecencyIsCoupled)
{
    // Touching one sub-line must refresh the other's recency, so a
    // rarely-used sibling is not evicted from under an upgraded line
    // (Section 4.2.3).
    CacheConfig cfg = smallCache();
    PairedTagLlc llc(cfg);
    std::uint64_t stride = cfg.sizeBytes;

    llc.access(0x0, false, true); // upgraded pair in sets 0 and 1.
    // Fill the rest of set 1 (the sibling's set) with singles.
    for (int w = 1; w < 16; ++w)
        llc.access(0x40 + w * stride, false, false);
    // Keep touching ONLY the first sub-line (set 0) many times; the
    // sibling in set 1 must stay hot by recency coupling.
    for (int i = 0; i < 8; ++i)
        llc.access(0x0, false, false);
    // Now one more fill into set 1 evicts some line: it must not be
    // the sibling.
    llc.access(0x40 + 16 * stride, false, false);
    EXPECT_TRUE(llc.access(0x40, false, true).hit)
        << "coupled recency should have protected the sibling";
}

TEST(PairedTagLlc, EvictingOneSubLineDragsOutTheSibling)
{
    CacheConfig cfg = smallCache();
    PairedTagLlc llc(cfg);
    std::uint64_t stride = cfg.sizeBytes;

    llc.access(0x0, false, true); // pair in sets 0 and 1.
    // Force eviction of the set-0 sub-line by filling set 0 and never
    // touching the pair again.
    for (int w = 1; w <= 16; ++w)
        llc.access(w * stride, false, false);
    // The sibling in set 1 must have been dragged out with its mate
    // (probe the sibling first -- probing 0x0 would refill the pair).
    EXPECT_FALSE(llc.access(0x40, false, true).hit);
}

TEST(PairedTagLlc, ReplacementSignalsSecondTagAccess)
{
    CacheConfig cfg = smallCache();
    PairedTagLlc llc(cfg);
    std::uint64_t stride = cfg.sizeBytes;
    for (int w = 0; w < 16; ++w)
        EXPECT_FALSE(llc.access(w * stride, false, false).replaced);
    EXPECT_TRUE(llc.access(16 * stride, false, false).replaced);
}

// --- sectored specifics --------------------------------------------------

TEST(SectoredLlc, HalvesEffectiveCapacityForSparseAccess)
{
    // With 128B frames and single-sub-line fills, a sparse working set
    // of N distinct 64B lines occupies N frames: the sectored design
    // thrashes at half the distinct-line capacity of the paired-tag
    // design.  This is the paper's argument for rejecting it.
    CacheConfig cfg = smallCache();
    PairedTagLlc paired(cfg);
    SectoredLlc sectored(cfg);

    // Working set: 600 random lines, one per 128B frame (no spatial
    // pairs).  That fits the 1024-line paired-tag design comfortably
    // but overflows the sectored design's 512 frames.
    Rng rng(2);
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < 600; ++i) {
        // One random 64B line per 128B frame; the random sub-line
        // offset spreads the lines over all of the paired design's
        // sets (a fixed offset would alias to the even sets only).
        lines.push_back(rng.below(1 << 20) * kUpgradedLineBytes +
                        rng.below(2) * kLineBytes);
    }
    for (int pass = 0; pass < 6; ++pass) {
        for (std::uint64_t addr : lines) {
            paired.access(addr, false, false);
            sectored.access(addr, false, false);
        }
    }
    EXPECT_GT(sectored.stats().missRate(),
              paired.stats().missRate() * 1.5);
}

TEST(SectoredLlc, SecondSubsectorFillsWithoutEviction)
{
    CacheConfig cfg = smallCache();
    SectoredLlc llc(cfg);
    EXPECT_FALSE(llc.access(0x0, false, false).hit);
    LlcOutcome out = llc.access(0x40, false, false);
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.replaced) << "same frame, no victim needed";
    EXPECT_TRUE(llc.access(0x0, false, false).hit);
    EXPECT_TRUE(llc.access(0x40, false, false).hit);
}


// --- structural invariants under random traffic --------------------------

class LlcInvariantSweep : public ::testing::TestWithParam<bool>
{
};

TEST_P(LlcInvariantSweep, HoldUnderRandomMixedTraffic)
{
    CacheConfig cfg = smallCache();
    std::unique_ptr<BaseLlc> llc;
    if (GetParam())
        llc = std::make_unique<SectoredLlc>(cfg);
    else
        llc = std::make_unique<PairedTagLlc>(cfg);

    Rng rng(99);
    // Pages alternate upgraded / relaxed deterministically by hash so
    // the upgraded flag is consistent per 128B pair.
    auto page_upgraded = [](std::uint64_t addr) {
        std::uint64_t z = (addr / kPageBytes) * 0x9e3779b97f4a7c15ULL;
        z ^= z >> 31;
        return (z & 1) != 0;
    };
    for (int i = 0; i < 30000; ++i) {
        std::uint64_t addr = rng.below(1 << 22) * kLineBytes;
        llc->access(addr, rng.chance(0.3), page_upgraded(addr));
        if (i % 512 == 0) {
            ASSERT_TRUE(llc->checkInvariants()) << "after access " << i;
        }
    }
    EXPECT_TRUE(llc->checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Designs, LlcInvariantSweep,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "sectored" : "pairedTag";
                         });

} // namespace
} // namespace arcc
