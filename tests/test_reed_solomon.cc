/**
 * @file
 * Reed-Solomon codec tests: round trips, correction capability,
 * guaranteed detection, erasures, and the SCCDCD decode semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"

namespace arcc
{
namespace
{

std::vector<std::uint8_t>
randomCodeword(const ReedSolomon &rs, Rng &rng)
{
    std::vector<std::uint8_t> w(rs.n());
    for (int i = 0; i < rs.k(); ++i)
        w[i] = static_cast<std::uint8_t>(rng.below(256));
    rs.encode(w);
    return w;
}

/** Inject `count` errors at distinct random positions. */
std::vector<int>
injectErrors(std::vector<std::uint8_t> &w, int count, Rng &rng)
{
    std::vector<int> pos;
    while (static_cast<int>(pos.size()) < count) {
        int p = static_cast<int>(rng.below(w.size()));
        if (std::find(pos.begin(), pos.end(), p) == pos.end()) {
            pos.push_back(p);
            w[p] ^= static_cast<std::uint8_t>(rng.range(1, 255));
        }
    }
    return pos;
}

// --- basic encoding properties ---------------------------------------

TEST(ReedSolomon, EncodedWordHasZeroSyndromes)
{
    Rng rng(1);
    for (auto [n, k] : {std::pair{18, 16}, {36, 32}, {72, 64},
                        {255, 223}, {10, 4}}) {
        ReedSolomon rs(n, k);
        for (int t = 0; t < 50; ++t) {
            auto w = randomCodeword(rs, rng);
            EXPECT_TRUE(rs.syndromesZero(w));
        }
    }
}

TEST(ReedSolomon, CleanDecodeLeavesDataIntact)
{
    Rng rng(2);
    ReedSolomon rs(18, 16);
    auto w = randomCodeword(rs, rng);
    auto orig = w;
    DecodeResult res = rs.decode(w);
    EXPECT_EQ(res.status, DecodeStatus::Clean);
    EXPECT_EQ(w, orig);
}

TEST(ReedSolomon, EncodingIsSystematic)
{
    Rng rng(3);
    ReedSolomon rs(36, 32);
    std::vector<std::uint8_t> w(36, 0);
    for (int i = 0; i < 32; ++i)
        w[i] = static_cast<std::uint8_t>(rng.below(256));
    auto data = std::vector<std::uint8_t>(w.begin(), w.begin() + 32);
    rs.encode(w);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), w.begin()));
}

TEST(ReedSolomon, AllZeroIsACodeword)
{
    ReedSolomon rs(18, 16);
    std::vector<std::uint8_t> w(18, 0);
    rs.encode(w);
    for (auto b : w)
        EXPECT_EQ(b, 0);
    EXPECT_TRUE(rs.syndromesZero(w));
}

// --- parameterized correction sweeps ---------------------------------

struct RsCase
{
    int n, k;
    int errors;   // injected
    int erasures; // injected (positions passed to the decoder)
    bool correctable;
};

class RsSweep : public ::testing::TestWithParam<RsCase>
{
};

TEST_P(RsSweep, ErrorsAndErasuresWithinCapabilityAlwaysCorrect)
{
    const RsCase &c = GetParam();
    ReedSolomon rs(c.n, c.k);
    Rng rng(100 + c.n * 1000 + c.errors * 10 + c.erasures);

    int trials = 200;
    for (int t = 0; t < trials; ++t) {
        auto w = randomCodeword(rs, rng);
        auto orig = w;

        // Erasure positions are distinct from error positions.
        std::vector<int> all_pos;
        while (static_cast<int>(all_pos.size()) <
               c.errors + c.erasures) {
            int p = static_cast<int>(rng.below(c.n));
            if (std::find(all_pos.begin(), all_pos.end(), p) ==
                all_pos.end())
                all_pos.push_back(p);
        }
        std::vector<int> erasure_pos(all_pos.begin(),
                                     all_pos.begin() + c.erasures);
        for (int i = 0; i < c.errors; ++i) {
            int p = all_pos[c.erasures + i];
            w[p] ^= static_cast<std::uint8_t>(rng.range(1, 255));
        }
        // Erased positions hold arbitrary garbage.
        for (int p : erasure_pos)
            w[p] = static_cast<std::uint8_t>(rng.below(256));

        DecodeResult res = rs.decode(w, -1, erasure_pos);
        if (c.correctable) {
            EXPECT_NE(res.status, DecodeStatus::Detected)
                << "n=" << c.n << " e=" << c.errors
                << " f=" << c.erasures;
            EXPECT_EQ(w, orig);
        } else {
            // Beyond capability: an error pattern of weight < d can
            // never masquerade as a clean codeword; the decoder must
            // either flag a DUE or (rare aliasing) miscorrect into a
            // *valid* codeword.
            EXPECT_NE(res.status, DecodeStatus::Clean);
            if (res.status == DecodeStatus::Corrected) {
                EXPECT_TRUE(rs.syndromesZero(w));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WithinCapability, RsSweep,
    ::testing::Values(
        // ARCC relaxed RS(18,16): r=2 -> 1 error or 2 erasures.
        RsCase{18, 16, 0, 0, true}, RsCase{18, 16, 1, 0, true},
        RsCase{18, 16, 0, 1, true}, RsCase{18, 16, 0, 2, true},
        // ARCC upgraded / SCCDCD RS(36,32): r=4.
        RsCase{36, 32, 1, 0, true}, RsCase{36, 32, 2, 0, true},
        RsCase{36, 32, 1, 2, true}, RsCase{36, 32, 0, 4, true},
        RsCase{36, 32, 1, 1, true}, RsCase{36, 32, 0, 3, true},
        // Level-2 RS(72,64): r=8.
        RsCase{72, 64, 4, 0, true}, RsCase{72, 64, 2, 4, true},
        RsCase{72, 64, 3, 2, true}, RsCase{72, 64, 0, 8, true},
        // A long code for good measure.
        RsCase{255, 223, 16, 0, true}, RsCase{255, 223, 10, 12, true}),
    [](const ::testing::TestParamInfo<RsCase> &info) {
        std::string name = "n";
        name += std::to_string(info.param.n);
        name += "k";
        name += std::to_string(info.param.k);
        name += "e";
        name += std::to_string(info.param.errors);
        name += "f";
        name += std::to_string(info.param.erasures);
        return name;
    });

INSTANTIATE_TEST_SUITE_P(
    BeyondCapability, RsSweep,
    ::testing::Values(RsCase{18, 16, 2, 0, false},
                      RsCase{36, 32, 3, 0, false},
                      RsCase{36, 32, 2, 1, false},
                      RsCase{72, 64, 5, 0, false}),
    [](const ::testing::TestParamInfo<RsCase> &info) {
        std::string name = "n";
        name += std::to_string(info.param.n);
        name += "k";
        name += std::to_string(info.param.k);
        name += "e";
        name += std::to_string(info.param.errors);
        name += "f";
        name += std::to_string(info.param.erasures);
        return name;
    });

// --- guaranteed-detection semantics -----------------------------------

TEST(ReedSolomon, SccdcdDecodeDetectsDoubleErrors)
{
    // SCCDCD: RS(36,32) decoded with maxCorrect = 1 must detect every
    // 2-symbol error (d = 5 guarantees it; weight-2 errors are at
    // distance >= 3 from every other codeword).
    ReedSolomon rs(36, 32);
    Rng rng(42);
    for (int t = 0; t < 500; ++t) {
        auto w = randomCodeword(rs, rng);
        injectErrors(w, 2, rng);
        DecodeResult res = rs.decode(w, /*maxCorrect=*/1);
        EXPECT_EQ(res.status, DecodeStatus::Detected);
    }
}

TEST(ReedSolomon, SccdcdDecodeDetectsTripleErrors)
{
    // With radius-1 decoding of a d=5 code, weight-3 errors are still
    // never inside another codeword's sphere: guaranteed detection.
    ReedSolomon rs(36, 32);
    Rng rng(43);
    for (int t = 0; t < 500; ++t) {
        auto w = randomCodeword(rs, rng);
        auto orig = w;
        injectErrors(w, 3, rng);
        DecodeResult res = rs.decode(w, 1);
        EXPECT_EQ(res.status, DecodeStatus::Detected);
        (void)orig;
    }
}

TEST(ReedSolomon, RelaxedDoubleErrorNeverSilentlyCorrupts)
{
    // RS(18,16) with maxCorrect=1 cannot *guarantee* detection of two
    // bad symbols (this is exactly the ARCC DED reduction of Chapter
    // 6.2).  It must either detect, or miscorrect by changing one
    // symbol -- count the miscorrection rate and sanity-check it is a
    // small minority, in line with n/q reasoning (~7% for n=18).
    ReedSolomon rs(18, 16);
    Rng rng(44);
    int miscorrect = 0, detected = 0;
    const int trials = 3000;
    for (int t = 0; t < trials; ++t) {
        auto w = randomCodeword(rs, rng);
        auto orig = w;
        injectErrors(w, 2, rng);
        DecodeResult res = rs.decode(w, 1);
        if (res.status == DecodeStatus::Detected)
            ++detected;
        else if (w != orig)
            ++miscorrect;
    }
    EXPECT_GT(detected, trials / 2);
    EXPECT_GT(miscorrect, 0);          // the hazard is real ...
    EXPECT_LT(miscorrect, trials / 5); // ... but a small minority.
}

TEST(ReedSolomon, MaxCorrectLimitsCorrectionNotDetection)
{
    ReedSolomon rs(36, 32);
    Rng rng(45);
    for (int t = 0; t < 200; ++t) {
        auto w = randomCodeword(rs, rng);
        auto orig = w;
        injectErrors(w, 2, rng);
        // Full capability corrects it ...
        auto w2 = w;
        EXPECT_EQ(rs.decode(w2, 2).status, DecodeStatus::Corrected);
        EXPECT_EQ(w2, orig);
        // ... capped capability flags it instead.
        EXPECT_EQ(rs.decode(w, 1).status, DecodeStatus::Detected);
    }
}

TEST(ReedSolomon, DetectedLeavesWordUnmodified)
{
    ReedSolomon rs(36, 32);
    Rng rng(46);
    for (int t = 0; t < 300; ++t) {
        auto w = randomCodeword(rs, rng);
        injectErrors(w, 3, rng);
        auto corrupted = w;
        DecodeResult res = rs.decode(w, 1);
        ASSERT_EQ(res.status, DecodeStatus::Detected);
        EXPECT_EQ(w, corrupted) << "DUE must not half-correct";
    }
}

TEST(ReedSolomon, ErasedDeviceWithSecondErrorCorrects)
{
    // Double chip sparing after remap: one erased (diagnosed) symbol
    // plus one new error, 2*1 + 1 <= 4.
    ReedSolomon rs(36, 32);
    Rng rng(47);
    for (int t = 0; t < 300; ++t) {
        auto w = randomCodeword(rs, rng);
        auto orig = w;
        int erased = static_cast<int>(rng.below(36));
        w[erased] = static_cast<std::uint8_t>(rng.below(256));
        int err;
        do {
            err = static_cast<int>(rng.below(36));
        } while (err == erased);
        w[err] ^= static_cast<std::uint8_t>(rng.range(1, 255));
        std::vector<int> erasures = {erased};
        DecodeResult res = rs.decode(w, -1, erasures);
        EXPECT_NE(res.status, DecodeStatus::Detected);
        EXPECT_EQ(w, orig);
    }
}

TEST(ReedSolomon, RejectsInvalidGeometry)
{
    EXPECT_EXIT(ReedSolomon(300, 200), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(ReedSolomon(10, 10), ::testing::ExitedWithCode(1),
                "out of range");
}

// --- polynomial helpers ----------------------------------------------

TEST(GfPoly, MulAndEvalAgree)
{
    Rng rng(48);
    for (int t = 0; t < 200; ++t) {
        std::vector<std::uint8_t> a(1 + rng.below(6));
        std::vector<std::uint8_t> b(1 + rng.below(6));
        for (auto &v : a)
            v = static_cast<std::uint8_t>(rng.below(256));
        for (auto &v : b)
            v = static_cast<std::uint8_t>(rng.below(256));
        auto ab = gfpoly::mul(a, b);
        auto x = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(gfpoly::eval(ab, x),
                  GF256::mul(gfpoly::eval(a, x), gfpoly::eval(b, x)));
    }
}

TEST(GfPoly, DerivativeDropsEvenTerms)
{
    // p(x) = 3 + 5x + 7x^2 + 9x^3 -> p'(x) = 5 + 9x^2 over GF(2^m).
    std::vector<std::uint8_t> p = {3, 5, 7, 9};
    auto d = gfpoly::derivative(p);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_EQ(d[0], 5);
    EXPECT_EQ(d[1], 0);
    EXPECT_EQ(d[2], 9);
}

TEST(GfPoly, DegreeIgnoresLeadingZeros)
{
    std::vector<std::uint8_t> p = {1, 2, 0, 0};
    EXPECT_EQ(gfpoly::degree(p), 1);
    std::vector<std::uint8_t> z = {0, 0};
    EXPECT_EQ(gfpoly::degree(z), -1);
}

} // namespace
} // namespace arcc
