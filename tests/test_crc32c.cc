/**
 * @file
 * CRC-32C tests: RFC 3720 known-answer vectors, streaming/one-shot
 * equivalence, and the error-detection properties the checkpoint
 * framing relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.hh"
#include "common/rng.hh"
#include "ecc/checksum.hh"

namespace arcc
{
namespace
{

std::uint32_t
crcOfString(const std::string &s)
{
    return crc32c({reinterpret_cast<const std::uint8_t *>(s.data()),
                   s.size()});
}

TEST(Crc32c, KnownAnswerVectors)
{
    // The iSCSI (RFC 3720) test vectors for CRC-32C.
    EXPECT_EQ(crcOfString("123456789"), 0xE3069283u);

    std::vector<std::uint8_t> zeros(32, 0x00);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);

    std::vector<std::uint8_t> ones(32, 0xFF);
    EXPECT_EQ(crc32c(ones), 0x62A8AB43u);

    std::vector<std::uint8_t> ascending(32);
    for (int i = 0; i < 32; ++i)
        ascending[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);

    std::vector<std::uint8_t> descending(32);
    for (int i = 0; i < 32; ++i)
        descending[i] = static_cast<std::uint8_t>(31 - i);
    EXPECT_EQ(crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32c, EmptyInput)
{
    EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32c, StreamingMatchesOneShotAtEverySplit)
{
    // Slice-by-4 takes a different code path depending on alignment
    // and tail length; any split of the input must give the same CRC.
    std::vector<std::uint8_t> data(67);
    Rng rng(99);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    const std::uint32_t whole = crc32c(data);

    for (std::size_t split = 0; split <= data.size(); ++split) {
        Crc32c crc;
        crc.update({data.data(), split});
        crc.update({data.data() + split, data.size() - split});
        EXPECT_EQ(crc.value(), whole) << "split=" << split;
    }
}

TEST(Crc32c, ResetStartsOver)
{
    Crc32c crc;
    crc.update({reinterpret_cast<const std::uint8_t *>("junk"), 4});
    crc.reset();
    crc.update({reinterpret_cast<const std::uint8_t *>("123456789"),
                9});
    EXPECT_EQ(crc.value(), 0xE3069283u);
}

TEST(Crc32c, EverySingleBitFlipChangesTheCrc)
{
    // The property the checkpoint frames lean on: no single-bit
    // corruption of a payload is silent.
    std::vector<std::uint8_t> data(48);
    Rng rng(7);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    const std::uint32_t clean = crc32c(data);
    for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(crc32c(data), clean) << "bit=" << bit;
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

TEST(Crc32c, DistinctFromInternetChecksum)
{
    // The trace/UDP-style ones-complement checksum stays what it was;
    // the two algorithms must not be conflated by a refactor.
    const std::string msg = "123456789";
    const std::uint16_t ones = OnesComplement16::compute(
        {reinterpret_cast<const std::uint8_t *>(msg.data()),
         msg.size()});
    EXPECT_NE(static_cast<std::uint32_t>(ones), crcOfString(msg));
}

} // namespace
} // namespace arcc
