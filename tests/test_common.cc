/**
 * @file
 * Tests for the common substrate: RNG distributions, statistics,
 * table rendering, unit conversions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace arcc
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        auto x = a.next();
        EXPECT_EQ(x, b.next());
        if (x != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(1);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(2);
    Histogram h(0.0, 1.0, 10);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        h.add(rng.uniform());
    for (std::size_t b = 0; b < h.size(); ++b)
        EXPECT_NEAR(h.fraction(b), 0.1, 0.01) << "bin " << b;
}

TEST(Rng, ExponentialHasTheRightMean)
{
    Rng rng(3);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.exponential(0.25));
    EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Rng, PoissonMeanAndSmallMeanBehaviour)
{
    Rng rng(4);
    RunningStat small, large;
    for (int i = 0; i < 50000; ++i) {
        small.add(static_cast<double>(rng.poisson(0.02)));
        large.add(static_cast<double>(rng.poisson(100.0)));
    }
    EXPECT_NEAR(small.mean(), 0.02, 0.005);
    EXPECT_NEAR(large.mean(), 100.0, 0.5);
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, GeometricMeanTracksParameter)
{
    Rng rng(5);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(rng.geometric(40.0)));
    EXPECT_NEAR(s.mean(), 40.0, 2.0);
    EXPECT_EQ(rng.geometric(0.5), 1u);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(6);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.37);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.37, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentish)
{
    Rng parent(7);
    Rng a = parent.fork();
    Rng b = parent.fork();
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsCombinedStream)
{
    Rng rng(8);
    RunningStat all, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian();
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsSane)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, EdgesAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0); // clamps to first bin.
    h.add(100.0);  // clamps to last bin.
    h.add(5.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
    EXPECT_DOUBLE_EQ(h.edge(4), 8.0);
}

TEST(MeanHelpers, MeanAndGeomean)
{
    std::vector<double> v = {1.0, 2.0, 4.0};
    EXPECT_NEAR(meanOf(v), 7.0 / 3.0, 1e-12);
    EXPECT_NEAR(geomeanOf(v), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
}

TEST(TextTable, FormatsNumbers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
    EXPECT_EQ(TextTable::sci(12345.0, 2), "1.23e+04");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"a", "long-header"});
    t.row({"xxxx", "1"});
    // Render into a pipe-backed FILE to capture output.
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    t.print(tmp);
    std::rewind(tmp);
    char buf[256] = {0};
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
    std::fclose(tmp);
    std::string out(buf, n);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Units, FitConversions)
{
    // 1000 FIT = 1e-6 failures/hour = ~8.77e-3 per year.
    EXPECT_DOUBLE_EQ(fitToPerHour(1000.0), 1e-6);
    EXPECT_NEAR(fitToPerYear(1000.0), 8.766e-3, 1e-6);
    EXPECT_EQ(kLinesPerPage, 64u);
    EXPECT_EQ(kUpgradedLineBytes, 2 * kLineBytes);
}

} // namespace
} // namespace arcc
