/**
 * @file
 * DRAM parameter, timing and power-model tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/channel_shard.hh"
#include "dram/dram_params.hh"
#include "dram/mem_controller.hh"

namespace arcc
{
namespace
{

TEST(DramParams, Table71Configurations)
{
    MemoryConfig base = baselineConfig();
    EXPECT_EQ(base.device.width, DeviceWidth::X4);
    EXPECT_EQ(base.channels, 2);
    EXPECT_EQ(base.ranksPerChannel, 1);
    EXPECT_EQ(base.devicesPerRank, 36);
    EXPECT_EQ(base.devicesPerAccess, 36);

    MemoryConfig ar = arccConfig();
    EXPECT_EQ(ar.device.width, DeviceWidth::X8);
    EXPECT_EQ(ar.channels, 2);
    EXPECT_EQ(ar.ranksPerChannel, 2);
    EXPECT_EQ(ar.devicesPerRank, 18);
    EXPECT_EQ(ar.devicesPerAccess, 18);

    // Same total devices and the same 128-bit data bus per channel.
    EXPECT_EQ(base.totalDevices(), ar.totalDevices());
    EXPECT_EQ(base.dataBusBits(), 128);
    EXPECT_EQ(ar.dataBusBits(), 128);
}

TEST(DramParams, StorageOverheadIs12Point5Percent)
{
    for (const MemoryConfig &c : {baselineConfig(), arccConfig()}) {
        double overhead =
            static_cast<double>(c.devicesPerRank -
                                c.dataDevicesPerRank) /
            c.dataDevicesPerRank;
        EXPECT_DOUBLE_EQ(overhead, 0.125) << c.name;
    }
}

TEST(DramParams, DeviceDensityMatchesGeometry)
{
    for (const DeviceParams &d : {ddr2_667_x4(), ddr2_667_x8()}) {
        std::uint64_t bits = static_cast<std::uint64_t>(d.banks) *
                             d.rowsPerBank * d.rowBytes * 8;
        EXPECT_EQ(bits, static_cast<std::uint64_t>(d.densityMbit) *
                            kMiB) << d.name;
    }
}

TEST(DramParams, EnergiesArePositiveAndOrdered)
{
    for (const DeviceParams &d : {ddr2_667_x4(), ddr2_667_x8()}) {
        EXPECT_GT(d.actPreEnergy(), 0.0);
        EXPECT_GT(d.readBurstEnergy(), 0.0);
        EXPECT_GT(d.writeBurstEnergy(), d.readBurstEnergy() * 0.5);
        EXPECT_GT(d.refreshEnergy(), 0.0);
        // Background power states are ordered: power-down < standby <
        // active standby.
        EXPECT_LT(d.pPowerDown(), d.pPrechargeStandby());
        EXPECT_LT(d.pPrechargeStandby(), d.pActiveStandby());
    }
}

TEST(DramParams, X8BurstEnergyExceedsX4)
{
    // Twice the DQ pins toggle.
    EXPECT_GT(ddr2_667_x8().readBurstEnergy(),
              ddr2_667_x4().readBurstEnergy());
}

// --- timing ------------------------------------------------------------

TEST(MemChannel, IdleReadLatencyIsActPlusCasPlusBurst)
{
    MemoryConfig cfg = arccConfig();
    ControllerConfig ctrl;
    MemChannel ch(cfg, ctrl);
    DramCoord coord{};
    MemResponse r = ch.schedule(0.0, coord, false, 18);
    const DeviceParams &d = cfg.device;
    double expect =
        (d.tRCD + d.clCycles + d.burstCycles()) * d.tCK;
    EXPECT_DOUBLE_EQ(r.completion, expect);
}

TEST(MemChannel, SameBankBackToBackSerialisesOnTrc)
{
    MemoryConfig cfg = arccConfig();
    MemChannel ch(cfg, ControllerConfig{});
    DramCoord coord{};
    MemResponse r1 = ch.schedule(0.0, coord, false, 18);
    MemResponse r2 = ch.schedule(0.0, coord, false, 18);
    const DeviceParams &d = cfg.device;
    EXPECT_GE(r2.issueTime - r1.issueTime, d.tRC * d.tCK - 1e-9);
}

TEST(MemChannel, DifferentBanksOverlapUpToTheBus)
{
    MemoryConfig cfg = arccConfig();
    MemChannel ch(cfg, ControllerConfig{});
    DramCoord a{};
    DramCoord b{};
    b.bank = 1;
    MemResponse r1 = ch.schedule(0.0, a, false, 18);
    MemResponse r2 = ch.schedule(0.0, b, false, 18);
    const DeviceParams &d = cfg.device;
    // Bank-level parallelism: the second access completes one burst
    // after the first, far sooner than a tRC turnaround.
    EXPECT_LT(r2.completion - r1.completion,
              d.tRC * d.tCK);
    EXPECT_GE(r2.completion - r1.completion,
              d.burstCycles() * d.tCK - 1e-9);
}

TEST(MemChannel, QueueBackpressureDelaysAdmission)
{
    MemoryConfig cfg = arccConfig();
    ControllerConfig ctrl;
    ctrl.queueDepth = 4;
    MemChannel ch(cfg, ctrl);
    DramCoord coord{};
    double last = 0.0;
    for (int i = 0; i < 16; ++i) {
        MemResponse r = ch.schedule(0.0, coord, false, 18);
        last = r.completion;
    }
    // 16 same-bank requests at depth 4: admission must have pushed
    // later requests well past 4 * tRC.
    EXPECT_GT(last, 15 * cfg.device.tRC * cfg.device.tCK - 1e-9);
}

TEST(MemorySystem, PairedAccessTouchesBothChannelsInLockstep)
{
    MemorySystem mem(arccConfig());
    double t_paired = mem.access(0.0, 0, false, true);
    EXPECT_GT(t_paired, 0.0);
    EXPECT_EQ(mem.accesses(), 2u); // one access in each channel.
}

TEST(MemorySystem, PairedCompletionNotEarlierThanUnpaired)
{
    MemorySystem a(arccConfig());
    MemorySystem b(arccConfig());
    double unpaired = a.access(0.0, 0, false, false);
    double paired = b.access(0.0, 0, false, true);
    EXPECT_GE(paired, unpaired - 1e-9);
}

TEST(MemorySystem, ArrivalOrderMonotonicityHolds)
{
    MemorySystem mem(arccConfig());
    double prev = 0.0;
    Rng rng(5);
    double now = 0.0;
    for (int i = 0; i < 500; ++i) {
        now += rng.uniform() * 10.0;
        std::uint64_t addr =
            rng.below(mem.map().capacity() / 64) * 64;
        double done = mem.access(now, addr, rng.chance(0.3), false);
        EXPECT_GE(done, now);
        // Completions need not be monotonic across banks, but must
        // never precede their arrival.
        prev = done;
        (void)prev;
    }
}

// --- power ---------------------------------------------------------------

TEST(MemorySystem, DynamicEnergyScalesWithDevicesPerAccess)
{
    MemorySystem base(baselineConfig());
    MemorySystem ar(arccConfig());
    // Identical request streams.
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
        base.access(t, static_cast<std::uint64_t>(i) * 64 * 257 % (1 << 28), false, false);
        ar.access(t, static_cast<std::uint64_t>(i) * 64 * 257 % (1 << 28), false, false);
        t += 60.0;
    }
    base.finalize(t);
    ar.finalize(t);
    // 36 vs 18 devices per access: ARCC dynamic energy must be well
    // below the baseline's (not exactly half: x8 bursts cost more).
    EXPECT_LT(ar.breakdown().dynamicNj,
              0.65 * base.breakdown().dynamicNj);
    EXPECT_GT(ar.breakdown().dynamicNj,
              0.40 * base.breakdown().dynamicNj);
}

TEST(MemorySystem, BackgroundEnergyAccruesWithTime)
{
    MemorySystem mem(arccConfig());
    mem.access(0.0, 0, false, false);
    mem.finalize(1e6); // 1 ms idle tail.
    PowerBreakdown p = mem.breakdown();
    EXPECT_GT(p.backgroundNj, 0.0);
    EXPECT_GT(p.refreshNj, 0.0);
    EXPECT_GT(p.totalNj(), p.dynamicNj);
}

TEST(MemorySystem, PowerDownCutsIdleBackgroundPower)
{
    ControllerConfig with_pd;
    with_pd.enablePowerDown = true;
    ControllerConfig no_pd;
    no_pd.enablePowerDown = false;

    MemorySystem a(arccConfig(), MapPolicy::HiPerf, with_pd);
    MemorySystem b(arccConfig(), MapPolicy::HiPerf, no_pd);
    a.finalize(1e7);
    b.finalize(1e7);
    EXPECT_LT(a.breakdown().backgroundNj,
              0.5 * b.breakdown().backgroundNj);
}

TEST(PowerBreakdown, AvgPowerIsEnergyOverTime)
{
    PowerBreakdown p;
    p.dynamicNj = 500.0;
    p.backgroundNj = 300.0;
    p.refreshNj = 200.0;
    EXPECT_DOUBLE_EQ(p.totalNj(), 1000.0);
    EXPECT_DOUBLE_EQ(p.avgPowerMw(1e6), 1.0); // 1000 nJ / 1 ms = 1 mW.
}


TEST(MemChannel, WriteToReadTurnaroundAddsTwtr)
{
    MemoryConfig cfg = arccConfig();
    MemChannel ch(cfg, ControllerConfig{});
    const DeviceParams &d = cfg.device;
    DramCoord a{};
    DramCoord b{};
    b.bank = 1;
    MemResponse w = ch.schedule(0.0, a, /*is_write=*/true, 18);
    MemResponse r = ch.schedule(0.0, b, /*is_write=*/false, 18);
    // The read burst cannot start before the write burst plus tWTR.
    double earliest = w.completion + d.tWTR * d.tCK +
                      d.burstCycles() * d.tCK;
    EXPECT_GE(r.completion, earliest - 1e-9);
}

TEST(MemChannel, FifoPartitionConstrainsPairedIssue)
{
    MemoryConfig cfg = arccConfig();
    ControllerConfig ctrl;
    ctrl.pairing = PairingPolicy::FifoPartition;
    MemChannel ch(cfg, ctrl);
    DramCoord busy{};
    // Occupy the channel so lastIssue advances well past zero.
    for (int i = 0; i < 4; ++i)
        ch.schedule(0.0, busy, false, 18);
    DramCoord other{};
    other.bank = 5;
    other.rank = 1;
    // A paired request to an idle bank may not bypass earlier issues
    // under strict FIFO; the pointer design may.
    double fifo = ch.earliestIssue(0.0, other, /*paired=*/true);
    double free = ch.earliestIssue(0.0, other, /*paired=*/false);
    EXPECT_GT(fifo, free);
}

TEST(ChannelShardPlan, PairableGroupsFollowTheMapInterleave)
{
    MemoryConfig cfg = arccConfig();
    // HiPerf / ClosePage interleave adjacent lines over the channels,
    // so the 128B pair spans channels {0, 1}: one pairable group.
    for (MapPolicy p : {MapPolicy::HiPerf, MapPolicy::ClosePage}) {
        AddressMap map(cfg, p);
        ChannelShardPlan plan(map, /*pairable=*/true);
        ASSERT_EQ(plan.groups(), 1u);
        EXPECT_EQ(plan.group(0), (std::vector<int>{0, 1}));
        EXPECT_EQ(plan.groupOf(0), 0);
        EXPECT_EQ(plan.groupOf(1), 0);
    }
    // The Base map keeps the pair in one channel: singleton groups.
    AddressMap base(cfg, MapPolicy::Base);
    ChannelShardPlan base_plan(base, /*pairable=*/true);
    ASSERT_EQ(base_plan.groups(), 2u);
    EXPECT_EQ(base_plan.group(0), (std::vector<int>{0}));
    EXPECT_EQ(base_plan.group(1), (std::vector<int>{1}));
}

TEST(ChannelShardPlan, UnpairableTrafficShardsPerChannel)
{
    // With no upgraded pages possible there is no paired traffic, so
    // every channel is its own shard regardless of the interleave.
    AddressMap map(arccConfig(), MapPolicy::HiPerf);
    ChannelShardPlan plan(map, /*pairable=*/false);
    ASSERT_EQ(plan.groups(), 2u);
    EXPECT_EQ(plan.groupOf(0), 0);
    EXPECT_EQ(plan.groupOf(1), 1);
}

TEST(ChannelShardPlan, WideConfigsFanOutPastTwoShards)
{
    // The 4- and 8-channel configurations exist to widen the back-end
    // shard fan: pairable traffic groups channels {2k, 2k+1} under
    // the interleaved maps, unpairable traffic shards per channel.
    for (int channels : {4, 8}) {
        SCOPED_TRACE("channels=" + std::to_string(channels));
        MemoryConfig cfg = withChannels(arccConfig(), channels);
        AddressMap map(cfg, MapPolicy::HiPerf);

        ChannelShardPlan paired(map, /*pairable=*/true);
        ASSERT_EQ(paired.groups(),
                  static_cast<std::size_t>(channels / 2));
        for (std::size_t g = 0; g < paired.groups(); ++g) {
            int lo = static_cast<int>(2 * g);
            EXPECT_EQ(paired.group(g),
                      (std::vector<int>{lo, lo + 1}));
            EXPECT_EQ(paired.groupOf(lo), static_cast<int>(g));
            EXPECT_EQ(paired.groupOf(lo + 1), static_cast<int>(g));
        }

        ChannelShardPlan solo(map, /*pairable=*/false);
        ASSERT_EQ(solo.groups(),
                  static_cast<std::size_t>(channels));
        for (int c = 0; c < channels; ++c)
            EXPECT_EQ(solo.group(solo.groupOf(c)),
                      (std::vector<int>{c}));
    }
}

TEST(MemoryConfigChannels, WithChannelsScalesCapacityOnly)
{
    MemoryConfig base = arccConfig();
    MemoryConfig wide = withChannels(base, 8);
    EXPECT_EQ(wide.channels, 8);
    EXPECT_EQ(wide.ranksPerChannel, base.ranksPerChannel);
    EXPECT_EQ(wide.devicesPerRank, base.devicesPerRank);
    EXPECT_EQ(wide.dataBytes(), base.dataBytes() * 4);
    EXPECT_EQ(wide.name, base.name + " @8ch");
    EXPECT_EQ(arccConfig4().channels, 4);
    EXPECT_EQ(arccConfig8().channels, 8);
}

TEST(MemoryConfigChannelsDeathTest, IndivisibleRowSplitIsFatal)
{
    // 2 pages/row = 128 lines cannot interleave over 3 channels.
    EXPECT_EXIT(withChannels(arccConfig(), 3),
                ::testing::ExitedWithCode(1), "split over");
    EXPECT_EXIT(withChannels(arccConfig(), 0),
                ::testing::ExitedWithCode(1), ">= 1 channel");
}

TEST(ChannelSet, MatchesMemorySystemRequestForRequest)
{
    // The facade is now implemented on ChannelSet; drive a ChannelSet
    // over all channels with pre-decoded coordinates and require
    // bit-identical completions and power to MemorySystem.
    MemoryConfig cfg = arccConfig();
    MemorySystem sys(cfg);
    ChannelSet set(cfg, ControllerConfig{}, {0, 1});
    const AddressMap &map = sys.map();

    Rng rng(11);
    double now = 0.0;
    for (int i = 0; i < 400; ++i) {
        now += rng.uniform() * 8.0;
        bool paired = rng.chance(0.3);
        bool is_write = rng.chance(0.3);
        std::uint64_t addr =
            rng.below(map.capacity() / kUpgradedLineBytes) *
            kUpgradedLineBytes;
        double via_sys = sys.access(now, addr, is_write, paired);
        double via_set;
        if (paired) {
            via_set = set.accessPaired(now, map.decode(addr),
                                       map.decode(addr + kLineBytes),
                                       is_write);
        } else {
            via_set = set.access(now, map.decode(addr), is_write);
        }
        EXPECT_EQ(via_sys, via_set);
    }
    sys.finalize(now);
    set.finalize(now);
    EXPECT_EQ(sys.accesses(), set.accesses());
    EXPECT_EQ(sys.breakdown().totalNj(), set.breakdown().totalNj());
}

TEST(ChannelSet, RejectsCoordinatesItDoesNotOwn)
{
    MemoryConfig cfg = arccConfig();
    ChannelSet set(cfg, ControllerConfig{}, {1});
    EXPECT_TRUE(set.owns(1));
    EXPECT_FALSE(set.owns(0));
    DramCoord foreign{};
    foreign.channel = 0;
    EXPECT_DEATH(set.access(0.0, foreign, false), "assertion");
}

TEST(MemorySystem, PairedAccessFallsBackUnderBaseMap)
{
    // The Base map keeps adjacent lines in one channel: a paired
    // access degrades to two sequential accesses instead of asserting.
    MemorySystem mem(arccConfig(), MapPolicy::Base);
    double done = mem.access(0.0, 0, false, /*paired=*/true);
    EXPECT_GT(done, 0.0);
    EXPECT_EQ(mem.accesses(), 2u);

    MemorySystem lockstep(arccConfig(), MapPolicy::HiPerf);
    double parallel = lockstep.access(0.0, 0, false, true);
    EXPECT_GT(done, parallel)
        << "without channel interleaving the pair serialises "
           "(Section 4.1's requirement)";
}

} // namespace
} // namespace arcc
