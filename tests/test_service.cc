/**
 * @file
 * Tests for the arccd service stack: strict JSON, request parsing /
 * canonicalization, the LRU response cache, the SimService scheduler,
 * and the Unix-socket server end to end.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hh"
#include "cpu/trace.hh"
#include "engine/sim_engine.hh"
#include "service/cache.hh"
#include "service/request.hh"
#include "service/server.hh"
#include "service/sim_service.hh"

namespace arcc
{
namespace
{

// --- strict JSON --------------------------------------------------------

TEST(Json, ParsesScalarsExactly)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse("18446744073709551615", v, err)) << err;
    EXPECT_TRUE(v.isUint);
    EXPECT_EQ(v.uintValue, ~std::uint64_t{0});
    ASSERT_TRUE(json::parse("-9223372036854775808", v, err));
    EXPECT_TRUE(v.isInt);
    EXPECT_FALSE(v.isUint);
    ASSERT_TRUE(json::parse("0.5", v, err));
    EXPECT_FALSE(v.isInt);
    EXPECT_DOUBLE_EQ(v.number, 0.5);
}

TEST(Json, RejectsTheSharpEdges)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse("{\"a\":1,\"a\":2}", v, err));
    EXPECT_TRUE(err.find("duplicate") != std::string::npos) << err;
    EXPECT_FALSE(json::parse("{\"a\":1} trailing", v, err));
    EXPECT_FALSE(json::parse("042", v, err));
    EXPECT_FALSE(json::parse("18446744073709551616", v, err));
    EXPECT_FALSE(json::parse("\"\\ud800\"", v, err));
    EXPECT_FALSE(json::parse(std::string(40, '[') +
                                 std::string(40, ']'),
                             v, err));
    EXPECT_FALSE(json::parse("", v, err));
}

// --- request parsing ----------------------------------------------------

TEST(ServiceRequest, DefaultsMaterialize)
{
    ServiceRequest req;
    std::string err;
    ASSERT_TRUE(ServiceRequest::parse("{\"kind\":\"mix\"}", req, err))
        << err;
    EXPECT_EQ(req.kind, ServiceRequestKind::Mix);
    EXPECT_EQ(req.config, "arcc");
    EXPECT_EQ(req.mix, "Mix1");
    EXPECT_EQ(req.fault, "none");
    EXPECT_EQ(req.instrs, 1'000'000u);
    EXPECT_EQ(req.seed, 42u);
    EXPECT_FALSE(req.sectored);
}

TEST(ServiceRequest, RejectsWithoutFatal)
{
    const char *bad[] = {
        "not json at all",
        "{\"kind\":\"mix\",\"typo_key\":1}",
        "{\"kind\":\"warp\"}",
        "{\"kind\":\"mix\",\"config\":\"chipkill\"}",
        "{\"kind\":\"mix\",\"mix\":\"Mix99\"}",
        "{\"kind\":\"mix\",\"fault\":\"gamma-ray\"}",
        "{\"kind\":\"mix\",\"fraction\":1.5}",
        "{\"kind\":\"mix\",\"fraction\":0.5,\"fault\":\"device\"}",
        "{\"kind\":\"mix\",\"instrs\":0}",
        "{\"kind\":\"mix\",\"instrs\":-5}",
        "{\"kind\":\"mix\",\"seed\":\"forty-two\"}",
        "{\"kind\":\"stats\",\"seed\":1}",
        "{\"kind\":\"campaign\",\"channels\":0}",
        "{\"kind\":\"campaign\",\"group_devices\":7}",
        "{\"kind\":\"campaign\",\"epoch_trials\":4,"
        "\"shard_trials\":8}",
        "{\"kind\":\"campaign\",\"years\":0}",
        "{\"kind\":\"trace\"}",
        "{\"kind\":\"trace\",\"paths\":[\"/nonexistent/a\","
        "\"/nonexistent/b\",\"/nonexistent/c\",\"/nonexistent/d\"]}",
    };
    for (const char *line : bad) {
        ServiceRequest req;
        std::string err;
        EXPECT_FALSE(ServiceRequest::parse(line, req, err)) << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

TEST(ServiceRequest, SpellingsCanonicalizeIdentically)
{
    const char *spellings[] = {
        "{\"kind\":\"mix\",\"mix\":\"Mix3\",\"seed\":7}",
        "{ \"seed\" : 7 , \"mix\" : \"Mix3\" , \"kind\" : \"mix\" }",
        "{\"mix\":\"Mix3\",\"kind\":\"mix\",\"seed\":7,"
        "\"sectored\":false}",
        "{\"kind\":\"mix\",\"mix\":\"Mix3\",\"seed\":7,"
        "\"fraction\":-1.0}",
    };
    ServiceRequest first;
    std::string err;
    ASSERT_TRUE(ServiceRequest::parse(spellings[0], first, err));
    for (const char *line : spellings) {
        ServiceRequest req;
        ASSERT_TRUE(ServiceRequest::parse(line, req, err)) << line;
        EXPECT_EQ(req.canonical(), first.canonical()) << line;
        EXPECT_EQ(req.hash(), first.hash()) << line;
    }
}

TEST(ServiceRequest, CanonicalRoundTrips)
{
    const char *lines[] = {
        "{\"kind\":\"mix\"}",
        "{\"kind\":\"mix\",\"config\":\"baseline\",\"mix\":\"Mix7\","
        "\"fault\":\"bank\",\"instrs\":12345,\"sectored\":true}",
        "{\"kind\":\"mix\",\"fraction\":0.25}",
        "{\"kind\":\"campaign\",\"channels\":64,\"seed\":9,"
        "\"epoch_trials\":32,\"shard_trials\":16}",
        "{\"kind\":\"stats\"}",
        "{\"kind\":\"shutdown\"}",
    };
    for (const char *line : lines) {
        ServiceRequest req, again;
        std::string err;
        ASSERT_TRUE(ServiceRequest::parse(line, req, err)) << line;
        const std::string canon = req.canonical();
        ASSERT_TRUE(ServiceRequest::parse(canon, again, err))
            << canon << ": " << err;
        EXPECT_EQ(again.canonical(), canon);
        EXPECT_EQ(again.hash(), req.hash());
    }
}

// --- trace requests and content identity --------------------------------

class TraceRequestTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Four tiny synthetic traces, one per core.
        for (int core = 0; core < 4; ++core) {
            std::string path = ::testing::TempDir() +
                               "svc_trace_c" +
                               std::to_string(core) + ".trc";
            captureSyntheticTrace("mcf2006", 1ULL << 30, core, 42,
                                  2000,
                                  path, /*binary=*/core % 2 == 0);
            paths_.push_back(path);
        }
    }

    std::string
    traceLine() const
    {
        std::string line = "{\"kind\":\"trace\",\"paths\":[";
        for (std::size_t i = 0; i < paths_.size(); ++i) {
            if (i)
                line += ",";
            line += json::quote(paths_[i]);
        }
        line += "],\"instrs\":2000}";
        return line;
    }

    std::vector<std::string> paths_;
};

TEST_F(TraceRequestTest, ContentChangesTheCanonicalForm)
{
    ServiceRequest before;
    std::string err;
    ASSERT_TRUE(ServiceRequest::parse(traceLine(), before, err))
        << err;
    ASSERT_EQ(before.traceCrcs.size(), 4u);

    // Append a byte to one file: same path, different content --
    // the canonical form (and therefore the cache key) must change.
    {
        std::FILE *f = std::fopen(paths_[1].c_str(), "ab");
        ASSERT_NE(f, nullptr);
        std::fputc('x', f);
        std::fclose(f);
    }
    ServiceRequest after;
    ASSERT_TRUE(ServiceRequest::parse(traceLine(), after, err));
    EXPECT_NE(after.canonical(), before.canonical());
    EXPECT_NE(after.hash(), before.hash());

    // The stale canonical form now *fails* to parse: its embedded
    // trace_crcs no longer match the bytes on disk.
    ServiceRequest stale;
    EXPECT_FALSE(
        ServiceRequest::parse(before.canonical(), stale, err));
    EXPECT_TRUE(err.find("changed") != std::string::npos) << err;

    // The fresh canonical form round-trips.
    ServiceRequest again;
    ASSERT_TRUE(
        ServiceRequest::parse(after.canonical(), again, err));
    EXPECT_EQ(again.canonical(), after.canonical());
}

// --- the response cache -------------------------------------------------

TEST(ResponseCache, LruEvictionOrder)
{
    ResponseCache::Options opts;
    opts.maxEntries = 2;
    ResponseCache cache(opts);
    cache.put("a", "1");
    cache.put("b", "2");
    std::string out;
    ASSERT_TRUE(cache.get("a", out)); // refresh a: b is now LRU.
    cache.put("c", "3");              // evicts b.
    EXPECT_TRUE(cache.get("a", out));
    EXPECT_TRUE(cache.get("c", out));
    EXPECT_FALSE(cache.get("b", out));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.entries(), 2u);
}

TEST(ResponseCache, ByteBudgetHolds)
{
    ResponseCache::Options opts;
    opts.maxEntries = 100;
    opts.maxBytes = 64;
    ResponseCache cache(opts);
    // Keys count toward the budget too: each entry is 2 + 33 bytes,
    // so the second insert must evict the first to stay under 64.
    cache.put("k1", std::string(33, 'x'));
    cache.put("k2", std::string(33, 'y'));
    EXPECT_LE(cache.bytes(), 64u);
    EXPECT_EQ(cache.entries(), 1u); // k1 evicted to fit k2.
    // An entry bigger than the whole budget is not cached at all.
    cache.put("k3", std::string(100, 'z'));
    std::string out;
    EXPECT_FALSE(cache.get("k3", out));
}

TEST(ResponseCache, RefreshedValueReplaces)
{
    ResponseCache cache;
    cache.put("k", "old");
    cache.put("k", "new");
    std::string out;
    ASSERT_TRUE(cache.get("k", out));
    EXPECT_EQ(out, "new");
    EXPECT_EQ(cache.entries(), 1u);
}

// --- SimService ---------------------------------------------------------

class SimServiceTest : public ::testing::Test
{
  protected:
    SimServiceTest() : engine_(SimEngine::Options{2})
    {
        opts_.engine = &engine_;
        opts_.workers = 2;
    }

    SimEngine engine_;
    SimService::Options opts_;
};

TEST_F(SimServiceTest, MalformedLineGetsErrorAndServiceLives)
{
    SimService service(opts_);
    const ServiceResponse bad = service.evaluate("{{{nope");
    EXPECT_EQ(bad.body.rfind("{\"ok\":false", 0), 0u) << bad.body;
    // The daemon answered instead of dying; real work still runs.
    const ServiceResponse good = service.evaluate(
        "{\"kind\":\"mix\",\"instrs\":5000}");
    EXPECT_EQ(good.body.rfind("{\"ok\":true", 0), 0u) << good.body;
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.errors, 1u);
    EXPECT_EQ(stats.ok, 1u);
    EXPECT_EQ(stats.received, 2u);
}

TEST_F(SimServiceTest, MemoizationServesByteIdenticalResponses)
{
    SimService service(opts_);
    const std::string line = "{\"kind\":\"mix\",\"instrs\":5000}";
    const ServiceResponse cold = service.evaluate(line);
    const ServiceResponse warm = service.evaluate(line);
    EXPECT_EQ(cold.body, warm.body);
    // A different spelling of the same request is also a cache hit.
    const ServiceResponse spelled = service.evaluate(
        "{ \"instrs\" : 5000, \"kind\" : \"mix\" }");
    EXPECT_EQ(spelled.body, cold.body);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.cacheHits, 2u);
}

TEST_F(SimServiceTest, StatsRequestIsNeverMemoized)
{
    SimService service(opts_);
    const ServiceResponse s1 = service.evaluate("{\"kind\":\"stats\"}");
    const ServiceResponse s2 = service.evaluate("{\"kind\":\"stats\"}");
    EXPECT_EQ(s1.body.rfind("{\"ok\":true", 0), 0u);
    // The counters moved between the two samples, so the bodies
    // differ -- proof the stats path bypasses the cache.
    EXPECT_NE(s1.body, s2.body);
    EXPECT_EQ(service.stats().cacheMisses, 0u);
}

TEST_F(SimServiceTest, ShutdownRequestSetsTheFlag)
{
    SimService service(opts_);
    const ServiceResponse resp =
        service.evaluate("{\"kind\":\"shutdown\"}");
    EXPECT_TRUE(resp.shutdown);
    EXPECT_EQ(resp.body.rfind("{\"ok\":true", 0), 0u);
}

TEST_F(SimServiceTest, CampaignRequestComputes)
{
    SimService service(opts_);
    const ServiceResponse resp = service.evaluate(
        "{\"kind\":\"campaign\",\"channels\":16,"
        "\"epoch_trials\":16,\"shard_trials\":8}");
    ASSERT_EQ(resp.body.rfind("{\"ok\":true", 0), 0u) << resp.body;
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(resp.body, doc, err)) << err;
    const json::Value *result = doc.find("result");
    ASSERT_NE(result, nullptr);
    const json::Value *trials = result->find("trials");
    ASSERT_NE(trials, nullptr);
    EXPECT_EQ(trials->uintValue, 16u);
}

// --- the socket server end to end ---------------------------------------

/** Minimal blocking line client for the end-to-end tests. */
class TestClient
{
  public:
    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connect(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof addr.sun_path)
            return false;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        return fd_ >= 0 &&
               ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof addr) == 0;
    }

    bool
    sendLine(const std::string &line)
    {
        const std::string out = line + "\n";
        return ::send(fd_, out.data(), out.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(out.size());
    }

    bool
    readLine(std::string &out)
    {
        for (;;) {
            const std::size_t nl = pending_.find('\n');
            if (nl != std::string::npos) {
                out = pending_.substr(0, nl);
                pending_.erase(0, nl + 1);
                return true;
            }
            char buf[4096];
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            pending_.append(buf, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string pending_;
};

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        engine_ = std::make_unique<SimEngine>(SimEngine::Options{2});
        ArccdServer::Options opts;
        opts.socketPath = ::testing::TempDir() + "arccd_test_" +
                          std::to_string(::getpid()) + ".sock";
        opts.service.engine = engine_.get();
        opts.service.workers = 2;
        server_ = std::make_unique<ArccdServer>(opts);
        std::string error;
        ASSERT_TRUE(server_->start(error)) << error;
    }

    void
    TearDown() override
    {
        server_->stop();
    }

    std::unique_ptr<SimEngine> engine_;
    std::unique_ptr<ArccdServer> server_;
};

TEST_F(ServerTest, PipelinedRequestsComeBackInOrder)
{
    TestClient client;
    ASSERT_TRUE(client.connect(server_->socketPath()));
    // Three distinct requests plus a malformed line in the middle:
    // the error must come back *in position*, and the daemon must
    // keep serving the rest of the pipeline.
    const std::vector<std::string> lines = {
        "{\"kind\":\"mix\",\"instrs\":5000}",
        "this is not json",
        "{\"kind\":\"mix\",\"mix\":\"Mix2\",\"instrs\":5000}",
        "{\"kind\":\"stats\"}",
    };
    for (const std::string &line : lines)
        ASSERT_TRUE(client.sendLine(line));
    std::vector<std::string> responses(lines.size());
    for (std::string &r : responses)
        ASSERT_TRUE(client.readLine(r));
    EXPECT_EQ(responses[0].rfind("{\"ok\":true", 0), 0u);
    EXPECT_EQ(responses[1].rfind("{\"ok\":false", 0), 0u);
    EXPECT_EQ(responses[2].rfind("{\"ok\":true", 0), 0u);
    EXPECT_NE(responses[3].find("\"stats\""), std::string::npos);
    // Responses 0 and 2 are different requests -> different bodies.
    EXPECT_NE(responses[0], responses[2]);
}

TEST_F(ServerTest, TwoClientsGetIdenticalAnswers)
{
    TestClient a, b;
    ASSERT_TRUE(a.connect(server_->socketPath()));
    ASSERT_TRUE(b.connect(server_->socketPath()));
    const std::string line = "{\"kind\":\"mix\",\"instrs\":5000}";
    ASSERT_TRUE(a.sendLine(line));
    ASSERT_TRUE(b.sendLine(line));
    std::string ra, rb;
    ASSERT_TRUE(a.readLine(ra));
    ASSERT_TRUE(b.readLine(rb));
    EXPECT_EQ(ra, rb);
}

TEST_F(ServerTest, ShutdownRequestTripsTheLatch)
{
    TestClient client;
    ASSERT_TRUE(client.connect(server_->socketPath()));
    ASSERT_TRUE(client.sendLine("{\"kind\":\"shutdown\"}"));
    std::string resp;
    ASSERT_TRUE(client.readLine(resp));
    EXPECT_EQ(resp.rfind("{\"ok\":true", 0), 0u);
    server_->waitForShutdown(); // must return, not hang.
}

} // namespace
} // namespace arcc
