/**
 * @file
 * End-to-end integration tests: the full ARCC life cycle on the
 * functional plane, and data-plane / reliability-plane cross-checks.
 */

#include <gtest/gtest.h>

#include <map>

#include "arcc/arcc_memory.hh"
#include "arcc/scrubber.hh"
#include "common/rng.hh"
#include "faults/fault_model.hh"
#include "reliability/sdc_model.hh"

namespace arcc
{
namespace
{

/** Write a recognisable pattern into every line of the memory. */
std::map<std::uint64_t, std::vector<std::uint8_t>>
fillMemory(ArccMemory &mem, Rng &rng)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> golden;
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
        golden[addr] = std::move(line);
    }
    return golden;
}

TEST(Integration, FullArccLifecyclePreservesEveryByte)
{
    // Boot -> fill -> relax -> run -> device fault -> scrub-upgrade ->
    // continue -> every byte still correct.  This is the paper's whole
    // mechanism end to end on real data.
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.rows = 4; // keep the walk quick: 32 pages.
    ArccMemory mem(cfg);
    Rng rng(21);
    auto golden = fillMemory(mem, rng);

    Scrubber scrubber;
    ScrubReport boot = scrubber.bootScrub(mem);
    EXPECT_EQ(boot.pagesRelaxed, mem.pageTable().pages());

    // Life is good in relaxed mode: half the device touches.
    for (auto &[addr, line] : golden) {
        auto r = mem.read(addr);
        ASSERT_EQ(r.status, DecodeStatus::Clean);
        ASSERT_EQ(r.data, line);
    }

    // A device dies.
    FunctionalFault f;
    f.channel = 1;
    f.rank = 0;
    f.device = 13;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    // Reads still work (single chipkill correct in relaxed mode) ...
    for (auto &[addr, line] : golden) {
        auto r = mem.read(addr);
        ASSERT_NE(r.status, DecodeStatus::Detected) << addr;
        ASSERT_EQ(r.data, line) << addr;
    }

    // ... and the next scrub upgrades exactly the affected rank.
    ScrubReport rep = scrubber.scrub(mem);
    EXPECT_GT(rep.pagesUpgraded, 0u);
    EXPECT_NEAR(mem.pageTable().upgradedFraction(), 0.5, 0.02);

    // All data intact after the upgrade, still corrected on the fly.
    for (auto &[addr, line] : golden) {
        auto r = mem.read(addr);
        ASSERT_NE(r.status, DecodeStatus::Detected) << addr;
        ASSERT_EQ(r.data, line) << addr;
    }

    // New writes to upgraded pages round-trip too.
    std::vector<std::uint8_t> fresh(kLineBytes, 0x5a);
    std::uint64_t upgraded_addr = 0;
    bool found = false;
    for (auto &[addr, line] : golden) {
        if (mem.pageTable().mode(mem.pageOf(addr)) ==
            PageMode::Upgraded) {
            upgraded_addr = addr;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);
    mem.write(upgraded_addr, fresh);
    EXPECT_EQ(mem.read(upgraded_addr).data, fresh);
}

TEST(Integration, SecondFaultAfterUpgradeIsDetectedNotSilent)
{
    // The reliability story of Chapter 6: once the page is upgraded,
    // a second overlapping device fault becomes a guaranteed DUE
    // instead of potential silent corruption.
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.rows = 2;
    ArccMemory mem(cfg);
    Rng rng(22);
    auto golden = fillMemory(mem, rng);
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f1;
    f1.channel = 0;
    f1.rank = 0;
    f1.device = 2;
    f1.scope = FaultScope::Device;
    f1.kind = FaultKind::Corrupt;
    mem.injectFault(f1);
    scrubber.scrub(mem); // upgrade rank 0.

    FunctionalFault f2 = f1;
    f2.channel = 1;
    f2.device = 6;
    mem.injectFault(f2); // second fault, same rank, other channel.

    // Upgraded pages: two bad symbols per RS(36,32) codeword -> DUE,
    // never a silent wrong answer.
    int dues = 0;
    for (auto &[addr, line] : golden) {
        if (mem.pageTable().mode(mem.pageOf(addr)) !=
            PageMode::Upgraded)
            continue;
        auto r = mem.read(addr);
        if (r.status == DecodeStatus::Detected)
            ++dues;
        else
            EXPECT_EQ(r.data, line) << "silent corruption!";
    }
    EXPECT_GT(dues, 0);
}

TEST(Integration, ScrubberHealsTransientCorruption)
{
    // Soft errors (a one-off corruption of stored bits, no persistent
    // overlay) are corrected in place by the scrub's read+write-back,
    // and the page needs no upgrade afterwards... but ARCC upgrades it
    // anyway (the scrubber cannot tell soft from hard) -- verify data
    // integrity and the conservative upgrade.
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.rows = 2;
    ArccMemory mem(cfg);
    Rng rng(23);
    auto golden = fillMemory(mem, rng);
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    // Flip stored bits directly: snapshot, corrupt one device slice,
    // restore the rest -- emulate a transient upset at line 0.
    auto snap = mem.rawSnapshot(0);
    auto bad = snap;
    bad[2] ^= 0x40; // one bit in device 0's slice.
    mem.rawRestore(0, bad);

    ScrubReport rep = scrubber.scrub(mem);
    EXPECT_EQ(rep.errorsCorrected, 1u);
    EXPECT_EQ(mem.read(0).data, golden[0]);
    // A second scrub finds nothing: the write-back healed it.
    ScrubReport rep2 = scrubber.scrub(mem);
    EXPECT_EQ(rep2.errorsCorrected, 0u);
    EXPECT_EQ(rep2.stuckAt1Found + rep2.stuckAt0Found, 0u);
}

TEST(Integration, LotEccLifecycle)
{
    // Chapter 5.2: ARCC over LOT-ECC, 9-device relaxed lines upgraded
    // to 18-device double-chip-sparing lines.
    FunctionalConfig cfg = FunctionalConfig::lotSmall();
    cfg.rows = 2;
    ArccMemory mem(cfg);
    Rng rng(24);
    auto golden = fillMemory(mem, rng);
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 1;
    f.device = 5;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::StuckAt0; // the guaranteed-detect fault class.
    mem.injectFault(f);

    for (auto &[addr, line] : golden) {
        auto r = mem.read(addr);
        ASSERT_NE(r.status, DecodeStatus::Detected);
        ASSERT_EQ(r.data, line);
    }
    ScrubReport rep = scrubber.scrub(mem);
    EXPECT_GT(rep.pagesUpgraded, 0u);
    for (auto &[addr, line] : golden) {
        auto r = mem.read(addr);
        ASSERT_NE(r.status, DecodeStatus::Detected);
        ASSERT_EQ(r.data, line);
    }
}

TEST(Integration, AliasFactorTightensTheSdcModel)
{
    // Cross-plane: measure the RS(18,16) double-error miscorrection
    // rate with the real codec and feed it to the reliability model.
    double alias = measureMiscorrectionRate(18, 16, 1, 2, 2000, 31);
    ASSERT_GT(alias, 0.0);
    ASSERT_LT(alias, 0.2);

    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    SdcModel conservative(cfg);
    cfg.aliasFactor = alias;
    SdcModel refined(cfg);
    EXPECT_NEAR(refined.arccSdcEvents(7.0),
                conservative.arccSdcEvents(7.0) * alias, 1e-12);
}

TEST(Integration, DevicesTouchedMatchesTable71Accounting)
{
    // The power story rests on 18 vs 36 device touches; check the
    // functional plane agrees with Table 7.1's accounting exactly.
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.rows = 2;
    ArccMemory mem(cfg);
    Rng rng(25);
    fillMemory(mem, rng);
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    auto before = mem.stats().deviceReads;
    const int reads = 100;
    for (int i = 0; i < reads; ++i)
        mem.read((i * 7 % 32) * kLineBytes);
    EXPECT_EQ(mem.stats().deviceReads - before,
              static_cast<std::uint64_t>(reads) * 18);
}

} // namespace
} // namespace arcc
