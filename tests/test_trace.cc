/**
 * @file
 * Trace capture / replay tests, including an end-to-end run of the
 * system simulator on a replayed trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/system_sim.hh"
#include "cpu/trace.hh"

namespace arcc
{
namespace
{

TEST(Trace, WriteParseRoundTrip)
{
    std::ostringstream out;
    TraceWriter writer(out);
    CoreWorkload wl(benchmarkProfile("swim"), 1ULL << 30, 0, 5);
    std::vector<CoreWorkload::Access> original;
    for (int i = 0; i < 500; ++i) {
        auto a = wl.next();
        original.push_back(a);
        writer.append(a);
    }
    EXPECT_EQ(writer.count(), 500u);

    std::istringstream in(out.str());
    auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].addr, original[i].addr) << i;
        EXPECT_EQ(parsed[i].isWrite, original[i].isWrite) << i;
        EXPECT_EQ(parsed[i].instrGap, original[i].instrGap) << i;
    }
}

TEST(Trace, CommentsAndBlankLinesAreSkipped)
{
    std::istringstream in(
        "# a comment\n\n1000 R 5\n# another\n2040 W 17\n");
    auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].addr, 0x1000u);
    EXPECT_FALSE(parsed[0].isWrite);
    EXPECT_EQ(parsed[0].instrGap, 5u);
    EXPECT_EQ(parsed[1].addr, 0x2040u);
    EXPECT_TRUE(parsed[1].isWrite);
}

TEST(Trace, MalformedLinesAreFatal)
{
    std::istringstream bad1("zzz\n");
    EXPECT_EXIT(parseTrace(bad1), ::testing::ExitedWithCode(1),
                "malformed");
    std::istringstream bad2("1000 X 5\n");
    EXPECT_EXIT(parseTrace(bad2), ::testing::ExitedWithCode(1),
                "not R or W");
}

TEST(TraceReplay, LoopsAtTheEnd)
{
    std::vector<CoreWorkload::Access> v(3);
    v[0].addr = 0;
    v[1].addr = 64;
    v[2].addr = 128;
    TraceReplay replay(v);
    for (int lap = 0; lap < 3; ++lap)
        for (std::uint64_t a : {0ULL, 64ULL, 128ULL})
            EXPECT_EQ(replay.next().addr, a);
    EXPECT_EQ(replay.laps(), 3u);
}

TEST(TraceReplay, DrivesTheSystemSimulator)
{
    // Capture four synthetic streams, replay them, and check the
    // simulator produces the same result as the live generators.
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 50'000;
    cfg.seed = 77;

    SimResult live = simulateMix(table73Mixes()[3], cfg, {});

    AddressMap map(cfg.mem, cfg.mapPolicy);
    std::vector<StreamSpec> streams;
    for (int i = 0; i < 4; ++i) {
        const BenchmarkProfile &prof =
            benchmarkProfile(table73Mixes()[3].benchmarks[i]);
        CoreWorkload wl(prof, map.capacity(), i,
                        cfg.seed + 1000003ULL * i);
        std::vector<CoreWorkload::Access> recorded;
        std::uint64_t instrs = 0;
        while (instrs < cfg.instrsPerCore + 1000) {
            recorded.push_back(wl.next());
            instrs += recorded.back().instrGap;
        }
        auto replay = std::make_shared<TraceReplay>(recorded);
        StreamSpec spec;
        spec.name = prof.name + "-trace";
        spec.baseIpc = prof.baseIpc;
        spec.next = [replay]() { return replay->next(); };
        streams.push_back(std::move(spec));
    }
    SimResult replayed = simulateStreams(std::move(streams), cfg, {});
    EXPECT_NEAR(replayed.ipcSum, live.ipcSum, 1e-9);
    EXPECT_NEAR(replayed.avgPowerMw, live.avgPowerMw, 1e-9);
}

} // namespace
} // namespace arcc
